//! Static scheduling of coloured partitioning graphs.
//!
//! The output of COOL's partitioning phase is (1) a coloured partitioning
//! graph and (2) a **static schedule** (paper Figure 2). This crate
//! computes that schedule with priority-based list scheduling:
//!
//! * every processor executes its nodes strictly sequentially,
//! * hardware nodes start as soon as their data is available (each node
//!   owns its own datapath on the FPGA, so hardware is concurrent),
//! * every *cut* edge (endpoints on different resources) becomes a bus
//!   transfer; the single system bus serializes transfers,
//! * priorities are critical-path lengths, so long chains schedule first.
//!
//! The resulting [`StaticSchedule`] is what co-synthesis turns into the
//! state/transition graph and ultimately into the system controller.
//!
//! # Example
//!
//! ```
//! use cool_cost::CostModel;
//! use cool_ir::{Mapping, Resource, Target};
//! use cool_spec::workloads;
//!
//! # fn main() -> Result<(), cool_schedule::ScheduleError> {
//! let g = workloads::equalizer(4);
//! let target = Target::fuzzy_board();
//! let cost = CostModel::new(&g, &target);
//! let mapping = Mapping::uniform(g.node_count(), Resource::Software(0));
//! let sched = cool_schedule::schedule(&g, &mapping, &cost, Default::default())?;
//! assert!(sched.makespan() > 0);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;
use std::fmt;

use cool_cost::{CommScheme, CostModel};
use cool_ir::codec::{Codec, CodecError, Decoder, Encoder};
use cool_ir::hash::{ContentHash, ContentHasher};
use cool_ir::{EdgeId, IrError, Mapping, NodeId, NodeKind, PartitioningGraph, Resource};

/// Errors from the static scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// The underlying graph or mapping is malformed.
    Ir(IrError),
    /// Internal progress failure: no event could advance time. Indicates a
    /// dependency that can never be satisfied (should be unreachable for
    /// validated DAGs).
    Stuck {
        /// Nodes that never became ready.
        pending: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Ir(e) => write!(f, "schedule failed on invalid input: {e}"),
            ScheduleError::Stuck { pending } => {
                write!(f, "scheduler made no progress with {pending} nodes pending")
            }
        }
    }
}

impl std::error::Error for ScheduleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScheduleError::Ir(e) => Some(e),
            ScheduleError::Stuck { .. } => None,
        }
    }
}

impl From<IrError> for ScheduleError {
    fn from(e: IrError) -> ScheduleError {
        ScheduleError::Ir(e)
    }
}

/// One node's slot in the static schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledNode {
    /// The scheduled node.
    pub node: NodeId,
    /// The resource it executes on.
    pub resource: Resource,
    /// Start time in system cycles.
    pub start: u64,
    /// Finish time (exclusive) in system cycles.
    pub finish: u64,
}

/// One bus transfer in the static schedule (a cut edge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommSlot {
    /// The transferred edge.
    pub edge: EdgeId,
    /// Bus grant time in system cycles.
    pub start: u64,
    /// Bus release time (exclusive).
    pub finish: u64,
}

/// The static schedule: execution order of all nodes and bus transfers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticSchedule {
    nodes: Vec<ScheduledNode>,
    comm: Vec<CommSlot>,
    makespan: u64,
    scheme: CommScheme,
}

impl StaticSchedule {
    /// Per-node slots, ordered by node id.
    #[must_use]
    pub fn nodes(&self) -> &[ScheduledNode] {
        &self.nodes
    }

    /// Bus transfers, ordered by grant time.
    #[must_use]
    pub fn comm_slots(&self) -> &[CommSlot] {
        &self.comm
    }

    /// Slot of a specific node.
    #[must_use]
    pub fn slot(&self, node: NodeId) -> ScheduledNode {
        self.nodes[node.index()]
    }

    /// Overall completion time in system cycles.
    #[must_use]
    pub fn makespan(&self) -> u64 {
        self.makespan
    }

    /// The communication scheme the schedule was built for.
    #[must_use]
    pub fn scheme(&self) -> CommScheme {
        self.scheme
    }

    /// Nodes on `resource` in execution order.
    #[must_use]
    pub fn order_on(&self, resource: Resource) -> Vec<NodeId> {
        let mut v: Vec<&ScheduledNode> = self
            .nodes
            .iter()
            .filter(|s| s.resource == resource)
            .collect();
        v.sort_by_key(|s| (s.start, s.node));
        v.iter().map(|s| s.node).collect()
    }

    /// Verify schedule invariants against the graph and mapping:
    /// precedence (consumers start after producers and transfers finish),
    /// processor exclusivity, and bus exclusivity.
    ///
    /// Returns a human-readable description of the first violation.
    ///
    /// # Errors
    ///
    /// `Err(description)` if any invariant is violated.
    pub fn verify(&self, g: &PartitioningGraph, mapping: &Mapping) -> Result<(), String> {
        // Precedence over every edge.
        let comm_by_edge: BTreeMap<EdgeId, &CommSlot> =
            self.comm.iter().map(|c| (c.edge, c)).collect();
        for (eid, e) in g.edges() {
            let p = self.slot(e.src);
            let c = self.slot(e.dst);
            let cut = mapping.resource(e.src) != mapping.resource(e.dst);
            if cut {
                let t = comm_by_edge
                    .get(&eid)
                    .ok_or_else(|| format!("cut edge {eid} has no bus slot"))?;
                if t.start < p.finish {
                    return Err(format!("transfer {eid} starts before producer finishes"));
                }
                if c.start < t.finish {
                    return Err(format!("consumer of {eid} starts before transfer finishes"));
                }
            } else if c.start < p.finish {
                return Err(format!(
                    "edge {eid}: consumer starts before producer finishes"
                ));
            }
        }
        // Processor exclusivity.
        for (i, a) in self.nodes.iter().enumerate() {
            if !a.resource.is_software() || a.start == a.finish {
                continue;
            }
            for b in &self.nodes[i + 1..] {
                if b.resource == a.resource
                    && b.start != b.finish
                    && a.start < b.finish
                    && b.start < a.finish
                {
                    return Err(format!(
                        "nodes {} and {} overlap on {}",
                        a.node, b.node, a.resource
                    ));
                }
            }
        }
        // Bus exclusivity.
        for (i, a) in self.comm.iter().enumerate() {
            for b in &self.comm[i + 1..] {
                if a.start < b.finish && b.start < a.finish && a.start != a.finish {
                    return Err(format!("bus transfers {} and {} overlap", a.edge, b.edge));
                }
            }
        }
        Ok(())
    }

    /// Render a compact Gantt-style text table (one row per node and
    /// transfer), for reports and the Figure 2 regenerator.
    #[must_use]
    pub fn to_gantt(&self, g: &PartitioningGraph, target: &cool_ir::Target) -> String {
        let mut s = String::new();
        s.push_str("time      resource   activity\n");
        let mut rows: Vec<(u64, u64, String, String)> = Vec::new();
        for slot in &self.nodes {
            let name = g
                .node(slot.node)
                .map(|n| n.name().to_string())
                .unwrap_or_default();
            rows.push((
                slot.start,
                slot.finish,
                target.resource_name(slot.resource).to_string(),
                name,
            ));
        }
        for c in &self.comm {
            rows.push((
                c.start,
                c.finish,
                target.bus.name.clone(),
                format!("xfer {}", c.edge),
            ));
        }
        rows.sort();
        for (start, finish, res, what) in rows {
            s.push_str(&format!("{start:>5}-{finish:<5} {res:<10} {what}\n"));
        }
        s.push_str(&format!("makespan: {} cycles\n", self.makespan));
        s
    }
}

impl ContentHash for ScheduledNode {
    fn content_hash(&self, h: &mut ContentHasher) {
        self.node.content_hash(h);
        self.resource.content_hash(h);
        h.write_u64(self.start);
        h.write_u64(self.finish);
    }
}

impl ContentHash for CommSlot {
    fn content_hash(&self, h: &mut ContentHasher) {
        self.edge.content_hash(h);
        h.write_u64(self.start);
        h.write_u64(self.finish);
    }
}

impl ContentHash for StaticSchedule {
    fn content_hash(&self, h: &mut ContentHasher) {
        self.nodes.content_hash(h);
        self.comm.content_hash(h);
        h.write_u64(self.makespan);
        self.scheme.content_hash(h);
    }
}

impl Codec for ScheduledNode {
    fn encode(&self, e: &mut Encoder) {
        self.node.encode(e);
        self.resource.encode(e);
        e.put_u64(self.start);
        e.put_u64(self.finish);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(ScheduledNode {
            node: NodeId::decode(d)?,
            resource: Resource::decode(d)?,
            start: d.take_u64()?,
            finish: d.take_u64()?,
        })
    }
}

impl Codec for CommSlot {
    fn encode(&self, e: &mut Encoder) {
        self.edge.encode(e);
        e.put_u64(self.start);
        e.put_u64(self.finish);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(CommSlot {
            edge: EdgeId::decode(d)?,
            start: d.take_u64()?,
            finish: d.take_u64()?,
        })
    }
}

impl Codec for StaticSchedule {
    fn encode(&self, e: &mut Encoder) {
        self.nodes.encode(e);
        self.comm.encode(e);
        e.put_u64(self.makespan);
        self.scheme.encode(e);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(StaticSchedule {
            nodes: Vec::decode(d)?,
            comm: Vec::decode(d)?,
            makespan: d.take_u64()?,
            scheme: CommScheme::decode(d)?,
        })
    }
}

/// Compute the static schedule of `g` under `mapping`.
///
/// # Errors
///
/// [`ScheduleError::Ir`] for invalid graphs/mappings; [`ScheduleError::Stuck`]
/// if progress stalls (unreachable for validated inputs).
pub fn schedule(
    g: &PartitioningGraph,
    mapping: &Mapping,
    cost: &CostModel,
    scheme: CommScheme,
) -> Result<StaticSchedule, ScheduleError> {
    mapping.validate(g, cost.target())?;
    let order = cool_ir::topo::topo_order(g)?;

    // Critical-path priority: longest path (in exec cycles on the mapped
    // resource) from each node to any sink.
    let n = g.node_count();
    let exec: Vec<u64> = (0..n)
        .map(|i| {
            let id = NodeId::from_index(i);
            match g.node(id).expect("dense ids").kind() {
                NodeKind::Function => cost.exec_cycles(id, mapping.resource(id)),
                NodeKind::Input | NodeKind::Output => 0,
            }
        })
        .collect();
    let mut priority = vec![0u64; n];
    for &id in order.iter().rev() {
        let down = g
            .successors(id)
            .into_iter()
            .map(|s| priority[s.index()])
            .max()
            .unwrap_or(0);
        priority[id.index()] = exec[id.index()] + down;
    }

    // Simulation state.
    let mut node_finish: Vec<Option<u64>> = vec![None; n];
    let mut node_start: Vec<Option<u64>> = vec![None; n];
    // Arrival time of each in-edge's data at the consumer's resource.
    let mut edge_arrival: Vec<Option<u64>> = vec![None; g.edge_count()];
    let mut comm_done: Vec<bool> = vec![false; g.edge_count()];
    let mut comm_slots: Vec<CommSlot> = Vec::new();
    let mut bus_free_at: u64 = 0;
    let mut proc_free_at: Vec<u64> = vec![0; cost.target().processors.len()];
    let mut t: u64 = 0;
    let mut remaining = n;
    let max_iter = 16 * (n as u64 + g.edge_count() as u64 + 4) * 1000;
    let mut iter = 0u64;

    while remaining > 0 {
        iter += 1;
        if iter > max_iter {
            return Err(ScheduleError::Stuck { pending: remaining });
        }
        let mut progressed = false;

        // 1. Launch bus transfers for finished producers of cut edges.
        //    Highest consumer priority first.
        let mut pending_xfers: Vec<(u64, EdgeId)> = Vec::new();
        for (eid, e) in g.edges() {
            if comm_done[eid.index()] {
                continue;
            }
            let cut = mapping.resource(e.src) != mapping.resource(e.dst);
            if !cut {
                if let Some(f) = node_finish[e.src.index()] {
                    edge_arrival[eid.index()] = Some(f);
                    comm_done[eid.index()] = true;
                    progressed = true;
                }
                continue;
            }
            if let Some(f) = node_finish[e.src.index()] {
                if f <= t {
                    pending_xfers.push((u64::MAX - priority[e.dst.index()], eid));
                }
            }
        }
        pending_xfers.sort();
        for (_, eid) in pending_xfers {
            if bus_free_at > t {
                break;
            }
            let e = g.edge(eid).expect("dense edge ids");
            let dur = cost.comm_cycles(e, scheme);
            let start = t;
            let finish = start + dur;
            comm_slots.push(CommSlot {
                edge: eid,
                start,
                finish,
            });
            edge_arrival[eid.index()] = Some(finish);
            comm_done[eid.index()] = true;
            bus_free_at = finish;
            progressed = true;
        }

        // 2. Start ready nodes.
        let mut ready: Vec<(u64, usize)> = (0..n)
            .filter(|&i| node_start[i].is_none())
            .filter(|&i| {
                g.in_edges(NodeId::from_index(i))
                    .iter()
                    .all(|(eid, _)| edge_arrival[eid.index()].map(|a| a <= t).unwrap_or(false))
            })
            .map(|i| (u64::MAX - priority[i], i))
            .collect();
        ready.sort();
        for (_, i) in ready {
            let id = NodeId::from_index(i);
            let r = mapping.resource(id);
            let kind = g.node(id).expect("dense ids").kind();
            let can_start = match (kind, r) {
                (NodeKind::Function, Resource::Software(p)) => proc_free_at[p] <= t,
                _ => true, // hardware and I/O nodes are concurrent
            };
            if !can_start {
                continue;
            }
            let dur = exec[i];
            node_start[i] = Some(t);
            node_finish[i] = Some(t + dur);
            if let (NodeKind::Function, Resource::Software(p)) = (kind, r) {
                proc_free_at[p] = t + dur;
            }
            remaining -= 1;
            progressed = true;
        }

        if remaining == 0 {
            break;
        }

        // 3. Advance time to the next event.
        let mut next = u64::MAX;
        for f in node_finish.iter().flatten() {
            if *f > t {
                next = next.min(*f);
            }
        }
        if bus_free_at > t {
            next = next.min(bus_free_at);
        }
        for &p in &proc_free_at {
            if p > t {
                next = next.min(p);
            }
        }
        for a in edge_arrival.iter().flatten() {
            if *a > t {
                next = next.min(*a);
            }
        }
        if next == u64::MAX {
            if !progressed {
                return Err(ScheduleError::Stuck { pending: remaining });
            }
            // Nodes may have started at t with zero duration; loop again.
            continue;
        }
        if !progressed || next > t {
            t = next.max(t + u64::from(!progressed));
        }
    }

    let nodes: Vec<ScheduledNode> = (0..n)
        .map(|i| {
            let id = NodeId::from_index(i);
            ScheduledNode {
                node: id,
                resource: mapping.resource(id),
                start: node_start[i].expect("all nodes scheduled"),
                finish: node_finish[i].expect("all nodes scheduled"),
            }
        })
        .collect();
    let makespan = nodes
        .iter()
        .map(|s| s.finish)
        .chain(comm_slots.iter().map(|c| c.finish))
        .max()
        .unwrap_or(0);
    comm_slots.sort_by_key(|c| (c.start, c.edge));
    Ok(StaticSchedule {
        nodes,
        comm: comm_slots,
        makespan,
        scheme,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_ir::Target;
    use cool_spec::workloads;

    fn setup(g: &PartitioningGraph) -> (CostModel, Target) {
        let t = Target::fuzzy_board();
        (CostModel::new(g, &t), t)
    }

    #[test]
    fn all_software_schedule_verifies() {
        let g = workloads::equalizer(4);
        let (cost, _) = setup(&g);
        let m = Mapping::uniform(g.node_count(), Resource::Software(0));
        let s = schedule(&g, &m, &cost, CommScheme::MemoryMapped).unwrap();
        s.verify(&g, &m).unwrap();
        assert!(
            s.comm_slots().is_empty(),
            "uniform mapping has no cut edges"
        );
    }

    #[test]
    fn mixed_schedule_has_transfers_and_verifies() {
        let g = workloads::equalizer(4);
        let (cost, _) = setup(&g);
        let mut m = Mapping::uniform(g.node_count(), Resource::Software(0));
        for (i, id) in g.function_nodes().into_iter().enumerate() {
            if i % 2 == 0 {
                m.assign(id, Resource::Hardware(0));
            }
        }
        let s = schedule(&g, &m, &cost, CommScheme::MemoryMapped).unwrap();
        s.verify(&g, &m).unwrap();
        assert!(!s.comm_slots().is_empty());
    }

    #[test]
    fn software_serializes() {
        let g = workloads::fir(8);
        let (cost, _) = setup(&g);
        let m = Mapping::uniform(g.node_count(), Resource::Software(0));
        let s = schedule(&g, &m, &cost, CommScheme::MemoryMapped).unwrap();
        s.verify(&g, &m).unwrap();
        // Total busy time equals the sum of all exec times (no overlap).
        let busy: u64 = g
            .function_nodes()
            .iter()
            .map(|&id| {
                let sl = s.slot(id);
                sl.finish - sl.start
            })
            .sum();
        assert!(s.makespan() >= busy);
    }

    #[test]
    fn hardware_exploits_parallelism() {
        let g = workloads::fir(8);
        let (cost, _) = setup(&g);
        let sw = Mapping::uniform(g.node_count(), Resource::Software(0));
        let hw = Mapping::uniform(g.node_count(), Resource::Hardware(0));
        let ssw = schedule(&g, &sw, &cost, CommScheme::MemoryMapped).unwrap();
        let shw = schedule(&g, &hw, &cost, CommScheme::MemoryMapped).unwrap();
        shw.verify(&g, &hw).unwrap();
        // The FIR taps are independent: hardware runs them concurrently.
        assert!(shw.makespan() < ssw.makespan());
    }

    #[test]
    fn direct_scheme_is_faster_for_cut_designs() {
        let g = workloads::equalizer(4);
        let (cost, _) = setup(&g);
        let mut m = Mapping::uniform(g.node_count(), Resource::Software(0));
        for (i, id) in g.function_nodes().into_iter().enumerate() {
            if i % 2 == 0 {
                m.assign(id, Resource::Hardware(0));
            }
        }
        let mm = schedule(&g, &m, &cost, CommScheme::MemoryMapped).unwrap();
        let direct = schedule(&g, &m, &cost, CommScheme::Direct).unwrap();
        assert!(direct.makespan() <= mm.makespan());
    }

    #[test]
    fn order_on_is_sorted_by_start() {
        let g = workloads::equalizer(2);
        let (cost, _) = setup(&g);
        let m = Mapping::uniform(g.node_count(), Resource::Software(0));
        let s = schedule(&g, &m, &cost, CommScheme::MemoryMapped).unwrap();
        let order = s.order_on(Resource::Software(0));
        let starts: Vec<u64> = order.iter().map(|&id| s.slot(id).start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }

    #[test]
    fn gantt_renders() {
        let g = workloads::equalizer(2);
        let (cost, t) = setup(&g);
        let m = Mapping::uniform(g.node_count(), Resource::Software(0));
        let s = schedule(&g, &m, &cost, CommScheme::MemoryMapped).unwrap();
        let gantt = s.to_gantt(&g, &t);
        assert!(gantt.contains("makespan"));
        assert!(gantt.contains("dsp0"));
    }

    #[test]
    fn fuzzy_schedules_on_paper_board() {
        let g = workloads::fuzzy_controller();
        let (cost, _) = setup(&g);
        let mut m = Mapping::uniform(g.node_count(), Resource::Software(0));
        // Put the expensive defuzz division in hardware.
        m.assign(g.node_by_name("defuzz").unwrap(), Resource::Hardware(0));
        let s = schedule(&g, &m, &cost, CommScheme::MemoryMapped).unwrap();
        s.verify(&g, &m).unwrap();
        assert!(s.makespan() > 0);
    }
}
