//! Criterion bench: Oscar-style HLS — scheduling/binding effort and the
//! FSM encoding search (RES3 backing data: hardware synthesis dominates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cool_hls::{synthesize, HlsOptions};
use cool_ir::{Behavior, Expr, Op};

fn deep_behavior(depth: usize) -> Behavior {
    // A MAC chain of the given depth on 4 inputs.
    let mut e = Expr::Input(0);
    for i in 0..depth {
        e = Expr::binary(
            Op::Add,
            Expr::binary(Op::Mul, e, Expr::Input(1 + i % 3)),
            Expr::Const(i as i64 + 1),
        );
    }
    Behavior::new(4, vec![e]).expect("static behaviour")
}

fn bench_hls(c: &mut Criterion) {
    let mut group = c.benchmark_group("hls");
    for depth in [4usize, 8, 16, 32] {
        let b = deep_behavior(depth);
        group.bench_with_input(BenchmarkId::new("synthesize_e4", depth), &depth, |bench, _| {
            bench.iter(|| {
                black_box(synthesize("deep", &b, &HlsOptions { effort: 4, ..Default::default() }))
            });
        });
        group.bench_with_input(
            BenchmarkId::new("synthesize_e48", depth),
            &depth,
            |bench, _| {
                bench.iter(|| {
                    black_box(synthesize(
                        "deep",
                        &b,
                        &HlsOptions { effort: 48, ..Default::default() },
                    ))
                });
            },
        );
    }
    // Force-directed vs list scheduling on the same CDFG.
    for depth in [8usize, 16] {
        let b = deep_behavior(depth);
        let cdfg = cool_hls::Cdfg::from_behavior(&b);
        let asap_len = cool_hls::schedule::asap(&cdfg, 16).length;
        group.bench_with_input(
            BenchmarkId::new("force_directed", depth),
            &depth,
            |bench, _| {
                bench.iter(|| {
                    black_box(cool_hls::schedule::force_directed(&cdfg, 16, asap_len + 4))
                });
            },
        );
    }

    // Encoding search on a real controller STG.
    let graph = cool_spec::workloads::fuzzy_controller();
    let target = cool_bench::paper_board();
    let cost = cool_cost::CostModel::new(&graph, &target);
    let mapping = cool_bench::greedy_mixed_mapping(&graph, &cost);
    let schedule = cool_schedule::schedule(&graph, &mapping, &cost, Default::default()).unwrap();
    let (stg, _) = cool_stg::minimize(&cool_stg::generate(&graph, &mapping, &schedule));
    for effort in [4u32, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("fsm_encoding", effort),
            &effort,
            |bench, &effort| {
                bench.iter(|| black_box(cool_rtl::encoding::optimize_encoding(&stg, effort)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hls);
criterion_main!(benches);
