//! Bench: Oscar-style HLS — the engine's `hls` stage (RES3 backing
//! data: hardware synthesis dominates). Covers single-node synthesis at
//! two effort levels, the parallel `synthesize_many` fan-out, the
//! force-directed scheduler, and the FSM encoding search.

use std::hint::black_box;

use cool_bench::harness::Group;
use cool_hls::{synthesize, synthesize_many, HlsOptions};
use cool_ir::{Behavior, Expr, Op};

fn deep_behavior(depth: usize) -> Behavior {
    // A MAC chain of the given depth on 4 inputs.
    let mut e = Expr::Input(0);
    for i in 0..depth {
        e = Expr::binary(
            Op::Add,
            Expr::binary(Op::Mul, e, Expr::Input(1 + i % 3)),
            Expr::Const(i as i64 + 1),
        );
    }
    Behavior::new(4, vec![e]).expect("static behaviour")
}

fn main() {
    let mut group = Group::new("hls");
    for depth in [4usize, 8, 16, 32] {
        let b = deep_behavior(depth);
        group.bench(&format!("synthesize_e4/{depth}"), || {
            black_box(synthesize(
                "deep",
                &b,
                &HlsOptions {
                    effort: 4,
                    ..Default::default()
                },
            ))
        });
        group.bench(&format!("synthesize_e48/{depth}"), || {
            black_box(synthesize(
                "deep",
                &b,
                &HlsOptions {
                    effort: 48,
                    ..Default::default()
                },
            ))
        });
    }

    // The `hls` stage's fan-out: many nodes, serial vs parallel.
    let behaviors: Vec<Behavior> = (0..12).map(|i| deep_behavior(8 + i % 5)).collect();
    let named: Vec<(String, &Behavior)> = behaviors
        .iter()
        .enumerate()
        .map(|(i, b)| (format!("n{i}"), b))
        .collect();
    let items: Vec<(&str, &Behavior)> = named.iter().map(|(n, b)| (n.as_str(), *b)).collect();
    let opts = HlsOptions {
        effort: 48,
        ..Default::default()
    };
    for jobs in [1usize, 4] {
        group.bench(&format!("synthesize_many_12/jobs={jobs}"), || {
            black_box(synthesize_many(&items, &opts, jobs))
        });
    }

    // Force-directed vs list scheduling on the same CDFG.
    for depth in [8usize, 16] {
        let b = deep_behavior(depth);
        let cdfg = cool_hls::Cdfg::from_behavior(&b);
        let asap_len = cool_hls::schedule::asap(&cdfg, 16).length;
        group.bench(&format!("force_directed/{depth}"), || {
            black_box(cool_hls::schedule::force_directed(&cdfg, 16, asap_len + 4))
        });
    }

    // Encoding search on a real controller STG (part of the `rtl` stage).
    let graph = cool_spec::workloads::fuzzy_controller();
    let target = cool_bench::paper_board();
    let cost = cool_cost::CostModel::new(&graph, &target);
    let mapping = cool_bench::greedy_mixed_mapping(&graph, &cost);
    let schedule = cool_schedule::schedule(&graph, &mapping, &cost, Default::default()).unwrap();
    let (stg, _) = cool_stg::minimize(&cool_stg::generate(&graph, &mapping, &schedule));
    for effort in [4u32, 16, 64] {
        group.bench(&format!("fsm_encoding/{effort}"), || {
            black_box(cool_rtl::encoding::optimize_encoding(&stg, effort))
        });
    }
}
