//! Criterion bench: co-synthesis core — STG generation, minimization and
//! memory allocation (FIG3 backing data).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cool_cost::CostModel;
use cool_spec::workloads::{random_dag, RandomDagConfig};

fn bench_cosynthesis(c: &mut Criterion) {
    let target = cool_bench::paper_board();
    let mut group = c.benchmark_group("cosynthesis");
    for nodes in [16usize, 32, 64, 128] {
        let graph = random_dag(RandomDagConfig { nodes, seed: 9, ..Default::default() });
        let cost = CostModel::new(&graph, &target);
        let mapping = cool_bench::greedy_mixed_mapping(&graph, &cost);
        let schedule =
            cool_schedule::schedule(&graph, &mapping, &cost, Default::default()).unwrap();

        group.bench_with_input(BenchmarkId::new("stg_generate", nodes), &nodes, |b, _| {
            b.iter(|| black_box(cool_stg::generate(&graph, &mapping, &schedule)));
        });
        let stg = cool_stg::generate(&graph, &mapping, &schedule);
        group.bench_with_input(BenchmarkId::new("stg_minimize", nodes), &nodes, |b, _| {
            b.iter(|| black_box(cool_stg::minimize(&stg)));
        });
        group.bench_with_input(BenchmarkId::new("memory_alloc", nodes), &nodes, |b, _| {
            b.iter(|| {
                black_box(
                    cool_stg::allocate_memory(
                        &graph,
                        &mapping,
                        &target.memory,
                        target.bus.width_bits,
                    )
                    .unwrap(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("schedule", nodes), &nodes, |b, _| {
            b.iter(|| {
                black_box(
                    cool_schedule::schedule(&graph, &mapping, &cost, Default::default())
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cosynthesis);
criterion_main!(benches);
