//! Bench: co-synthesis core — the engine's `stg` stage: STG generation,
//! minimization (serial vs parallel refinement) and memory allocation
//! (FIG3 backing data), plus the `schedule` stage feeding it.

use std::hint::black_box;

use cool_bench::harness::Group;
use cool_cost::CostModel;
use cool_spec::workloads::{random_dag, RandomDagConfig};

fn main() {
    let target = cool_bench::paper_board();
    let mut group = Group::new("cosynthesis");
    for nodes in [16usize, 32, 64, 128] {
        let graph = random_dag(RandomDagConfig {
            nodes,
            seed: 9,
            ..Default::default()
        });
        let cost = CostModel::new(&graph, &target);
        let mapping = cool_bench::greedy_mixed_mapping(&graph, &cost);
        let schedule =
            cool_schedule::schedule(&graph, &mapping, &cost, Default::default()).unwrap();

        group.bench(&format!("stg_generate/{nodes}"), || {
            black_box(cool_stg::generate(&graph, &mapping, &schedule))
        });
        let stg = cool_stg::generate(&graph, &mapping, &schedule);
        group.bench(&format!("stg_minimize/jobs=1/{nodes}"), || {
            black_box(cool_stg::minimize_jobs(&stg, 1))
        });
        group.bench(&format!("stg_minimize/jobs=4/{nodes}"), || {
            black_box(cool_stg::minimize_jobs(&stg, 4))
        });
        group.bench(&format!("memory_alloc/{nodes}"), || {
            black_box(
                cool_stg::allocate_memory(&graph, &mapping, &target.memory, target.bus.width_bits)
                    .unwrap(),
            )
        });
        group.bench(&format!("schedule/{nodes}"), || {
            black_box(cool_schedule::schedule(&graph, &mapping, &cost, Default::default()).unwrap())
        });
    }
}
