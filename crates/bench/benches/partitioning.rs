//! Bench: the engine's `partition` stage — exact MILP, MILP+heuristic
//! and GA partitioning time on random DAGs of growing size (ABL1 backing
//! data), plus the parallel branch & bound: on a branching instance the
//! multi-worker solve must return the identical colouring and, on
//! multi-core hosts, beat the serial one wall-clock.

use std::hint::black_box;

use cool_bench::harness::Group;
use cool_cost::CostModel;
use cool_ir::Objective;
use cool_partition::{genetic, heuristic, milp, GaOptions, HeuristicOptions, MilpOptions};
use cool_spec::workloads::{random_dag, RandomDagConfig};

fn main() {
    let target = cool_bench::paper_board();
    let mut group = Group::new("partitioning");
    for nodes in [8usize, 12, 16] {
        let graph = random_dag(RandomDagConfig {
            nodes,
            seed: 7,
            ..Default::default()
        });
        let cost = CostModel::new(&graph, &target);
        group.bench(&format!("milp/{nodes}"), || {
            black_box(milp::partition(&graph, &cost, &MilpOptions::default()).unwrap())
        });
    }

    // Parallel branch & bound on a genuinely branching instance (the
    // default weights above solve at the root; a low communication
    // weight makes the relaxation fractional, ~97 B&B nodes).
    let graph = random_dag(RandomDagConfig {
        nodes: 14,
        seed: 7,
        ..Default::default()
    });
    let cost = CostModel::new(&graph, &target);
    let branching = |jobs: usize| MilpOptions {
        objective: Objective::blend(1.0, 0.3, 0.01),
        jobs,
        ..Default::default()
    };
    let jobs_n = cool_ir::par::effective_jobs(0, usize::MAX).max(4);
    let mut serial_res = None;
    let mut parallel_res = None;
    let serial = group
        .bench("milp-branching/jobs=1", || {
            serial_res = Some(black_box(
                milp::partition(&graph, &cost, &branching(1)).unwrap(),
            ));
        })
        .clone();
    let parallel = group
        .bench(&format!("milp-branching/jobs={jobs_n}"), || {
            parallel_res = Some(black_box(
                milp::partition(&graph, &cost, &branching(jobs_n)).unwrap(),
            ));
        })
        .clone();
    let (serial_res, parallel_res) = (serial_res.unwrap(), parallel_res.unwrap());
    assert_eq!(
        serial_res.mapping, parallel_res.mapping,
        "parallel MILP must return the serial colouring"
    );
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let quick = std::env::var("COOL_BENCH_QUICK").is_ok_and(|v| v == "1");
    let speedup = serial.mean.as_secs_f64() / parallel.mean.as_secs_f64().max(1e-12);
    println!("parallel MILP on {cores} core(s): speedup {speedup:.2}x (colouring identical)");
    if cores > 1 && speedup <= 1.0 {
        // Single-iteration smoke runs are too noisy for a hard bound.
        assert!(quick, "parallel MILP did not beat serial on {cores} cores");
        eprintln!("warning: parallel MILP did not beat serial despite {cores} cores");
    }
    for nodes in [16usize, 32, 48] {
        let graph = random_dag(RandomDagConfig {
            nodes,
            seed: 7,
            ..Default::default()
        });
        let cost = CostModel::new(&graph, &target);
        group.bench(&format!("heuristic/{nodes}"), || {
            black_box(heuristic::partition(&graph, &cost, &HeuristicOptions::default()).unwrap())
        });
        let ga = GaOptions {
            population: 16,
            generations: 10,
            threads: 1,
            ..Default::default()
        };
        group.bench(&format!("genetic/{nodes}"), || {
            black_box(genetic::partition(&graph, &cost, &ga).unwrap())
        });
    }
}
