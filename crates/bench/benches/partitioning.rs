//! Criterion bench: partitioner scaling (ABL1 backing data).
//!
//! Measures exact MILP, MILP+heuristic and GA partitioning time on random
//! DAGs of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cool_cost::CostModel;
use cool_partition::{genetic, heuristic, milp, GaOptions, HeuristicOptions, MilpOptions};
use cool_spec::workloads::{random_dag, RandomDagConfig};

fn bench_partitioners(c: &mut Criterion) {
    let target = cool_bench::paper_board();
    let mut group = c.benchmark_group("partitioning");
    group.sample_size(10);
    for nodes in [8usize, 12, 16] {
        let graph = random_dag(RandomDagConfig { nodes, seed: 7, ..Default::default() });
        let cost = CostModel::new(&graph, &target);
        group.bench_with_input(BenchmarkId::new("milp", nodes), &nodes, |b, _| {
            b.iter(|| {
                black_box(milp::partition(&graph, &cost, &MilpOptions::default()).unwrap())
            });
        });
    }
    for nodes in [16usize, 32, 48] {
        let graph = random_dag(RandomDagConfig { nodes, seed: 7, ..Default::default() });
        let cost = CostModel::new(&graph, &target);
        group.bench_with_input(BenchmarkId::new("heuristic", nodes), &nodes, |b, _| {
            b.iter(|| {
                black_box(
                    heuristic::partition(&graph, &cost, &HeuristicOptions::default()).unwrap(),
                )
            });
        });
        let ga = GaOptions { population: 16, generations: 10, threads: 1, ..Default::default() };
        group.bench_with_input(BenchmarkId::new("genetic", nodes), &nodes, |b, _| {
            b.iter(|| black_box(genetic::partition(&graph, &cost, &ga).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
