//! Bench: the engine's `partition` stage — exact MILP, MILP+heuristic
//! and GA partitioning time on random DAGs of growing size (ABL1 backing
//! data).

use std::hint::black_box;

use cool_bench::harness::Group;
use cool_cost::CostModel;
use cool_partition::{genetic, heuristic, milp, GaOptions, HeuristicOptions, MilpOptions};
use cool_spec::workloads::{random_dag, RandomDagConfig};

fn main() {
    let target = cool_bench::paper_board();
    let mut group = Group::new("partitioning");
    for nodes in [8usize, 12, 16] {
        let graph = random_dag(RandomDagConfig {
            nodes,
            seed: 7,
            ..Default::default()
        });
        let cost = CostModel::new(&graph, &target);
        group.bench(&format!("milp/{nodes}"), || {
            black_box(milp::partition(&graph, &cost, &MilpOptions::default()).unwrap())
        });
    }
    for nodes in [16usize, 32, 48] {
        let graph = random_dag(RandomDagConfig {
            nodes,
            seed: 7,
            ..Default::default()
        });
        let cost = CostModel::new(&graph, &target);
        group.bench(&format!("heuristic/{nodes}"), || {
            black_box(heuristic::partition(&graph, &cost, &HeuristicOptions::default()).unwrap())
        });
        let ga = GaOptions {
            population: 16,
            generations: 10,
            threads: 1,
            ..Default::default()
        };
        group.bench(&format!("genetic/{nodes}"), || {
            black_box(genetic::partition(&graph, &cost, &ga).unwrap())
        });
    }
}
