//! Bench: co-simulator throughput (ABL3 backing data) — cycles simulated
//! per second over the two communication schemes, on artifacts produced
//! by the engine's upstream stages.

use std::hint::black_box;

use cool_bench::harness::Group;
use cool_cost::{CommScheme, CostModel};
use cool_ir::eval::input_map;
use cool_sim::Simulator;
use cool_spec::workloads;

type Probe = Vec<(&'static str, i64)>;

fn main() {
    let target = cool_bench::paper_board();
    let mut group = Group::new("simulation");
    let designs: Vec<(&str, cool_ir::PartitioningGraph, Probe)> = vec![
        (
            "equalizer4",
            workloads::equalizer(4),
            vec![("x0", 120), ("x1", 60), ("x2", -30)],
        ),
        (
            "fuzzy",
            workloads::fuzzy_controller(),
            vec![("err", 75), ("derr", -25)],
        ),
    ];
    for (name, graph, probe) in &designs {
        let cost = CostModel::new(graph, &target);
        let mapping = cool_bench::greedy_mixed_mapping(graph, &cost);
        for scheme in [CommScheme::MemoryMapped, CommScheme::Direct] {
            let schedule = cool_schedule::schedule(graph, &mapping, &cost, scheme).unwrap();
            let memory =
                cool_stg::allocate_memory(graph, &mapping, &target.memory, target.bus.width_bits)
                    .unwrap();
            let sim = Simulator::new(graph, &mapping, &schedule, &memory, &cost, scheme);
            let inputs = input_map(probe.iter().copied());
            let label = match scheme {
                CommScheme::MemoryMapped => "mmio",
                CommScheme::Direct => "direct",
            };
            group.bench(&format!("{name}_{label}/{}", graph.node_count()), || {
                black_box(sim.run(&inputs).unwrap())
            });
        }
    }
}
