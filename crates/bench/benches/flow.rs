//! Criterion bench: the end-to-end COOL flow (FIG1 / RES2 backing data) —
//! specification to netlist + VHDL + C for each workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cool_core::{run_flow, FlowOptions, Partitioner};
use cool_partition::GaOptions;
use cool_spec::workloads;

fn bench_flow(c: &mut Criterion) {
    let target = cool_bench::paper_board();
    let mut group = c.benchmark_group("flow");
    group.sample_size(10);
    let designs: Vec<(&str, cool_ir::PartitioningGraph)> = vec![
        ("equalizer4", workloads::equalizer(4)),
        ("fuzzy", workloads::fuzzy_controller()),
        ("fir16", workloads::fir(16)),
    ];
    for (name, graph) in designs {
        let quick = FlowOptions {
            partitioner: Partitioner::Genetic(GaOptions {
                population: 8,
                generations: 4,
                threads: 1,
                ..Default::default()
            }),
            ..FlowOptions::quick()
        };
        group.bench_with_input(BenchmarkId::new("quick", name), &(), |b, ()| {
            b.iter(|| black_box(run_flow(&graph, &target, &quick).unwrap()));
        });
        let full = FlowOptions::default();
        group.bench_with_input(BenchmarkId::new("full", name), &(), |b, ()| {
            b.iter(|| black_box(run_flow(&graph, &target, &full).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flow);
criterion_main!(benches);
