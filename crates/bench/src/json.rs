//! A minimal JSON reader for the bench reports.
//!
//! `BENCH_flow.json` (and friends) are written by
//! [`crate::harness::write_json_report`]; the trajectory diff tool
//! (`bench_diff`) needs to read them back, and the container has no
//! serde. This is a small recursive-descent parser over the JSON the
//! harness emits — full JSON value grammar, string escapes included —
//! returning a [`Value`] tree with the handful of accessors the tooling
//! needs. Errors carry the byte offset of the offending input.

use std::fmt;

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64` (adequate for nanosecond timings).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key, if this is an object that has it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// A parse failure at a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What was wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document (surrounding whitespace allowed).
///
/// # Errors
///
/// [`ParseError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not paired by the harness
                            // writer; map unpaired ones to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8 by
                    // construction of &str).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    s.push_str(std::str::from_utf8(&self.bytes[start..end]).expect("valid UTF-8"));
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| ParseError {
                message: format!("invalid number `{text}`"),
                offset: start,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_harness_shaped_documents() {
        let doc = r#"{"group":"flow","cases":[{"label":"quick/eq","iters":3,"mean_ns":1200.5}],"ok":true,"none":null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("group").and_then(Value::as_str), Some("flow"));
        let cases = v.get("cases").and_then(Value::as_array).unwrap();
        assert_eq!(
            cases[0].get("mean_ns").and_then(Value::as_f64),
            Some(1200.5)
        );
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("none"), Some(&Value::Null));
    }

    #[test]
    fn roundtrips_harness_escapes() {
        let quoted = crate::harness::json_string("a\"b\\c\nd\tz\u{1}");
        let v = parse(&quoted).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\tz\u{1}"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn negative_and_exponent_numbers() {
        assert_eq!(parse("-3.5e2").unwrap().as_f64(), Some(-350.0));
        assert_eq!(parse("[0]").unwrap().as_array().unwrap().len(), 1);
    }
}
