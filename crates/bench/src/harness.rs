//! A small, dependency-free benchmark harness.
//!
//! The container this reproduction builds in has no registry access, so
//! Criterion is unavailable; this module provides the subset the benches
//! need: warmup, auto-calibrated iteration counts, and a min/mean/max
//! report per labelled case. Benches are plain `harness = false` `main`
//! binaries; run them with `cargo bench`.
//!
//! Set `COOL_BENCH_MS` (default 200) to change the per-case time budget,
//! and `COOL_BENCH_QUICK=1` for a single-iteration smoke run.
//!
//! Benches can additionally emit machine-readable results (e.g.
//! `BENCH_flow.json`) via [`Group::to_json`] and [`write_json_report`],
//! so the performance trajectory is trackable across PRs without
//! scraping stdout.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One labelled timing result.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Case label as printed.
    pub label: String,
    /// Iterations measured.
    pub iters: u32,
    /// Minimum iteration time.
    pub min: Duration,
    /// Mean iteration time.
    pub mean: Duration,
    /// Maximum iteration time.
    pub max: Duration,
}

/// A named group of benchmark cases, printing one row per case.
pub struct Group {
    name: &'static str,
    budget: Duration,
    quick: bool,
    results: Vec<CaseResult>,
}

impl Group {
    /// Start a group; prints a header.
    #[must_use]
    pub fn new(name: &'static str) -> Group {
        let budget_ms: u64 = std::env::var("COOL_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200);
        let quick = std::env::var("COOL_BENCH_QUICK").is_ok_and(|v| v == "1");
        println!("\n== bench group `{name}` ==");
        println!(
            "{:<40} {:>6} {:>12} {:>12} {:>12}",
            "case", "iters", "min", "mean", "max"
        );
        Group {
            name,
            budget: Duration::from_millis(budget_ms),
            quick,
            results: Vec::new(),
        }
    }

    /// Measure `f`, auto-calibrating the iteration count to the group's
    /// time budget, and print the row.
    pub fn bench<R>(&mut self, label: &str, mut f: impl FnMut() -> R) -> &CaseResult {
        // Warmup + calibration probe.
        let t0 = Instant::now();
        black_box(f());
        let probe = t0.elapsed().max(Duration::from_nanos(1));
        let iters: u32 = if self.quick {
            1
        } else {
            let fit = self.budget.as_nanos() / probe.as_nanos().max(1);
            fit.clamp(1, 10_000) as u32
        };
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let t = Instant::now();
            black_box(f());
            let dt = t.elapsed();
            min = min.min(dt);
            max = max.max(dt);
            total += dt;
        }
        let result = CaseResult {
            label: label.to_string(),
            iters,
            min,
            mean: total / iters,
            max,
        };
        println!(
            "{:<40} {:>6} {:>12} {:>12} {:>12}",
            result.label,
            result.iters,
            fmt(result.min),
            fmt(result.mean),
            fmt(result.max)
        );
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// All results so far.
    #[must_use]
    pub fn results(&self) -> &[CaseResult] {
        &self.results
    }

    /// Group name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The group as one JSON object:
    /// `{"group": …, "cases": [{"label", "iters", "min_ns", "mean_ns",
    /// "max_ns"}, …]}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let cases: Vec<String> = self
            .results
            .iter()
            .map(|r| {
                format!(
                    "{{\"label\":{},\"iters\":{},\"min_ns\":{},\"mean_ns\":{},\"max_ns\":{}}}",
                    json_string(&r.label),
                    r.iters,
                    r.min.as_nanos(),
                    r.mean.as_nanos(),
                    r.max.as_nanos()
                )
            })
            .collect();
        format!(
            "{{\"group\":{},\"cases\":[{}]}}",
            json_string(self.name),
            cases.join(",")
        )
    }
}

/// Quote and escape a string for JSON output.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Write a JSON report assembled from named sections (each section value
/// must itself be valid JSON). The result is one object:
/// `{"section1": …, "section2": …}`.
///
/// # Errors
///
/// Propagates filesystem errors from writing `path`.
pub fn write_json_report(path: &str, sections: &[(&str, String)]) -> Result<(), std::io::Error> {
    let body: Vec<String> = sections
        .iter()
        .map(|(k, v)| format!("{}:{v}", json_string(k)))
        .collect();
    std::fs::write(path, format!("{{{}}}\n", body.join(",")))
}

fn fmt(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1_000.0 {
        format!("{us:.1} µs")
    } else if us < 1_000_000.0 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{:.3} s", us / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_result_and_serializes() {
        // One test owns the env-var + Group lifecycle: a second test
        // calling `set_var` while this one reads the environment would
        // race (concurrent setenv/getenv is UB on glibc).
        std::env::set_var("COOL_BENCH_QUICK", "1");
        let mut g = Group::new("harness-self-test");
        let r = g.bench("case/one", || 1 + 1).clone();
        assert_eq!(r.iters, 1);
        assert!(r.min <= r.mean && r.mean <= r.max);
        assert_eq!(g.results().len(), 1);
        let j = g.to_json();
        assert!(j.starts_with("{\"group\":\"harness-self-test\""), "{j}");
        assert!(j.contains("\"label\":\"case/one\""), "{j}");
        assert!(j.contains("\"mean_ns\":"), "{j}");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("tab\there"), "\"tab\\there\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
