//! FIG2 — Partitioning graph for a 4-band equalizer (paper Figure 2).
//!
//! Prints the equalizer's partitioning graph, its colouring after MILP
//! partitioning and the resulting static schedule.

use cool_cost::CostModel;
use cool_partition::{milp, MilpOptions};
use cool_spec::workloads;

fn main() {
    let graph = workloads::equalizer(4);
    let target = cool_bench::paper_board();
    println!("FIG2: partitioning graph for a 4-band equalizer\n");
    println!("{graph}");

    let cost = CostModel::new(&graph, &target);
    let result = milp::partition(&graph, &cost, &MilpOptions::default()).expect("partitionable");
    println!("MILP colouring ({} B&B nodes):", result.work_units);
    for (id, node) in graph.nodes() {
        println!(
            "  {:<8} -> {}",
            node.name(),
            target.resource_name(result.mapping.resource(id))
        );
    }
    println!(
        "\ncut edges (inter-unit transfers): {}",
        result.mapping.cut_edges(&graph).len()
    );
    let schedule = cool_schedule::schedule(&graph, &result.mapping, &cost, Default::default())
        .expect("schedulable");
    println!("\nstatic schedule:\n{}", schedule.to_gantt(&graph, &target));
}
