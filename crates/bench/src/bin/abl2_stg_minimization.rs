//! ABL2 — STG minimization ablation: controller size with and without the
//! minimization step the paper applies before memory allocation and
//! controller synthesis.

use cool_cost::CostModel;
use cool_rtl::encoding::optimize_encoding;
use cool_spec::workloads;

fn main() {
    let target = cool_bench::paper_board();
    let designs: Vec<(&str, cool_ir::PartitioningGraph)> = vec![
        ("equalizer4", workloads::equalizer(4)),
        ("equalizer8", workloads::equalizer(8)),
        ("fuzzy", workloads::fuzzy_controller()),
        ("fir16", workloads::fir(16)),
        (
            "rand40",
            workloads::random_dag(cool_spec::workloads::RandomDagConfig {
                nodes: 40,
                seed: 5,
                ..Default::default()
            }),
        ),
    ];
    println!("ABL2: STG minimization — controller states, FFs and encoding cost\n");
    println!(
        "{:<12} {:>8} {:>8} {:>7} {:>9} {:>9} {:>10} {:>10}",
        "design", "raw st", "min st", "red %", "FF raw", "FF min", "enc raw", "enc min"
    );
    for (name, graph) in designs {
        let cost = CostModel::new(&graph, &target);
        let mapping = cool_bench::greedy_mixed_mapping(&graph, &cost);
        let schedule = cool_schedule::schedule(&graph, &mapping, &cost, Default::default())
            .expect("schedulable");
        let stg = cool_stg::generate(&graph, &mapping, &schedule);
        let (minimized, stats) = cool_stg::minimize(&stg);
        let ff = |states: usize| -> usize {
            if states <= 1 {
                1
            } else {
                (usize::BITS - (states - 1).leading_zeros()) as usize
            }
        };
        let enc_raw = optimize_encoding(&stg, 8);
        let enc_min = optimize_encoding(&minimized, 8);
        println!(
            "{:<12} {:>8} {:>8} {:>6.0}% {:>9} {:>9} {:>10} {:>10}",
            name,
            stats.states_before,
            stats.states_after,
            stats.reduction() * 100.0,
            ff(stats.states_before),
            ff(stats.states_after),
            enc_raw.cost,
            enc_min.cost,
        );
    }
    println!("\nexpected shape: minimization removes the redundant done->wait");
    println!("handover states and merges equivalent waits, shrinking both the");
    println!("state register and the next-state logic of the system controller.");
}
