//! FIG4 — Generated netlist (paper Figure 4).
//!
//! Builds the complete netlist for a mixed equalizer partition and prints
//! the component inventory (system controller, datapath controllers, I/O
//! controller, bus arbiter, processors, hardware blocks, memory), the net
//! count, and the list of emitted VHDL entities.

use cool_core::{FlowOptions, FlowSession};
use cool_cost::CostModel;
use cool_spec::workloads;

fn main() {
    let graph = workloads::equalizer(4);
    let target = cool_bench::paper_board();
    let cost = CostModel::new(&graph, &target);
    let mapping = cool_bench::greedy_mixed_mapping(&graph, &cost);
    let art = FlowSession::new(&graph)
        .target(target)
        .options(FlowOptions::default())
        .with_mapping(mapping)
        .run()
        .expect("flow succeeds");

    println!("FIG4: generated netlist — 4-band equalizer, mixed partition\n");
    println!("{}", art.netlist.to_inventory());
    println!("emitted VHDL units:");
    for (name, source) in &art.vhdl {
        println!("  {:<28} {:>5} lines", name, source.lines().count());
    }
    println!("\ngenerated C units:");
    for p in &art.c_programs {
        println!(
            "  {:<28} {:>5} lines",
            p.file_name,
            p.source.lines().count()
        );
    }
    println!(
        "\nsystem controller: {} states ({} FF binary / {} FF one-hot), encoding cost {}",
        art.controller.stg().state_count(),
        art.controller.binary_ffs(),
        art.controller.one_hot_ffs(),
        art.encoding.cost
    );
    println!("\n--- system_controller.vhd (head) ---");
    for line in art.vhdl[0].1.lines().take(24) {
        println!("{line}");
    }
}
