//! FIG1 — Design flow in COOL (paper Figure 1).
//!
//! Runs the fuzzy-controller case study through every stage of the flow
//! and prints the stage list with wall-clock times, i.e. the figure's
//! boxes annotated with where the time goes.

use cool_core::{FlowOptions, FlowSession};
use cool_spec::workloads;

fn main() {
    let graph = workloads::fuzzy_controller();
    let target = cool_bench::paper_board();
    println!("FIG1: design flow in COOL — fuzzy controller on the paper board\n");
    println!(
        "  [1] system specification      -> {} nodes / {} edges",
        graph.node_count(),
        graph.edge_count()
    );
    let art = FlowSession::new(&graph)
        .target(target)
        .options(FlowOptions::default())
        .run()
        .expect("flow succeeds");
    println!("  [2] cost estimation           -> per-node sw/hw costs");
    println!(
        "  [3] hw/sw partitioning ({})   -> {} sw, {} hw node(s)",
        art.partition.algorithm,
        art.partition.software_nodes(&graph),
        art.partition.hardware_nodes(&graph)
    );
    println!(
        "  [4] static scheduling         -> makespan {} cycles",
        art.schedule.makespan()
    );
    println!(
        "  [5] STG generation + minimize -> {} -> {} states",
        art.minimize_stats.states_before, art.minimize_stats.states_after
    );
    println!(
        "  [6] memory allocation         -> {} cell(s), {} byte(s) from 0x{:04x}",
        art.memory_map.cell_count(),
        art.memory_map.bytes_used(),
        art.memory_map.base()
    );
    println!(
        "  [7] hardware synthesis        -> {} HLS design(s), {} VHDL unit(s), encoding cost {}",
        art.hls_designs.len(),
        art.vhdl.len(),
        art.encoding.cost
    );
    println!(
        "  [8] software synthesis        -> {} C unit(s)",
        art.c_programs.len()
    );
    println!(
        "  [9] netlist                   -> {} component(s), {} net(s)",
        art.netlist.components.len(),
        art.netlist.nets.len()
    );
    println!("\nstage timing breakdown:\n{}", art.timings.to_table());
    println!(
        "hardware synthesis fraction: {:.1} % (paper: > 90 %)",
        100.0 * art.timings.hardware_fraction()
    );
}
