//! RES1 — The fuzzy controller case study (paper Results section).
//!
//! Reports the quantities the paper quotes: specification size (~900
//! lines of the VHDL subset; our DSL is terser), a partitioning graph of
//! 31 nodes, and the target architecture (DSP56001 + 2× XC4005 with 196
//! CLBs each + 64 kB SRAM + bus card).

use cool_spec::{print_spec, workloads};

fn main() {
    let graph = workloads::fuzzy_controller();
    let target = cool_bench::paper_board();
    let spec = print_spec(&graph);

    println!("RES1: fuzzy controller case study\n");
    println!("{:<38} {:>10} {:>12}", "quantity", "paper", "this repro");
    println!(
        "{:<38} {:>10} {:>12}",
        "specification lines",
        "~900",
        spec.lines().count()
    );
    println!(
        "{:<38} {:>10} {:>12}",
        "partitioning graph nodes",
        31,
        graph.node_count()
    );
    println!(
        "{:<38} {:>10} {:>12}",
        "graph edges",
        "-",
        graph.edge_count()
    );
    println!(
        "{:<38} {:>10} {:>12}",
        "processors (DSP56001)",
        1,
        target.processors.len()
    );
    println!("{:<38} {:>10} {:>12}", "FPGAs (XC4005)", 2, target.hw.len());
    println!(
        "{:<38} {:>10} {:>12}",
        "CLBs per FPGA", 196, target.hw[0].clb_capacity
    );
    println!(
        "{:<38} {:>10} {:>12}",
        "static RAM (kB)",
        64,
        target.memory.size_bytes / 1024
    );
    println!("\nnote: the paper's count includes VHDL-subset boilerplate; the DSL");
    println!("carries the same node/edge/behaviour information in fewer lines.");
    println!("\nfirst 20 lines of the generated specification:\n");
    for line in spec.lines().take(20) {
        println!("  {line}");
    }
}
