//! `bench_diff` — compare two harness JSON reports across PRs.
//!
//! ```text
//! bench_diff <old.json> <new.json> [--fail-above PCT] [--allow-removed]
//! ```
//!
//! Reads two reports written by `cool_bench::harness::write_json_report`
//! (e.g. `BENCH_flow.json` from two checkouts), matches bench cases by
//! group and label, and prints mean-time deltas plus the stage-cache
//! hit-rate trajectory (memory and disk tiers). Cases present on only
//! one side are listed as added/removed. With `--fail-above PCT` the
//! exit code is non-zero when any shared case regressed by more than
//! `PCT` percent — the CI hook for the ROADMAP's "bench trajectory"
//! item — and *removed* cases are a hard failure too: a renamed or
//! dropped case would otherwise exit the gate silently, letting a
//! regression hide behind a rename. Pass `--allow-removed` when a
//! removal is intentional.

use std::process::ExitCode;

use cool_bench::json::{parse, Value};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<String> = Vec::new();
    let mut fail_above: Option<f64> = None;
    let mut allow_removed = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--allow-removed" => {
                allow_removed = true;
                i += 1;
            }
            "--fail-above" => {
                fail_above = args.get(i + 1).and_then(|v| v.parse().ok());
                if fail_above.is_none() {
                    eprintln!("bench_diff: --fail-above expects a percentage");
                    return ExitCode::FAILURE;
                }
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!("bench_diff: unknown flag `{flag}`");
                return ExitCode::FAILURE;
            }
            path => {
                files.push(path.to_string());
                i += 1;
            }
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        eprintln!("usage: bench_diff <old.json> <new.json> [--fail-above PCT] [--allow-removed]");
        return ExitCode::FAILURE;
    };

    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(old), Ok(new)) => (old, new),
        (Err(e), _) => {
            eprintln!("bench_diff: {old_path}: {e}");
            return ExitCode::FAILURE;
        }
        (_, Err(e)) => {
            eprintln!("bench_diff: {new_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let old_cases = collect_cases(&old);
    let new_cases = collect_cases(&new);
    println!(
        "{:<44} {:>12} {:>12} {:>9}",
        "case", "old mean", "new mean", "delta"
    );
    let mut worst: Option<(f64, String)> = None;
    for (label, new_ns) in &new_cases {
        match old_cases.iter().find(|(l, _)| l == label) {
            Some((_, old_ns)) if *old_ns > 0.0 => {
                let pct = 100.0 * (new_ns - old_ns) / old_ns;
                println!(
                    "{:<44} {:>12} {:>12} {:>+8.1}%",
                    label,
                    fmt_ns(*old_ns),
                    fmt_ns(*new_ns),
                    pct
                );
                let is_worst = match &worst {
                    None => true,
                    Some((w, _)) => pct > *w,
                };
                if is_worst {
                    worst = Some((pct, label.clone()));
                }
            }
            _ => println!(
                "{:<44} {:>12} {:>12} {:>9}",
                label,
                "-",
                fmt_ns(*new_ns),
                "added"
            ),
        }
    }
    let mut removed: Vec<&str> = Vec::new();
    for (label, old_ns) in &old_cases {
        if !new_cases.iter().any(|(l, _)| l == label) {
            println!(
                "{:<44} {:>12} {:>12} {:>9}",
                label,
                fmt_ns(*old_ns),
                "-",
                "removed"
            );
            removed.push(label);
        }
    }

    print_cache_trajectory("stage_cache", &old, &new);
    print_cache_trajectory("stage_cache_disk", &old, &new);
    print_cache_trajectory("remote_cache", &old, &new);
    print_scalar_trajectory("remote_cache", "speedup", "x", &old, &new);
    print_scalar_trajectory("milp_parallel", "speedup", "x", &old, &new);
    print_scalar_trajectory("milp_pricing", "bland_over_steepest", "x", &old, &new);
    print_scalar_trajectory("lp_warmstart", "speedup", "x", &old, &new);
    print_scalar_trajectory("lp_warmstart", "cold_child_pivots", " pivots", &old, &new);
    print_scalar_trajectory("lp_warmstart", "warm_child_pivots", " pivots", &old, &new);
    print_scalar_trajectory("pareto_sweep", "speedup", "x", &old, &new);
    print_scalar_trajectory("pareto_sweep", "non_dominated", " points", &old, &new);

    if let Some(bound) = fail_above {
        // A case that disappeared can hide an arbitrary regression
        // behind a rename, so under the gate a removal is as fatal as a
        // slow case unless explicitly waived.
        if !removed.is_empty() && !allow_removed {
            eprintln!(
                "FAIL: {} bench case(s) removed ({}); a rename can hide a regression — \
                 pass --allow-removed if intentional",
                removed.len(),
                removed.join(", ")
            );
            return ExitCode::FAILURE;
        }
        if let Some((worst_pct, worst_label)) = &worst {
            if *worst_pct > bound {
                eprintln!("FAIL: `{worst_label}` regressed {worst_pct:.1} % (> {bound} % bound)");
                return ExitCode::FAILURE;
            }
            println!("worst shared-case delta {worst_pct:+.1} % (bound {bound} %): ok");
        }
    }
    ExitCode::SUCCESS
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    parse(&text).map_err(|e| e.to_string())
}

/// Every `(group/label, mean_ns)` pair in a harness report: top-level
/// members that are group objects (`{"group": …, "cases": […]}`) or
/// arrays of them.
fn collect_cases(report: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let Value::Object(members) = report else {
        return out;
    };
    for (_, value) in members {
        for group in std::iter::once(value).chain(value.as_array().into_iter().flatten()) {
            let (Some(name), Some(cases)) = (
                group.get("group").and_then(Value::as_str),
                group.get("cases").and_then(Value::as_array),
            ) else {
                continue;
            };
            for case in cases {
                if let (Some(label), Some(mean)) = (
                    case.get("label").and_then(Value::as_str),
                    case.get("mean_ns").and_then(Value::as_f64),
                ) {
                    out.push((format!("{name}/{label}"), mean));
                }
            }
        }
    }
    out
}

/// Print old→new hit rates for one cache-stats section, if either side
/// has it.
fn print_cache_trajectory(section: &str, old: &Value, new: &Value) {
    let rate = |v: &Value| -> Option<f64> { v.get(section)?.get("hit_rate")?.as_f64() };
    let (old_rate, new_rate) = (rate(old), rate(new));
    if old_rate.is_none() && new_rate.is_none() {
        return;
    }
    let show =
        |r: Option<f64>| r.map_or_else(|| "-".to_string(), |r| format!("{:.1} %", 100.0 * r));
    println!(
        "{section} hit rate: {} -> {}",
        show(old_rate),
        show(new_rate)
    );
}

/// Print old→new for one scalar member of a report section, if either
/// side has it (e.g. the parallel-MILP speedup).
fn print_scalar_trajectory(section: &str, field: &str, unit: &str, old: &Value, new: &Value) {
    let read = |v: &Value| -> Option<f64> { v.get(section)?.get(field)?.as_f64() };
    let (old_v, new_v) = (read(old), read(new));
    if old_v.is_none() && new_v.is_none() {
        return;
    }
    let show = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |v| format!("{v:.2}{unit}"));
    println!("{section} {field}: {} -> {}", show(old_v), show(new_v));
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.1} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}
