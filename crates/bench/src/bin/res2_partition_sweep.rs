//! RES2 — Different hardware/software partitions of the fuzzy controller,
//! each implemented by the complete design flow (paper Results section:
//! "Different hardware/software partitions of the fuzzy controller were
//! implemented and in all cases the time to execute the complete design
//! flow […] took not more than about 60 minutes").
//!
//! We sweep FPGA area budgets (which forces different partitions), run the
//! full flow for each, validate by co-simulation, and report per-partition
//! makespan and flow wall time. Absolute times are 2020s-laptop times, not
//! 1998 workstation times; the claim that *every* partition completes the
//! full flow automatically is the reproduced result.

use cool_core::{run_flow_with_cost, FlowOptions, Partitioner};
use cool_cost::CostModel;
use cool_ir::eval::input_map;
use cool_partition::GaOptions;
use cool_spec::workloads;
use std::time::Instant;

fn main() {
    let graph = workloads::fuzzy_controller();
    println!("RES2: partition sweep over FPGA area budgets — fuzzy controller\n");
    println!(
        "{:>8} {:>6} {:>6} {:>10} {:>10} {:>10} {:>9}",
        "budget", "sw", "hw", "makespan", "sim cyc", "flow ms", "hw-time%"
    );
    // Estimation (one quick HLS run per node) does not depend on CLB
    // budgets: pay it once and rebind per candidate target.
    let base_cost = CostModel::new(&graph, &cool_bench::paper_board());
    for budget in [0u32, 48, 96, 144, 196] {
        let mut target = cool_bench::paper_board();
        target.hw[0].clb_capacity = budget;
        target.hw[1].clb_capacity = budget;
        let options = FlowOptions {
            partitioner: Partitioner::Genetic(GaOptions {
                population: 24,
                generations: 20,
                ..GaOptions::default()
            }),
            ..FlowOptions::default()
        };
        let t0 = Instant::now();
        let art = run_flow_with_cost(&graph, &target, base_cost.retarget(&target), &options)
            .expect("flow succeeds");
        let wall = t0.elapsed();
        let sim = art
            .simulate(&input_map([("err", 80), ("derr", -40)]))
            .expect("implementation matches specification");
        println!(
            "{:>8} {:>6} {:>6} {:>10} {:>10} {:>10.1} {:>8.1}%",
            budget,
            art.partition.software_nodes(&graph),
            art.partition.hardware_nodes(&graph),
            art.partition.makespan,
            sim.cycles,
            wall.as_secs_f64() * 1e3,
            100.0 * art.timings.hardware_fraction(),
        );
    }
    println!("\nevery partition went from specification to netlist + C + validated");
    println!("simulation fully automatically (the paper's ≤ 60-minute claim, on a");
    println!("modern machine and a simulated board).");
}
