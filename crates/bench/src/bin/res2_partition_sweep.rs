//! RES2 — Different hardware/software partitions of the fuzzy controller,
//! each implemented by the complete design flow (paper Results section:
//! "Different hardware/software partitions of the fuzzy controller were
//! implemented and in all cases the time to execute the complete design
//! flow […] took not more than about 60 minutes").
//!
//! We sweep FPGA area budgets (which forces different partitions) as one
//! [`cool_core::FlowSession::run_family`] over the budget-capped board
//! family: the cost model is estimated once and retargeted per board,
//! boards evaluate on scoped worker threads, and one shared
//! [`cool_core::StageCache`] skips every stage whose content key an
//! earlier board already produced. Each partition is validated by
//! co-simulation. Absolute times are 2020s-laptop times, not 1998
//! workstation times; the claim that *every* partition completes the full
//! flow automatically is the reproduced result.
//!
//! Flags: `--jobs N` (family workers, 0 = all cores), `--no-cache`,
//! `--smoke` (small GA + fewer budgets, for CI), `--twice` (run the
//! family twice over one cache and fail unless the second pass hits —
//! the cache-effectiveness smoke check), `--cache-dir DIR` (attach the
//! persistent disk tier, so *separate processes* share the cache), and
//! `--expect-disk-hits` (fail unless this run restored at least one
//! stage from disk — the cross-process warm-start smoke check: run the
//! sweep in two processes pointing at one `--cache-dir` and pass this
//! flag to the second).

use cool_core::{FlowOptions, FlowSession, Partitioner, StageCache};
use cool_ir::eval::input_map;
use cool_ir::Target;
use cool_partition::GaOptions;
use cool_spec::workloads;
use std::process::ExitCode;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        // Another flag is not a value: `--cache-dir --expect-disk-hits`
        // must not create a directory named `--expect-disk-hits`.
        .filter(|v| !v.starts_with("--"))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let twice = args.iter().any(|a| a == "--twice");
    let use_cache = !args.iter().any(|a| a == "--no-cache");
    let cache_dir = flag_value(&args, "--cache-dir");
    if args.iter().any(|a| a == "--cache-dir") && cache_dir.is_none() {
        eprintln!("res2: --cache-dir expects a directory path");
        return ExitCode::FAILURE;
    }
    let expect_disk_hits = args.iter().any(|a| a == "--expect-disk-hits");
    if twice && !use_cache {
        eprintln!("res2: --twice asserts second-pass cache hits, so it requires the cache; drop --no-cache");
        return ExitCode::FAILURE;
    }
    if (cache_dir.is_some() || expect_disk_hits) && !use_cache {
        eprintln!("res2: --cache-dir/--expect-disk-hits require the cache; drop --no-cache");
        return ExitCode::FAILURE;
    }
    if expect_disk_hits && cache_dir.is_none() {
        eprintln!("res2: --expect-disk-hits needs --cache-dir (a fresh in-memory cache can never hit disk)");
        return ExitCode::FAILURE;
    }
    let jobs: usize = match flag_value(&args, "--jobs") {
        Some(v) => match v.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("res2: --jobs expects a non-negative integer, got `{v}`");
                return ExitCode::FAILURE;
            }
        },
        None => 1,
    };

    let graph = workloads::fuzzy_controller();
    println!("RES2: partition sweep over FPGA area budgets — fuzzy controller");
    println!(
        "(family workers: {jobs}, cache: {}, profile: {})\n",
        match (&cache_dir, use_cache) {
            (_, false) => "off".to_string(),
            (None, true) => "on (in-memory)".to_string(),
            (Some(dir), true) => format!("on (persistent, {dir})"),
        },
        if smoke { "smoke" } else { "full" },
    );

    let budgets: &[u32] = if smoke {
        &[0, 96, 196]
    } else {
        &[0, 48, 96, 144, 196]
    };
    let options = FlowOptions {
        partitioner: Partitioner::Genetic(GaOptions {
            population: if smoke { 8 } else { 24 },
            generations: if smoke { 6 } else { 20 },
            threads: 1,
            ..GaOptions::default()
        }),
        jobs,
        ..if smoke {
            FlowOptions::quick()
        } else {
            FlowOptions::default()
        }
    };
    // Budget-capped variants of the paper board: one family, one
    // estimated cost model, retargeted per board by `run_family`.
    let boards: Vec<Target> = budgets
        .iter()
        .map(|&budget| {
            let mut target = cool_bench::paper_board();
            target.hw[0].clb_capacity = budget;
            target.hw[1].clb_capacity = budget;
            target
        })
        .collect();

    let cache = if use_cache {
        Some(match &cache_dir {
            Some(dir) => match StageCache::persistent(StageCache::DEFAULT_CAPACITY, dir) {
                Ok(cache) => cache,
                Err(e) => {
                    eprintln!("res2: cannot open cache directory `{dir}`: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => StageCache::default(),
        })
    } else {
        None
    };
    let passes = if twice { 2 } else { 1 };
    let mut last_pass_hits = 0usize;
    let mut truncated = 0usize;
    let mut evaluated = 0usize;
    for pass in 1..=passes {
        if passes > 1 {
            println!("— pass {pass}/{passes} —");
        }
        println!(
            "{:>8} {:>6} {:>6} {:>10} {:>10} {:>10} {:>9} {:>6}",
            "budget", "sw", "hw", "makespan", "sim cyc", "flow ms", "hw-time%", "hits"
        );
        let mut session = FlowSession::new(&graph)
            .targets(boards.iter().cloned())
            .options(options.clone());
        if let Some(cache) = &cache {
            session = session.cache(cache.clone());
        }
        let family = session.run_family().expect("every board's flow succeeds");
        assert!(
            family.cost_estimations() <= 1,
            "the family must estimate the cost model at most once"
        );
        last_pass_hits = 0;
        for (&budget, art) in budgets.iter().zip(family.boards()) {
            let sim = art
                .simulate(&input_map([("err", 80), ("derr", -40)]))
                .expect("implementation matches specification");
            last_pass_hits += art.trace.cache_hits();
            evaluated += 1;
            if art.partition.optimality == cool_partition::Optimality::LimitReached {
                truncated += 1;
            }
            // On runs with cache hits the timing buckets measure cache
            // restores, not synthesis — the paper's hw-time fraction
            // would be noise, so suppress it.
            let hw_time = if art.trace.cache_hits() > 0 {
                format!("{:>9}", "-")
            } else {
                format!("{:>8.1}%", 100.0 * art.timings.hardware_fraction())
            };
            println!(
                "{:>8} {:>6} {:>6} {:>10} {:>10} {:>10.1} {hw_time} {:>6}",
                budget,
                art.partition.software_nodes(&graph),
                art.partition.hardware_nodes(&graph),
                art.partition.makespan,
                sim.cycles,
                art.trace.total().as_secs_f64() * 1e3,
                art.trace.cache_hits(),
            );
        }
        if pass == passes {
            println!("\n{}", family.report());
        } else {
            println!();
        }
    }
    if let Some(cache) = &cache {
        println!("{}", cache.stats().summary());
    }
    println!("node-limit-truncated MILP solves: {truncated} of {evaluated} candidate(s)");
    println!("\nevery partition went from specification to netlist + C + validated");
    println!("simulation fully automatically (the paper's ≤ 60-minute claim, on a");
    println!("modern machine and a simulated board).");

    if twice && last_pass_hits == 0 {
        eprintln!("FAIL: second sweep pass reported zero stage-cache hits");
        return ExitCode::FAILURE;
    }
    if expect_disk_hits {
        let disk_hits = cache.as_ref().map_or(0, |c| c.stats().disk_hits);
        if disk_hits == 0 {
            eprintln!(
                "FAIL: --expect-disk-hits, but no stage was restored from the disk tier \
                 (is the cache directory shared with a previous run?)"
            );
            return ExitCode::FAILURE;
        }
        println!("cross-process warm start confirmed: {disk_hits} stage(s) restored from disk");
    }
    ExitCode::SUCCESS
}
