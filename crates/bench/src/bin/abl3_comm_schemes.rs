//! ABL3 — Communication-scheme ablation: memory-mapped I/O vs direct
//! communication, the two mechanisms COOL's communication refinement
//! inserts for cut edges.
//!
//! Both schemes of one design run as [`cool_core::FlowSession`]s over a
//! shared stage cache: estimation is pre-seeded once
//! (`FlowSession::with_cost`), and the spec/cost prefix
//! (scheme-independent by construction) is computed for the first scheme
//! and restored from cache for the second.

use cool_core::{FlowOptions, FlowSession, StageCache};
use cool_cost::{CommScheme, CostModel};
use cool_ir::eval::input_map;
use cool_spec::workloads;

type Probe = Vec<(&'static str, i64)>;

fn main() {
    let target = cool_bench::paper_board();
    let designs: Vec<(&str, cool_ir::PartitioningGraph, Probe)> = vec![
        (
            "equalizer4",
            workloads::equalizer(4),
            vec![("x0", 120), ("x1", 60), ("x2", -30)],
        ),
        (
            "fuzzy",
            workloads::fuzzy_controller(),
            vec![("err", 75), ("derr", -25)],
        ),
    ];
    let schemes = [CommScheme::MemoryMapped, CommScheme::Direct];
    println!("ABL3: memory-mapped vs direct communication (mixed partitions)\n");
    println!(
        "{:<12} {:>14} {:>10} {:>12} {:>10} {:>6}",
        "design", "scheme", "cycles", "bus xfers", "bus util%", "hits"
    );
    let cache = StageCache::default();
    for (name, graph, probe) in designs {
        // One estimation pass serves both schemes.
        let cost = CostModel::new(&graph, &target);
        let mapping = cool_bench::greedy_mixed_mapping(&graph, &cost);
        // Serial on purpose: the second scheme then deterministically
        // restores the scheme-independent spec/cost prefix from cache
        // (parallel sessions would race to compute it instead).
        for scheme in &schemes {
            let art = FlowSession::new(&graph)
                .target(target.clone())
                .options(FlowOptions {
                    scheme: *scheme,
                    ..FlowOptions::default()
                })
                .with_mapping(mapping.clone())
                .with_cost(cost.clone())
                .cache(cache.clone())
                .run()
                .expect("flow succeeds");
            let r = art
                .simulate(&input_map(probe.iter().copied()))
                .expect("implementation matches specification");
            println!(
                "{:<12} {:>14} {:>10} {:>12} {:>9.1}% {:>6}",
                name,
                match scheme {
                    CommScheme::MemoryMapped => "memory-mapped",
                    CommScheme::Direct => "direct",
                },
                r.cycles,
                r.bus_transfers,
                100.0 * r.bus_utilization(),
                art.trace.cache_hits(),
            );
        }
    }
    println!("\n{}", cache.stats().summary());
    println!("\nexpected shape: direct links remove the write+read round trip and");
    println!("the SRAM wait states, so cut-heavy partitions speed up; outputs are");
    println!("bit-identical under both schemes (checked against the reference).");
}
