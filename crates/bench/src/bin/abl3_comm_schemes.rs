//! ABL3 — Communication-scheme ablation: memory-mapped I/O vs direct
//! communication, the two mechanisms COOL's communication refinement
//! inserts for cut edges.

use cool_core::{run_flow_with_cost, FlowOptions, Partitioner};
use cool_cost::{CommScheme, CostModel};
use cool_ir::eval::input_map;
use cool_spec::workloads;

type Probe = Vec<(&'static str, i64)>;

fn main() {
    let target = cool_bench::paper_board();
    let designs: Vec<(&str, cool_ir::PartitioningGraph, Probe)> = vec![
        (
            "equalizer4",
            workloads::equalizer(4),
            vec![("x0", 120), ("x1", 60), ("x2", -30)],
        ),
        (
            "fuzzy",
            workloads::fuzzy_controller(),
            vec![("err", 75), ("derr", -25)],
        ),
    ];
    println!("ABL3: memory-mapped vs direct communication (mixed partitions)\n");
    println!(
        "{:<12} {:>14} {:>10} {:>12} {:>10}",
        "design", "scheme", "cycles", "bus xfers", "bus util%"
    );
    for (name, graph, probe) in designs {
        let cost = CostModel::new(&graph, &target);
        let mapping = cool_bench::greedy_mixed_mapping(&graph, &cost);
        for scheme in [CommScheme::MemoryMapped, CommScheme::Direct] {
            // One estimation pass serves both schemes.
            let art = run_flow_with_cost(
                &graph,
                &target,
                cost.clone(),
                &FlowOptions {
                    scheme,
                    partitioner: Partitioner::Fixed(mapping.clone()),
                    ..FlowOptions::default()
                },
            )
            .expect("flow succeeds");
            let r = art
                .simulate(&input_map(probe.iter().copied()))
                .expect("implementation matches specification");
            println!(
                "{:<12} {:>14} {:>10} {:>12} {:>9.1}%",
                name,
                match scheme {
                    CommScheme::MemoryMapped => "memory-mapped",
                    CommScheme::Direct => "direct",
                },
                r.cycles,
                r.bus_transfers,
                100.0 * r.bus_utilization(),
            );
        }
    }
    println!("\nexpected shape: direct links remove the write+read round trip and");
    println!("the SRAM wait states, so cut-heavy partitions speed up; outputs are");
    println!("bit-identical under both schemes (checked against the reference).");
}
