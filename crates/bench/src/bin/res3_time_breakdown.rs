//! RES3 — "The time-consuming factor was always the hardware synthesis
//! which consumed more than 90 % of the design time." (paper Results.)
//!
//! Runs the full flow across all workloads and reports the per-stage time
//! breakdown; the hardware-synthesis fraction is the reproduced series.

use cool_core::{FlowOptions, FlowSession};
use cool_spec::workloads;

fn main() {
    let target = cool_bench::paper_board();
    let designs: Vec<(&str, cool_ir::PartitioningGraph)> = vec![
        ("equalizer4", workloads::equalizer(4)),
        ("equalizer8", workloads::equalizer(8)),
        ("fuzzy", workloads::fuzzy_controller()),
        ("fir16", workloads::fir(16)),
    ];
    println!("RES3: design-time breakdown per stage (fractions of flow total)\n");
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "design", "estim%", "part%", "sched%", "cosyn%", "hwsyn%", "swsyn%", "total ms"
    );
    for (name, graph) in designs {
        let art = FlowSession::new(&graph)
            .target(target.clone())
            .options(FlowOptions::default())
            .run()
            .expect("flow succeeds");
        let t = art.timings;
        let total = t.total().as_secs_f64().max(1e-12);
        let pct = |d: std::time::Duration| 100.0 * d.as_secs_f64() / total;
        println!(
            "{:<12} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>10.2}",
            name,
            pct(t.estimation),
            pct(t.partitioning),
            pct(t.scheduling),
            pct(t.cosynthesis),
            pct(t.hardware_synthesis),
            pct(t.software_synthesis),
            total * 1e3,
        );
    }
    println!("\npaper: hardware synthesis > 90 % of design time. The reproduced");
    println!("fraction depends on partitioner choice (exact MILP shifts time into");
    println!("partitioning); with the default flow the hardware-synthesis stage");
    println!("(full-effort HLS + FSM encoding search + VHDL emission) dominates.");
}
