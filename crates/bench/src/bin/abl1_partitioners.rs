//! ABL1 — Partitioner ablation: exact MILP vs MILP+heuristic vs genetic
//! algorithm on random data-flow graphs of growing size.
//!
//! Reports solution quality (list-scheduler makespan of the returned
//! colouring) and solver work/runtime — the trade the paper's three
//! partitioning back-ends embody.

use cool_cost::CostModel;
use cool_partition::{genetic, heuristic, milp, GaOptions, HeuristicOptions, MilpOptions};
use cool_spec::workloads::{random_dag, RandomDagConfig};
use std::time::Instant;

fn main() {
    let target = cool_bench::paper_board();
    println!("ABL1: partitioning algorithms on random DAGs (seed-averaged)\n");
    println!(
        "{:>6} {:>16} {:>10} {:>11} {:>12}",
        "nodes", "algorithm", "makespan", "runtime ms", "work units"
    );
    for nodes in [8usize, 12, 16, 24, 32, 48] {
        let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
        let seeds = [3u64, 11, 19];
        for &seed in &seeds {
            let graph = random_dag(RandomDagConfig {
                nodes,
                seed,
                ..Default::default()
            });
            let cost = CostModel::new(&graph, &target);

            if nodes <= 16 {
                let t = Instant::now();
                let r =
                    milp::partition(&graph, &cost, &MilpOptions::default()).expect("milp feasible");
                accumulate(
                    &mut rows,
                    "milp",
                    r.makespan,
                    t.elapsed().as_secs_f64(),
                    r.work_units,
                );
            }
            let t = Instant::now();
            let r = heuristic::partition(&graph, &cost, &HeuristicOptions::default())
                .expect("heuristic feasible");
            accumulate(
                &mut rows,
                "milp+heuristic",
                r.makespan,
                t.elapsed().as_secs_f64(),
                r.work_units,
            );

            let t = Instant::now();
            let r = genetic::partition(&graph, &cost, &GaOptions::default()).expect("ga feasible");
            accumulate(
                &mut rows,
                "genetic",
                r.makespan,
                t.elapsed().as_secs_f64(),
                r.work_units,
            );
        }
        for (algo, makespan, secs, work) in rows {
            let k = seeds.len() as f64;
            println!(
                "{nodes:>6} {:>16} {:>10.0} {:>11.1} {:>12.0}",
                algo,
                makespan / k,
                secs * 1e3 / k,
                work / k
            );
        }
        println!();
    }
    println!("expected shape: exact MILP is optimal for its load-proxy objective");
    println!("but exponential (dropped past 16 nodes); the clustering heuristic");
    println!("tracks it at a fraction of the branch&bound work; the GA optimizes");
    println!("the *real* schedule makespan, so it finds concurrency the proxy");
    println!("cannot see — the reason COOL exposes all three back-ends.");
}

fn accumulate(
    rows: &mut Vec<(String, f64, f64, f64)>,
    algo: &str,
    makespan: u64,
    secs: f64,
    work: usize,
) {
    if let Some(row) = rows.iter_mut().find(|(a, ..)| a == algo) {
        row.1 += makespan as f64;
        row.2 += secs;
        row.3 += work as f64;
    } else {
        rows.push((algo.to_string(), makespan as f64, secs, work as f64));
    }
}
