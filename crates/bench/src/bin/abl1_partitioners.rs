//! ABL1 — Partitioner ablation: exact MILP vs MILP+heuristic vs genetic
//! algorithm on random data-flow graphs of growing size.
//!
//! Each algorithm runs as its own [`cool_core::FlowSession`] over a
//! shared stage cache (spec validation and cost estimation are computed
//! once per graph and restored for the other algorithms), with
//! deliberately cheap synthesis efforts so the partition stage dominates.
//! Reports solution quality (list-scheduler makespan of the returned
//! colouring) and the partition stage's runtime/work — the trade the
//! paper's three partitioning back-ends embody.

use cool_core::{FlowOptions, FlowSession, Partitioner, StageCache};
use cool_partition::{GaOptions, HeuristicOptions, MilpOptions};
use cool_spec::workloads::{random_dag, RandomDagConfig};

fn main() {
    let target = cool_bench::paper_board();
    let mut truncated = 0usize;
    let mut evaluated = 0usize;
    println!("ABL1: partitioning algorithms on random DAGs (seed-averaged)\n");
    println!(
        "{:>6} {:>16} {:>10} {:>11} {:>12}",
        "nodes", "algorithm", "makespan", "runtime ms", "work units"
    );
    // Synthesis knobs small and fixed: the subject is the partition stage.
    let base = FlowOptions::quick();
    let cache = StageCache::default();
    for nodes in [8usize, 12, 16, 24, 32, 48] {
        let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
        let seeds = [3u64, 11, 19];
        for &seed in &seeds {
            let graph = random_dag(RandomDagConfig {
                nodes,
                seed,
                ..Default::default()
            });
            let mut variants: Vec<(&str, Partitioner)> = Vec::new();
            if nodes <= 16 {
                variants.push(("milp", Partitioner::Milp(MilpOptions::default())));
            }
            variants.push((
                "milp+heuristic",
                Partitioner::Heuristic(HeuristicOptions::default()),
            ));
            variants.push(("genetic", Partitioner::Genetic(GaOptions::default())));

            // One session per algorithm, serially over the shared cache:
            // the timed partition stages never compete for cores, and the
            // shared spec/cost prefix is a deterministic cache hit for
            // every algorithm after the first.
            for (algo, partitioner) in &variants {
                let art = FlowSession::new(&graph)
                    .target(target.clone())
                    .options(FlowOptions {
                        partitioner: partitioner.clone(),
                        ..base.clone()
                    })
                    .cache(cache.clone())
                    .run()
                    .expect("flow feasible");
                evaluated += 1;
                if art.partition.optimality == cool_partition::Optimality::LimitReached {
                    truncated += 1;
                }
                accumulate(
                    &mut rows,
                    algo,
                    art.partition.makespan,
                    art.trace.duration_of("partition").as_secs_f64(),
                    art.partition.work_units,
                );
            }
        }
        for (algo, makespan, secs, work) in rows {
            let k = seeds.len() as f64;
            println!(
                "{nodes:>6} {:>16} {:>10.0} {:>11.1} {:>12.0}",
                algo,
                makespan / k,
                secs * 1e3 / k,
                work / k
            );
        }
        println!();
    }
    println!("{}", cache.stats().summary());
    println!("node-limit-truncated MILP solves: {truncated} of {evaluated} candidate(s)");
    println!("\nexpected shape: exact MILP is optimal for its load-proxy objective");
    println!("but exponential (dropped past 16 nodes); the clustering heuristic");
    println!("tracks it at a fraction of the branch&bound work; the GA optimizes");
    println!("the *real* schedule makespan, so it finds concurrency the proxy");
    println!("cannot see — the reason COOL exposes all three back-ends.");
}

fn accumulate(
    rows: &mut Vec<(String, f64, f64, f64)>,
    algo: &str,
    makespan: u64,
    secs: f64,
    work: usize,
) {
    if let Some(row) = rows.iter_mut().find(|(a, ..)| a == algo) {
        row.1 += makespan as f64;
        row.2 += secs;
        row.3 += work as f64;
    } else {
        rows.push((algo.to_string(), makespan as f64, secs, work as f64));
    }
}
