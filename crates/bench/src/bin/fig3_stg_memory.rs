//! FIG3 — STG and memory allocation (paper Figure 3).
//!
//! Generates the equalizer's state/transition graph (w/x/d per node,
//! per-resource resets, global X/R/D), minimizes it, and prints the
//! resulting state table together with the memory map of the inter-unit
//! transfer cells.

use cool_cost::CostModel;
use cool_spec::workloads;

fn main() {
    let graph = workloads::equalizer(4);
    let target = cool_bench::paper_board();
    let cost = CostModel::new(&graph, &target);
    let mapping = cool_bench::greedy_mixed_mapping(&graph, &cost);
    let schedule =
        cool_schedule::schedule(&graph, &mapping, &cost, Default::default()).expect("schedulable");

    println!("FIG3: STG and memory allocation — 4-band equalizer, mixed partition\n");
    let stg = cool_stg::generate(&graph, &mapping, &schedule);
    println!("raw STG:\n{}", stg.to_table(&target));
    let (minimized, stats) = cool_stg::minimize(&stg);
    println!("minimized STG:\n{}", minimized.to_table(&target));
    println!(
        "state minimization: {} -> {} states ({:.0} % reduction), {} -> {} transitions\n",
        stats.states_before,
        stats.states_after,
        stats.reduction() * 100.0,
        stats.transitions_before,
        stats.transitions_after
    );

    let map = cool_stg::allocate_memory(&graph, &mapping, &target.memory, target.bus.width_bits)
        .expect("fits 64 kB");
    println!("{}", map.to_table(&graph));
    let packed = cool_stg::allocate_memory_packed(
        &graph,
        &mapping,
        &schedule,
        &target.memory,
        target.bus.width_bits,
    )
    .expect("fits 64 kB");
    println!(
        "lifetime-packed variant: {} bytes (sequential: {} bytes)",
        packed.bytes_used(),
        map.bytes_used()
    );
}
