//! Shared helpers for the benchmark harness.
//!
//! The `fig*`, `res*` and `abl*` binaries in `src/bin/` regenerate every
//! figure and result of the paper (see `DESIGN.md` for the index); the
//! plain `harness = false` benches in `benches/` (built on [`harness`])
//! measure the scaling behaviour of each engine stage.

pub mod harness;
pub mod json;

use cool_cost::CostModel;
use cool_ir::{Mapping, PartitioningGraph, Resource, Target};

/// A representative mixed mapping: greedily move the most
/// hardware-profitable nodes (largest software-vs-hardware cycle gap) to
/// the FPGAs until the area budgets are exhausted.
#[must_use]
pub fn greedy_mixed_mapping(g: &PartitioningGraph, cost: &CostModel) -> Mapping {
    let target = cost.target();
    let mut mapping = Mapping::uniform(g.node_count(), Resource::Software(0));
    let mut gain: Vec<(i64, cool_ir::NodeId)> = g
        .function_nodes()
        .into_iter()
        .map(|n| {
            let sw = cost.exec_cycles(n, Resource::Software(0)) as i64;
            let hw = cost.exec_cycles(n, Resource::Hardware(0)) as i64;
            (sw - hw, n)
        })
        .collect();
    gain.sort_by_key(|&(g, _)| std::cmp::Reverse(g));
    let mut usage = vec![0u32; target.hw.len()];
    for (profit, n) in gain {
        if profit <= 0 {
            break;
        }
        let area = cost.hw_area_clbs(n);
        if let Some(h) =
            (0..target.hw.len()).find(|&h| usage[h] + area <= target.hw[h].clb_capacity)
        {
            usage[h] += area;
            mapping.assign(n, Resource::Hardware(h));
        }
    }
    mapping
}

/// The paper's board, re-exported for the binaries.
#[must_use]
pub fn paper_board() -> Target {
    Target::fuzzy_board()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_spec::workloads;

    #[test]
    fn greedy_mapping_is_area_feasible() {
        let g = workloads::fuzzy_controller();
        let target = paper_board();
        let cost = CostModel::new(&g, &target);
        let m = greedy_mixed_mapping(&g, &cost);
        let usage = cool_partition::area_usage(&g, &m, &cost);
        for (used, hw) in usage.iter().zip(&target.hw) {
            assert!(used <= &hw.clb_capacity);
        }
    }
}
