//! Cycle-level discrete-event co-simulation of a synthesized COOL system.
//!
//! The paper validates designs by running them on a prototyping board (a
//! DSP56001, two XC4005 FPGAs, SRAM and a bus card). This crate is that
//! board's stand-in: it executes the *synthesized* system — the system
//! controller steering per-node start/done handshakes, processors running
//! their static software order, hardware blocks with their HLS latencies,
//! a single arbitrated bus, and the shared memory holding the allocated
//! communication cells — cycle by cycle, while also computing the
//! *functional* values so results can be checked against the
//! [`cool_ir::eval`] reference.
//!
//! The simulator is an independent implementation of the execution
//! semantics (it does not reuse the static scheduler's code), so agreement
//! between predicted and simulated makespans is a genuine cross-check.

use std::collections::BTreeMap;
use std::fmt;

use cool_cost::{CommScheme, CostModel};
use cool_ir::{EdgeId, IrError, Mapping, NodeId, NodeKind, PartitioningGraph, Resource};
use cool_schedule::StaticSchedule;
use cool_stg::MemoryMap;

/// Simulation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A required primary input value was not supplied.
    MissingInput(String),
    /// The system did not finish within the cycle budget (deadlock or
    /// runaway design).
    Timeout {
        /// The cycle budget that was exhausted.
        budget: u64,
    },
    /// Underlying IR failure.
    Ir(IrError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingInput(n) => write!(f, "primary input `{n}` not supplied"),
            SimError::Timeout { budget } => {
                write!(f, "simulation did not finish within {budget} cycles")
            }
            SimError::Ir(e) => write!(f, "simulation failed on invalid input: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Ir(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IrError> for SimError {
    fn from(e: IrError) -> SimError {
        SimError::Ir(e)
    }
}

/// One trace event (bounded log of interesting transitions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node's start signal was asserted.
    NodeStart {
        /// Simulation cycle.
        cycle: u64,
        /// The started node.
        node: NodeId,
    },
    /// A node raised done.
    NodeDone {
        /// Simulation cycle.
        cycle: u64,
        /// The finished node.
        node: NodeId,
    },
    /// The arbiter granted the bus for a transfer.
    TransferStart {
        /// Simulation cycle.
        cycle: u64,
        /// The transferred edge.
        edge: EdgeId,
    },
    /// A transfer completed and its memory cell holds the value.
    TransferDone {
        /// Simulation cycle.
        cycle: u64,
        /// The transferred edge.
        edge: EdgeId,
    },
}

/// Statistics and results of one simulated system invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Primary-output values (functionally exact).
    pub outputs: BTreeMap<String, i64>,
    /// Total cycles from system start to global done.
    pub cycles: u64,
    /// Number of bus transfers performed.
    pub bus_transfers: usize,
    /// Cycles the bus was occupied.
    pub bus_busy_cycles: u64,
    /// Busy cycles per resource (same order as `Target::resources`).
    pub resource_busy: Vec<u64>,
    /// Final contents of the allocated communication cells
    /// (`address → value`).
    pub memory_image: BTreeMap<u32, i64>,
    /// Bounded event trace (first `trace_limit` events).
    pub trace: Vec<TraceEvent>,
}

impl SimResult {
    /// Bus utilization in `0.0..=1.0`.
    #[must_use]
    pub fn bus_utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.bus_busy_cycles as f64 / self.cycles as f64
        }
    }
}

/// The co-simulator for one synthesized design.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    g: &'a PartitioningGraph,
    mapping: &'a Mapping,
    schedule: &'a StaticSchedule,
    memory_map: &'a MemoryMap,
    cost: &'a CostModel,
    scheme: CommScheme,
    /// Maximum cycles before declaring a timeout.
    pub cycle_budget: u64,
    /// Maximum retained trace events.
    pub trace_limit: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    Waiting,
    Running { finish: u64 },
    Done,
}

impl<'a> Simulator<'a> {
    /// Create a simulator over a fully co-synthesized design.
    #[must_use]
    pub fn new(
        g: &'a PartitioningGraph,
        mapping: &'a Mapping,
        schedule: &'a StaticSchedule,
        memory_map: &'a MemoryMap,
        cost: &'a CostModel,
        scheme: CommScheme,
    ) -> Simulator<'a> {
        Simulator {
            g,
            mapping,
            schedule,
            memory_map,
            cost,
            scheme,
            cycle_budget: 10_000_000,
            trace_limit: 4096,
        }
    }

    /// Run one system invocation with the given primary-input values.
    ///
    /// # Errors
    ///
    /// [`SimError::MissingInput`] if an input is absent,
    /// [`SimError::Timeout`] if the design never reaches global done.
    pub fn run(&self, inputs: &BTreeMap<String, i64>) -> Result<SimResult, SimError> {
        let n = self.g.node_count();
        let mut state = vec![NodeState::Waiting; n];
        // Output values per node/port, filled when the node completes.
        let mut values: Vec<Vec<i64>> = vec![Vec::new(); n];
        // Data arrival per edge at the consumer's resource.
        let mut arrived = vec![false; self.g.edge_count()];
        let mut memory_image: BTreeMap<u32, i64> = BTreeMap::new();
        let mut trace = Vec::new();
        let mut bus_busy_until = 0u64;
        let mut bus_busy_cycles = 0u64;
        let mut bus_transfers = 0usize;
        // Transfer completion bookkeeping: (finish_cycle, edge).
        let mut inflight: Option<(u64, EdgeId)> = None;
        // Pending transfer queue (edge ids, FIFO by readiness then id).
        let mut xfer_queue: Vec<EdgeId> = Vec::new();
        let mut xfer_enqueued = vec![false; self.g.edge_count()];
        let resources = self.cost.target().resources();
        let mut resource_busy = vec![0u64; resources.len()];
        let resource_index = |r: Resource| -> usize {
            resources
                .iter()
                .position(|&x| x == r)
                .expect("mapped resources exist")
        };

        // Software execution order per processor, from the static schedule
        // (the system controller enforces this order).
        let sw_order: Vec<Vec<NodeId>> = (0..self.cost.target().processors.len())
            .map(|p| {
                self.schedule
                    .order_on(Resource::Software(p))
                    .into_iter()
                    .filter(|&id| {
                        self.g
                            .node(id)
                            .map(|x| x.kind() == NodeKind::Function)
                            .unwrap_or(false)
                    })
                    .collect()
            })
            .collect();
        let mut sw_pos: Vec<usize> = vec![0; sw_order.len()];

        // Primary inputs are provided by the I/O controller at cycle 0.
        for id in self.g.primary_inputs() {
            let node = self.g.node(id)?;
            let v = *inputs
                .get(node.name())
                .ok_or_else(|| SimError::MissingInput(node.name().to_string()))?;
            values[id.index()] = vec![v];
            state[id.index()] = NodeState::Done;
        }

        let mut cycle = 0u64;
        let mut done_count = self.g.primary_inputs().len();
        while done_count < n {
            if cycle > self.cycle_budget {
                return Err(SimError::Timeout {
                    budget: self.cycle_budget,
                });
            }

            // 1. Complete the in-flight bus transfer.
            if let Some((finish, eid)) = inflight {
                if finish <= cycle {
                    arrived[eid.index()] = true;
                    let e = self.g.edge(eid)?;
                    let v = values[e.src.index()][e.src_port as usize];
                    if let Some(cell) = self.memory_map.cell(eid) {
                        memory_image.insert(cell.address, v);
                    }
                    if trace.len() < self.trace_limit {
                        trace.push(TraceEvent::TransferDone { cycle, edge: eid });
                    }
                    inflight = None;
                }
            }

            // 2. Retire running nodes whose latency elapsed.
            for i in 0..n {
                if let NodeState::Running { finish } = state[i] {
                    if finish <= cycle {
                        let id = NodeId::from_index(i);
                        let node = self.g.node(id)?;
                        // Functional evaluation happens at completion.
                        let ins: Vec<i64> = self
                            .g
                            .in_edges(id)
                            .iter()
                            .map(|(_, e)| values[e.src.index()][e.src_port as usize])
                            .collect();
                        values[i] = match node.kind() {
                            NodeKind::Output => ins,
                            NodeKind::Function => node.behavior().evaluate(&ins),
                            NodeKind::Input => unreachable!("inputs are pre-done"),
                        };
                        state[i] = NodeState::Done;
                        done_count += 1;
                        if trace.len() < self.trace_limit {
                            trace.push(TraceEvent::NodeDone { cycle, node: id });
                        }
                    }
                }
            }

            // 3. Enqueue transfers whose producers are done (cut edges) and
            //    mark same-resource edges as arrived.
            for (eid, e) in self.g.edges() {
                if arrived[eid.index()] || xfer_enqueued[eid.index()] {
                    continue;
                }
                if state[e.src.index()] != NodeState::Done {
                    continue;
                }
                if self.mapping.resource(e.src) == self.mapping.resource(e.dst) {
                    arrived[eid.index()] = true;
                } else {
                    xfer_queue.push(eid);
                    xfer_enqueued[eid.index()] = true;
                }
            }

            // 4. Arbitrate the bus: one transfer at a time, FIFO.
            if inflight.is_none() && bus_busy_until <= cycle {
                if let Some(&eid) = xfer_queue.first() {
                    xfer_queue.remove(0);
                    let e = self.g.edge(eid)?;
                    let dur = self.cost.comm_cycles(e, self.scheme).max(1);
                    inflight = Some((cycle + dur, eid));
                    bus_busy_until = cycle + dur;
                    bus_busy_cycles += dur;
                    bus_transfers += 1;
                    if trace.len() < self.trace_limit {
                        trace.push(TraceEvent::TransferStart { cycle, edge: eid });
                    }
                }
            }

            // 5. Start ready nodes. Hardware and outputs start freely; each
            //    processor starts only the next node of its static order.
            let ready = |i: usize, state: &[NodeState], arrived: &[bool]| -> bool {
                state[i] == NodeState::Waiting
                    && self
                        .g
                        .in_edges(NodeId::from_index(i))
                        .iter()
                        .all(|(eid, _)| arrived[eid.index()])
            };
            // Processors.
            for (p, order) in sw_order.iter().enumerate() {
                // Skip past already-done entries.
                while sw_pos[p] < order.len() && state[order[sw_pos[p]].index()] == NodeState::Done
                {
                    sw_pos[p] += 1;
                }
                if sw_pos[p] >= order.len() {
                    continue;
                }
                let id = order[sw_pos[p]];
                let i = id.index();
                let busy = matches!(state[i], NodeState::Running { .. });
                if !busy && ready(i, &state, &arrived) {
                    let dur = self.cost.exec_cycles(id, Resource::Software(p)).max(1);
                    state[i] = NodeState::Running {
                        finish: cycle + dur,
                    };
                    resource_busy[resource_index(Resource::Software(p))] += dur;
                    if trace.len() < self.trace_limit {
                        trace.push(TraceEvent::NodeStart { cycle, node: id });
                    }
                }
            }
            // Hardware nodes and primary outputs.
            for i in 0..n {
                if !ready(i, &state, &arrived) {
                    continue;
                }
                let id = NodeId::from_index(i);
                let node = self.g.node(id)?;
                match node.kind() {
                    NodeKind::Output => {
                        // Outputs latch instantly once data arrives.
                        state[i] = NodeState::Running { finish: cycle };
                    }
                    NodeKind::Function => {
                        if let Resource::Hardware(h) = self.mapping.resource(id) {
                            let dur = self.cost.exec_cycles(id, Resource::Hardware(h)).max(1);
                            state[i] = NodeState::Running {
                                finish: cycle + dur,
                            };
                            resource_busy[resource_index(Resource::Hardware(h))] += dur;
                            if trace.len() < self.trace_limit {
                                trace.push(TraceEvent::NodeStart { cycle, node: id });
                            }
                        }
                    }
                    NodeKind::Input => {}
                }
            }

            cycle += 1;
        }

        let mut outputs = BTreeMap::new();
        for id in self.g.primary_outputs() {
            outputs.insert(self.g.node(id)?.name().to_string(), values[id.index()][0]);
        }
        Ok(SimResult {
            outputs,
            cycles: cycle.saturating_sub(1),
            bus_transfers,
            bus_busy_cycles,
            resource_busy,
            memory_image,
            trace,
        })
    }

    /// Run and assert functional equivalence with the reference evaluator.
    ///
    /// # Errors
    ///
    /// Simulation errors, or [`SimError::Ir`]-wrapped evaluation failures;
    /// a mismatch panics with a diff (it is a synthesis bug, not an input
    /// error).
    ///
    /// # Panics
    ///
    /// Panics if the simulated outputs differ from [`cool_ir::eval`].
    pub fn run_checked(&self, inputs: &BTreeMap<String, i64>) -> Result<SimResult, SimError> {
        let result = self.run(inputs)?;
        let reference = cool_ir::eval::evaluate(self.g, inputs)?;
        assert_eq!(
            result.outputs, reference,
            "synthesized system diverges from the specification"
        );
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_ir::eval::input_map;
    use cool_ir::Target;
    use cool_spec::workloads;

    struct Fixture {
        g: PartitioningGraph,
        mapping: Mapping,
        schedule: StaticSchedule,
        memory_map: MemoryMap,
        cost: CostModel,
    }

    fn fixture(g: PartitioningGraph, mapping: Mapping) -> Fixture {
        let target = Target::fuzzy_board();
        let cost = CostModel::new(&g, &target);
        let schedule =
            cool_schedule::schedule(&g, &mapping, &cost, CommScheme::MemoryMapped).unwrap();
        let memory_map =
            cool_stg::allocate_memory(&g, &mapping, &target.memory, target.bus.width_bits).unwrap();
        Fixture {
            g,
            mapping,
            schedule,
            memory_map,
            cost,
        }
    }

    fn mixed_fuzzy() -> Fixture {
        let g = workloads::fuzzy_controller();
        let mut mapping = Mapping::uniform(g.node_count(), Resource::Software(0));
        mapping.assign(g.node_by_name("defuzz").unwrap(), Resource::Hardware(0));
        mapping.assign(g.node_by_name("clip").unwrap(), Resource::Hardware(0));
        fixture(g, mapping)
    }

    #[test]
    fn fuzzy_simulation_matches_reference() {
        let f = mixed_fuzzy();
        let sim = Simulator::new(
            &f.g,
            &f.mapping,
            &f.schedule,
            &f.memory_map,
            &f.cost,
            CommScheme::MemoryMapped,
        );
        for (e, d) in [(-100i64, 20i64), (0, 0), (64, -32), (127, 127)] {
            let r = sim
                .run_checked(&input_map([("err", e), ("derr", d)]))
                .unwrap();
            assert!(r.cycles > 0);
        }
    }

    #[test]
    fn transfers_touch_memory_cells() {
        let f = mixed_fuzzy();
        let sim = Simulator::new(
            &f.g,
            &f.mapping,
            &f.schedule,
            &f.memory_map,
            &f.cost,
            CommScheme::MemoryMapped,
        );
        let r = sim.run(&input_map([("err", 50), ("derr", -10)])).unwrap();
        assert!(r.bus_transfers > 0);
        assert!(!r.memory_image.is_empty());
        // Every touched address is an allocated cell.
        for addr in r.memory_image.keys() {
            assert!(
                f.memory_map.cells().iter().any(|c| c.address == *addr),
                "stray write at 0x{addr:04x}"
            );
        }
    }

    #[test]
    fn all_software_needs_no_bus() {
        let g = workloads::equalizer(4);
        let mapping = Mapping::uniform(g.node_count(), Resource::Software(0));
        let f = fixture(g, mapping);
        let sim = Simulator::new(
            &f.g,
            &f.mapping,
            &f.schedule,
            &f.memory_map,
            &f.cost,
            CommScheme::MemoryMapped,
        );
        let r = sim
            .run_checked(&input_map([("x0", 10), ("x1", 5), ("x2", -3)]))
            .unwrap();
        assert_eq!(r.bus_transfers, 0);
        assert_eq!(r.bus_utilization(), 0.0);
    }

    #[test]
    fn simulated_makespan_tracks_schedule_prediction() {
        let f = mixed_fuzzy();
        let sim = Simulator::new(
            &f.g,
            &f.mapping,
            &f.schedule,
            &f.memory_map,
            &f.cost,
            CommScheme::MemoryMapped,
        );
        let r = sim.run(&input_map([("err", 10), ("derr", 10)])).unwrap();
        let predicted = f.schedule.makespan();
        // Independent implementations: allow 3x slack in either direction,
        // but they must be the same order of magnitude.
        assert!(
            r.cycles <= predicted * 3 && predicted <= r.cycles * 3,
            "simulated {} vs predicted {predicted}",
            r.cycles
        );
    }

    #[test]
    fn trace_is_bounded_and_ordered() {
        let f = mixed_fuzzy();
        let mut sim = Simulator::new(
            &f.g,
            &f.mapping,
            &f.schedule,
            &f.memory_map,
            &f.cost,
            CommScheme::MemoryMapped,
        );
        sim.trace_limit = 16;
        let r = sim.run(&input_map([("err", 1), ("derr", 2)])).unwrap();
        assert!(r.trace.len() <= 16);
        let cycles: Vec<u64> = r
            .trace
            .iter()
            .map(|e| match e {
                TraceEvent::NodeStart { cycle, .. }
                | TraceEvent::NodeDone { cycle, .. }
                | TraceEvent::TransferStart { cycle, .. }
                | TraceEvent::TransferDone { cycle, .. } => *cycle,
            })
            .collect();
        let mut sorted = cycles.clone();
        sorted.sort_unstable();
        assert_eq!(cycles, sorted, "trace must be chronological");
    }

    #[test]
    fn missing_input_is_reported() {
        let f = mixed_fuzzy();
        let sim = Simulator::new(
            &f.g,
            &f.mapping,
            &f.schedule,
            &f.memory_map,
            &f.cost,
            CommScheme::MemoryMapped,
        );
        let err = sim.run(&input_map([("err", 1)])).unwrap_err();
        assert!(matches!(err, SimError::MissingInput(_)));
    }

    #[test]
    fn timeout_detection() {
        let f = mixed_fuzzy();
        let mut sim = Simulator::new(
            &f.g,
            &f.mapping,
            &f.schedule,
            &f.memory_map,
            &f.cost,
            CommScheme::MemoryMapped,
        );
        sim.cycle_budget = 1;
        let err = sim.run(&input_map([("err", 1), ("derr", 2)])).unwrap_err();
        assert!(matches!(err, SimError::Timeout { .. }));
    }

    #[test]
    fn direct_scheme_is_not_slower() {
        let g = workloads::equalizer(4);
        let mut mapping = Mapping::uniform(g.node_count(), Resource::Software(0));
        for (i, id) in g.function_nodes().into_iter().enumerate() {
            if i % 2 == 0 {
                mapping.assign(id, Resource::Hardware(0));
            }
        }
        let f = fixture(g, mapping);
        let ins = input_map([("x0", 100), ("x1", 50), ("x2", 25)]);
        let mm = Simulator::new(
            &f.g,
            &f.mapping,
            &f.schedule,
            &f.memory_map,
            &f.cost,
            CommScheme::MemoryMapped,
        )
        .run(&ins)
        .unwrap();
        let direct = Simulator::new(
            &f.g,
            &f.mapping,
            &f.schedule,
            &f.memory_map,
            &f.cost,
            CommScheme::Direct,
        )
        .run(&ins)
        .unwrap();
        assert!(direct.cycles <= mm.cycles);
        assert_eq!(
            direct.outputs, mm.outputs,
            "scheme must not change semantics"
        );
    }

    #[test]
    fn hardware_heavy_mapping_still_correct() {
        let g = workloads::fir(8);
        let mut mapping = Mapping::uniform(g.node_count(), Resource::Software(0));
        for (i, id) in g.function_nodes().into_iter().enumerate() {
            mapping.assign(id, Resource::Hardware(i % 2));
        }
        let f = fixture(g, mapping);
        let sim = Simulator::new(
            &f.g,
            &f.mapping,
            &f.schedule,
            &f.memory_map,
            &f.cost,
            CommScheme::MemoryMapped,
        );
        let ins: BTreeMap<String, i64> = (0..8)
            .map(|i| (format!("x{i}"), i64::from(i) * 3 - 5))
            .collect();
        let r = sim.run_checked(&ins).unwrap();
        assert!(r.bus_transfers > 0);
    }
}
