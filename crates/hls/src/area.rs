//! XC4000-class area and latency model.
//!
//! The paper's hardware resources are Xilinx XC4005 FPGAs with 196 CLBs
//! each; partitioning feasibility hinges on CLB budgets. One XC4000 CLB
//! holds two 4-input LUTs and two flip-flops, so as rules of thumb for a
//! `w`-bit datapath:
//!
//! * a ripple/carry adder or subtractor needs ~`w/2` CLBs,
//! * a combinational array multiplier is quadratic-ish; we charge
//!   `w*w/8` CLBs and pipeline it over several cycles,
//! * a sequential divider charges `w` CLBs and many cycles,
//! * bitwise logic and muxes need ~`w/4`..`w/2` CLBs,
//! * a `w`-bit register needs `w/2` CLBs (two FFs per CLB).

use crate::binding::Binding;
use crate::cdfg::Cdfg;
use crate::schedule::Schedule;
use crate::HlsOptions;
use cool_ir::Op;

/// Latency (hardware cycles) and area (CLBs) of one operator instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperatorCost {
    /// Cycles from operand ready to result valid.
    pub latency: u64,
    /// CLBs for one instance of the unit.
    pub clbs: u32,
}

/// Cost of `op` on a `bits`-wide datapath.
#[must_use]
pub fn operator_cost(op: Op, bits: u16) -> OperatorCost {
    let w = u32::from(bits.max(1));
    match op {
        Op::Add | Op::Sub => OperatorCost {
            latency: 1,
            clbs: w.div_ceil(2),
        },
        Op::Mul => OperatorCost {
            latency: 2,
            clbs: (w * w).div_ceil(8),
        },
        Op::Div | Op::Rem => OperatorCost {
            latency: (u64::from(w)).max(4),
            clbs: w + w / 2,
        },
        Op::Min | Op::Max => OperatorCost {
            latency: 1,
            clbs: w,
        }, // compare + mux
        Op::And | Op::Or | Op::Xor | Op::Not => OperatorCost {
            latency: 1,
            clbs: w.div_ceil(4),
        },
        Op::Shl | Op::Shr => OperatorCost {
            latency: 1,
            clbs: w,
        }, // barrel shifter slice
        Op::Neg | Op::Abs => OperatorCost {
            latency: 1,
            clbs: w.div_ceil(2),
        },
        Op::Lt | Op::Le | Op::Eq => OperatorCost {
            latency: 1,
            clbs: w.div_ceil(2),
        },
        Op::Mux => OperatorCost {
            latency: 1,
            clbs: w.div_ceil(2),
        },
        // `Op` is non-exhaustive; price unknown future operators like an ALU op.
        _ => OperatorCost {
            latency: 1,
            clbs: w,
        },
    }
}

/// CLBs of one `bits`-wide register (two flip-flops per CLB).
#[must_use]
pub fn register_clbs(bits: u16) -> u32 {
    u32::from(bits.max(1)).div_ceil(2)
}

/// CLBs of one `bits`-wide 2:1 multiplexer.
#[must_use]
pub fn mux_clbs(bits: u16) -> u32 {
    u32::from(bits.max(1)).div_ceil(2)
}

/// CLBs of a Moore FSM with `states` states and `outputs` control outputs:
/// state register + next-state and output logic.
#[must_use]
pub fn fsm_clbs(states: usize, outputs: usize) -> u32 {
    if states <= 1 {
        return 1;
    }
    let state_bits = usize::BITS - (states - 1).leading_zeros();
    let ff = state_bits.div_ceil(2);
    let logic = (state_bits * 2 + outputs as u32).div_ceil(2);
    ff + logic
}

/// Estimate the complete area of a bound design.
///
/// Functional units are charged at the *widest* instance of their class
/// (the class's operations share the unit); registers, muxes and the FSM
/// are added on top.
#[must_use]
pub fn estimate_area(
    cdfg: &Cdfg,
    _sched: &Schedule,
    bind: &Binding,
    fsm_states: usize,
    options: &HlsOptions,
) -> u32 {
    let bits = options.bits;
    // Representative unit cost per class: maximum operator cost over the
    // operations of that class (a shared ALU must implement its most
    // expensive operation).
    let mut mul_unit = 0u32;
    let mut div_unit = 0u32;
    let mut alu_unit = 0u32;
    for o in cdfg.ops() {
        let c = operator_cost(o.op, bits).clbs;
        match o.op {
            Op::Mul => mul_unit = mul_unit.max(c),
            Op::Div | Op::Rem => div_unit = div_unit.max(c),
            _ => alu_unit = alu_unit.max(c),
        }
    }
    let fu = mul_unit * bind.multipliers as u32
        + div_unit * bind.dividers as u32
        + alu_unit * bind.alus as u32;
    let regs = register_clbs(bits) * bind.register_count as u32;
    let muxes = mux_clbs(bits) * bind.mux_count as u32;
    // Control outputs: one enable per register + one select per mux + FU ops.
    let outputs = bind.register_count + bind.mux_count + cdfg.op_count();
    let fsm = fsm_clbs(fsm_states, outputs);
    fu + regs + muxes + fsm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_dominates_adder() {
        assert!(operator_cost(Op::Mul, 16).clbs > operator_cost(Op::Add, 16).clbs);
    }

    #[test]
    fn divider_is_slow() {
        assert!(operator_cost(Op::Div, 16).latency >= 4);
        assert_eq!(operator_cost(Op::Add, 16).latency, 1);
    }

    #[test]
    fn area_scales_with_width() {
        for op in [Op::Add, Op::Mul, Op::Div, Op::Shl] {
            assert!(
                operator_cost(op, 32).clbs > operator_cost(op, 16).clbs,
                "{op} should cost more at 32 bits"
            );
        }
    }

    #[test]
    fn register_and_mux_costs() {
        assert_eq!(register_clbs(16), 8);
        assert_eq!(mux_clbs(16), 8);
        assert_eq!(register_clbs(1), 1);
    }

    #[test]
    fn fsm_grows_with_states() {
        let small = fsm_clbs(2, 4);
        let large = fsm_clbs(40, 4);
        assert!(large > small);
        assert_eq!(fsm_clbs(1, 0), 1);
    }

    #[test]
    fn a_16bit_mac_fits_an_xc4005() {
        // Sanity for the case study: a single MAC block must fit 196 CLBs,
        // otherwise no mixed partition of the fuzzy controller exists.
        use crate::{synthesize, HlsOptions};
        let d = synthesize("mac", &cool_ir::Behavior::mac(), &HlsOptions::default());
        assert!(d.area_clbs <= 196, "MAC needs {} CLBs", d.area_clbs);
    }
}
