//! Control/data-flow graph extraction from node behaviours.
//!
//! Expression trees are flattened into a DAG of operations with
//! common-subexpression sharing: structurally identical subtrees map to the
//! same operation, which is what a real HLS front-end does before
//! scheduling.

use std::collections::HashMap;

use cool_ir::{Behavior, Expr, Op};

/// A value flowing through the CDFG: an external input, a constant, or the
/// result of an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueRef {
    /// The behaviour's `n`-th input port (held in an input register).
    Input(usize),
    /// An immediate constant (wired, zero datapath cost).
    Const(i64),
    /// The result of operation `n`.
    Op(usize),
}

/// One scheduled operation of the CDFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CdfgOp {
    /// The operator computed.
    pub op: Op,
    /// Operand values in operator order.
    pub args: Vec<ValueRef>,
}

/// A behaviour flattened into an operation DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cdfg {
    ops: Vec<CdfgOp>,
    outputs: Vec<ValueRef>,
    input_count: usize,
}

impl Cdfg {
    /// Flatten `behavior` into a CDFG, sharing identical subexpressions.
    #[must_use]
    pub fn from_behavior(behavior: &Behavior) -> Cdfg {
        let mut builder = Builder {
            ops: Vec::new(),
            memo: HashMap::new(),
        };
        let outputs = behavior
            .output_exprs()
            .iter()
            .map(|e| builder.lower(e))
            .collect();
        Cdfg {
            ops: builder.ops,
            outputs,
            input_count: behavior.inputs(),
        }
    }

    /// Operations in dependency order (operands always precede users).
    #[must_use]
    pub fn ops(&self) -> &[CdfgOp] {
        &self.ops
    }

    /// Number of operations after sharing.
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// The values driving the behaviour's outputs, in port order.
    #[must_use]
    pub fn outputs(&self) -> &[ValueRef] {
        &self.outputs
    }

    /// Number of behaviour inputs.
    #[must_use]
    pub fn input_count(&self) -> usize {
        self.input_count
    }

    /// Indices of operations that directly consume the result of `op`.
    #[must_use]
    pub fn users(&self, op: usize) -> Vec<usize> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.args.contains(&ValueRef::Op(op)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Operation indices whose operands are all inputs/constants.
    #[must_use]
    pub fn sources(&self) -> Vec<usize> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, o)| !o.args.iter().any(|a| matches!(a, ValueRef::Op(_))))
            .map(|(i, _)| i)
            .collect()
    }

    /// `true` if the result of `op` feeds a behaviour output.
    #[must_use]
    pub fn is_output(&self, op: usize) -> bool {
        self.outputs.contains(&ValueRef::Op(op))
    }
}

struct Builder {
    ops: Vec<CdfgOp>,
    memo: HashMap<CdfgOp, usize>,
}

impl Builder {
    fn lower(&mut self, e: &Expr) -> ValueRef {
        match e {
            Expr::Input(i) => ValueRef::Input(*i),
            Expr::Const(c) => ValueRef::Const(*c),
            Expr::Apply(op, args) => {
                let lowered: Vec<ValueRef> = args.iter().map(|a| self.lower(a)).collect();
                let key = CdfgOp {
                    op: *op,
                    args: lowered,
                };
                if let Some(&idx) = self.memo.get(&key) {
                    return ValueRef::Op(idx);
                }
                let idx = self.ops.len();
                self.ops.push(key.clone());
                self.memo.insert(key, idx);
                ValueRef::Op(idx)
            }
        }
    }
}

// Manual Hash for CdfgOp is derivable since Op and ValueRef are Hash.
impl std::hash::Hash for CdfgOp {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.op.hash(state);
        self.args.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_ir::Behavior;

    #[test]
    fn mac_has_two_ops() {
        let c = Cdfg::from_behavior(&Behavior::mac());
        assert_eq!(c.op_count(), 2);
        assert_eq!(c.input_count(), 3);
        assert_eq!(c.outputs().len(), 1);
        // The add consumes the mul.
        assert_eq!(c.users(0), vec![1]);
        assert!(c.is_output(1));
        assert!(!c.is_output(0));
    }

    #[test]
    fn cse_merges_duplicates() {
        let b = Behavior::new(
            2,
            vec![
                Expr::binary(
                    Op::Add,
                    Expr::binary(Op::Mul, Expr::Input(0), Expr::Input(1)),
                    Expr::binary(Op::Mul, Expr::Input(0), Expr::Input(1)),
                ),
                Expr::binary(Op::Mul, Expr::Input(0), Expr::Input(1)),
            ],
        )
        .unwrap();
        let c = Cdfg::from_behavior(&b);
        assert_eq!(c.op_count(), 2, "one shared mul + one add");
        // Second output directly reuses the shared multiply.
        assert_eq!(c.outputs()[1], ValueRef::Op(0));
    }

    #[test]
    fn constant_only_output() {
        let c = Cdfg::from_behavior(&Behavior::constant(5));
        assert_eq!(c.op_count(), 0);
        assert_eq!(c.outputs()[0], ValueRef::Const(5));
    }

    #[test]
    fn sources_have_no_op_operands() {
        let c = Cdfg::from_behavior(&Behavior::mac());
        assert_eq!(c.sources(), vec![0]); // the mul
    }

    use cool_ir::{Expr, Op};
}
