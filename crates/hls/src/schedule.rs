//! Operation scheduling: ASAP, ALAP and resource-constrained list
//! scheduling with mobility priorities.

use crate::area::operator_cost;
use crate::cdfg::{Cdfg, ValueRef};
use crate::HlsOptions;
use cool_ir::Op;

/// Which scheduler produced a [`Schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// As soon as possible (unconstrained lower bound).
    Asap,
    /// As late as possible under the ASAP latency bound.
    Alap,
    /// Resource-constrained list schedule.
    List,
    /// Force-directed schedule (balanced resource usage at fixed latency).
    ForceDirected,
}

/// Start cycle per operation plus the overall latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Scheduler that produced this result.
    pub kind: ScheduleKind,
    /// Start cycle of each operation, indexed like [`Cdfg::ops`].
    pub start: Vec<u64>,
    /// Total latency in cycles (max finish over all operations; at least 1
    /// even for pure-wiring behaviours, because results are registered).
    pub length: u64,
}

impl Schedule {
    /// Finish cycle (exclusive) of operation `i`.
    #[must_use]
    pub fn finish(&self, cdfg: &Cdfg, i: usize, bits: u16) -> u64 {
        self.start[i] + operator_cost(cdfg.ops()[i].op, bits).latency
    }
}

fn op_latency(op: Op, bits: u16) -> u64 {
    operator_cost(op, bits).latency
}

/// ASAP schedule: every operation starts as soon as its operands are done.
#[must_use]
pub fn asap(cdfg: &Cdfg, bits: u16) -> Schedule {
    let n = cdfg.op_count();
    let mut start = vec![0u64; n];
    for i in 0..n {
        // Ops are in dependency order by construction.
        let ready = cdfg.ops()[i]
            .args
            .iter()
            .filter_map(|a| match a {
                ValueRef::Op(j) => Some(start[*j] + op_latency(cdfg.ops()[*j].op, bits)),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        start[i] = ready;
    }
    let length = schedule_length(cdfg, &start, bits);
    Schedule {
        kind: ScheduleKind::Asap,
        start,
        length,
    }
}

/// ALAP schedule under `deadline` cycles.
///
/// # Panics
///
/// Panics if `deadline` is smaller than the ASAP length (no valid ALAP
/// exists); pass `asap(...).length` or larger.
#[must_use]
pub fn alap(cdfg: &Cdfg, bits: u16, deadline: u64) -> Schedule {
    let n = cdfg.op_count();
    let asap_len = asap(cdfg, bits).length;
    assert!(
        deadline >= asap_len,
        "deadline {deadline} below ASAP bound {asap_len}"
    );
    let mut start = vec![0u64; n];
    for i in (0..n).rev() {
        let lat = op_latency(cdfg.ops()[i].op, bits);
        let users = cdfg.users(i);
        let latest_finish = if cdfg.is_output(i) || users.is_empty() {
            deadline
        } else {
            users.iter().map(|&u| start[u]).min().unwrap_or(deadline)
        };
        // Outputs that also feed other ops must respect both.
        let bound = if cdfg.is_output(i) && !users.is_empty() {
            users
                .iter()
                .map(|&u| start[u])
                .min()
                .unwrap_or(deadline)
                .min(deadline)
        } else {
            latest_finish
        };
        start[i] = bound.saturating_sub(lat);
    }
    let length = schedule_length(cdfg, &start, bits);
    Schedule {
        kind: ScheduleKind::Alap,
        start,
        length,
    }
}

/// Resource-constrained list scheduling.
///
/// Priority is ALAP urgency (smaller ALAP start = more urgent); the
/// `perturbation` seed rotates tie-breaking so the synthesis refinement
/// loop explores different schedules deterministically.
#[must_use]
pub fn list_schedule(cdfg: &Cdfg, options: &HlsOptions, perturbation: u64) -> Schedule {
    let n = cdfg.op_count();
    if n == 0 {
        return Schedule {
            kind: ScheduleKind::List,
            start: Vec::new(),
            length: 1,
        };
    }
    let bits = options.bits;
    let asap_sched = asap(cdfg, bits);
    let alap_sched = alap(cdfg, bits, asap_sched.length);

    let class = |op: Op| -> usize {
        match op {
            Op::Mul => 0,
            Op::Div | Op::Rem => 1,
            _ => 2,
        }
    };
    let capacity = [
        options.max_multipliers.max(1),
        options.max_dividers.max(1),
        options.max_alus.max(1),
    ];

    let mut start = vec![u64::MAX; n];
    let mut scheduled = vec![false; n];
    let mut remaining = n;
    let mut cycle = 0u64;
    // busy[class] holds (until_cycle) entries for occupied units.
    let mut busy: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];

    while remaining > 0 {
        for b in busy.iter_mut() {
            b.retain(|&until| until > cycle);
        }
        // Ready ops: operands finished by `cycle`.
        let mut ready: Vec<usize> = (0..n)
            .filter(|&i| !scheduled[i])
            .filter(|&i| {
                cdfg.ops()[i].args.iter().all(|a| match a {
                    ValueRef::Op(j) => {
                        scheduled[*j] && start[*j] + op_latency(cdfg.ops()[*j].op, bits) <= cycle
                    }
                    _ => true,
                })
            })
            .collect();
        // Urgency: ALAP start ascending, then perturbed index.
        ready.sort_by_key(|&i| {
            (
                alap_sched.start[i],
                (i as u64).wrapping_add(perturbation) % (n as u64 + 1),
                i,
            )
        });
        for i in ready {
            let c = class(cdfg.ops()[i].op);
            if busy[c].len() < capacity[c] {
                start[i] = cycle;
                scheduled[i] = true;
                remaining -= 1;
                busy[c].push(cycle + op_latency(cdfg.ops()[i].op, bits));
            }
        }
        cycle += 1;
    }
    let length = schedule_length(cdfg, &start, bits);
    Schedule {
        kind: ScheduleKind::List,
        start,
        length,
    }
}

fn schedule_length(cdfg: &Cdfg, start: &[u64], bits: u16) -> u64 {
    cdfg.ops()
        .iter()
        .enumerate()
        .map(|(i, o)| start[i] + op_latency(o.op, bits))
        .max()
        .unwrap_or(0)
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_ir::{Behavior, Expr};

    fn two_muls_plus() -> Cdfg {
        Cdfg::from_behavior(
            &Behavior::new(
                4,
                vec![Expr::binary(
                    Op::Add,
                    Expr::binary(Op::Mul, Expr::Input(0), Expr::Input(1)),
                    Expr::binary(Op::Mul, Expr::Input(2), Expr::Input(3)),
                )],
            )
            .unwrap(),
        )
    }

    #[test]
    fn asap_respects_dependencies() {
        let c = Cdfg::from_behavior(&Behavior::mac());
        let s = asap(&c, 16);
        // add (op 1) starts after mul (op 0) finishes.
        assert!(s.start[1] >= s.start[0] + operator_cost(Op::Mul, 16).latency);
    }

    #[test]
    fn alap_meets_deadline() {
        let c = two_muls_plus();
        let a = asap(&c, 16);
        let l = alap(&c, 16, a.length + 3);
        assert!(l.length <= a.length + 3);
        // ALAP starts are never earlier than ASAP.
        for i in 0..c.op_count() {
            assert!(l.start[i] >= a.start[i], "op {i}");
        }
    }

    #[test]
    #[should_panic(expected = "deadline")]
    fn alap_rejects_impossible_deadline() {
        let c = Cdfg::from_behavior(&Behavior::mac());
        let a = asap(&c, 16);
        let _ = alap(&c, 16, a.length - 1);
    }

    #[test]
    fn list_respects_resource_limits() {
        let c = two_muls_plus();
        let opts = HlsOptions {
            max_multipliers: 1,
            ..Default::default()
        };
        let s = list_schedule(&c, &opts, 0);
        // Both muls are ops 0 and 1 (add is 2); with one multiplier their
        // intervals must not overlap.
        let mul_lat = operator_cost(Op::Mul, 16).latency;
        let (a, b) = (s.start[0], s.start[1]);
        assert!(
            a + mul_lat <= b || b + mul_lat <= a,
            "muls overlap: {a} and {b}"
        );
    }

    #[test]
    fn list_with_enough_resources_matches_asap() {
        let c = two_muls_plus();
        let opts = HlsOptions {
            max_multipliers: 2,
            max_alus: 2,
            ..Default::default()
        };
        let s = list_schedule(&c, &opts, 0);
        let a = asap(&c, 16);
        assert_eq!(s.length, a.length);
    }

    #[test]
    fn list_dependencies_always_hold() {
        let c = two_muls_plus();
        for pert in 0..5 {
            let s = list_schedule(&c, &HlsOptions::default(), pert);
            for (i, o) in c.ops().iter().enumerate() {
                for arg in &o.args {
                    if let ValueRef::Op(j) = arg {
                        assert!(
                            s.start[*j] + operator_cost(c.ops()[*j].op, 16).latency <= s.start[i],
                            "dependency violated at perturbation {pert}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_cdfg_schedules_to_unit_latency() {
        let c = Cdfg::from_behavior(&Behavior::identity());
        let s = list_schedule(&c, &HlsOptions::default(), 0);
        assert_eq!(s.length, 1);
    }
}

/// Force-directed scheduling (Paulin & Knight), the algorithm family the
/// original Oscar HLS used: operations are placed one at a time at the
/// control step that minimizes the global "force" — the deviation of
/// expected resource usage (distribution graphs) from a uniform profile —
/// under an ALAP-derived deadline.
///
/// Compared to [`list_schedule`] it targets *balanced resource usage* at a
/// fixed latency rather than minimum latency under fixed resources.
///
/// # Panics
///
/// Panics if `deadline` is below the ASAP bound.
#[must_use]
pub fn force_directed(cdfg: &Cdfg, bits: u16, deadline: u64) -> Schedule {
    let n = cdfg.op_count();
    if n == 0 {
        return Schedule {
            kind: ScheduleKind::ForceDirected,
            start: Vec::new(),
            length: 1,
        };
    }
    let asap_sched = asap(cdfg, bits);
    assert!(deadline >= asap_sched.length, "deadline below ASAP bound");
    let alap_sched = alap(cdfg, bits, deadline);

    // Current time frames per op: [asap, alap] inclusive.
    let mut lo: Vec<u64> = asap_sched.start.clone();
    let mut hi: Vec<u64> = alap_sched.start.clone();
    let mut fixed = vec![false; n];

    let class = |op: Op| -> usize {
        match op {
            Op::Mul => 0,
            Op::Div | Op::Rem => 1,
            _ => 2,
        }
    };

    // Distribution graph: expected usage of each class per control step,
    // where an unfixed op contributes 1/|frame| to every step it may
    // occupy (extended by its latency).
    let distribution = |lo: &[u64], hi: &[u64]| -> [Vec<f64>; 3] {
        let mut dg = [
            vec![0.0; deadline as usize + 1],
            vec![0.0; deadline as usize + 1],
            vec![0.0; deadline as usize + 1],
        ];
        for i in 0..n {
            let c = class(cdfg.ops()[i].op);
            let lat = op_latency(cdfg.ops()[i].op, bits).max(1);
            let width = (hi[i] - lo[i] + 1) as f64;
            for s in lo[i]..=hi[i] {
                for k in 0..lat {
                    let step = (s + k).min(deadline) as usize;
                    dg[c][step] += 1.0 / width;
                }
            }
        }
        dg
    };

    for _ in 0..n {
        // Pick the unfixed op/step assignment with the lowest force.
        let dg = distribution(&lo, &hi);
        let mut best: Option<(f64, usize, u64)> = None;
        for i in 0..n {
            if fixed[i] {
                continue;
            }
            let c = class(cdfg.ops()[i].op);
            let lat = op_latency(cdfg.ops()[i].op, bits).max(1);
            let width = (hi[i] - lo[i] + 1) as f64;
            for s in lo[i]..=hi[i] {
                // Self force: added load at the tentative steps minus the
                // average load the op already spreads over its frame.
                let mut force = 0.0;
                for k in 0..lat {
                    let step = (s + k).min(deadline) as usize;
                    force += dg[c][step] - 1.0 / width;
                }
                let cand = (force, i, s);
                let better = match best {
                    None => true,
                    Some((bf, bi, bs)) => {
                        cand.0 < bf - 1e-12 || ((cand.0 - bf).abs() <= 1e-12 && (i, s) < (bi, bs))
                    }
                };
                if better {
                    best = Some(cand);
                }
            }
        }
        let (_, i, s) = best.expect("an unfixed operation remains");
        lo[i] = s;
        hi[i] = s;
        fixed[i] = true;
        // Propagate frame tightening along dependencies.
        propagate_frames(cdfg, bits, &mut lo, &mut hi);
    }

    let start = lo;
    let length = schedule_length(cdfg, &start, bits);
    Schedule {
        kind: ScheduleKind::ForceDirected,
        start,
        length,
    }
}

/// Tighten `[lo, hi]` frames so dependencies stay satisfiable.
fn propagate_frames(cdfg: &Cdfg, bits: u16, lo: &mut [u64], hi: &mut [u64]) {
    let n = cdfg.op_count();
    // Forward: an op cannot start before its operands finish.
    for i in 0..n {
        let ready = cdfg.ops()[i]
            .args
            .iter()
            .filter_map(|a| match a {
                ValueRef::Op(j) => Some(lo[*j] + op_latency(cdfg.ops()[*j].op, bits)),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        lo[i] = lo[i].max(ready);
        hi[i] = hi[i].max(lo[i]);
    }
    // Backward: an op must finish before its users' latest start.
    for i in (0..n).rev() {
        let lat = op_latency(cdfg.ops()[i].op, bits);
        for u in cdfg.users(i) {
            let bound = hi[u].saturating_sub(lat);
            hi[i] = hi[i].min(bound);
        }
        if hi[i] < lo[i] {
            hi[i] = lo[i];
        }
    }
}

#[cfg(test)]
mod force_tests {
    use super::*;
    use crate::area::operator_cost;
    use cool_ir::{Behavior, Expr};

    fn four_muls() -> Cdfg {
        // Two independent products summed: ((a*b) + (c*d)) * ((e*f) + (g*h))
        let prod = |i: usize| Expr::binary(Op::Mul, Expr::Input(i), Expr::Input(i + 1));
        Cdfg::from_behavior(
            &Behavior::new(
                8,
                vec![Expr::binary(
                    Op::Mul,
                    Expr::binary(Op::Add, prod(0), prod(2)),
                    Expr::binary(Op::Add, prod(4), prod(6)),
                )],
            )
            .unwrap(),
        )
    }

    #[test]
    fn respects_dependencies() {
        let c = four_muls();
        let a = asap(&c, 16);
        let s = force_directed(&c, 16, a.length + 4);
        for (i, o) in c.ops().iter().enumerate() {
            for arg in &o.args {
                if let ValueRef::Op(j) = arg {
                    assert!(
                        s.start[*j] + operator_cost(c.ops()[*j].op, 16).latency <= s.start[i],
                        "dependency {j} -> {i} violated"
                    );
                }
            }
        }
    }

    #[test]
    fn meets_deadline() {
        let c = four_muls();
        let a = asap(&c, 16);
        let deadline = a.length + 6;
        let s = force_directed(&c, 16, deadline);
        assert!(s.length <= deadline, "{} > {deadline}", s.length);
    }

    #[test]
    fn slack_spreads_multiplier_pressure() {
        // With slack, force-directed must not stack all multiplies into the
        // same step: peak concurrent multiplier demand drops vs ASAP.
        let c = four_muls();
        let a = asap(&c, 16);
        let peak = |s: &Schedule| -> usize {
            let mul_lat = operator_cost(Op::Mul, 16).latency;
            (0..=s.length)
                .map(|t| {
                    c.ops()
                        .iter()
                        .enumerate()
                        .filter(|(_, o)| o.op == Op::Mul)
                        .filter(|(i, _)| s.start[*i] <= t && t < s.start[*i] + mul_lat)
                        .count()
                })
                .max()
                .unwrap_or(0)
        };
        let fd = force_directed(&c, 16, a.length + 4);
        assert!(
            peak(&fd) <= peak(&a),
            "force-directed peak {} vs ASAP peak {}",
            peak(&fd),
            peak(&a)
        );
    }

    #[test]
    fn deterministic() {
        let c = four_muls();
        let a = asap(&c, 16);
        assert_eq!(
            force_directed(&c, 16, a.length + 3),
            force_directed(&c, 16, a.length + 3)
        );
    }

    #[test]
    #[should_panic(expected = "deadline")]
    fn rejects_tight_deadline() {
        let c = four_muls();
        let a = asap(&c, 16);
        let _ = force_directed(&c, 16, a.length - 1);
    }
}
