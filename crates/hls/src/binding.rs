//! Allocation and binding: functional units, registers (left-edge
//! algorithm) and interconnect multiplexers.

use crate::area::operator_cost;
use crate::cdfg::{Cdfg, ValueRef};
use crate::schedule::Schedule;
use crate::HlsOptions;
use cool_ir::Op;

/// The binding result: how many physical resources the datapath needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    /// Multiplier instances used.
    pub multipliers: usize,
    /// Divider instances used.
    pub dividers: usize,
    /// ALU instances used (all remaining operator classes share ALUs).
    pub alus: usize,
    /// Registers after left-edge lifetime packing (includes input
    /// registers).
    pub register_count: usize,
    /// 2:1 multiplexer equivalents implied by FU and register sharing.
    pub mux_count: usize,
}

fn class(op: Op) -> usize {
    match op {
        Op::Mul => 0,
        Op::Div | Op::Rem => 1,
        _ => 2,
    }
}

/// Bind the scheduled CDFG to functional units and registers.
///
/// FU allocation counts, per class, the maximum number of operations of
/// that class simultaneously executing in any cycle. Register allocation
/// computes value lifetimes (definition finish to last use start) and
/// packs them with the left-edge algorithm, which is optimal for interval
/// colouring. Multiplexers are estimated from sharing degree: an FU
/// executing `k > 1` operations needs `k - 1` mux equivalents per operand
/// port.
#[must_use]
pub fn bind(cdfg: &Cdfg, sched: &Schedule, options: &HlsOptions) -> Binding {
    let bits = options.bits;
    let n = cdfg.op_count();

    // --- FU allocation: peak concurrency per class. ---
    let mut per_class_ops: [Vec<(u64, u64)>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (i, o) in cdfg.ops().iter().enumerate() {
        let s = sched.start[i];
        let f = s + operator_cost(o.op, bits).latency;
        per_class_ops[class(o.op)].push((s, f));
    }
    let peak = |intervals: &[(u64, u64)]| -> usize {
        let mut events: Vec<(u64, i32)> = Vec::new();
        for &(s, f) in intervals {
            events.push((s, 1));
            events.push((f, -1));
        }
        events.sort_by_key(|&(t, d)| (t, d)); // releases before acquires at same t
        let mut cur = 0i32;
        let mut max = 0i32;
        for (_, d) in events {
            cur += d;
            max = max.max(cur);
        }
        max.max(0) as usize
    };
    let multipliers = peak(&per_class_ops[0]);
    let dividers = peak(&per_class_ops[1]);
    let alus = peak(&per_class_ops[2]);

    // --- Register allocation: left-edge over value lifetimes. ---
    // A value lives from the cycle its producer finishes until the last
    // cycle a consumer starts (inclusive). Inputs live from cycle 0.
    let mut lifetimes: Vec<(u64, u64)> = Vec::new();
    // Input values.
    for i in 0..cdfg.input_count() {
        let last_use = cdfg
            .ops()
            .iter()
            .enumerate()
            .filter(|(_, o)| o.args.contains(&ValueRef::Input(i)))
            .map(|(j, _)| sched.start[j])
            .max();
        let output_use = cdfg
            .outputs()
            .contains(&ValueRef::Input(i))
            .then_some(sched.length);
        if let Some(end) = last_use.into_iter().chain(output_use).max() {
            lifetimes.push((0, end));
        }
    }
    // Operation results.
    for i in 0..n {
        let def = sched.start[i] + operator_cost(cdfg.ops()[i].op, bits).latency;
        let mut end = def;
        for u in cdfg.users(i) {
            end = end.max(sched.start[u]);
        }
        if cdfg.is_output(i) {
            end = end.max(sched.length);
        }
        lifetimes.push((def, end));
    }
    let register_count = left_edge(&mut lifetimes);

    // --- Mux estimation from sharing degree. ---
    let share_mux = |instances: usize, ops: usize, ports: usize| -> usize {
        if instances == 0 || ops <= instances {
            0
        } else {
            // Each extra op bound to a unit adds one 2:1 mux per port.
            (ops - instances) * ports
        }
    };
    let mul_ops = per_class_ops[0].len();
    let div_ops = per_class_ops[1].len();
    let alu_ops = per_class_ops[2].len();
    let mux_count = share_mux(multipliers, mul_ops, 2)
        + share_mux(dividers, div_ops, 2)
        + share_mux(alus, alu_ops, 2);

    Binding {
        multipliers,
        dividers,
        alus,
        register_count,
        mux_count,
    }
}

/// Left-edge interval packing: returns the minimum number of registers
/// (tracks) needed so that overlapping lifetimes never share a register.
/// Zero-length lifetimes still occupy their definition instant.
fn left_edge(lifetimes: &mut [(u64, u64)]) -> usize {
    lifetimes.sort_unstable();
    // Greedy sweep: registers as a multiset of last-occupied-until values.
    let mut tracks: Vec<u64> = Vec::new();
    for &(s, f) in lifetimes.iter() {
        // Find a track free at s (its current occupant ended at or before s).
        if let Some(t) = tracks.iter_mut().find(|t| **t <= s) {
            *t = f.max(s + 1);
        } else {
            tracks.push(f.max(s + 1));
        }
    }
    tracks.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::list_schedule;
    use cool_ir::{Behavior, Expr};

    #[test]
    fn left_edge_packs_disjoint_intervals() {
        let mut v = vec![(0, 2), (2, 4), (4, 6)];
        assert_eq!(left_edge(&mut v), 1);
    }

    #[test]
    fn left_edge_separates_overlaps() {
        let mut v = vec![(0, 3), (1, 4), (2, 5)];
        assert_eq!(left_edge(&mut v), 3);
    }

    #[test]
    fn left_edge_mixed() {
        let mut v = vec![(0, 2), (1, 3), (2, 4), (3, 5)];
        assert_eq!(left_edge(&mut v), 2);
    }

    #[test]
    fn mac_binding_counts() {
        let cdfg = Cdfg::from_behavior(&Behavior::mac());
        let opts = HlsOptions::default();
        let sched = list_schedule(&cdfg, &opts, 0);
        let b = bind(&cdfg, &sched, &opts);
        assert_eq!(b.multipliers, 1);
        assert_eq!(b.dividers, 0);
        assert_eq!(b.alus, 1);
        // 3 inputs + mul result + add result, overlapping at various times.
        assert!(b.register_count >= 3);
    }

    #[test]
    fn sharing_creates_muxes() {
        // Three adds forced onto fewer ALUs.
        let b = Behavior::new(
            4,
            vec![Expr::binary(
                cool_ir::Op::Add,
                Expr::binary(cool_ir::Op::Add, Expr::Input(0), Expr::Input(1)),
                Expr::binary(cool_ir::Op::Add, Expr::Input(2), Expr::Input(3)),
            )],
        )
        .unwrap();
        let cdfg = Cdfg::from_behavior(&b);
        let opts = HlsOptions {
            max_alus: 1,
            ..Default::default()
        };
        let sched = list_schedule(&cdfg, &opts, 0);
        let bd = bind(&cdfg, &sched, &opts);
        assert_eq!(bd.alus, 1);
        assert!(
            bd.mux_count >= 2,
            "3 adds on 1 ALU need muxes, got {}",
            bd.mux_count
        );
    }

    #[test]
    fn fu_counts_respect_schedule_limits() {
        let b = Behavior::new(
            4,
            vec![Expr::binary(
                cool_ir::Op::Add,
                Expr::binary(cool_ir::Op::Mul, Expr::Input(0), Expr::Input(1)),
                Expr::binary(cool_ir::Op::Mul, Expr::Input(2), Expr::Input(3)),
            )],
        )
        .unwrap();
        let cdfg = Cdfg::from_behavior(&b);
        let opts = HlsOptions {
            max_multipliers: 1,
            ..Default::default()
        };
        let sched = list_schedule(&cdfg, &opts, 0);
        let bd = bind(&cdfg, &sched, &opts);
        assert!(
            bd.multipliers <= 1,
            "binding exceeded the scheduler's FU budget"
        );
    }
}
