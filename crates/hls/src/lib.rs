//! "Oscar"-style high-level synthesis.
//!
//! In the paper, hardware parts of a COOL design are synthesized by the
//! University of Dortmund HLS tool **Oscar** followed by Synopsys logic
//! synthesis. Neither tool is available, so this crate implements the same
//! class of high-level synthesis from scratch:
//!
//! 1. build a **control/data-flow graph** from a node behaviour
//!    ([`cdfg::Cdfg`]), with common-subexpression sharing;
//! 2. **schedule** it (ASAP, ALAP and resource-constrained list
//!    scheduling, [`schedule`]);
//! 3. **allocate and bind** functional units and registers
//!    (left-edge algorithm, [`binding`]);
//! 4. estimate **area in XC4000-class CLBs** and extract the datapath
//!    controller FSM ([`area`], [`HlsDesign`]).
//!
//! The reproduction relies on this crate in two roles: as the hardware
//! cost estimator during partitioning, and as the (deliberately
//! compute-heavy) hardware-synthesis stage of the design flow — the paper
//! observes that hardware synthesis consumes more than 90 % of the design
//! time, and this stage is what reproduces that shape.
//!
//! # Example
//!
//! ```
//! use cool_ir::Behavior;
//! use cool_hls::{synthesize, HlsOptions};
//!
//! let design = synthesize("mac", &Behavior::mac(), &HlsOptions::default());
//! assert!(design.latency_cycles >= 2); // multiply then add
//! assert!(design.area_clbs > 0);
//! ```

pub mod area;
pub mod binding;
pub mod cdfg;
pub mod schedule;

use cool_ir::codec::Codec;
use cool_ir::hash::{ContentHash, ContentHasher};
use cool_ir::Behavior;

pub use area::{operator_cost, OperatorCost};
pub use binding::Binding;
pub use cdfg::Cdfg;
pub use schedule::{Schedule, ScheduleKind};

/// Resource constraints and datapath parameters for one synthesis run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HlsOptions {
    /// Maximum multiplier instances (the expensive unit).
    pub max_multipliers: usize,
    /// Maximum divider instances.
    pub max_dividers: usize,
    /// Maximum ALU instances (everything that is not mul/div).
    pub max_alus: usize,
    /// Datapath word width in bits.
    pub bits: u16,
    /// Extra effort: iterations of the schedule/bind refinement loop. The
    /// value linearly scales synthesis time, mimicking the effort knob of a
    /// real HLS + logic-synthesis flow.
    pub effort: u32,
}

impl Default for HlsOptions {
    fn default() -> HlsOptions {
        HlsOptions {
            max_multipliers: 1,
            max_dividers: 1,
            max_alus: 2,
            bits: 16,
            effort: 4,
        }
    }
}

/// The result of synthesizing one behaviour into a datapath + controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HlsDesign {
    /// Name of the synthesized block (usually the graph node name).
    pub name: String,
    /// Latency of one activation in hardware clock cycles.
    pub latency_cycles: u64,
    /// Total area estimate in CLBs (datapath + registers + muxes + FSM).
    pub area_clbs: u32,
    /// Number of functional-unit instances allocated, by class
    /// `(multipliers, dividers, alus)`.
    pub fu_instances: (usize, usize, usize),
    /// Registers allocated by the left-edge algorithm.
    pub register_count: usize,
    /// 2:1 multiplexer equivalents in front of FU and register inputs.
    pub mux_count: usize,
    /// States of the extracted datapath-controller FSM (one per control
    /// step, plus an idle state).
    pub fsm_states: usize,
    /// Number of CDFG operations after common-subexpression sharing.
    pub operation_count: usize,
}

impl HlsDesign {
    /// `true` if the design fits an area budget of `clbs`.
    #[must_use]
    pub fn fits(&self, clbs: u32) -> bool {
        self.area_clbs <= clbs
    }
}

impl Codec for HlsDesign {
    fn encode(&self, e: &mut cool_ir::codec::Encoder) {
        e.put_str(&self.name);
        e.put_u64(self.latency_cycles);
        e.put_u32(self.area_clbs);
        self.fu_instances.encode(e);
        e.put_usize(self.register_count);
        e.put_usize(self.mux_count);
        e.put_usize(self.fsm_states);
        e.put_usize(self.operation_count);
    }

    fn decode(d: &mut cool_ir::codec::Decoder<'_>) -> Result<Self, cool_ir::codec::CodecError> {
        Ok(HlsDesign {
            name: d.take_str()?,
            latency_cycles: d.take_u64()?,
            area_clbs: d.take_u32()?,
            fu_instances: d.take()?,
            register_count: d.take_usize()?,
            mux_count: d.take_usize()?,
            fsm_states: d.take_usize()?,
            operation_count: d.take_usize()?,
        })
    }
}

impl ContentHash for HlsOptions {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_usize(self.max_multipliers);
        h.write_usize(self.max_dividers);
        h.write_usize(self.max_alus);
        h.write_u16(self.bits);
        h.write_u32(self.effort);
    }
}

impl ContentHash for HlsDesign {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_str(&self.name);
        h.write_u64(self.latency_cycles);
        h.write_u32(self.area_clbs);
        h.write_usize(self.fu_instances.0);
        h.write_usize(self.fu_instances.1);
        h.write_usize(self.fu_instances.2);
        h.write_usize(self.register_count);
        h.write_usize(self.mux_count);
        h.write_usize(self.fsm_states);
        h.write_usize(self.operation_count);
    }
}

/// Synthesize `behavior` under `options`.
///
/// Runs CDFG extraction, list scheduling under the FU constraints, FU and
/// register binding, and area estimation. Deterministic for equal inputs.
#[must_use]
pub fn synthesize(name: &str, behavior: &Behavior, options: &HlsOptions) -> HlsDesign {
    let cdfg = Cdfg::from_behavior(behavior);
    let mut best: Option<(Schedule, Binding)> = None;
    // The refinement loop re-runs scheduling with varied priorities (and
    // therefore different binding outcomes); real HLS/logic-synthesis
    // iterates comparably, which is what makes hardware synthesis dominate
    // flow time in the paper's measurements.
    for round in 0..options.effort.max(1) {
        let sched = schedule::list_schedule(&cdfg, options, u64::from(round));
        let bind = binding::bind(&cdfg, &sched, options);
        let better = match &best {
            None => true,
            Some((s, b)) => (sched.length, bind.register_count) < (s.length, b.register_count),
        };
        if better {
            best = Some((sched, bind));
        }
    }
    let (sched, bind) = best.expect("effort >= 1 always yields a candidate");
    let fsm_states = sched.length as usize + 1; // + idle
    let area = area::estimate_area(&cdfg, &sched, &bind, fsm_states, options);
    HlsDesign {
        name: name.to_string(),
        latency_cycles: sched.length,
        area_clbs: area,
        fu_instances: (bind.multipliers, bind.dividers, bind.alus),
        register_count: bind.register_count,
        mux_count: bind.mux_count,
        fsm_states,
        operation_count: cdfg.op_count(),
    }
}

/// Fast area/latency estimate used inside partitioning loops: one list
/// schedule, no refinement. Roughly `effort`× cheaper than [`synthesize`].
#[must_use]
pub fn estimate(name: &str, behavior: &Behavior, options: &HlsOptions) -> HlsDesign {
    let mut opts = options.clone();
    opts.effort = 1;
    synthesize(name, behavior, &opts)
}

/// Synthesize many independent behaviours, fanning the [`synthesize`]
/// calls out over `jobs` scoped worker threads.
///
/// Hardware synthesis of distinct nodes shares no state, so this is the
/// embarrassingly parallel layer of the COOL flow (the paper measures
/// hardware synthesis at > 90 % of design time). Work is distributed via
/// an atomic index queue, so unevenly sized behaviours still balance.
/// The result order matches the input order and every design is
/// bit-identical to what a serial [`synthesize`] loop produces, for any
/// `jobs` value.
///
/// `jobs == 0` uses [`std::thread::available_parallelism`].
#[must_use]
pub fn synthesize_many(
    items: &[(&str, &Behavior)],
    options: &HlsOptions,
    jobs: usize,
) -> Vec<HlsDesign> {
    cool_ir::par::par_map(items, jobs, |(name, behavior)| {
        synthesize(name, behavior, options)
    })
}

pub use cool_ir::par::effective_jobs;

#[cfg(test)]
mod tests {
    use super::*;
    use cool_ir::{Expr, Op};

    #[test]
    fn mac_uses_two_steps_minimum() {
        let d = synthesize("mac", &Behavior::mac(), &HlsOptions::default());
        assert!(d.latency_cycles > area::operator_cost(Op::Mul, 16).latency);
        assert_eq!(d.operation_count, 2);
    }

    #[test]
    fn resource_constraint_serializes_multipliers() {
        // Two independent multiplies with one multiplier must serialize.
        let b = Behavior::new(
            4,
            vec![Expr::binary(
                Op::Add,
                Expr::binary(Op::Mul, Expr::Input(0), Expr::Input(1)),
                Expr::binary(Op::Mul, Expr::Input(2), Expr::Input(3)),
            )],
        )
        .unwrap();
        let one = synthesize(
            "m1",
            &b,
            &HlsOptions {
                max_multipliers: 1,
                ..Default::default()
            },
        );
        let two = synthesize(
            "m2",
            &b,
            &HlsOptions {
                max_multipliers: 2,
                ..Default::default()
            },
        );
        assert!(one.latency_cycles > two.latency_cycles);
        assert!(
            two.area_clbs > one.area_clbs,
            "more FUs must cost more area"
        );
    }

    #[test]
    fn cse_shares_identical_subtrees() {
        // (x*y) + (x*y) should synthesize one multiply.
        let b = Behavior::new(
            2,
            vec![Expr::binary(
                Op::Add,
                Expr::binary(Op::Mul, Expr::Input(0), Expr::Input(1)),
                Expr::binary(Op::Mul, Expr::Input(0), Expr::Input(1)),
            )],
        )
        .unwrap();
        let d = synthesize("cse", &b, &HlsOptions::default());
        assert_eq!(d.operation_count, 2, "mul shared + one add");
    }

    #[test]
    fn estimate_is_never_better_than_refined() {
        let b = Behavior::mac();
        let full = synthesize("x", &b, &HlsOptions::default());
        let est = estimate("x", &b, &HlsOptions::default());
        assert!(est.latency_cycles >= full.latency_cycles);
    }

    #[test]
    fn wider_datapath_costs_more() {
        let b = Behavior::mac();
        let d16 = synthesize(
            "w16",
            &b,
            &HlsOptions {
                bits: 16,
                ..Default::default()
            },
        );
        let d32 = synthesize(
            "w32",
            &b,
            &HlsOptions {
                bits: 32,
                ..Default::default()
            },
        );
        assert!(d32.area_clbs > d16.area_clbs);
    }

    #[test]
    fn deterministic() {
        let b = Behavior::mac();
        let a = synthesize("d", &b, &HlsOptions::default());
        let c = synthesize("d", &b, &HlsOptions::default());
        assert_eq!(a, c);
    }

    #[test]
    fn fits_checks_budget() {
        let d = synthesize("f", &Behavior::mac(), &HlsOptions::default());
        assert!(d.fits(d.area_clbs));
        assert!(!d.fits(d.area_clbs - 1));
    }

    #[test]
    fn synthesize_many_matches_serial_for_any_job_count() {
        let behaviors = [
            Behavior::mac(),
            Behavior::unary(Op::Neg),
            Behavior::binary(Op::Div),
            Behavior::binary(Op::Mul),
            Behavior::mac(),
        ];
        let named: Vec<(String, &Behavior)> = behaviors
            .iter()
            .enumerate()
            .map(|(i, b)| (format!("n{i}"), b))
            .collect();
        let items: Vec<(&str, &Behavior)> = named.iter().map(|(n, b)| (n.as_str(), *b)).collect();
        let opts = HlsOptions::default();
        let serial = synthesize_many(&items, &opts, 1);
        for jobs in [2usize, 4, 7, 0] {
            assert_eq!(synthesize_many(&items, &opts, jobs), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn effective_jobs_clamps() {
        assert_eq!(effective_jobs(4, 2), 2);
        assert_eq!(effective_jobs(1, 100), 1);
        assert!(effective_jobs(0, 100) >= 1);
        assert_eq!(effective_jobs(3, 0), 1);
    }
}
