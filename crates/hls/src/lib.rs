//! "Oscar"-style high-level synthesis.
//!
//! In the paper, hardware parts of a COOL design are synthesized by the
//! University of Dortmund HLS tool **Oscar** followed by Synopsys logic
//! synthesis. Neither tool is available, so this crate implements the same
//! class of high-level synthesis from scratch:
//!
//! 1. build a **control/data-flow graph** from a node behaviour
//!    ([`cdfg::Cdfg`]), with common-subexpression sharing;
//! 2. **schedule** it (ASAP, ALAP and resource-constrained list
//!    scheduling, [`schedule`]);
//! 3. **allocate and bind** functional units and registers
//!    (left-edge algorithm, [`binding`]);
//! 4. estimate **area in XC4000-class CLBs** and extract the datapath
//!    controller FSM ([`area`], [`HlsDesign`]).
//!
//! The reproduction relies on this crate in two roles: as the hardware
//! cost estimator during partitioning, and as the (deliberately
//! compute-heavy) hardware-synthesis stage of the design flow — the paper
//! observes that hardware synthesis consumes more than 90 % of the design
//! time, and this stage is what reproduces that shape.
//!
//! # Example
//!
//! ```
//! use cool_ir::Behavior;
//! use cool_hls::{synthesize, HlsOptions};
//!
//! let design = synthesize("mac", &Behavior::mac(), &HlsOptions::default());
//! assert!(design.latency_cycles >= 2); // multiply then add
//! assert!(design.area_clbs > 0);
//! ```

pub mod area;
pub mod binding;
pub mod cdfg;
pub mod schedule;

use cool_ir::codec::Codec;
use cool_ir::hash::{ContentHash, ContentHasher};
use cool_ir::Behavior;

pub use area::{operator_cost, OperatorCost};
pub use binding::Binding;
pub use cdfg::Cdfg;
pub use schedule::{Schedule, ScheduleKind};

/// Resource constraints and datapath parameters for one synthesis run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HlsOptions {
    /// Maximum multiplier instances (the expensive unit).
    pub max_multipliers: usize,
    /// Maximum divider instances.
    pub max_dividers: usize,
    /// Maximum ALU instances (everything that is not mul/div).
    pub max_alus: usize,
    /// Datapath word width in bits.
    pub bits: u16,
    /// Extra effort: iterations of the schedule/bind refinement loop. The
    /// value linearly scales synthesis time, mimicking the effort knob of a
    /// real HLS + logic-synthesis flow.
    pub effort: u32,
}

impl Default for HlsOptions {
    fn default() -> HlsOptions {
        HlsOptions {
            max_multipliers: 1,
            max_dividers: 1,
            max_alus: 2,
            bits: 16,
            effort: 4,
        }
    }
}

/// The result of synthesizing one behaviour into a datapath + controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HlsDesign {
    /// Name of the synthesized block (usually the graph node name).
    pub name: String,
    /// Latency of one activation in hardware clock cycles.
    pub latency_cycles: u64,
    /// Total area estimate in CLBs (datapath + registers + muxes + FSM).
    pub area_clbs: u32,
    /// Number of functional-unit instances allocated, by class
    /// `(multipliers, dividers, alus)`.
    pub fu_instances: (usize, usize, usize),
    /// Registers allocated by the left-edge algorithm.
    pub register_count: usize,
    /// 2:1 multiplexer equivalents in front of FU and register inputs.
    pub mux_count: usize,
    /// States of the extracted datapath-controller FSM (one per control
    /// step, plus an idle state).
    pub fsm_states: usize,
    /// Number of CDFG operations after common-subexpression sharing.
    pub operation_count: usize,
}

impl HlsDesign {
    /// `true` if the design fits an area budget of `clbs`.
    #[must_use]
    pub fn fits(&self, clbs: u32) -> bool {
        self.area_clbs <= clbs
    }

    /// The same design under a different block name.
    ///
    /// Everything [`synthesize`] computes besides `name` depends only on
    /// `(behavior, options)`, so a cached design can be re-labelled for any
    /// node whose behaviour digests to the same [`node_key`].
    #[must_use]
    pub fn renamed(&self, name: &str) -> HlsDesign {
        HlsDesign {
            name: name.to_string(),
            ..self.clone()
        }
    }
}

impl Codec for HlsDesign {
    fn encode(&self, e: &mut cool_ir::codec::Encoder) {
        e.put_str(&self.name);
        e.put_u64(self.latency_cycles);
        e.put_u32(self.area_clbs);
        self.fu_instances.encode(e);
        e.put_usize(self.register_count);
        e.put_usize(self.mux_count);
        e.put_usize(self.fsm_states);
        e.put_usize(self.operation_count);
    }

    fn decode(d: &mut cool_ir::codec::Decoder<'_>) -> Result<Self, cool_ir::codec::CodecError> {
        Ok(HlsDesign {
            name: d.take_str()?,
            latency_cycles: d.take_u64()?,
            area_clbs: d.take_u32()?,
            fu_instances: d.take()?,
            register_count: d.take_usize()?,
            mux_count: d.take_usize()?,
            fsm_states: d.take_usize()?,
            operation_count: d.take_usize()?,
        })
    }
}

impl ContentHash for HlsOptions {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_usize(self.max_multipliers);
        h.write_usize(self.max_dividers);
        h.write_usize(self.max_alus);
        h.write_u16(self.bits);
        h.write_u32(self.effort);
    }
}

impl Codec for HlsOptions {
    fn encode(&self, e: &mut cool_ir::codec::Encoder) {
        e.put_usize(self.max_multipliers);
        e.put_usize(self.max_dividers);
        e.put_usize(self.max_alus);
        e.put_u16(self.bits);
        e.put_u32(self.effort);
    }

    fn decode(d: &mut cool_ir::codec::Decoder<'_>) -> Result<Self, cool_ir::codec::CodecError> {
        Ok(HlsOptions {
            max_multipliers: d.take_usize()?,
            max_dividers: d.take_usize()?,
            max_alus: d.take_usize()?,
            bits: d.take_u16()?,
            effort: d.take_u32()?,
        })
    }
}

impl ContentHash for HlsDesign {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_str(&self.name);
        h.write_u64(self.latency_cycles);
        h.write_u32(self.area_clbs);
        h.write_usize(self.fu_instances.0);
        h.write_usize(self.fu_instances.1);
        h.write_usize(self.fu_instances.2);
        h.write_usize(self.register_count);
        h.write_usize(self.mux_count);
        h.write_usize(self.fsm_states);
        h.write_usize(self.operation_count);
    }
}

/// Synthesize `behavior` under `options`.
///
/// Runs CDFG extraction, list scheduling under the FU constraints, FU and
/// register binding, and area estimation. Deterministic for equal inputs.
#[must_use]
pub fn synthesize(name: &str, behavior: &Behavior, options: &HlsOptions) -> HlsDesign {
    let cdfg = Cdfg::from_behavior(behavior);
    let mut best: Option<(Schedule, Binding)> = None;
    // The refinement loop re-runs scheduling with varied priorities (and
    // therefore different binding outcomes); real HLS/logic-synthesis
    // iterates comparably, which is what makes hardware synthesis dominate
    // flow time in the paper's measurements.
    for round in 0..options.effort.max(1) {
        let sched = schedule::list_schedule(&cdfg, options, u64::from(round));
        let bind = binding::bind(&cdfg, &sched, options);
        let better = match &best {
            None => true,
            Some((s, b)) => (sched.length, bind.register_count) < (s.length, b.register_count),
        };
        if better {
            best = Some((sched, bind));
        }
    }
    let (sched, bind) = best.expect("effort >= 1 always yields a candidate");
    let fsm_states = sched.length as usize + 1; // + idle
    let area = area::estimate_area(&cdfg, &sched, &bind, fsm_states, options);
    HlsDesign {
        name: name.to_string(),
        latency_cycles: sched.length,
        area_clbs: area,
        fu_instances: (bind.multipliers, bind.dividers, bind.alus),
        register_count: bind.register_count,
        mux_count: bind.mux_count,
        fsm_states,
        operation_count: cdfg.op_count(),
    }
}

/// Fast area/latency estimate used inside partitioning loops: one list
/// schedule, no refinement. Roughly `effort`× cheaper than [`synthesize`].
#[must_use]
pub fn estimate(name: &str, behavior: &Behavior, options: &HlsOptions) -> HlsDesign {
    let mut opts = options.clone();
    opts.effort = 1;
    synthesize(name, behavior, &opts)
}

/// Synthesize many independent behaviours, fanning the [`synthesize`]
/// calls out over `jobs` scoped worker threads.
///
/// Hardware synthesis of distinct nodes shares no state, so this is the
/// embarrassingly parallel layer of the COOL flow (the paper measures
/// hardware synthesis at > 90 % of design time). Work is distributed via
/// an atomic index queue, so unevenly sized behaviours still balance.
/// The result order matches the input order and every design is
/// bit-identical to what a serial [`synthesize`] loop produces, for any
/// `jobs` value.
///
/// `jobs == 0` uses [`std::thread::available_parallelism`].
#[must_use]
pub fn synthesize_many(
    items: &[(&str, &Behavior)],
    options: &HlsOptions,
    jobs: usize,
) -> Vec<HlsDesign> {
    cool_ir::par::par_map(items, jobs, |(name, behavior)| {
        synthesize(name, behavior, options)
    })
}

/// Key-space namespace mixed into every per-node HLS cache key.
///
/// Bump the suffix whenever the meaning of a node key changes (hash inputs,
/// design layout) so stale entries can never alias fresh ones.
pub const NODE_KEY_SCHEME: &str = "cool-node-key/hls-v1";

/// Content-addressed cache key for one node's synthesized design.
///
/// The node *name* is deliberately excluded: the design is a pure function
/// of `(behavior, options)`, so identically-behaving nodes share one entry
/// and a rename alone never invalidates the cache. Consumers re-label
/// cached designs with [`HlsDesign::renamed`].
#[must_use]
pub fn node_key(behavior: &Behavior, options: &HlsOptions) -> u128 {
    let mut h = ContentHasher::new();
    h.write_str(NODE_KEY_SCHEME);
    behavior.content_hash(&mut h);
    options.content_hash(&mut h);
    h.finish()
}

/// Where a cached per-node design was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheSource {
    /// Served from the in-memory tier.
    Memory,
    /// Promoted from an on-disk tier.
    Disk,
}

/// Per-node provenance reported by [`synthesize_many_cached`], in input
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeOutcome {
    /// The node's design was synthesized from scratch this run.
    Computed,
    /// Reused from the cache's in-memory tier.
    ReusedMemory,
    /// Reused from the cache's disk tier.
    ReusedDisk,
}

/// A node-level design cache consulted by [`synthesize_many_cached`].
///
/// `cool_hls` cannot depend on the flow engine, so the two-tier stage cache
/// implements this trait on the engine side and hands it down. Entries are
/// stored name-independently (conventionally under the empty name); lookups
/// return the stored design plus which tier served it.
pub trait NodeCache {
    /// Fetch the design stored under `key`, if any.
    fn lookup(&self, key: u128) -> Option<(HlsDesign, CacheSource)>;
    /// Store `design` under `key`. Implementations should treat re-inserts
    /// of an existing key as a no-op.
    fn insert(&self, key: u128, design: &HlsDesign);
}

/// [`synthesize_many`], with a per-node cache tier in front of it.
///
/// Each node is keyed by [`node_key`]; hits are re-labelled with the node's
/// name and only the misses are fanned out over `jobs` worker threads (in
/// input order, so results stay bit-identical to a serial cold run for any
/// `jobs` value). Freshly synthesized designs are inserted under the empty
/// name, making entries shareable across identically-behaving nodes and
/// across sessions. Returns the designs plus one [`NodeOutcome`] per input.
#[must_use]
pub fn synthesize_many_cached(
    items: &[(&str, &Behavior)],
    options: &HlsOptions,
    jobs: usize,
    cache: &dyn NodeCache,
) -> (Vec<HlsDesign>, Vec<NodeOutcome>) {
    let mut results: Vec<Option<HlsDesign>> = vec![None; items.len()];
    let mut outcomes = vec![NodeOutcome::Computed; items.len()];
    let mut missing: Vec<(usize, u128)> = Vec::new();
    for (i, (name, behavior)) in items.iter().enumerate() {
        let key = node_key(behavior, options);
        match cache.lookup(key) {
            Some((design, source)) => {
                debug_assert!(design.name.is_empty(), "cached designs are unnamed");
                results[i] = Some(design.renamed(name));
                outcomes[i] = match source {
                    CacheSource::Memory => NodeOutcome::ReusedMemory,
                    CacheSource::Disk => NodeOutcome::ReusedDisk,
                };
            }
            None => missing.push((i, key)),
        }
    }
    let todo: Vec<(&str, &Behavior)> = missing.iter().map(|&(i, _)| items[i]).collect();
    let fresh = synthesize_many(&todo, options, jobs);
    for (&(i, key), design) in missing.iter().zip(fresh) {
        cache.insert(key, &design.renamed(""));
        results[i] = Some(design);
    }
    let designs = results
        .into_iter()
        .map(|d| d.expect("every slot is a hit or a miss"))
        .collect();
    (designs, outcomes)
}

pub use cool_ir::par::effective_jobs;

#[cfg(test)]
mod tests {
    use super::*;
    use cool_ir::{Expr, Op};

    #[test]
    fn mac_uses_two_steps_minimum() {
        let d = synthesize("mac", &Behavior::mac(), &HlsOptions::default());
        assert!(d.latency_cycles > area::operator_cost(Op::Mul, 16).latency);
        assert_eq!(d.operation_count, 2);
    }

    #[test]
    fn resource_constraint_serializes_multipliers() {
        // Two independent multiplies with one multiplier must serialize.
        let b = Behavior::new(
            4,
            vec![Expr::binary(
                Op::Add,
                Expr::binary(Op::Mul, Expr::Input(0), Expr::Input(1)),
                Expr::binary(Op::Mul, Expr::Input(2), Expr::Input(3)),
            )],
        )
        .unwrap();
        let one = synthesize(
            "m1",
            &b,
            &HlsOptions {
                max_multipliers: 1,
                ..Default::default()
            },
        );
        let two = synthesize(
            "m2",
            &b,
            &HlsOptions {
                max_multipliers: 2,
                ..Default::default()
            },
        );
        assert!(one.latency_cycles > two.latency_cycles);
        assert!(
            two.area_clbs > one.area_clbs,
            "more FUs must cost more area"
        );
    }

    #[test]
    fn cse_shares_identical_subtrees() {
        // (x*y) + (x*y) should synthesize one multiply.
        let b = Behavior::new(
            2,
            vec![Expr::binary(
                Op::Add,
                Expr::binary(Op::Mul, Expr::Input(0), Expr::Input(1)),
                Expr::binary(Op::Mul, Expr::Input(0), Expr::Input(1)),
            )],
        )
        .unwrap();
        let d = synthesize("cse", &b, &HlsOptions::default());
        assert_eq!(d.operation_count, 2, "mul shared + one add");
    }

    #[test]
    fn estimate_is_never_better_than_refined() {
        let b = Behavior::mac();
        let full = synthesize("x", &b, &HlsOptions::default());
        let est = estimate("x", &b, &HlsOptions::default());
        assert!(est.latency_cycles >= full.latency_cycles);
    }

    #[test]
    fn wider_datapath_costs_more() {
        let b = Behavior::mac();
        let d16 = synthesize(
            "w16",
            &b,
            &HlsOptions {
                bits: 16,
                ..Default::default()
            },
        );
        let d32 = synthesize(
            "w32",
            &b,
            &HlsOptions {
                bits: 32,
                ..Default::default()
            },
        );
        assert!(d32.area_clbs > d16.area_clbs);
    }

    #[test]
    fn deterministic() {
        let b = Behavior::mac();
        let a = synthesize("d", &b, &HlsOptions::default());
        let c = synthesize("d", &b, &HlsOptions::default());
        assert_eq!(a, c);
    }

    #[test]
    fn fits_checks_budget() {
        let d = synthesize("f", &Behavior::mac(), &HlsOptions::default());
        assert!(d.fits(d.area_clbs));
        assert!(!d.fits(d.area_clbs - 1));
    }

    #[test]
    fn synthesize_many_matches_serial_for_any_job_count() {
        let behaviors = [
            Behavior::mac(),
            Behavior::unary(Op::Neg),
            Behavior::binary(Op::Div),
            Behavior::binary(Op::Mul),
            Behavior::mac(),
        ];
        let named: Vec<(String, &Behavior)> = behaviors
            .iter()
            .enumerate()
            .map(|(i, b)| (format!("n{i}"), b))
            .collect();
        let items: Vec<(&str, &Behavior)> = named.iter().map(|(n, b)| (n.as_str(), *b)).collect();
        let opts = HlsOptions::default();
        let serial = synthesize_many(&items, &opts, 1);
        for jobs in [2usize, 4, 7, 0] {
            assert_eq!(synthesize_many(&items, &opts, jobs), serial, "jobs={jobs}");
        }
    }

    /// HashMap-backed [`NodeCache`] for exercising the cached fan-out.
    #[derive(Default)]
    struct MapCache {
        map: std::cell::RefCell<std::collections::HashMap<u128, HlsDesign>>,
        hits: std::cell::Cell<usize>,
        inserts: std::cell::Cell<usize>,
    }

    impl NodeCache for MapCache {
        fn lookup(&self, key: u128) -> Option<(HlsDesign, CacheSource)> {
            let hit = self.map.borrow().get(&key).cloned();
            if hit.is_some() {
                self.hits.set(self.hits.get() + 1);
            }
            hit.map(|d| (d, CacheSource::Memory))
        }

        fn insert(&self, key: u128, design: &HlsDesign) {
            self.inserts.set(self.inserts.get() + 1);
            self.map
                .borrow_mut()
                .entry(key)
                .or_insert_with(|| design.clone());
        }
    }

    #[test]
    fn node_key_ignores_name_but_not_behavior_or_options() {
        let opts = HlsOptions::default();
        let mac = node_key(&Behavior::mac(), &opts);
        assert_eq!(mac, node_key(&Behavior::mac(), &opts), "deterministic");
        assert_ne!(mac, node_key(&Behavior::binary(Op::Mul), &opts));
        let wide = HlsOptions {
            bits: 32,
            ..Default::default()
        };
        assert_ne!(mac, node_key(&Behavior::mac(), &wide));
    }

    #[test]
    fn cached_fanout_matches_uncached_at_any_job_count() {
        let behaviors = [
            Behavior::mac(),
            Behavior::unary(Op::Neg),
            Behavior::binary(Op::Div),
            Behavior::binary(Op::Mul),
            Behavior::mac(), // duplicate of item 0: shares a key
        ];
        let items: Vec<(&str, &Behavior)> = ["a", "b", "c", "d", "e"]
            .iter()
            .zip(&behaviors)
            .map(|(n, b)| (*n, b))
            .collect();
        let opts = HlsOptions::default();
        let plain = synthesize_many(&items, &opts, 1);
        for jobs in [1usize, 2, 4, 0] {
            let cache = MapCache::default();
            // Cold pass: everything computed, nothing served.
            let (cold, outcomes) = synthesize_many_cached(&items, &opts, jobs, &cache);
            assert_eq!(cold, plain, "cold jobs={jobs}");
            assert!(outcomes.iter().all(|o| *o == NodeOutcome::Computed));
            // Warm pass: byte-identical designs, all served from cache.
            let (warm, outcomes) = synthesize_many_cached(&items, &opts, jobs, &cache);
            assert_eq!(warm, plain, "warm jobs={jobs}");
            assert!(outcomes.iter().all(|o| *o == NodeOutcome::ReusedMemory));
            assert_eq!(cache.hits.get(), items.len());
        }
    }

    #[test]
    fn cached_designs_are_stored_unnamed_and_relabelled() {
        let cache = MapCache::default();
        let opts = HlsOptions::default();
        let b = Behavior::mac();
        let (first, _) = synthesize_many_cached(&[("alpha", &b)], &opts, 1, &cache);
        assert_eq!(first[0].name, "alpha");
        assert!(cache.map.borrow().values().all(|d| d.name.is_empty()));
        // A rename alone is a cache hit: same behaviour, new label.
        let (second, outcomes) = synthesize_many_cached(&[("beta", &b)], &opts, 1, &cache);
        assert_eq!(second[0].name, "beta");
        assert_eq!(outcomes, vec![NodeOutcome::ReusedMemory]);
        assert_eq!(second[0].renamed("alpha"), first[0]);
    }

    #[test]
    fn effective_jobs_clamps() {
        assert_eq!(effective_jobs(4, 2), 2);
        assert_eq!(effective_jobs(1, 100), 1);
        assert!(effective_jobs(0, 100) >= 1);
        assert_eq!(effective_jobs(3, 0), 1);
    }
}
