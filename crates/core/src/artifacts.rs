//! Everything one flow run produces.

use std::collections::BTreeMap;

use cool_cost::{CommScheme, CostModel};
use cool_hls::HlsDesign;
use cool_ir::{PartitioningGraph, Resource, Target};
use cool_partition::PartitionResult;
use cool_rtl::encoding::StateEncoding;
use cool_rtl::{Netlist, SystemController};
use cool_schedule::StaticSchedule;
use cool_sim::{SimResult, Simulator};
use cool_stg::{MemoryMap, MinimizeStats, Stg};

use crate::stage::FlowContext;
use crate::timing::{FlowTrace, StageTimings};
use crate::FlowError;

/// Everything one flow run produces.
#[derive(Debug, Clone)]
pub struct FlowArtifacts {
    /// The input specification.
    pub graph: PartitioningGraph,
    /// The target board.
    pub target: Target,
    /// Cost model used by partitioning and scheduling.
    pub cost: CostModel,
    /// The partitioning outcome (mapping + stats).
    pub partition: PartitionResult,
    /// The static schedule.
    pub schedule: StaticSchedule,
    /// The raw STG.
    pub stg: Stg,
    /// The minimized STG.
    pub stg_minimized: Stg,
    /// Minimization statistics.
    pub minimize_stats: MinimizeStats,
    /// The communication memory map.
    pub memory_map: MemoryMap,
    /// Full-effort HLS results for every hardware node.
    pub hls_designs: Vec<HlsDesign>,
    /// The synthesized system controller.
    pub controller: SystemController,
    /// Its optimized state encoding.
    pub encoding: StateEncoding,
    /// CLB placement per hardware device (the Xilinx implementation
    /// stand-in), one entry per FPGA hosting logic.
    pub placements: Vec<(Resource, cool_rtl::place::Placement)>,
    /// The generated netlist (Figure 4).
    pub netlist: Netlist,
    /// Emitted VHDL units: `(file name, source)`.
    pub vhdl: Vec<(String, String)>,
    /// Generated C programs.
    pub c_programs: Vec<cool_codegen::CProgram>,
    /// Per-stage wall-clock times (paper buckets, derived from `trace`).
    pub timings: StageTimings,
    /// The full engine timing journal, one record per stage.
    pub trace: FlowTrace,
    /// Communication scheme in effect.
    pub scheme: CommScheme,
}

impl FlowArtifacts {
    /// Assemble the artifact set from a completed engine context.
    ///
    /// # Errors
    ///
    /// [`FlowError::MissingArtifact`] if a producing stage did not run
    /// (i.e. a custom engine skipped part of the standard flow).
    pub fn from_context(cx: FlowContext<'_>, trace: FlowTrace) -> Result<FlowArtifacts, FlowError> {
        let timings = StageTimings::from_trace(&trace);
        let scheme = cx.options.scheme;
        Ok(FlowArtifacts {
            graph: cx.graph.clone(),
            target: cx.target.clone(),
            cost: cx.cost.ok_or(FlowError::MissingArtifact("cost model"))?,
            partition: cx
                .partition
                .ok_or(FlowError::MissingArtifact("partition result"))?,
            schedule: cx
                .schedule
                .ok_or(FlowError::MissingArtifact("static schedule"))?,
            stg: cx.stg.ok_or(FlowError::MissingArtifact("STG"))?,
            stg_minimized: cx
                .stg_minimized
                .ok_or(FlowError::MissingArtifact("minimized STG"))?,
            minimize_stats: cx
                .minimize_stats
                .ok_or(FlowError::MissingArtifact("minimization stats"))?,
            memory_map: cx
                .memory_map
                .ok_or(FlowError::MissingArtifact("memory map"))?,
            hls_designs: cx
                .hls_designs
                .ok_or(FlowError::MissingArtifact("HLS designs"))?,
            controller: cx
                .controller
                .ok_or(FlowError::MissingArtifact("system controller"))?,
            encoding: cx
                .encoding
                .ok_or(FlowError::MissingArtifact("state encoding"))?,
            placements: cx
                .placements
                .ok_or(FlowError::MissingArtifact("placements"))?,
            netlist: cx.netlist.ok_or(FlowError::MissingArtifact("netlist"))?,
            vhdl: cx.vhdl.ok_or(FlowError::MissingArtifact("VHDL units"))?,
            c_programs: cx
                .c_programs
                .ok_or(FlowError::MissingArtifact("C programs"))?,
            timings,
            trace,
            scheme,
        })
    }

    /// Simulate one system invocation on the board stand-in and check the
    /// outputs against the reference evaluator.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn simulate(&self, inputs: &BTreeMap<String, i64>) -> Result<SimResult, FlowError> {
        let sim = Simulator::new(
            &self.graph,
            &self.partition.mapping,
            &self.schedule,
            &self.memory_map,
            &self.cost,
            self.scheme,
        );
        Ok(sim.run_checked(inputs)?)
    }

    /// A human-readable design report: partition summary, schedule
    /// makespan, STG sizes, memory usage, netlist inventory and timing
    /// breakdown.
    #[must_use]
    pub fn report(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "design `{}` on {}\n",
            self.graph.name(),
            self.target
        ));
        s.push_str(&format!(
            "partitioning ({}, {}): {} sw node(s), {} hw node(s), makespan {} cycles\n",
            self.partition.algorithm,
            self.partition.optimality_label(),
            self.partition.software_nodes(&self.graph),
            self.partition.hardware_nodes(&self.graph),
            self.partition.makespan,
        ));
        for (i, used) in self.partition.hw_area.iter().enumerate() {
            s.push_str(&format!(
                "  {}: {used}/{} CLBs\n",
                self.target.hw[i].name, self.target.hw[i].clb_capacity
            ));
        }
        s.push_str(&format!(
            "STG: {} -> {} states ({}% reduction), {} transfer cell(s), {} byte(s)\n",
            self.minimize_stats.states_before,
            self.minimize_stats.states_after,
            (self.minimize_stats.reduction() * 100.0).round(),
            self.memory_map.cell_count(),
            self.memory_map.bytes_used(),
        ));
        s.push_str(&format!(
            "netlist: {} component(s), {} net(s); controller: {} states, {} FF binary\n",
            self.netlist.components.len(),
            self.netlist.nets.len(),
            self.controller.stg().state_count(),
            self.controller.binary_ffs(),
        ));
        s.push_str(&format!(
            "VHDL units: {}, C units: {}\n",
            self.vhdl.len(),
            self.c_programs.len()
        ));
        for (res, placed) in &self.placements {
            s.push_str(&format!(
                "placement {}: {} CLBs, HPWL {} ({:.0}% better than initial)\n",
                self.target.resource_name(*res),
                placed.positions.len(),
                placed.wirelength,
                placed.improvement() * 100.0,
            ));
        }
        s.push_str("timing breakdown:\n");
        s.push_str(&self.timings.to_table());
        s
    }
}
