//! The content-addressed stage cache: an in-memory LRU tier backed by an
//! optional persistent on-disk tier and an optional remote fleet tier
//! (a `coold` daemon reached through [`crate::remote::RemoteStore`]).
//!
//! Sweeps (`res2` area budgets, the partitioner and communication-scheme
//! ablations) re-run the whole spec→…→codegen pipeline per candidate even
//! though most upstream stage outputs are identical across candidates.
//! The [`StageCache`] makes those prefixes incremental: the engine keys
//! every stage on a 128-bit content digest of precisely what the stage
//! reads (the dependency-DAG keys of [`crate::engine::Engine::run`]), and
//! on a key match it skips the stage and restores the artifacts the
//! original run deposited into the [`FlowContext`].
//!
//! The cache is `Arc`-shared and mutex-guarded so one instance can serve
//! many concurrent [`crate::FlowSession`]s (sweep workers, the
//! [`crate::server`] daemon's clients); entries are bounded
//! by an LRU policy. With a disk tier attached
//! ([`StageCache::persistent`]), every insert is written through to a
//! cache directory and every in-memory miss consults it — that is what
//! lets a *fresh process* (a new CLI invocation, a CI job) warm-start
//! from a previous run's work. Because every stage is deterministic for
//! equal context contents (the [`crate::stage::Stage`] contract),
//! restoring a cached delta is byte-identical to re-running the stage —
//! the determinism battery in `tests/disk_cache.rs` enforces exactly
//! that, cold and warm, in-memory and from disk.

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use cool_ir::codec::{Codec, CodecError, Decoder, Encoder};
use cool_ir::hash::digest;

use crate::disk::{DiskStore, Load};
use crate::stage::FlowContext;

/// The content digest a stage execution is cached under.
pub type StageKey = u128;

/// The single source of truth for the artifact slot ⇄ index mapping:
/// invokes `$macro_cb!(slot_name, index, Variant)` once per slot of
/// [`FlowContext`] / [`ArtifactDelta`] / [`ArtifactSlot`]. Adding a slot
/// means adding one line here (plus the `ArtifactDelta` field and the
/// `ArtifactSlot` variant); every flags/capture/apply/digest/codec loop
/// below derives from it.
macro_rules! for_each_slot {
    ($macro_cb:ident) => {
        $macro_cb!(cost, 0, Cost);
        $macro_cb!(partition, 1, Partition);
        $macro_cb!(schedule, 2, Schedule);
        $macro_cb!(stg, 3, Stg);
        $macro_cb!(stg_minimized, 4, StgMinimized);
        $macro_cb!(minimize_stats, 5, MinimizeStats);
        $macro_cb!(memory_map, 6, MemoryMap);
        $macro_cb!(hw_nodes, 7, HwNodes);
        $macro_cb!(hls_designs, 8, HlsDesigns);
        $macro_cb!(controller, 9, Controller);
        $macro_cb!(encoding, 10, Encoding);
        $macro_cb!(netlist, 11, Netlist);
        $macro_cb!(vhdl, 12, Vhdl);
        $macro_cb!(placements, 13, Placements);
        $macro_cb!(c_programs, 14, CPrograms);
    };
}

/// Number of artifact slots in a [`FlowContext`].
pub const SLOT_COUNT: usize = 15;

/// One artifact slot of the [`FlowContext`], as a value — the vocabulary
/// of [`crate::stage::Stage::reads`] / [`crate::stage::Stage::writes`]
/// declarations and of the per-slot content digests the engine keys
/// stages with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactSlot {
    /// The cost model (`cost` stage, or pre-seeded).
    Cost,
    /// The partitioning outcome.
    Partition,
    /// The static schedule.
    Schedule,
    /// The raw STG.
    Stg,
    /// The minimized STG.
    StgMinimized,
    /// STG minimization statistics.
    MinimizeStats,
    /// The communication memory map.
    MemoryMap,
    /// Hardware-mapped function nodes.
    HwNodes,
    /// Full-effort HLS designs.
    HlsDesigns,
    /// The synthesized system controller.
    Controller,
    /// The controller state encoding.
    Encoding,
    /// The generated netlist.
    Netlist,
    /// Emitted VHDL units.
    Vhdl,
    /// Per-device CLB placements.
    Placements,
    /// Generated C programs.
    CPrograms,
}

impl ArtifactSlot {
    /// Every slot, in [`FlowContext`] declaration order.
    pub const ALL: [ArtifactSlot; SLOT_COUNT] = {
        let mut all = [ArtifactSlot::Cost; SLOT_COUNT];
        macro_rules! fill_slot {
            ($slot:ident, $idx:expr, $variant:ident) => {
                all[$idx] = ArtifactSlot::$variant;
            };
        }
        for_each_slot!(fill_slot);
        all
    };

    /// Dense index of the slot (its position in [`ArtifactSlot::ALL`]).
    #[must_use]
    pub fn index(self) -> usize {
        let mut idx = 0;
        macro_rules! index_slot {
            ($slot:ident, $idx:expr, $variant:ident) => {
                if matches!(self, ArtifactSlot::$variant) {
                    idx = $idx;
                }
            };
        }
        for_each_slot!(index_slot);
        idx
    }

    /// `true` when this slot of `cx` is filled.
    #[must_use]
    pub fn is_filled(self, cx: &FlowContext<'_>) -> bool {
        let mut filled = false;
        macro_rules! filled_slot {
            ($slot:ident, $idx:expr, $variant:ident) => {
                if matches!(self, ArtifactSlot::$variant) {
                    filled = cx.$slot.is_some();
                }
            };
        }
        for_each_slot!(filled_slot);
        filled
    }

    /// The slot's field name in [`FlowContext`].
    #[must_use]
    pub fn name(self) -> &'static str {
        let mut name = "";
        macro_rules! name_slot {
            ($slot:ident, $idx:expr, $variant:ident) => {
                if matches!(self, ArtifactSlot::$variant) {
                    name = stringify!($slot);
                }
            };
        }
        for_each_slot!(name_slot);
        name
    }
}

impl Codec for ArtifactSlot {
    fn encode(&self, e: &mut Encoder) {
        e.put_u8(self.index() as u8);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let tag = d.take_u8()?;
        ArtifactSlot::ALL
            .get(usize::from(tag))
            .copied()
            .ok_or(CodecError::InvalidTag {
                type_name: "ArtifactSlot",
                tag,
            })
    }
}

/// Which artifact slots of a [`FlowContext`] are filled.
///
/// Captured before a stage runs so the engine can snapshot exactly the
/// slots the stage deposited (cached stages fill empty slots only; a
/// stage that mutates existing artifacts in place must opt out of caching
/// by returning `None` from `cache_key`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArtifactFlags {
    flags: [bool; SLOT_COUNT],
}

impl ArtifactFlags {
    /// Snapshot which slots of `cx` are currently filled.
    #[must_use]
    pub fn of(cx: &FlowContext<'_>) -> ArtifactFlags {
        let mut flags = [false; SLOT_COUNT];
        macro_rules! flag_slot {
            ($slot:ident, $idx:expr, $variant:ident) => {
                flags[$idx] = cx.$slot.is_some();
            };
        }
        for_each_slot!(flag_slot);
        ArtifactFlags { flags }
    }

    /// Whether `slot` was filled in this snapshot.
    #[must_use]
    pub fn slot_filled(&self, slot: ArtifactSlot) -> bool {
        self.flags[slot.index()]
    }
}

/// Per-slot content digests of a [`FlowContext`]'s filled artifact slots
/// — the inputs of the engine's DAG stage keys. `None` means the slot is
/// empty.
pub type SlotDigests = [Option<u128>; SLOT_COUNT];

/// Digest every filled slot of `cx` (used once at engine start to cover
/// pre-seeded artifacts such as [`FlowContext::with_cost`] cost models).
#[must_use]
pub fn slot_digests(cx: &FlowContext<'_>) -> SlotDigests {
    let mut table = [None; SLOT_COUNT];
    update_slot_digests(cx, ArtifactFlags::default(), &mut table);
    table
}

/// Digest every slot of `cx` that is filled now but was not in `before`,
/// recording the digests into `table` and returning them as the
/// `(slot, digest)` list the cache stores alongside the entry.
pub fn update_slot_digests(
    cx: &FlowContext<'_>,
    before: ArtifactFlags,
    table: &mut SlotDigests,
) -> Vec<(ArtifactSlot, u128)> {
    let mut written = Vec::new();
    macro_rules! digest_slot {
        ($slot:ident, $idx:expr, $variant:ident) => {
            if !before.flags[$idx] {
                if let Some(v) = &cx.$slot {
                    let d = digest(v);
                    table[$idx] = Some(d);
                    written.push((ArtifactSlot::$variant, d));
                }
            }
        };
    }
    for_each_slot!(digest_slot);
    written
}

/// Debug-build contract check: the name of the first slot that was
/// filled in `before` but whose content no longer matches its recorded
/// digest in `table` (mutated in place), or that was emptied. `None`
/// when the cacheable-stage contract — fill empty slots only — held.
#[cfg(debug_assertions)]
#[must_use]
pub fn find_mutated_slot(
    cx: &FlowContext<'_>,
    before: ArtifactFlags,
    table: &SlotDigests,
) -> Option<&'static str> {
    macro_rules! check_slot {
        ($slot:ident, $idx:expr, $variant:ident) => {
            if before.flags[$idx] {
                match &cx.$slot {
                    Some(v) if table[$idx] == Some(digest(v)) => {}
                    _ => return Some(ArtifactSlot::$variant.name()),
                }
            }
        };
    }
    for_each_slot!(check_slot);
    None
}

/// The artifacts one stage deposited into the context: a clone of every
/// slot that was empty before the stage ran and filled afterwards.
#[derive(Debug, Clone, Default)]
pub struct ArtifactDelta {
    cost: Option<cool_cost::CostModel>,
    partition: Option<cool_partition::PartitionResult>,
    schedule: Option<cool_schedule::StaticSchedule>,
    stg: Option<cool_stg::Stg>,
    stg_minimized: Option<cool_stg::Stg>,
    minimize_stats: Option<cool_stg::MinimizeStats>,
    memory_map: Option<cool_stg::MemoryMap>,
    hw_nodes: Option<Vec<cool_ir::NodeId>>,
    hls_designs: Option<Vec<cool_hls::HlsDesign>>,
    controller: Option<cool_rtl::SystemController>,
    encoding: Option<cool_rtl::encoding::StateEncoding>,
    netlist: Option<cool_rtl::Netlist>,
    vhdl: Option<Vec<(String, String)>>,
    placements: Option<Vec<(cool_ir::Resource, cool_rtl::place::Placement)>>,
    c_programs: Option<Vec<cool_codegen::CProgram>>,
}

impl ArtifactDelta {
    /// Clone every slot of `cx` that is filled now but was not filled in
    /// `before`.
    #[must_use]
    pub fn capture(cx: &FlowContext<'_>, before: ArtifactFlags) -> ArtifactDelta {
        let mut delta = ArtifactDelta::default();
        macro_rules! capture_slot {
            ($slot:ident, $idx:expr, $variant:ident) => {
                if !before.flags[$idx] {
                    delta.$slot = cx.$slot.clone();
                }
            };
        }
        for_each_slot!(capture_slot);
        delta
    }

    /// Deposit the captured artifacts back into `cx` (cloning; the delta
    /// stays in the cache for further hits).
    pub fn apply(&self, cx: &mut FlowContext<'_>) {
        macro_rules! apply_slot {
            ($slot:ident, $idx:expr, $variant:ident) => {
                if let Some(v) = &self.$slot {
                    cx.$slot = Some(v.clone());
                }
            };
        }
        for_each_slot!(apply_slot);
    }

    /// Number of artifact slots this delta restores.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        let mut n = 0;
        macro_rules! count_slot {
            ($slot:ident, $idx:expr, $variant:ident) => {
                n += usize::from(self.$slot.is_some());
            };
        }
        for_each_slot!(count_slot);
        n
    }
}

impl Codec for ArtifactDelta {
    fn encode(&self, e: &mut Encoder) {
        macro_rules! encode_slot {
            ($slot:ident, $idx:expr, $variant:ident) => {
                self.$slot.encode(e);
            };
        }
        for_each_slot!(encode_slot);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let mut delta = ArtifactDelta::default();
        macro_rules! decode_slot {
            ($slot:ident, $idx:expr, $variant:ident) => {
                delta.$slot = Option::decode(d)?;
            };
        }
        for_each_slot!(decode_slot);
        Ok(delta)
    }
}

/// One per-node artifact, cached one level below stages: the unit of
/// reuse that survives a spec edit which invalidates *every* stage key
/// (the graph digest seeds each of them) but leaves most nodes'
/// behaviours untouched.
///
/// Entries are keyed by namespaced per-node content digests
/// ([`cool_hls::node_key`] and the engine's STG/RTL node keys), so the
/// variants can never alias each other or a stage entry.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeArtifact {
    /// A node's synthesized datapath, stored name-independently (the
    /// engine re-labels it via [`cool_hls::HlsDesign::renamed`]).
    Hls(cool_hls::HlsDesign),
    /// A hardware node's emitted VHDL entity text.
    Vhdl(String),
    /// A node's `w`/`x`/`d` STG slice.
    StgFragment(cool_stg::NodeFragment),
}

impl Codec for NodeArtifact {
    fn encode(&self, e: &mut Encoder) {
        match self {
            NodeArtifact::Hls(design) => {
                e.put_u8(0);
                design.encode(e);
            }
            NodeArtifact::Vhdl(text) => {
                e.put_u8(1);
                e.put_str(text);
            }
            NodeArtifact::StgFragment(frag) => {
                e.put_u8(2);
                frag.encode(e);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.take_u8()? {
            0 => Ok(NodeArtifact::Hls(cool_hls::HlsDesign::decode(d)?)),
            1 => Ok(NodeArtifact::Vhdl(d.take_str()?)),
            2 => Ok(NodeArtifact::StgFragment(cool_stg::NodeFragment::decode(
                d,
            )?)),
            tag => Err(CodecError::InvalidTag {
                type_name: "NodeArtifact",
                tag,
            }),
        }
    }
}

/// What one [`StageCache::lookup_node`] found.
#[derive(Debug, Clone)]
pub struct NodeHit {
    /// The cached per-node artifact.
    pub artifact: Arc<NodeArtifact>,
    /// `true` when the entry came from the disk tier.
    pub from_disk: bool,
    /// `true` when the entry came from the remote fleet tier.
    pub from_remote: bool,
}

/// One cached per-node artifact with its LRU recency.
#[derive(Debug, Clone)]
struct NodeEntry {
    artifact: Arc<NodeArtifact>,
    last_used: u64,
}

/// One cached stage execution.
#[derive(Debug, Clone)]
struct Entry {
    delta: Arc<ArtifactDelta>,
    /// Digests of the slots the delta fills, so a hit can extend the
    /// engine's slot-digest table without re-hashing the artifacts.
    writes: Arc<Vec<(ArtifactSlot, u128)>>,
    /// Wall-clock the original execution took — the time a hit saves.
    cost: Duration,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<StageKey, Entry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    disk_hits: u64,
    misses: u64,
    evictions: u64,
    disk_writes: u64,
    disk_evictions: u64,
    saved: Duration,
    /// The node tier: per-node artifacts under namespaced node keys,
    /// bounded by its own (much larger) LRU capacity — node entries are
    /// small and numerous next to stage deltas.
    nodes: HashMap<StageKey, NodeEntry>,
    node_capacity: usize,
    node_hits: u64,
    node_disk_hits: u64,
    node_misses: u64,
    node_evictions: u64,
    node_disk_writes: u64,
}

/// What one [`StageCache::lookup`] found.
#[derive(Debug, Clone)]
pub struct CacheHit {
    /// The artifacts to restore.
    pub delta: Arc<ArtifactDelta>,
    /// Digests of the restored slots.
    pub writes: Arc<Vec<(ArtifactSlot, u128)>>,
    /// Wall-clock the original execution took.
    pub saved: Duration,
    /// `true` when the entry came from the disk tier (an in-memory miss
    /// satisfied by the cache directory).
    pub from_disk: bool,
    /// `true` when the entry was fetched from the remote fleet tier (a
    /// `coold` daemon) and re-materialized locally.
    pub from_remote: bool,
}

/// Aggregate cache counters, for `--trace` output and the benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Stage executions skipped because a cached delta was restored
    /// (in-memory and disk hits combined).
    pub hits: u64,
    /// The subset of `hits` satisfied by the disk tier.
    pub disk_hits: u64,
    /// Stage executions that ran and populated the cache.
    pub misses: u64,
    /// Entries evicted by the in-memory LRU bound.
    pub evictions: u64,
    /// Entries written through to the disk tier.
    pub disk_writes: u64,
    /// Corrupt or version-mismatched disk entries that were evicted (each
    /// also counted as a miss).
    pub disk_evictions: u64,
    /// Disk entries evicted to honour the store's byte-size cap (LRU by
    /// mtime, enforced at open and after every insert).
    pub disk_size_evictions: u64,
    /// Entries currently resident in memory.
    pub entries: usize,
    /// Sum of the original execution times of every hit — the wall-clock
    /// the cache saved.
    pub saved: Duration,
    /// Node-level lookups served from cache (memory and disk combined).
    pub node_hits: u64,
    /// The subset of `node_hits` satisfied by the disk tier.
    pub node_disk_hits: u64,
    /// Node-level lookups that found nothing (the node was recomputed).
    pub node_misses: u64,
    /// Node entries evicted by the node tier's in-memory LRU bound.
    pub node_evictions: u64,
    /// Node entries written through to the disk tier.
    pub node_disk_writes: u64,
    /// Node entries currently resident in memory.
    pub node_entries: usize,
    /// Stage and node lookups satisfied by the remote fleet tier.
    pub remote_hits: u64,
    /// Remote lookups that reached the daemon and found nothing.
    pub remote_misses: u64,
    /// Entries written through to the remote fleet tier.
    pub remote_puts: u64,
    /// Remote operations dropped because the daemon was unreachable (the
    /// cache degraded to local-only for those operations).
    pub remote_errors: u64,
    /// Wall-clock spent on remote round-trips (gets and puts combined).
    pub remote_roundtrip: Duration,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when nothing was looked up).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Disk hits as a fraction of all lookups (0 when nothing was looked
    /// up) — the warm-start-across-processes rate.
    #[must_use]
    pub fn disk_hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.disk_hits as f64 / total as f64
        }
    }

    /// Node-tier hits as a fraction of all node-tier lookups (0 when no
    /// node was looked up).
    #[must_use]
    pub fn node_hit_rate(&self) -> f64 {
        let total = self.node_hits + self.node_misses;
        if total == 0 {
            0.0
        } else {
            self.node_hits as f64 / total as f64
        }
    }

    /// One-line human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let size_cap = if self.disk_size_evictions > 0 {
            format!(", {} size-cap eviction(s)", self.disk_size_evictions)
        } else {
            String::new()
        };
        let nodes = if self.node_hits + self.node_misses > 0 {
            format!(
                "; node tier: {} hit(s) ({} from disk), {} miss(es), {} entries",
                self.node_hits, self.node_disk_hits, self.node_misses, self.node_entries,
            )
        } else {
            String::new()
        };
        let remote =
            if self.remote_hits + self.remote_misses + self.remote_puts + self.remote_errors > 0 {
                format!(
                    "; remote tier: {} hit(s), {} miss(es), {} put(s), {} error(s), \
                 {:.3} ms round-trip",
                    self.remote_hits,
                    self.remote_misses,
                    self.remote_puts,
                    self.remote_errors,
                    self.remote_roundtrip.as_secs_f64() * 1e3,
                )
            } else {
                String::new()
            };
        format!(
            "stage cache: {} hit(s) ({} from disk), {} miss(es) ({:.0} % hit rate), \
             {} entries, {} eviction(s){size_cap}, {:.3} ms saved{nodes}{remote}",
            self.hits,
            self.disk_hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.entries,
            self.evictions,
            self.saved.as_secs_f64() * 1e3,
        )
    }
}

/// A shared, LRU-bounded, content-addressed cache of stage executions,
/// optionally backed by a persistent on-disk tier.
///
/// Cloning is cheap (an `Arc` bump); clones share one store (memory and
/// disk), which is how concurrent [`crate::FlowSession`]s (sweep
/// workers, daemon clients) hit entries any other worker produced.
#[derive(Debug, Clone)]
pub struct StageCache {
    inner: Arc<Mutex<Inner>>,
    disk: Option<Arc<DiskStore>>,
    remote: Option<Arc<crate::remote::RemoteStore>>,
}

impl Default for StageCache {
    fn default() -> StageCache {
        StageCache::new(StageCache::DEFAULT_CAPACITY)
    }
}

impl StageCache {
    /// Default entry bound: comfortably holds the full standard flow for
    /// a few dozen sweep candidates.
    pub const DEFAULT_CAPACITY: usize = 512;

    /// Default node-tier entry bound. Node entries are tiny (one design,
    /// fragment or VHDL unit) and there are up to a few per function
    /// node, so the bound is far above the stage-entry capacity.
    pub const DEFAULT_NODE_CAPACITY: usize = 4096;

    /// An in-memory cache bounded to `capacity` entries (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> StageCache {
        StageCache {
            inner: Arc::new(Mutex::new(Inner {
                capacity: capacity.max(1),
                node_capacity: StageCache::DEFAULT_NODE_CAPACITY,
                ..Inner::default()
            })),
            disk: None,
            remote: None,
        }
    }

    /// A two-tier cache: the in-memory LRU tier backed by a persistent
    /// store in `dir` (created if absent). Inserts write through to disk;
    /// in-memory misses consult the disk tier before reporting a miss, so
    /// a fresh process warm-starts from whatever earlier runs left there.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if `dir` cannot be created.
    pub fn persistent(
        capacity: usize,
        dir: impl AsRef<Path>,
    ) -> Result<StageCache, std::io::Error> {
        let mut cache = StageCache::new(capacity);
        cache.disk = Some(Arc::new(DiskStore::open(dir)?));
        Ok(cache)
    }

    /// [`StageCache::persistent`] with an explicit byte-size cap for the
    /// disk tier (`0` = unbounded) instead of
    /// [`crate::disk::DEFAULT_MAX_BYTES`].
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if `dir` cannot be created.
    pub fn persistent_with_cap(
        capacity: usize,
        dir: impl AsRef<Path>,
        max_bytes: u64,
    ) -> Result<StageCache, std::io::Error> {
        let mut cache = StageCache::new(capacity);
        cache.disk = Some(Arc::new(DiskStore::open_with_cap(dir, max_bytes)?));
        Ok(cache)
    }

    /// The disk tier, if one is attached.
    #[must_use]
    pub fn disk(&self) -> Option<&DiskStore> {
        self.disk.as_deref()
    }

    /// Attach a remote fleet tier: lookups that miss both memory and disk
    /// consult `remote`, and freshly computed entries are written through
    /// to it. Remote hits are re-materialized into the local disk tier
    /// (when one is attached) so the next process warm-starts without the
    /// network. All remote I/O is non-failing — an unreachable daemon
    /// degrades the cache to local-only, never the flow to an error.
    #[must_use]
    pub fn with_remote(mut self, remote: Arc<crate::remote::RemoteStore>) -> StageCache {
        self.remote = Some(remote);
        self
    }

    /// The remote fleet tier, if one is attached.
    #[must_use]
    pub fn remote(&self) -> Option<&crate::remote::RemoteStore> {
        self.remote.as_deref()
    }

    /// Look up `key` tier by tier — memory, then disk, then the remote
    /// fleet store; refreshes recency and counts hit/disk-hit/miss. A
    /// disk or remote hit is promoted into the memory tier, and a remote
    /// hit additionally heals the local disk tier (when attached) so the
    /// next process warm-starts without the network.
    #[must_use]
    pub fn lookup(&self, key: StageKey) -> Option<CacheHit> {
        {
            let mut inner = self.inner.lock().expect("stage cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            let found = inner.map.get_mut(&key).map(|e| {
                e.last_used = tick;
                CacheHit {
                    delta: Arc::clone(&e.delta),
                    writes: Arc::clone(&e.writes),
                    saved: e.cost,
                    from_disk: false,
                    from_remote: false,
                }
            });
            if let Some(hit) = found {
                inner.hits += 1;
                inner.saved += hit.saved;
                return Some(hit);
            }
            if self.disk.is_none() && self.remote.is_none() {
                inner.misses += 1;
                return None;
            }
        }
        // Memory miss with lower tiers attached: disk and network I/O
        // happen outside the lock (they must not serialize the sweep
        // workers), then accounting and promotion re-acquire it.
        let mut disk_evicted = false;
        if let Some(disk) = &self.disk {
            match disk.load(key) {
                Load::Hit {
                    delta,
                    writes,
                    cost,
                } => {
                    let hit = CacheHit {
                        delta: Arc::new(*delta),
                        writes: Arc::new(writes),
                        saved: cost,
                        from_disk: true,
                        from_remote: false,
                    };
                    let mut inner = self.inner.lock().expect("stage cache poisoned");
                    inner.hits += 1;
                    inner.disk_hits += 1;
                    inner.saved += cost;
                    Self::promote(&mut inner, key, &hit);
                    return Some(hit);
                }
                Load::Evicted => disk_evicted = true,
                Load::Miss => {}
            }
        }
        if let Some(remote) = &self.remote {
            let decoded = remote
                .get_stage(key)
                .and_then(|bytes| crate::disk::decode_stage_entry(&bytes));
            if let Some((delta, writes, cost)) = decoded {
                let hit = CacheHit {
                    delta: Arc::new(delta),
                    writes: Arc::new(writes),
                    saved: cost,
                    from_disk: false,
                    from_remote: true,
                };
                // Heal the local disk tier so the next process on this
                // machine warm-starts without touching the network.
                let healed = self.disk.as_ref().is_some_and(|d| {
                    matches!(d.store(key, &hit.delta, &hit.writes, cost), Ok(true))
                });
                let mut inner = self.inner.lock().expect("stage cache poisoned");
                inner.hits += 1;
                inner.saved += cost;
                if disk_evicted {
                    inner.disk_evictions += 1;
                }
                if healed {
                    inner.disk_writes += 1;
                }
                Self::promote(&mut inner, key, &hit);
                return Some(hit);
            }
        }
        let mut inner = self.inner.lock().expect("stage cache poisoned");
        inner.misses += 1;
        if disk_evicted {
            inner.disk_evictions += 1;
        }
        None
    }

    /// Insert `hit` into the memory tier under `key`, evicting over
    /// capacity (caller holds the lock and has already accounted the hit).
    fn promote(inner: &mut Inner, key: StageKey, hit: &CacheHit) {
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            key,
            Entry {
                delta: Arc::clone(&hit.delta),
                writes: Arc::clone(&hit.writes),
                cost: hit.saved,
                last_used: tick,
            },
        );
        Self::evict_over_capacity(inner);
    }

    /// Insert the delta a freshly executed stage produced, with the
    /// content digests of the slots it fills. Evicts the least-recently
    /// used in-memory entry when the bound is exceeded; inserting an
    /// existing key refreshes it (deterministic stages make the value
    /// identical, so last-writer-wins is safe under worker races). With a
    /// disk tier the entry is written through (atomically; an entry
    /// already on disk is left untouched).
    pub fn insert(
        &self,
        key: StageKey,
        delta: ArtifactDelta,
        writes: Vec<(ArtifactSlot, u128)>,
        cost: Duration,
    ) {
        let delta = Arc::new(delta);
        let writes = Arc::new(writes);
        {
            let mut inner = self.inner.lock().expect("stage cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            inner.map.insert(
                key,
                Entry {
                    delta: Arc::clone(&delta),
                    writes: Arc::clone(&writes),
                    cost,
                    last_used: tick,
                },
            );
            Self::evict_over_capacity(&mut inner);
        }
        if let Some(disk) = &self.disk {
            // Write-through outside the lock. A failed write degrades the
            // disk tier to "smaller", never the run to "wrong".
            if let Ok(true) = disk.store(key, &delta, &writes, cost) {
                self.inner.lock().expect("stage cache poisoned").disk_writes += 1;
            }
        }
        if let Some(remote) = &self.remote {
            // Fleet write-through: ship the exact on-disk entry bytes so
            // the daemon validates them with DiskStore's totality and
            // every shard stores an identical representation.
            let bytes = crate::disk::encode_entry_with_version(
                &delta,
                &writes,
                cost,
                crate::disk::FORMAT_VERSION,
            );
            remote.put_stage(key, bytes);
        }
    }

    /// Insert an entry received over the wire (the daemon side of a
    /// `CachePutStage`): memory and disk tiers only — never forwarded to
    /// a remote tier, so daemons can never form a put loop. Returns
    /// `true` when the key was not already resident in memory.
    pub fn insert_remote(
        &self,
        key: StageKey,
        delta: ArtifactDelta,
        writes: Vec<(ArtifactSlot, u128)>,
        cost: Duration,
    ) -> bool {
        let delta = Arc::new(delta);
        let writes = Arc::new(writes);
        let fresh = {
            let mut inner = self.inner.lock().expect("stage cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            let fresh = inner
                .map
                .insert(
                    key,
                    Entry {
                        delta: Arc::clone(&delta),
                        writes: Arc::clone(&writes),
                        cost,
                        last_used: tick,
                    },
                )
                .is_none();
            Self::evict_over_capacity(&mut inner);
            fresh
        };
        if let Some(disk) = &self.disk {
            if let Ok(true) = disk.store(key, &delta, &writes, cost) {
                self.inner.lock().expect("stage cache poisoned").disk_writes += 1;
            }
        }
        fresh
    }

    /// Look up a per-node artifact by its namespaced node key tier by
    /// tier — memory, then disk, then the remote fleet store — promoting
    /// lower-tier hits into memory (remote hits also heal the local disk
    /// tier). Counts node-tier hit/disk-hit/miss.
    #[must_use]
    pub fn lookup_node(&self, key: StageKey) -> Option<NodeHit> {
        {
            let mut inner = self.inner.lock().expect("stage cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            let found = inner.nodes.get_mut(&key).map(|e| {
                e.last_used = tick;
                Arc::clone(&e.artifact)
            });
            if let Some(artifact) = found {
                inner.node_hits += 1;
                return Some(NodeHit {
                    artifact,
                    from_disk: false,
                    from_remote: false,
                });
            }
            if self.disk.is_none() && self.remote.is_none() {
                inner.node_misses += 1;
                return None;
            }
        }
        // Memory miss with lower tiers: read outside the lock, as with
        // stage entries.
        let mut disk_evicted = false;
        if let Some(disk) = &self.disk {
            match disk.load_node(key) {
                crate::disk::NodeLoad::Hit(artifact) => {
                    let artifact = Arc::new(artifact);
                    let mut inner = self.inner.lock().expect("stage cache poisoned");
                    inner.node_hits += 1;
                    inner.node_disk_hits += 1;
                    Self::promote_node(&mut inner, key, &artifact);
                    return Some(NodeHit {
                        artifact,
                        from_disk: true,
                        from_remote: false,
                    });
                }
                crate::disk::NodeLoad::Evicted => disk_evicted = true,
                crate::disk::NodeLoad::Miss => {}
            }
        }
        if let Some(remote) = &self.remote {
            let decoded = remote
                .get_node(key)
                .and_then(|bytes| crate::disk::decode_node_entry(&bytes));
            if let Some(artifact) = decoded {
                let artifact = Arc::new(artifact);
                let healed = self
                    .disk
                    .as_ref()
                    .is_some_and(|d| matches!(d.store_node(key, &artifact), Ok(true)));
                let mut inner = self.inner.lock().expect("stage cache poisoned");
                inner.node_hits += 1;
                if disk_evicted {
                    inner.disk_evictions += 1;
                }
                if healed {
                    inner.node_disk_writes += 1;
                }
                Self::promote_node(&mut inner, key, &artifact);
                return Some(NodeHit {
                    artifact,
                    from_disk: false,
                    from_remote: true,
                });
            }
        }
        let mut inner = self.inner.lock().expect("stage cache poisoned");
        inner.node_misses += 1;
        if disk_evicted {
            inner.disk_evictions += 1;
        }
        None
    }

    /// Insert `artifact` into the node memory tier under `key` (caller
    /// holds the lock and has already accounted the hit).
    fn promote_node(inner: &mut Inner, key: StageKey, artifact: &Arc<NodeArtifact>) {
        inner.tick += 1;
        let tick = inner.tick;
        inner.nodes.insert(
            key,
            NodeEntry {
                artifact: Arc::clone(artifact),
                last_used: tick,
            },
        );
        Self::evict_nodes_over_capacity(inner);
    }

    /// Insert a freshly computed per-node artifact under its node key,
    /// writing through to the disk tier when one is attached. Re-inserts
    /// of an existing key refresh recency (determinism makes the values
    /// identical).
    pub fn insert_node(&self, key: StageKey, artifact: NodeArtifact) {
        let artifact = Arc::new(artifact);
        {
            let mut inner = self.inner.lock().expect("stage cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            inner.nodes.insert(
                key,
                NodeEntry {
                    artifact: Arc::clone(&artifact),
                    last_used: tick,
                },
            );
            Self::evict_nodes_over_capacity(&mut inner);
        }
        if let Some(disk) = &self.disk {
            if let Ok(true) = disk.store_node(key, &artifact) {
                self.inner
                    .lock()
                    .expect("stage cache poisoned")
                    .node_disk_writes += 1;
            }
        }
        if let Some(remote) = &self.remote {
            let bytes =
                crate::disk::encode_node_entry_with_version(&artifact, crate::disk::FORMAT_VERSION);
            remote.put_node(key, bytes);
        }
    }

    /// Insert a node entry received over the wire (the daemon side of a
    /// `CachePutNode`): memory and disk tiers only, never forwarded to a
    /// remote tier. Returns `true` when the key was not already resident
    /// in memory.
    pub fn insert_node_remote(&self, key: StageKey, artifact: NodeArtifact) -> bool {
        let artifact = Arc::new(artifact);
        let fresh = {
            let mut inner = self.inner.lock().expect("stage cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            let fresh = inner
                .nodes
                .insert(
                    key,
                    NodeEntry {
                        artifact: Arc::clone(&artifact),
                        last_used: tick,
                    },
                )
                .is_none();
            Self::evict_nodes_over_capacity(&mut inner);
            fresh
        };
        if let Some(disk) = &self.disk {
            if let Ok(true) = disk.store_node(key, &artifact) {
                self.inner
                    .lock()
                    .expect("stage cache poisoned")
                    .node_disk_writes += 1;
            }
        }
        fresh
    }

    fn evict_nodes_over_capacity(inner: &mut Inner) {
        while inner.nodes.len() > inner.node_capacity.max(1) {
            if let Some((&victim, _)) = inner.nodes.iter().min_by_key(|(_, e)| e.last_used) {
                inner.nodes.remove(&victim);
                inner.node_evictions += 1;
            } else {
                break;
            }
        }
    }

    fn evict_over_capacity(inner: &mut Inner) {
        while inner.map.len() > inner.capacity {
            if let Some((&victim, _)) = inner.map.iter().min_by_key(|(_, e)| e.last_used) {
                inner.map.remove(&victim);
                inner.evictions += 1;
            } else {
                break;
            }
        }
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let remote = self
            .remote
            .as_ref()
            .map(|r| r.counters())
            .unwrap_or_default();
        let inner = self.inner.lock().expect("stage cache poisoned");
        CacheStats {
            remote_hits: remote.hits,
            remote_misses: remote.misses,
            remote_puts: remote.puts,
            remote_errors: remote.errors,
            remote_roundtrip: remote.roundtrip,
            hits: inner.hits,
            disk_hits: inner.disk_hits,
            misses: inner.misses,
            evictions: inner.evictions,
            disk_writes: inner.disk_writes,
            disk_evictions: inner.disk_evictions,
            disk_size_evictions: self.disk.as_ref().map_or(0, |d| d.size_evictions()),
            entries: inner.map.len(),
            saved: inner.saved,
            node_hits: inner.node_hits,
            node_disk_hits: inner.node_disk_hits,
            node_misses: inner.node_misses,
            node_evictions: inner.node_evictions,
            node_disk_writes: inner.node_disk_writes,
            node_entries: inner.nodes.len(),
        }
    }

    /// Number of resident in-memory entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("stage cache poisoned").map.len()
    }

    /// `true` when no in-memory entry is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn lookup_miss_then_hit_counts() {
        let cache = StageCache::new(8);
        assert!(cache.lookup(1).is_none());
        cache.insert(1, ArtifactDelta::default(), Vec::new(), ms(5));
        let hit = cache.lookup(1).expect("hit");
        assert_eq!(hit.delta.slot_count(), 0);
        assert_eq!(hit.saved, ms(5));
        assert!(!hit.from_disk);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.saved, ms(5));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(stats.disk_hits, 0);
        assert!((stats.disk_hit_rate()).abs() < 1e-12);
    }

    #[test]
    fn lru_bound_evicts_least_recent() {
        let cache = StageCache::new(2);
        cache.insert(1, ArtifactDelta::default(), Vec::new(), ms(1));
        cache.insert(2, ArtifactDelta::default(), Vec::new(), ms(1));
        // Touch key 1 so key 2 is the LRU victim.
        assert!(cache.lookup(1).is_some());
        cache.insert(3, ArtifactDelta::default(), Vec::new(), ms(1));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(1).is_some(), "recently used entry survives");
        assert!(cache.lookup(2).is_none(), "LRU entry evicted");
        assert!(cache.lookup(3).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn clones_share_one_store() {
        let cache = StageCache::new(4);
        let clone = cache.clone();
        clone.insert(9, ArtifactDelta::default(), Vec::new(), ms(2));
        assert!(cache.lookup(9).is_some());
        assert_eq!(cache.stats().hits, clone.stats().hits);
    }

    #[test]
    fn summary_mentions_counters() {
        let cache = StageCache::new(4);
        cache.insert(1, ArtifactDelta::default(), Vec::new(), ms(1));
        let _ = cache.lookup(1);
        let s = cache.stats().summary();
        assert!(s.contains("hit"), "{s}");
        assert!(s.contains("entries"), "{s}");
        assert!(s.contains("disk"), "{s}");
    }

    #[test]
    fn artifact_slots_are_dense_and_named() {
        for (i, slot) in ArtifactSlot::ALL.iter().enumerate() {
            assert_eq!(slot.index(), i);
            assert!(!slot.name().is_empty());
        }
        assert_eq!(ArtifactSlot::Cost.name(), "cost");
        assert_eq!(ArtifactSlot::CPrograms.name(), "c_programs");
    }

    #[test]
    fn artifact_slot_codec_roundtrips() {
        for slot in ArtifactSlot::ALL {
            let bytes = cool_ir::codec::to_bytes(&slot);
            let back: ArtifactSlot = cool_ir::codec::from_bytes(&bytes).unwrap();
            assert_eq!(back, slot);
        }
        assert!(cool_ir::codec::from_bytes::<ArtifactSlot>(&[99]).is_err());
    }

    #[test]
    fn empty_delta_codec_roundtrips() {
        let delta = ArtifactDelta::default();
        let bytes = cool_ir::codec::to_bytes(&delta);
        let back: ArtifactDelta = cool_ir::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back.slot_count(), 0);
        assert_eq!(cool_ir::codec::to_bytes(&back), bytes);
    }
}
