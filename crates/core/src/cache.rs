//! The content-addressed stage cache.
//!
//! Sweeps (`res2` area budgets, the partitioner and communication-scheme
//! ablations) re-run the whole spec→…→codegen pipeline per candidate even
//! though most upstream stage outputs are identical across candidates.
//! The [`StageCache`] makes those prefixes incremental: the engine keys
//! every stage on a chained 128-bit content digest of everything the
//! stage can read (see [`crate::stage::Stage::cache_key`]), and on a key
//! match it skips the stage and restores the artifacts the original run
//! deposited into the [`FlowContext`].
//!
//! The cache is `Arc`-shared and mutex-guarded so one instance can serve
//! all scoped workers of [`crate::run_flow_sweep`]; entries are bounded
//! by an LRU policy. Because every stage is deterministic for equal
//! context contents (the [`crate::stage::Stage`] contract), restoring a
//! cached delta is byte-identical to re-running the stage — the warm-path
//! determinism tests in `tests/cache.rs` enforce exactly that.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::stage::FlowContext;

/// The chained content digest a stage is cached under.
pub type StageKey = u128;

/// The single source of truth for the artifact slot ⇄ flag-index
/// mapping: invokes `$macro_cb!(slot_name, index)` once per slot of
/// [`FlowContext`] / [`ArtifactDelta`]. Adding a slot means adding one
/// line here (plus the `ArtifactDelta` field); every flags/capture/
/// apply/count loop below derives from it.
macro_rules! for_each_slot {
    ($macro_cb:ident) => {
        $macro_cb!(cost, 0);
        $macro_cb!(partition, 1);
        $macro_cb!(schedule, 2);
        $macro_cb!(stg, 3);
        $macro_cb!(stg_minimized, 4);
        $macro_cb!(minimize_stats, 5);
        $macro_cb!(memory_map, 6);
        $macro_cb!(hw_nodes, 7);
        $macro_cb!(hls_designs, 8);
        $macro_cb!(controller, 9);
        $macro_cb!(encoding, 10);
        $macro_cb!(netlist, 11);
        $macro_cb!(vhdl, 12);
        $macro_cb!(placements, 13);
        $macro_cb!(c_programs, 14);
    };
}

/// Which artifact slots of a [`FlowContext`] are filled.
///
/// Captured before a stage runs so the engine can snapshot exactly the
/// slots the stage deposited (cached stages fill empty slots only; a
/// stage that mutates existing artifacts in place must opt out of caching
/// by returning `None` from `cache_key`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArtifactFlags {
    flags: [bool; 15],
}

impl ArtifactFlags {
    /// Snapshot which slots of `cx` are currently filled.
    #[must_use]
    pub fn of(cx: &FlowContext<'_>) -> ArtifactFlags {
        let mut flags = [false; 15];
        macro_rules! flag_slot {
            ($slot:ident, $idx:expr) => {
                flags[$idx] = cx.$slot.is_some();
            };
        }
        for_each_slot!(flag_slot);
        ArtifactFlags { flags }
    }
}

/// The artifacts one stage deposited into the context: a clone of every
/// slot that was empty before the stage ran and filled afterwards.
#[derive(Debug, Clone, Default)]
pub struct ArtifactDelta {
    cost: Option<cool_cost::CostModel>,
    partition: Option<cool_partition::PartitionResult>,
    schedule: Option<cool_schedule::StaticSchedule>,
    stg: Option<cool_stg::Stg>,
    stg_minimized: Option<cool_stg::Stg>,
    minimize_stats: Option<cool_stg::MinimizeStats>,
    memory_map: Option<cool_stg::MemoryMap>,
    hw_nodes: Option<Vec<cool_ir::NodeId>>,
    hls_designs: Option<Vec<cool_hls::HlsDesign>>,
    controller: Option<cool_rtl::SystemController>,
    encoding: Option<cool_rtl::encoding::StateEncoding>,
    netlist: Option<cool_rtl::Netlist>,
    vhdl: Option<Vec<(String, String)>>,
    placements: Option<Vec<(cool_ir::Resource, cool_rtl::place::Placement)>>,
    c_programs: Option<Vec<cool_codegen::CProgram>>,
}

impl ArtifactDelta {
    /// Clone every slot of `cx` that is filled now but was not filled in
    /// `before`.
    #[must_use]
    pub fn capture(cx: &FlowContext<'_>, before: ArtifactFlags) -> ArtifactDelta {
        let mut delta = ArtifactDelta::default();
        macro_rules! capture_slot {
            ($slot:ident, $idx:expr) => {
                if !before.flags[$idx] {
                    delta.$slot = cx.$slot.clone();
                }
            };
        }
        for_each_slot!(capture_slot);
        delta
    }

    /// Deposit the captured artifacts back into `cx` (cloning; the delta
    /// stays in the cache for further hits).
    pub fn apply(&self, cx: &mut FlowContext<'_>) {
        macro_rules! apply_slot {
            ($slot:ident, $idx:expr) => {
                if let Some(v) = &self.$slot {
                    cx.$slot = Some(v.clone());
                }
            };
        }
        for_each_slot!(apply_slot);
    }

    /// Number of artifact slots this delta restores.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        let mut n = 0;
        macro_rules! count_slot {
            ($slot:ident, $idx:expr) => {
                n += usize::from(self.$slot.is_some());
            };
        }
        for_each_slot!(count_slot);
        n
    }
}

/// One cached stage execution.
#[derive(Debug, Clone)]
struct Entry {
    delta: Arc<ArtifactDelta>,
    /// Wall-clock the original execution took — the time a hit saves.
    cost: Duration,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<StageKey, Entry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    saved: Duration,
}

/// Aggregate cache counters, for `--trace` output and the benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Stage executions skipped because a cached delta was restored.
    pub hits: u64,
    /// Stage executions that ran and populated the cache.
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Sum of the original execution times of every hit — the wall-clock
    /// the cache saved.
    pub saved: Duration,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when nothing was looked up).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// One-line human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "stage cache: {} hit(s), {} miss(es) ({:.0} % hit rate), {} entries, \
             {} eviction(s), {:.3} ms saved",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.entries,
            self.evictions,
            self.saved.as_secs_f64() * 1e3,
        )
    }
}

/// A shared, LRU-bounded, content-addressed cache of stage executions.
///
/// Cloning is cheap (an `Arc` bump); clones share one store, which is how
/// [`crate::run_flow_sweep`] lets every worker thread hit entries any
/// other worker produced.
#[derive(Debug, Clone)]
pub struct StageCache {
    inner: Arc<Mutex<Inner>>,
}

impl Default for StageCache {
    fn default() -> StageCache {
        StageCache::new(StageCache::DEFAULT_CAPACITY)
    }
}

impl StageCache {
    /// Default entry bound: comfortably holds the full standard flow for
    /// a few dozen sweep candidates.
    pub const DEFAULT_CAPACITY: usize = 512;

    /// A cache bounded to `capacity` entries (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> StageCache {
        StageCache {
            inner: Arc::new(Mutex::new(Inner {
                capacity: capacity.max(1),
                ..Inner::default()
            })),
        }
    }

    /// Look up `key`, refreshing its recency and counting a hit or miss.
    /// Returns the delta and the wall-clock the original execution took.
    #[must_use]
    pub fn lookup(&self, key: StageKey) -> Option<(Arc<ArtifactDelta>, Duration)> {
        let mut inner = self.inner.lock().expect("stage cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let found = inner.map.get_mut(&key).map(|e| {
            e.last_used = tick;
            (Arc::clone(&e.delta), e.cost)
        });
        match found {
            Some(out) => {
                inner.hits += 1;
                inner.saved += out.1;
                Some(out)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Insert the delta a freshly executed stage produced. Evicts the
    /// least-recently used entry when the bound is exceeded; inserting an
    /// existing key refreshes it (deterministic stages make the value
    /// identical, so last-writer-wins is safe under worker races).
    pub fn insert(&self, key: StageKey, delta: ArtifactDelta, cost: Duration) {
        let mut inner = self.inner.lock().expect("stage cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            key,
            Entry {
                delta: Arc::new(delta),
                cost,
                last_used: tick,
            },
        );
        while inner.map.len() > inner.capacity {
            if let Some((&victim, _)) = inner.map.iter().min_by_key(|(_, e)| e.last_used) {
                inner.map.remove(&victim);
                inner.evictions += 1;
            } else {
                break;
            }
        }
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("stage cache poisoned");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
            saved: inner.saved,
        }
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("stage cache poisoned").map.len()
    }

    /// `true` when no entry is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn lookup_miss_then_hit_counts() {
        let cache = StageCache::new(8);
        assert!(cache.lookup(1).is_none());
        cache.insert(1, ArtifactDelta::default(), ms(5));
        let (delta, cost) = cache.lookup(1).expect("hit");
        assert_eq!(delta.slot_count(), 0);
        assert_eq!(cost, ms(5));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.saved, ms(5));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_bound_evicts_least_recent() {
        let cache = StageCache::new(2);
        cache.insert(1, ArtifactDelta::default(), ms(1));
        cache.insert(2, ArtifactDelta::default(), ms(1));
        // Touch key 1 so key 2 is the LRU victim.
        assert!(cache.lookup(1).is_some());
        cache.insert(3, ArtifactDelta::default(), ms(1));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(1).is_some(), "recently used entry survives");
        assert!(cache.lookup(2).is_none(), "LRU entry evicted");
        assert!(cache.lookup(3).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn clones_share_one_store() {
        let cache = StageCache::new(4);
        let clone = cache.clone();
        clone.insert(9, ArtifactDelta::default(), ms(2));
        assert!(cache.lookup(9).is_some());
        assert_eq!(cache.stats().hits, clone.stats().hits);
    }

    #[test]
    fn summary_mentions_counters() {
        let cache = StageCache::new(4);
        cache.insert(1, ArtifactDelta::default(), ms(1));
        let _ = cache.lookup(1);
        let s = cache.stats().summary();
        assert!(s.contains("hit"), "{s}");
        assert!(s.contains("entries"), "{s}");
    }
}
