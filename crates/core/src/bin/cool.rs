//! `cool` — command-line front-end of the COOL co-design flow.
//!
//! ```text
//! cool flow <spec.cool> [--out DIR] [--partitioner milp|heuristic|ga]
//!                       [--scheme mmio|direct] [--quick] [--jobs N]
//!                       [--target BOARD] [--targets BOARD,BOARD,...]
//!                       [--to-stage STAGE] [--pin NODE=RES,...]
//!                       [--cache|--no-cache] [--cache-dir DIR] [--trace]
//!                       [--expect-node-disk-hits MIN]
//!                       [--expect-node-synth-max MAX]
//! cool watch <spec.cool> [--poll-ms N] [--max-runs N] [same flags as flow]
//! cool simulate <spec.cool> [name=value ...] [same flags as flow]
//! cool serve [--addr ADDR] [--cache-dir DIR] [--cache-max-bytes N]
//! cool ping [--connect ADDR]
//! cool check <spec.cool>
//! cool cache stats [--cache-dir DIR] [--connect ADDR]
//! cool cache clear [--cache-dir DIR]
//! ```
//!
//! `flow` runs a [`cool_core::FlowSession`] (specification →
//! partitioning → co-synthesis) and writes the generated VHDL and C
//! files into `--out` (default `cool_out/`); `--jobs N` fans the
//! parallel stages (per-node HLS, STG minimization, placement) out over
//! `N` worker threads (`0` = all cores) without changing any generated
//! byte, and `--trace` prints the engine's per-stage timing table.
//!
//! Boards are named presets, optionally budget-capped: `fuzzy` (the
//! paper's DSP56001 + 2× XC4005 prototyping board), `minimal` (one
//! processor, one FPGA), and `BOARD@N` caps every FPGA of the preset at
//! `N` CLBs (`fuzzy@96`). `--target` picks the single board of a run
//! (default `fuzzy`); `--targets fuzzy@48,fuzzy@96,fuzzy` runs the
//! *family* mode — one session across all boards, the cost model
//! estimated once and retargeted per board — and prints the comparative
//! family report. `--to-stage STAGE` (`cost`, `partition`, `schedule`,
//! `stg`, `hls`, `rtl`, `codegen`) stops the flow after the named stage
//! and reports the partial artifact set.
//!
//! `--cache` (overridden by `--no-cache`) runs the session against an
//! in-memory content-addressed stage cache; `--cache-dir DIR` (default
//! `.cool-cache` when the flag is given without a value) additionally
//! attaches the persistent disk tier, so *repeated invocations* skip
//! every stage whose inputs did not change. Per-stage
//! hit/miss/disk-hit accounting shows up under `--trace`. `cool cache
//! stats`/`clear` inspect and empty a cache directory. `simulate`
//! additionally executes one system invocation on the co-simulator;
//! `check` only parses and validates the specification.
//!
//! Underneath the stage keys sits a *node tier*: per-node HLS designs,
//! STG fragments and hardware VHDL units are content-addressed on the
//! node's own behavior, so an edit that dirties one node re-synthesizes
//! exactly that node even though every stage-level key missed. `cool
//! watch <spec>` is the front-end of that tier — it polls the spec
//! file's content and re-runs the flow against one long-lived cache on
//! every save. `--pin NODE=RES,...` (with `*=RES` for all function
//! nodes) fixes the partitioning so nothing stochastic can masquerade
//! as a cache miss, and `--expect-node-disk-hits MIN` /
//! `--expect-node-synth-max MAX` turn the node-reuse contract into a
//! non-zero exit code for CI.
//!
//! `cool serve` keeps all of that resident: a [`cool_core::server`]
//! daemon holding one hot stage cache that every client shares, with
//! identical in-flight requests coalesced into a single synthesis.
//! `cool flow <spec> --connect ADDR` and `cool simulate <spec> ...
//! --connect ADDR` run against the daemon instead of synthesizing
//! locally; the flow client writes the same output files a local flow
//! would and reports which flight served it, how many requests
//! coalesced onto that flight, and how many stages it actually
//! computed (`0 stage(s) computed` is the warm-cache signature CI
//! greps for).
//!
//! The daemon doubles as a *fleet cache shard*: `--cache-remote ADDR`
//! on `flow`/`simulate`/`pareto`/`watch` attaches it as a third cache
//! tier (memory → disk → remote). Lookups that miss both local tiers
//! fetch the entry bytes from the daemon and re-materialize them into
//! the local disk tier; computed stages write through, so a second
//! machine with an empty `.cool-cache/` warm-starts a sweep entirely
//! from the fleet store. The daemon being unreachable degrades the
//! cache to local-only (one warning per outage streak) — it never
//! fails the flow. `cool ping --connect ADDR` is the matching fleet
//! health check, and `cool cache stats --connect ADDR` asks a daemon
//! for its resident cache counters.

use std::collections::BTreeMap;
use std::error::Error;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use cool_core::server::{Client, FlowRequest, Server, DEFAULT_ADDR};
use cool_core::{
    ArtifactSlot, FlowArtifacts, FlowOptions, FlowSession, FlowTrace, Partitioner, StageCache,
};
use cool_cost::CommScheme;
use cool_ir::{BudgetConstraint, Objective, PartitioningGraph, Resource, Target};
use cool_partition::{GaOptions, HeuristicOptions, MilpOptions, Optimality, PricingRule};

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cool: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<(), Box<dyn Error>> {
    let Some(command) = args.first().cloned() else {
        return Err(usage().into());
    };
    let rest = &args[1..];
    match command.as_str() {
        "check" => {
            let spec = read_spec(rest)?;
            let graph = cool_spec::parse(&spec)?;
            println!(
                "ok: design `{}` with {} nodes, {} edges",
                graph.name(),
                graph.node_count(),
                graph.edge_count()
            );
            Ok(())
        }
        "flow" => {
            let spec = read_spec(rest)?;
            let graph = cool_spec::parse(&spec)?;
            let mut options = parse_options(rest)?;
            apply_pins(&mut options, &graph, rest)?;
            let out = flag_value(rest, "--out").unwrap_or_else(|| "cool_out".to_string());
            let targets_flag = flag_value(rest, "--targets");
            let to_stage_flag = flag_value(rest, "--to-stage");
            if targets_flag.is_some() && to_stage_flag.is_some() {
                return Err(
                    "--targets and --to-stage cannot be combined: family mode implements \
                     every board completely (drop one of the flags)"
                        .into(),
                );
            }
            if let Some(addr) = flag_value(rest, "--connect") {
                if targets_flag.is_some() || to_stage_flag.is_some() {
                    return Err(
                        "--connect serves single-board full flows only (drop --targets/--to-stage)"
                            .into(),
                    );
                }
                return run_flow_connected(&addr, spec, &options, &out, rest);
            }
            if let Some(list) = targets_flag {
                return run_family_mode(&graph, &options, &list, rest);
            }
            if let Some(stage) = to_stage_flag {
                return run_partial_mode(&graph, &options, &stage, rest);
            }
            let (session, cache) = configure_session(&graph, &options, rest)?;
            let art = session.run()?;
            println!("{}", art.report());
            warn_on_truncation(art.partition.optimality, art.partition.gap);
            check_expectations(&art.trace, rest)?;
            if rest.iter().any(|a| a == "--trace") {
                println!(
                    "engine trace ({} worker(s)):",
                    cool_ir::par::effective_jobs(options.jobs, usize::MAX)
                );
                print!("{}", art.trace.to_table());
                if let Some(cache) = &cache {
                    println!("{}", cache.stats().summary());
                }
            }
            let dir = PathBuf::from(out);
            fs::create_dir_all(&dir)?;
            for (name, source) in &art.vhdl {
                fs::write(dir.join(name), source)?;
            }
            fs::write(
                dir.join("cool_memory_map.h"),
                cool_codegen::emit_memory_header(&graph, &art.memory_map),
            )?;
            for p in &art.c_programs {
                fs::write(dir.join(&p.file_name), &p.source)?;
            }
            println!(
                "wrote {} VHDL unit(s), {} C unit(s) and the memory map to {}",
                art.vhdl.len(),
                art.c_programs.len(),
                dir.display()
            );
            Ok(())
        }
        "simulate" => {
            let spec = read_spec(rest)?;
            let graph = cool_spec::parse(&spec)?;
            let mut options = parse_options(rest)?;
            apply_pins(&mut options, &graph, rest)?;
            if flag_value(rest, "--targets").is_some() || flag_value(rest, "--to-stage").is_some() {
                return Err(
                    "--targets/--to-stage apply to `cool flow` only (simulate needs one \
                     complete implementation)"
                        .into(),
                );
            }
            let mut inputs: BTreeMap<String, i64> = BTreeMap::new();
            for (i, a) in rest.iter().enumerate().skip(1) {
                // A flag's value can contain `=` (`--pin '*=hw0'`) —
                // only bare arguments are input assignments.
                if i > 0 && VALUE_FLAGS.contains(&rest[i - 1].as_str()) {
                    continue;
                }
                if let Some((k, v)) = a.split_once('=') {
                    inputs.insert(k.to_string(), v.parse()?);
                }
            }
            for id in graph.primary_inputs() {
                let name = graph.node(id)?.name().to_string();
                inputs.entry(name).or_insert(0);
            }
            if let Some(addr) = flag_value(rest, "--connect") {
                let mut client = connect_client(&addr)?;
                let r = client.simulate(
                    FlowRequest {
                        spec,
                        target: target_flag(rest)?,
                        options,
                    },
                    inputs.into_iter().collect(),
                )?;
                let busy = if r.cycles == 0 {
                    0.0
                } else {
                    r.bus_busy_cycles as f64 / r.cycles as f64
                };
                println!(
                    "simulated {} cycles ({} bus transfer(s), bus {:.1} % busy)",
                    r.cycles,
                    r.bus_transfers,
                    100.0 * busy
                );
                for (name, value) in &r.outputs {
                    println!("  {name} = {value}");
                }
                return Ok(());
            }
            let (session, cache) = configure_session(&graph, &options, rest)?;
            let art = session.run()?;
            warn_on_truncation(art.partition.optimality, art.partition.gap);
            let r = art.simulate(&inputs)?;
            println!(
                "simulated {} cycles ({} bus transfer(s), bus {:.1} % busy)",
                r.cycles,
                r.bus_transfers,
                100.0 * r.bus_utilization()
            );
            for (name, value) in &r.outputs {
                println!("  {name} = {value}");
            }
            if rest.iter().any(|a| a == "--trace") {
                println!(
                    "engine trace ({} worker(s)):",
                    cool_ir::par::effective_jobs(options.jobs, usize::MAX)
                );
                print!("{}", art.trace.to_table());
                if let Some(cache) = &cache {
                    println!("{}", cache.stats().summary());
                }
            }
            Ok(())
        }
        "pareto" => {
            let spec = read_spec(rest)?;
            let graph = cool_spec::parse(&spec)?;
            let mut options = parse_options(rest)?;
            apply_pins(&mut options, &graph, rest)?;
            if flag_value(rest, "--targets").is_some() {
                return Err(
                    "--targets applies to `cool flow` only; pareto sweeps CLB budgets of one \
                     base board (--target)"
                        .into(),
                );
            }
            let budgets_flag = flag_value(rest, "--budgets").ok_or(
                "pareto needs --budgets A..B:STEP or a comma list (e.g. --budgets 16..128:8)",
            )?;
            let budgets = parse_budgets(&budgets_flag)?;
            let (session, cache) = configure_session(&graph, &options, rest)?;
            let front = session.pareto(budgets)?;
            if rest.iter().any(|a| a == "--csv") {
                print!("{}", front.to_csv());
            } else {
                print!("{}", front.report());
            }
            if rest.iter().any(|a| a == "--trace") {
                if let Some(cache) = &cache {
                    println!("{}", cache.stats().summary());
                }
            }
            Ok(())
        }
        "watch" => run_watch(rest),
        "serve" => run_serve(rest),
        "ping" => run_ping(rest),
        "cache" => run_cache_command(rest),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage()).into()),
    }
}

fn usage() -> &'static str {
    "usage:\n  cool check    <spec.cool>\n  cool flow     <spec.cool> [--out DIR] [--partitioner milp|heuristic|ga] [--objective makespan|area|comm|blend:T,C,A] [--milp-max-nodes N] [--milp-max-pivots N] [--milp-pricing steepest|bland] [--scheme mmio|direct] [--quick] [--jobs N] [--target BOARD] [--targets BOARD,BOARD,...] [--to-stage cost|partition|schedule|stg|hls|rtl|codegen] [--pin NODE=RES,... ] [--cache|--no-cache] [--cache-dir DIR] [--cache-max-bytes N] [--cache-remote ADDR] [--trace] [--expect-node-disk-hits MIN] [--expect-node-synth-max MAX] [--connect ADDR]\n  cool pareto   <spec.cool> --budgets A..B:STEP|N,N,... [--csv] [same flags as flow, minus --targets]\n  cool watch    <spec.cool> [--poll-ms N] [--max-runs N] [same flags as flow, minus --out]\n  cool simulate <spec.cool> [name=value ...] [same flags as flow]\n  cool serve    [--addr ADDR] [--cache-dir DIR] [--cache-max-bytes N]\n  cool ping     [--connect ADDR]\n  cool cache    stats|clear [--cache-dir DIR] [--cache-max-bytes N] [--connect ADDR]\nboards: fuzzy, minimal; cap FPGA budgets with BOARD@CLBS (e.g. fuzzy@96)\npins: NODE=hw0|hw1|sw0|..., or *=RES for every function node (later entries override)\npareto: epsilon-constraint sweep over FPGA CLB budgets (--budgets 16..128:8), one shared cache, cost estimated once\nserve: `cool serve` starts the resident daemon (default addr 127.0.0.1:2665); `--connect ADDR` makes flow/simulate clients of it\nfleet: `--cache-remote ADDR` adds a daemon as a third cache tier (memory → disk → remote) on flow/simulate/pareto/watch; `cool ping --connect ADDR` measures the round-trip"
}

/// Default persistent cache directory, relative to the working directory.
const DEFAULT_CACHE_DIR: &str = ".cool-cache";

/// Every flag that consumes the following argument as its value. Used
/// to tell a flag value containing `=` apart from a `name=value`
/// simulation input.
const VALUE_FLAGS: &[&str] = &[
    "--out",
    "--partitioner",
    "--scheme",
    "--jobs",
    "--target",
    "--targets",
    "--to-stage",
    "--pin",
    "--cache-dir",
    "--cache-max-bytes",
    "--cache-remote",
    "--expect-node-disk-hits",
    "--expect-node-synth-max",
    "--objective",
    "--budgets",
    "--milp-max-nodes",
    "--milp-comm-weight",
    "--milp-max-pivots",
    "--milp-pricing",
    "--poll-ms",
    "--max-runs",
    "--connect",
    "--addr",
];

/// The cache directory selected by `--cache-dir [DIR]`, if the flag is
/// present (a missing or flag-like value selects the default directory).
fn cache_dir_flag(rest: &[String]) -> Option<String> {
    let i = rest.iter().position(|a| a == "--cache-dir")?;
    Some(match rest.get(i + 1) {
        Some(v) if !v.starts_with("--") => v.clone(),
        _ => DEFAULT_CACHE_DIR.to_string(),
    })
}

/// Resolve a board spec: a named preset (`fuzzy`, `minimal`) with an
/// optional `@N` suffix capping every FPGA of the preset at `N` CLBs
/// (`fuzzy@96`).
fn parse_board(spec: &str) -> Result<Target, Box<dyn Error>> {
    let (name, budget) = match spec.split_once('@') {
        Some((name, n)) => {
            let budget: u32 = n
                .parse()
                .map_err(|_| format!("board `{spec}`: `@` expects a CLB budget, got `{n}`"))?;
            (name, Some(budget))
        }
        None => (spec, None),
    };
    let mut target = match name {
        "fuzzy" => Target::fuzzy_board(),
        "minimal" => Target::minimal(),
        other => {
            return Err(
                format!("unknown board `{other}`; known presets: fuzzy, minimal (cap FPGA budgets with e.g. fuzzy@96)").into(),
            )
        }
    };
    if let Some(budget) = budget {
        for hw in &mut target.hw {
            hw.clb_capacity = budget;
        }
    }
    Ok(target)
}

/// The single board selected by `--target` (default: the paper's fuzzy
/// prototyping board).
fn target_flag(rest: &[String]) -> Result<Target, Box<dyn Error>> {
    match flag_value(rest, "--target") {
        Some(spec) => parse_board(&spec),
        None => Ok(Target::fuzzy_board()),
    }
}

/// Parse the `--budgets` argument of `cool pareto`: either an
/// inclusive stepped range `A..B:STEP` or a comma-separated list of
/// CLB capacities (`16,32,64`).
fn parse_budgets(spec: &str) -> Result<Vec<BudgetConstraint>, Box<dyn Error>> {
    let malformed = || -> Box<dyn Error> {
        format!(
            "--budgets expects A..B:STEP or a comma list (e.g. 16..128:8 or 16,32,64), got `{spec}`"
        )
        .into()
    };
    if let Some((range, step)) = spec.split_once(':') {
        let (lo, hi) = range.split_once("..").ok_or_else(malformed)?;
        let lo: u32 = lo.trim().parse().map_err(|_| malformed())?;
        let hi: u32 = hi.trim().parse().map_err(|_| malformed())?;
        let step: u32 = step.trim().parse().map_err(|_| malformed())?;
        if step == 0 || lo == 0 || lo > hi {
            return Err(malformed());
        }
        return Ok((lo..=hi)
            .step_by(step as usize)
            .map(BudgetConstraint::new)
            .collect());
    }
    spec.split(',')
        .map(|tok| {
            let clbs: u32 = tok.trim().parse().map_err(|_| malformed())?;
            if clbs == 0 {
                return Err(malformed());
            }
            Ok(BudgetConstraint::new(clbs))
        })
        .collect()
}

/// Map a `--to-stage` name onto the artifact slot whose production
/// completes that stage.
fn parse_stop_stage(stage: &str) -> Result<ArtifactSlot, Box<dyn Error>> {
    Ok(match stage {
        "cost" => ArtifactSlot::Cost,
        "partition" => ArtifactSlot::Partition,
        "schedule" => ArtifactSlot::Schedule,
        "stg" => ArtifactSlot::MemoryMap,
        "hls" => ArtifactSlot::HlsDesigns,
        "rtl" => ArtifactSlot::Placements,
        "codegen" => ArtifactSlot::CPrograms,
        other => {
            return Err(format!(
                "unknown --to-stage `{other}`; expected one of cost, partition, schedule, \
                 stg, hls, rtl, codegen (spec/sim-prep produce no artifact — run the full flow)"
            )
            .into())
        }
    })
}

/// Configure a single-target [`FlowSession`] from the command line,
/// attaching a stage cache only when `--cache` or `--cache-dir` was
/// explicitly given (`--no-cache` wins). A single invocation can never
/// *hit* a fresh in-memory cache, so recording — which clones every
/// artifact the stages deposit — is never paid by default; with
/// `--cache-dir` the persistent tier makes repeated invocations
/// warm-start from each other. The cache handle is returned so
/// `--trace` can print its stats.
fn configure_session<'g>(
    graph: &'g PartitioningGraph,
    options: &FlowOptions,
    rest: &[String],
) -> Result<(FlowSession<'g>, Option<StageCache>), Box<dyn Error>> {
    let mut session = FlowSession::new(graph)
        .target(target_flag(rest)?)
        .options(options.clone());
    let cache = cache_from_flags(rest)?;
    if let Some(cache) = &cache {
        session = session.cache(cache.clone());
    }
    Ok((session, cache))
}

/// The stage cache the flags ask for, if any. `--cache-remote ADDR`
/// implies caching (like `--cache-dir`) and attaches the daemon at
/// `ADDR` as the third tier under whatever local tiers resolved.
fn cache_from_flags(rest: &[String]) -> Result<Option<StageCache>, Box<dyn Error>> {
    let no_cache = rest.iter().any(|a| a == "--no-cache");
    let dir = cache_dir_flag(rest);
    let remote = flag_value(rest, "--cache-remote");
    let wanted =
        !no_cache && (dir.is_some() || remote.is_some() || rest.iter().any(|a| a == "--cache"));
    if !wanted {
        return Ok(None);
    }
    let cache = match dir {
        Some(dir) => StageCache::persistent_with_cap(
            StageCache::DEFAULT_CAPACITY,
            dir,
            cache_max_bytes_flag(rest)?,
        )?,
        None => StageCache::default(),
    };
    Ok(Some(match remote {
        Some(addr) => cache.with_remote(std::sync::Arc::new(cool_core::RemoteStore::new(addr))),
        None => cache,
    }))
}

/// `cool flow --targets a,b,c`: implement the specification on a board
/// family through one [`FlowSession::run_family`] — the cost model is
/// estimated once and retargeted per board — and print the comparative
/// report. File output is per-implementation, so family mode reports
/// only; re-run with `--target BOARD` to write a chosen board's files.
fn run_family_mode(
    graph: &PartitioningGraph,
    options: &FlowOptions,
    list: &str,
    rest: &[String],
) -> Result<(), Box<dyn Error>> {
    let mut targets = Vec::new();
    for spec in list.split(',').filter(|s| !s.is_empty()) {
        targets.push(parse_board(spec)?);
    }
    if targets.is_empty() {
        return Err("--targets expects a comma-separated board list (e.g. fuzzy@48,fuzzy)".into());
    }
    let mut session = FlowSession::new(graph)
        .targets(targets)
        .options(options.clone());
    let cache = cache_from_flags(rest)?;
    if let Some(cache) = &cache {
        session = session.cache(cache.clone());
    }
    let family = session.run_family()?;
    print!("{}", family.report());
    for art in &family {
        warn_on_truncation(art.partition.optimality, art.partition.gap);
    }
    if rest.iter().any(|a| a == "--trace") {
        for (i, art) in family.iter().enumerate() {
            println!("board #{i} trace:");
            print!("{}", art.trace.to_table());
        }
        if let Some(cache) = &cache {
            println!("{}", cache.stats().summary());
        }
    }
    println!(
        "family mode reports without writing files; re-run with --target BOARD \
         to write one board's VHDL/C"
    );
    Ok(())
}

/// `cool flow --to-stage STAGE`: run the flow prefix up to the named
/// stage and report the partial artifact set.
fn run_partial_mode(
    graph: &PartitioningGraph,
    options: &FlowOptions,
    stage: &str,
    rest: &[String],
) -> Result<(), Box<dyn Error>> {
    let stop = parse_stop_stage(stage)?;
    let (session, cache) = configure_session(graph, options, rest)?;
    let partial = session.run_to(stop)?;
    println!(
        "partial flow of design `{}` (stopped after `{stage}`):",
        graph.name()
    );
    for slot in ArtifactSlot::ALL {
        println!(
            "  {:<16} {}",
            slot.name(),
            if partial.is_filled(slot) {
                "produced"
            } else {
                "-"
            }
        );
    }
    if let Ok(p) = partial.partition() {
        println!(
            "partition: {} sw node(s), {} hw node(s), makespan {} cycles ({})",
            p.software_nodes(graph),
            p.hardware_nodes(graph),
            p.makespan,
            p.optimality_label(),
        );
    }
    if rest.iter().any(|a| a == "--trace") {
        print!("{}", partial.trace().to_table());
        if let Some(cache) = &cache {
            println!("{}", cache.stats().summary());
        }
    }
    println!(
        "partial flows report without writing files; run the full flow \
         (drop --to-stage) to write VHDL/C{}",
        if flag_value(rest, "--out").is_some() {
            " — the given --out was not used"
        } else {
            ""
        }
    );
    Ok(())
}

/// `--pin NODE=RES,...`: bypass the partitioner with an explicit,
/// fully deterministic mapping. `RES` is `hw<i>` or `sw<i>`; the entry
/// `*=RES` assigns every function node at once, and later entries
/// override earlier ones, so `--pin '*=hw0,scale=hw1'` pins the whole
/// graph to `hw0` except the `scale` node. Unpinned function nodes
/// default to `sw0`. This is what makes the incremental-synthesis CI
/// smoke reproducible: no GA seed or MILP tie-break can move a node
/// between runs and masquerade as a cache miss.
fn apply_pins(
    options: &mut FlowOptions,
    graph: &PartitioningGraph,
    rest: &[String],
) -> Result<(), Box<dyn Error>> {
    let Some(list) = flag_value(rest, "--pin") else {
        return Ok(());
    };
    let mut mapping = cool_partition::all_software(graph);
    for item in list.split(',').filter(|s| !s.is_empty()) {
        let (name, res) = item
            .split_once('=')
            .ok_or_else(|| format!("--pin expects NODE=RES entries, got `{item}`"))?;
        let resource = parse_resource(res)?;
        if name == "*" {
            for id in graph.function_nodes() {
                mapping.assign(id, resource);
            }
        } else {
            let id = graph
                .node_by_name(name)
                .ok_or_else(|| format!("--pin: design has no node named `{name}`"))?;
            mapping.assign(id, resource);
        }
    }
    options.partitioner = Partitioner::Fixed(mapping);
    Ok(())
}

/// Parse `hw<i>`/`sw<i>` into a [`Resource`].
fn parse_resource(s: &str) -> Result<Resource, Box<dyn Error>> {
    let err = || format!("--pin: resource `{s}` is not of the form hw<i> or sw<i> (e.g. hw0)");
    if let Some(i) = s.strip_prefix("hw") {
        return Ok(Resource::Hardware(i.parse().map_err(|_| err())?));
    }
    if let Some(i) = s.strip_prefix("sw") {
        return Ok(Resource::Software(i.parse().map_err(|_| err())?));
    }
    Err(err().into())
}

/// CI tripwires over the node-tier trace: `--expect-node-disk-hits MIN`
/// fails the invocation unless at least `MIN` node artifacts were served
/// from the disk tier, and `--expect-node-synth-max MAX` fails it if
/// more than `MAX` nodes went through fresh HLS synthesis. Together they
/// pin the warm-edit contract ("the second process reuses from disk and
/// re-synthesizes only the edited node") in a way a shell script can
/// assert without parsing the trace table.
fn check_expectations(trace: &FlowTrace, rest: &[String]) -> Result<(), Box<dyn Error>> {
    if let Some(min) = flag_value(rest, "--expect-node-disk-hits") {
        let min: usize = min
            .parse()
            .map_err(|_| format!("--expect-node-disk-hits expects a count, got `{min}`"))?;
        let got = trace.node_disk_reused();
        if got < min {
            return Err(format!(
                "expected at least {min} node-level disk hit(s), saw {got}\n{}",
                trace.to_table()
            )
            .into());
        }
    }
    if let Some(max) = flag_value(rest, "--expect-node-synth-max") {
        let max: usize = max
            .parse()
            .map_err(|_| format!("--expect-node-synth-max expects a count, got `{max}`"))?;
        let got = trace.node_delta_of("hls").map_or(0, |d| d.computed);
        if got > max {
            return Err(format!(
                "expected at most {max} fresh node synthesis(es), saw {got}\n{}",
                trace.to_table()
            )
            .into());
        }
    }
    Ok(())
}

/// `cool watch <spec>`: the incremental edit loop. Polls the
/// specification file (std has no inotify) and re-runs the flow on
/// every change against one long-lived stage cache, so an edit costs
/// only what it dirtied — typically one node's HLS under the node tier.
/// Change detection compares *content*, not mtime: filesystem
/// timestamps are jiffy-coarse, so two saves a millisecond apart can
/// share an mtime and the second edit would be missed; a byte compare
/// also means `touch` without an edit does not trigger a run.
///
/// The cache defaults *on* (in-memory) because an uncached watch loop
/// would be pointless; `--cache-dir` adds the persistent tier and
/// `--no-cache` turns reuse off for comparison. Parse and flow errors
/// are reported and watched through — a half-saved spec must not kill
/// the loop. `--max-runs N` exits after `N` runs (0 = watch forever),
/// which is how the tests drive it.
fn run_watch(rest: &[String]) -> Result<(), Box<dyn Error>> {
    use std::io::Write as _;
    use std::time::{Duration, Instant};

    let path = rest
        .iter()
        .find(|a| !a.starts_with("--") && !a.contains('='))
        .ok_or("missing specification file argument")?
        .clone();
    let base_options = parse_options(rest)?;
    let target = target_flag(rest)?;
    let trace = rest.iter().any(|a| a == "--trace");
    let poll_ms: u64 = match flag_value(rest, "--poll-ms") {
        None => 200,
        Some(v) => v
            .parse()
            .map_err(|_| format!("--poll-ms expects milliseconds, got `{v}`"))?,
    };
    let max_runs: usize = match flag_value(rest, "--max-runs") {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|_| format!("--max-runs expects a run count, got `{v}`"))?,
    };
    let cache = if rest.iter().any(|a| a == "--no-cache") {
        None
    } else {
        // Unlike `flow`, an explicit `--cache` flag is not required: the
        // whole point of watching is the warm re-run.
        Some(cache_from_flags(rest)?.unwrap_or_default())
    };
    println!(
        "watching {path} (poll {poll_ms} ms, cache {}) — edit the file to re-run",
        match (&cache, cache_dir_flag(rest)) {
            (None, _) => "off".to_string(),
            (Some(c), dir) => {
                let mut desc = match dir {
                    Some(dir) => format!("memory+disk `{dir}`"),
                    None => "memory".to_string(),
                };
                if let Some(remote) = c.remote() {
                    desc.push_str(&format!("+remote {}", remote.addr()));
                }
                desc
            }
        }
    );
    std::io::stdout().flush()?;

    let mut runs = 0usize;
    let mut last_seen: Option<Vec<u8>> = None;
    // The last read failure reported, so an error streak (editor swap
    // files, a slow atomic rename, a deleted spec) prints once instead
    // of once per poll tick.
    let mut read_error: Option<String> = None;
    loop {
        // Block until the file's bytes change (or the file appears);
        // the first iteration runs immediately. An unreadable file
        // (mid-rename, deleted) is reported like a parse failure —
        // announce it, keep polling — because an edit loop that dies on
        // the brief no-file window of a save-by-rename is useless.
        let content = loop {
            match fs::read(&path) {
                Ok(bytes) => {
                    read_error = None;
                    if last_seen.as_deref() != Some(&bytes[..]) {
                        break bytes;
                    }
                }
                Err(e) => {
                    let msg = e.to_string();
                    if read_error.as_ref() != Some(&msg) {
                        println!("cannot read {path}: {msg} (still watching)");
                        std::io::stdout().flush()?;
                        read_error = Some(msg);
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(poll_ms.max(1)));
        };
        runs += 1;
        let t0 = Instant::now();
        let spec_text = String::from_utf8_lossy(&content).into_owned();
        last_seen = Some(content);
        match watch_once(&spec_text, &target, &base_options, cache.as_ref(), rest) {
            Ok(art) => {
                let t = &art.trace;
                println!(
                    "run #{runs}: ok in {:.2?} — {} stage hit(s) ({} disk), {} node artifact(s) \
                     reused ({} disk), {} synthesized fresh",
                    t0.elapsed(),
                    t.cache_hits() + t.disk_hits(),
                    t.disk_hits(),
                    t.node_reused(),
                    t.node_disk_reused(),
                    t.node_computed(),
                );
                if trace {
                    print!("{}", t.to_table());
                    if let Some(cache) = &cache {
                        println!("{}", cache.stats().summary());
                    }
                }
            }
            // Watch through errors: a spec saved mid-edit parses bad for
            // a moment, and the next save must still trigger a run.
            Err(e) => println!("run #{runs}: error: {e} (still watching)"),
        }
        std::io::stdout().flush()?;
        if max_runs > 0 && runs >= max_runs {
            println!("reached --max-runs {max_runs}; stopping");
            return Ok(());
        }
    }
}

/// One iteration of the watch loop: re-parse the polled specification
/// text, re-apply the pins against the *fresh* graph (node ids may move
/// between edits), and run the flow against the long-lived cache.
fn watch_once(
    spec: &str,
    target: &Target,
    base_options: &FlowOptions,
    cache: Option<&StageCache>,
    rest: &[String],
) -> Result<FlowArtifacts, Box<dyn Error>> {
    let graph = cool_spec::parse(spec)?;
    let mut options = base_options.clone();
    apply_pins(&mut options, &graph, rest)?;
    let mut session = FlowSession::new(&graph)
        .target(target.clone())
        .options(options);
    if let Some(cache) = cache {
        session = session.cache(cache.clone());
    }
    let art = session.run()?;
    check_expectations(&art.trace, rest)?;
    Ok(art)
}

/// `cool serve`: run the resident daemon. One stage cache — in-memory
/// by default, plus the persistent disk tier under `--cache-dir` — is
/// shared by every client, and identical in-flight requests coalesce
/// into a single synthesis. The daemon runs until a client sends a
/// shutdown request or the process is signalled; disk-tier writes are
/// atomic (write + rename), so a SIGTERM mid-flow never leaves a
/// corrupt cache entry behind.
fn run_serve(rest: &[String]) -> Result<(), Box<dyn Error>> {
    use std::io::Write as _;

    let addr = flag_value(rest, "--addr").unwrap_or_else(|| DEFAULT_ADDR.to_string());
    if flag_value(rest, "--cache-remote").is_some() {
        return Err(
            "--cache-remote applies to clients (flow/simulate/pareto/watch); `cool serve` \
             *is* the remote — daemons never chain to other daemons"
                .into(),
        );
    }
    // Like `watch`, the cache defaults *on*: a daemon without one would
    // just be a slower way to fork `cool flow`.
    let cache = if rest.iter().any(|a| a == "--no-cache") {
        StageCache::new(0)
    } else {
        cache_from_flags(rest)?.unwrap_or_default()
    };
    let server =
        Server::bind(&addr, cache).map_err(|e| format!("cannot bind coold to {addr}: {e}"))?;
    println!(
        "coold listening on {} (cache {}) — point clients at it with --connect",
        server.addr(),
        match cache_dir_flag(rest) {
            Some(dir) => format!("memory+disk `{dir}`"),
            None => "memory".to_string(),
        }
    );
    std::io::stdout().flush()?;
    server.run()?;
    println!("coold: shut down cleanly");
    Ok(())
}

/// `cool ping [--connect ADDR]`: the fleet health check — one
/// `Ping`/`Pong` round-trip against a running daemon, timed.
fn run_ping(rest: &[String]) -> Result<(), Box<dyn Error>> {
    let addr = flag_value(rest, "--connect").unwrap_or_else(|| DEFAULT_ADDR.to_string());
    let mut client = connect_client(&addr)?;
    let t0 = std::time::Instant::now();
    client.ping()?;
    println!(
        "pong from coold at {addr} in {:.3} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}

/// Connect to a running daemon, with a hint when nobody is listening.
fn connect_client(addr: &str) -> Result<Client, Box<dyn Error>> {
    Client::connect(addr).map_err(|e| {
        format!("cannot reach coold at {addr} ({e}); start it with `cool serve`").into()
    })
}

/// `cool flow <spec> --connect ADDR`: run the flow on the daemon
/// instead of synthesizing locally. Prints the same report and writes
/// the same output files as a local flow, plus one line of coalescing
/// observability (flight id, requests served by that flight, stages it
/// actually computed — `0 stage(s) computed` is a fully warm serve).
fn run_flow_connected(
    addr: &str,
    spec: String,
    options: &FlowOptions,
    out: &str,
    rest: &[String],
) -> Result<(), Box<dyn Error>> {
    let mut client = connect_client(addr)?;
    let resp = client.flow(FlowRequest {
        spec,
        target: target_flag(rest)?,
        options: options.clone(),
    })?;
    println!("{}", resp.report);
    warn_on_truncation(resp.optimality, resp.gap);
    check_expectations(&resp.trace, rest)?;
    println!(
        "served by coold at {addr}: flight #{}, {} request(s) on the flight, {} stage(s) computed",
        resp.flight,
        resp.joined,
        resp.stages_computed(),
    );
    if rest.iter().any(|a| a == "--trace") {
        print!("{}", resp.trace.to_table());
    }
    let dir = PathBuf::from(out);
    fs::create_dir_all(&dir)?;
    for (name, source) in &resp.vhdl {
        fs::write(dir.join(name), source)?;
    }
    fs::write(dir.join("cool_memory_map.h"), &resp.memory_header)?;
    for (name, source) in &resp.c_programs {
        fs::write(dir.join(name), source)?;
    }
    println!(
        "wrote {} VHDL unit(s), {} C unit(s) and the memory map to {}",
        resp.vhdl.len(),
        resp.c_programs.len(),
        dir.display()
    );
    Ok(())
}

/// The disk tier's byte-size cap from `--cache-max-bytes N` (`0` =
/// unbounded), defaulting to [`cool_core::disk::DEFAULT_MAX_BYTES`].
fn cache_max_bytes_flag(rest: &[String]) -> Result<u64, Box<dyn Error>> {
    match flag_value(rest, "--cache-max-bytes") {
        None => Ok(cool_core::disk::DEFAULT_MAX_BYTES),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--cache-max-bytes expects a byte count, got `{v}`").into()),
    }
}

/// `cool cache stats|clear [--cache-dir DIR] [--cache-max-bytes N]
/// [--connect ADDR]`. With `--connect`, `stats` asks a running daemon
/// for its resident cache counters instead of reading a directory.
fn run_cache_command(rest: &[String]) -> Result<(), Box<dyn Error>> {
    let dir = cache_dir_flag(rest).unwrap_or_else(|| DEFAULT_CACHE_DIR.to_string());
    // The action is the first token that is neither a flag nor a flag's
    // value, so both `cool cache stats --cache-dir D` and
    // `cool cache --cache-dir D stats` work.
    let value_positions: Vec<usize> = rest
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--cache-dir" || *a == "--cache-max-bytes" || *a == "--connect")
        .map(|(i, _)| i + 1)
        .collect();
    let action = rest
        .iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && !value_positions.contains(i))
        .map(|(_, a)| a.as_str())
        .ok_or("cache: expected `stats` or `clear`")?;
    let plural = |n: usize| if n == 1 { "y" } else { "ies" };
    match action {
        "stats" if flag_value(rest, "--connect").is_some() => {
            let addr = flag_value(rest, "--connect").expect("checked above");
            let mut client = connect_client(&addr)?;
            let stats = client.cache_stats()?;
            println!(
                "coold at {addr}: {} stage entr{}, {} node entr{} resident",
                stats.entries,
                plural(stats.entries as usize),
                stats.node_entries,
                plural(stats.node_entries as usize),
            );
            println!(
                "  fleet traffic: {} get hit(s), {} get miss(es), {} put(s) accepted, \
                 {} put(s) rejected",
                stats.serve_hits, stats.serve_misses, stats.puts_accepted, stats.puts_rejected,
            );
            println!("  {}", stats.summary);
            Ok(())
        }
        "stats" => {
            if !std::path::Path::new(&dir).is_dir() {
                println!("cache directory `{dir}` does not exist (0 entries)");
                return Ok(());
            }
            // Strictly read-only: open unbounded (cap 0 disables the
            // open-time enforcement — the flows that *write* the cache
            // enforce their own cap) and report what the cap in force
            // would do, rather than trimming someone else's entries just
            // because they were inspected.
            let cap = cache_max_bytes_flag(rest)?;
            let store = cool_core::DiskStore::open_with_cap(&dir, 0)?;
            let n = store.entry_count();
            println!(
                "cache directory `{dir}`: {n} entr{}, {} bytes (cap {cap} bytes, format v{})",
                plural(n),
                store.total_bytes(),
                cool_core::disk::FORMAT_VERSION,
            );
            let kinds = store.kind_counts();
            println!(
                "  {} stage entr{}, {} node entr{}, {} invalid (foreign version, corrupt \
                 or unknown kind — evicted on next keyed access)",
                kinds.stage,
                plural(kinds.stage),
                kinds.node,
                plural(kinds.node),
                kinds.invalid,
            );
            let victims = store.would_evict(cap);
            if victims > 0 {
                println!(
                    "over cap: the next capped flow will evict {victims} entr{} (LRU by mtime)",
                    plural(victims),
                );
            } else {
                println!("within cap: 0 size-cap evictions pending");
            }
            Ok(())
        }
        "clear" if flag_value(rest, "--connect").is_some() => Err(
            "cache clear is local-only (a daemon's store belongs to the daemon); \
             run it on the machine holding the cache directory"
                .into(),
        ),
        "clear" => {
            if !std::path::Path::new(&dir).is_dir() {
                println!("cache directory `{dir}` does not exist; nothing to clear");
                return Ok(());
            }
            let store = cool_core::DiskStore::open(&dir)?;
            let removed = store.clear()?;
            println!("removed {removed} entr{} from `{dir}`", plural(removed));
            Ok(())
        }
        other => Err(format!("unknown cache action `{other}`; expected `stats` or `clear`").into()),
    }
}

/// Surface a truncated MILP solve on stderr: the report already labels
/// the partition "node-limit truncated", but a user piping stdout into a
/// file must not mistake the incumbent for the proven optimum. Takes the
/// optimality/gap pair (rather than full artifacts) so served responses
/// get the same warning.
fn warn_on_truncation(optimality: Optimality, gap: Option<f64>) {
    if optimality == Optimality::LimitReached {
        let gap = match gap {
            Some(gap) => format!(" — within {:.1} % of the solver optimum", gap * 100.0),
            None => String::new(),
        };
        eprintln!(
            "cool: warning: the MILP branch & bound hit its node limit; the partition \
             is feasible but not proven optimal{gap} (raise --milp-max-nodes)"
        );
    }
}

fn read_spec(rest: &[String]) -> Result<String, Box<dyn Error>> {
    let path = rest
        .iter()
        .find(|a| !a.starts_with("--") && !a.contains('='))
        .ok_or("missing specification file argument")?;
    Ok(fs::read_to_string(path)?)
}

fn flag_value(rest: &[String], flag: &str) -> Option<String> {
    rest.iter()
        .position(|a| a == flag)
        .and_then(|i| rest.get(i + 1))
        .cloned()
}

fn parse_options(rest: &[String]) -> Result<FlowOptions, Box<dyn Error>> {
    let mut options = if rest.iter().any(|a| a == "--quick") {
        FlowOptions::quick()
    } else {
        FlowOptions::default()
    };
    if let Some(p) = flag_value(rest, "--partitioner") {
        options.partitioner = match p.as_str() {
            "milp" => Partitioner::Milp(MilpOptions::default()),
            "heuristic" => Partitioner::Heuristic(HeuristicOptions::default()),
            "ga" => Partitioner::Genetic(GaOptions::default()),
            other => return Err(format!("unknown partitioner `{other}`").into()),
        };
    }
    if let Some(s) = flag_value(rest, "--scheme") {
        options.scheme = match s.as_str() {
            "mmio" => CommScheme::MemoryMapped,
            "direct" => CommScheme::Direct,
            other => return Err(format!("unknown scheme `{other}`").into()),
        };
    }
    if let Some(j) = flag_value(rest, "--jobs") {
        options.jobs = j
            .parse()
            .map_err(|_| format!("--jobs expects a non-negative integer, got `{j}`"))?;
    }
    if let Some(n) = flag_value(rest, "--milp-max-nodes") {
        let max_nodes: usize = n
            .parse()
            .map_err(|_| format!("--milp-max-nodes expects a positive integer, got `{n}`"))?;
        match &mut options.partitioner {
            Partitioner::Milp(o) => o.max_nodes = max_nodes,
            Partitioner::Heuristic(o) => o.milp.max_nodes = max_nodes,
            _ => {
                return Err(
                    "--milp-max-nodes applies to the milp/heuristic partitioners only".into(),
                )
            }
        }
    }
    if let Some(obj) = flag_value(rest, "--objective") {
        // Flow-level override: survives `--pin` swapping the partitioner
        // for a fixed mapping (where it is simply inert).
        options.objective = Some(obj.parse::<Objective>()?);
    }
    if let Some(w) = flag_value(rest, "--milp-comm-weight") {
        let weight: f64 = w
            .parse()
            .map_err(|_| format!("--milp-comm-weight expects a number, got `{w}`"))?;
        // Deprecated alias: the old scalar knob maps onto the blended
        // objective with the historical time/area weights left at their
        // defaults. Keep stdout untouched (scripts grep flow output).
        let objective = Objective::blend(1.0, weight, 0.05);
        eprintln!("note: --milp-comm-weight is deprecated; use --objective blend:1,{weight},0.05");
        match &mut options.partitioner {
            Partitioner::Milp(o) => o.objective = objective,
            Partitioner::Heuristic(o) => o.milp.objective = objective,
            _ => {
                return Err(
                    "--milp-comm-weight applies to the milp/heuristic partitioners only".into(),
                )
            }
        }
    }
    if let Some(n) = flag_value(rest, "--milp-max-pivots") {
        let max_pivots: usize = n
            .parse()
            .map_err(|_| format!("--milp-max-pivots expects a positive integer, got `{n}`"))?;
        match &mut options.partitioner {
            Partitioner::Milp(o) => o.max_pivots = max_pivots,
            Partitioner::Heuristic(o) => o.milp.max_pivots = max_pivots,
            _ => {
                return Err(
                    "--milp-max-pivots applies to the milp/heuristic partitioners only".into(),
                )
            }
        }
    }
    if let Some(p) = flag_value(rest, "--milp-pricing") {
        let pricing: PricingRule = p.parse()?;
        match &mut options.partitioner {
            Partitioner::Milp(o) => o.pricing = pricing,
            Partitioner::Heuristic(o) => o.milp.pricing = pricing,
            _ => {
                return Err("--milp-pricing applies to the milp/heuristic partitioners only".into())
            }
        }
    }
    Ok(options)
}
