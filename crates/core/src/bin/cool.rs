//! `cool` — command-line front-end of the COOL co-design flow.
//!
//! ```text
//! cool flow <spec.cool> [--out DIR] [--partitioner milp|heuristic|ga]
//!                       [--scheme mmio|direct] [--quick]
//! cool simulate <spec.cool> [name=value ...] [--partitioner ...]
//! cool check <spec.cool>
//! ```
//!
//! `flow` runs specification → partitioning → co-synthesis and writes the
//! generated VHDL and C files into `--out` (default `cool_out/`);
//! `simulate` additionally executes one system invocation on the
//! co-simulator; `check` only parses and validates the specification.

use std::collections::BTreeMap;
use std::error::Error;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use cool_core::{run_flow, FlowOptions, Partitioner};
use cool_cost::CommScheme;
use cool_ir::Target;
use cool_partition::{GaOptions, HeuristicOptions, MilpOptions};

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cool: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<(), Box<dyn Error>> {
    let Some(command) = args.first().cloned() else {
        return Err(usage().into());
    };
    let rest = &args[1..];
    match command.as_str() {
        "check" => {
            let spec = read_spec(rest)?;
            let graph = cool_spec::parse(&spec)?;
            println!(
                "ok: design `{}` with {} nodes, {} edges",
                graph.name(),
                graph.node_count(),
                graph.edge_count()
            );
            Ok(())
        }
        "flow" => {
            let spec = read_spec(rest)?;
            let graph = cool_spec::parse(&spec)?;
            let options = parse_options(rest)?;
            let out = flag_value(rest, "--out").unwrap_or_else(|| "cool_out".to_string());
            let art = run_flow(&graph, &Target::fuzzy_board(), &options)?;
            println!("{}", art.report());
            let dir = PathBuf::from(out);
            fs::create_dir_all(&dir)?;
            for (name, source) in &art.vhdl {
                fs::write(dir.join(name), source)?;
            }
            fs::write(
                dir.join("cool_memory_map.h"),
                cool_codegen::emit_memory_header(&graph, &art.memory_map),
            )?;
            for p in &art.c_programs {
                fs::write(dir.join(&p.file_name), &p.source)?;
            }
            println!(
                "wrote {} VHDL unit(s), {} C unit(s) and the memory map to {}",
                art.vhdl.len(),
                art.c_programs.len(),
                dir.display()
            );
            Ok(())
        }
        "simulate" => {
            let spec = read_spec(rest)?;
            let graph = cool_spec::parse(&spec)?;
            let options = parse_options(rest)?;
            let mut inputs: BTreeMap<String, i64> = BTreeMap::new();
            for a in rest.iter().skip(1) {
                if let Some((k, v)) = a.split_once('=') {
                    inputs.insert(k.to_string(), v.parse()?);
                }
            }
            for id in graph.primary_inputs() {
                let name = graph.node(id)?.name().to_string();
                inputs.entry(name).or_insert(0);
            }
            let art = run_flow(&graph, &Target::fuzzy_board(), &options)?;
            let r = art.simulate(&inputs)?;
            println!("simulated {} cycles ({} bus transfer(s), bus {:.1} % busy)", r.cycles, r.bus_transfers, 100.0 * r.bus_utilization());
            for (name, value) in &r.outputs {
                println!("  {name} = {value}");
            }
            Ok(())
        }
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage()).into()),
    }
}

fn usage() -> &'static str {
    "usage:\n  cool check    <spec.cool>\n  cool flow     <spec.cool> [--out DIR] [--partitioner milp|heuristic|ga] [--scheme mmio|direct] [--quick]\n  cool simulate <spec.cool> [name=value ...] [same flags as flow]"
}

fn read_spec(rest: &[String]) -> Result<String, Box<dyn Error>> {
    let path = rest
        .iter()
        .find(|a| !a.starts_with("--") && !a.contains('='))
        .ok_or("missing specification file argument")?;
    Ok(fs::read_to_string(path)?)
}

fn flag_value(rest: &[String], flag: &str) -> Option<String> {
    rest.iter()
        .position(|a| a == flag)
        .and_then(|i| rest.get(i + 1))
        .cloned()
}

fn parse_options(rest: &[String]) -> Result<FlowOptions, Box<dyn Error>> {
    let mut options = if rest.iter().any(|a| a == "--quick") {
        FlowOptions::quick()
    } else {
        FlowOptions::default()
    };
    if let Some(p) = flag_value(rest, "--partitioner") {
        options.partitioner = match p.as_str() {
            "milp" => Partitioner::Milp(MilpOptions::default()),
            "heuristic" => Partitioner::Heuristic(HeuristicOptions::default()),
            "ga" => Partitioner::Genetic(GaOptions::default()),
            other => return Err(format!("unknown partitioner `{other}`").into()),
        };
    }
    if let Some(s) = flag_value(rest, "--scheme") {
        options.scheme = match s.as_str() {
            "mmio" => CommScheme::MemoryMapped,
            "direct" => CommScheme::Direct,
            other => return Err(format!("unknown scheme `{other}`").into()),
        };
    }
    Ok(options)
}
