//! `cool` — command-line front-end of the COOL co-design flow.
//!
//! ```text
//! cool flow <spec.cool> [--out DIR] [--partitioner milp|heuristic|ga]
//!                       [--scheme mmio|direct] [--quick] [--jobs N]
//!                       [--target BOARD] [--targets BOARD,BOARD,...]
//!                       [--to-stage STAGE]
//!                       [--cache|--no-cache] [--cache-dir DIR] [--trace]
//! cool simulate <spec.cool> [name=value ...] [same flags as flow]
//! cool check <spec.cool>
//! cool cache stats [--cache-dir DIR]
//! cool cache clear [--cache-dir DIR]
//! ```
//!
//! `flow` runs a [`cool_core::FlowSession`] (specification →
//! partitioning → co-synthesis) and writes the generated VHDL and C
//! files into `--out` (default `cool_out/`); `--jobs N` fans the
//! parallel stages (per-node HLS, STG minimization, placement) out over
//! `N` worker threads (`0` = all cores) without changing any generated
//! byte, and `--trace` prints the engine's per-stage timing table.
//!
//! Boards are named presets, optionally budget-capped: `fuzzy` (the
//! paper's DSP56001 + 2× XC4005 prototyping board), `minimal` (one
//! processor, one FPGA), and `BOARD@N` caps every FPGA of the preset at
//! `N` CLBs (`fuzzy@96`). `--target` picks the single board of a run
//! (default `fuzzy`); `--targets fuzzy@48,fuzzy@96,fuzzy` runs the
//! *family* mode — one session across all boards, the cost model
//! estimated once and retargeted per board — and prints the comparative
//! family report. `--to-stage STAGE` (`cost`, `partition`, `schedule`,
//! `stg`, `hls`, `rtl`, `codegen`) stops the flow after the named stage
//! and reports the partial artifact set.
//!
//! `--cache` (overridden by `--no-cache`) runs the session against an
//! in-memory content-addressed stage cache; `--cache-dir DIR` (default
//! `.cool-cache` when the flag is given without a value) additionally
//! attaches the persistent disk tier, so *repeated invocations* skip
//! every stage whose inputs did not change. Per-stage
//! hit/miss/disk-hit accounting shows up under `--trace`. `cool cache
//! stats`/`clear` inspect and empty a cache directory. `simulate`
//! additionally executes one system invocation on the co-simulator;
//! `check` only parses and validates the specification.

use std::collections::BTreeMap;
use std::error::Error;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use cool_core::{ArtifactSlot, FlowArtifacts, FlowOptions, FlowSession, Partitioner, StageCache};
use cool_cost::CommScheme;
use cool_ir::{PartitioningGraph, Target};
use cool_partition::{GaOptions, HeuristicOptions, MilpOptions, Optimality};

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cool: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<(), Box<dyn Error>> {
    let Some(command) = args.first().cloned() else {
        return Err(usage().into());
    };
    let rest = &args[1..];
    match command.as_str() {
        "check" => {
            let spec = read_spec(rest)?;
            let graph = cool_spec::parse(&spec)?;
            println!(
                "ok: design `{}` with {} nodes, {} edges",
                graph.name(),
                graph.node_count(),
                graph.edge_count()
            );
            Ok(())
        }
        "flow" => {
            let spec = read_spec(rest)?;
            let graph = cool_spec::parse(&spec)?;
            let options = parse_options(rest)?;
            let out = flag_value(rest, "--out").unwrap_or_else(|| "cool_out".to_string());
            let targets_flag = flag_value(rest, "--targets");
            let to_stage_flag = flag_value(rest, "--to-stage");
            if targets_flag.is_some() && to_stage_flag.is_some() {
                return Err(
                    "--targets and --to-stage cannot be combined: family mode implements \
                     every board completely (drop one of the flags)"
                        .into(),
                );
            }
            if let Some(list) = targets_flag {
                return run_family_mode(&graph, &options, &list, rest);
            }
            if let Some(stage) = to_stage_flag {
                return run_partial_mode(&graph, &options, &stage, rest);
            }
            let (session, cache) = configure_session(&graph, &options, rest)?;
            let art = session.run()?;
            println!("{}", art.report());
            warn_on_truncation(&art);
            if rest.iter().any(|a| a == "--trace") {
                println!(
                    "engine trace ({} worker(s)):",
                    cool_ir::par::effective_jobs(options.jobs, usize::MAX)
                );
                print!("{}", art.trace.to_table());
                if let Some(cache) = &cache {
                    println!("{}", cache.stats().summary());
                }
            }
            let dir = PathBuf::from(out);
            fs::create_dir_all(&dir)?;
            for (name, source) in &art.vhdl {
                fs::write(dir.join(name), source)?;
            }
            fs::write(
                dir.join("cool_memory_map.h"),
                cool_codegen::emit_memory_header(&graph, &art.memory_map),
            )?;
            for p in &art.c_programs {
                fs::write(dir.join(&p.file_name), &p.source)?;
            }
            println!(
                "wrote {} VHDL unit(s), {} C unit(s) and the memory map to {}",
                art.vhdl.len(),
                art.c_programs.len(),
                dir.display()
            );
            Ok(())
        }
        "simulate" => {
            let spec = read_spec(rest)?;
            let graph = cool_spec::parse(&spec)?;
            let options = parse_options(rest)?;
            if flag_value(rest, "--targets").is_some() || flag_value(rest, "--to-stage").is_some() {
                return Err(
                    "--targets/--to-stage apply to `cool flow` only (simulate needs one \
                     complete implementation)"
                        .into(),
                );
            }
            let mut inputs: BTreeMap<String, i64> = BTreeMap::new();
            for a in rest.iter().skip(1) {
                if let Some((k, v)) = a.split_once('=') {
                    inputs.insert(k.to_string(), v.parse()?);
                }
            }
            for id in graph.primary_inputs() {
                let name = graph.node(id)?.name().to_string();
                inputs.entry(name).or_insert(0);
            }
            let (session, cache) = configure_session(&graph, &options, rest)?;
            let art = session.run()?;
            warn_on_truncation(&art);
            let r = art.simulate(&inputs)?;
            println!(
                "simulated {} cycles ({} bus transfer(s), bus {:.1} % busy)",
                r.cycles,
                r.bus_transfers,
                100.0 * r.bus_utilization()
            );
            for (name, value) in &r.outputs {
                println!("  {name} = {value}");
            }
            if rest.iter().any(|a| a == "--trace") {
                println!(
                    "engine trace ({} worker(s)):",
                    cool_ir::par::effective_jobs(options.jobs, usize::MAX)
                );
                print!("{}", art.trace.to_table());
                if let Some(cache) = &cache {
                    println!("{}", cache.stats().summary());
                }
            }
            Ok(())
        }
        "cache" => run_cache_command(rest),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage()).into()),
    }
}

fn usage() -> &'static str {
    "usage:\n  cool check    <spec.cool>\n  cool flow     <spec.cool> [--out DIR] [--partitioner milp|heuristic|ga] [--milp-max-nodes N] [--milp-comm-weight W] [--scheme mmio|direct] [--quick] [--jobs N] [--target BOARD] [--targets BOARD,BOARD,...] [--to-stage cost|partition|schedule|stg|hls|rtl|codegen] [--cache|--no-cache] [--cache-dir DIR] [--cache-max-bytes N] [--trace]\n  cool simulate <spec.cool> [name=value ...] [same flags as flow]\n  cool cache    stats|clear [--cache-dir DIR] [--cache-max-bytes N]\nboards: fuzzy, minimal; cap FPGA budgets with BOARD@CLBS (e.g. fuzzy@96)"
}

/// Default persistent cache directory, relative to the working directory.
const DEFAULT_CACHE_DIR: &str = ".cool-cache";

/// The cache directory selected by `--cache-dir [DIR]`, if the flag is
/// present (a missing or flag-like value selects the default directory).
fn cache_dir_flag(rest: &[String]) -> Option<String> {
    let i = rest.iter().position(|a| a == "--cache-dir")?;
    Some(match rest.get(i + 1) {
        Some(v) if !v.starts_with("--") => v.clone(),
        _ => DEFAULT_CACHE_DIR.to_string(),
    })
}

/// Resolve a board spec: a named preset (`fuzzy`, `minimal`) with an
/// optional `@N` suffix capping every FPGA of the preset at `N` CLBs
/// (`fuzzy@96`).
fn parse_board(spec: &str) -> Result<Target, Box<dyn Error>> {
    let (name, budget) = match spec.split_once('@') {
        Some((name, n)) => {
            let budget: u32 = n
                .parse()
                .map_err(|_| format!("board `{spec}`: `@` expects a CLB budget, got `{n}`"))?;
            (name, Some(budget))
        }
        None => (spec, None),
    };
    let mut target = match name {
        "fuzzy" => Target::fuzzy_board(),
        "minimal" => Target::minimal(),
        other => {
            return Err(
                format!("unknown board `{other}`; known presets: fuzzy, minimal (cap FPGA budgets with e.g. fuzzy@96)").into(),
            )
        }
    };
    if let Some(budget) = budget {
        for hw in &mut target.hw {
            hw.clb_capacity = budget;
        }
    }
    Ok(target)
}

/// The single board selected by `--target` (default: the paper's fuzzy
/// prototyping board).
fn target_flag(rest: &[String]) -> Result<Target, Box<dyn Error>> {
    match flag_value(rest, "--target") {
        Some(spec) => parse_board(&spec),
        None => Ok(Target::fuzzy_board()),
    }
}

/// Map a `--to-stage` name onto the artifact slot whose production
/// completes that stage.
fn parse_stop_stage(stage: &str) -> Result<ArtifactSlot, Box<dyn Error>> {
    Ok(match stage {
        "cost" => ArtifactSlot::Cost,
        "partition" => ArtifactSlot::Partition,
        "schedule" => ArtifactSlot::Schedule,
        "stg" => ArtifactSlot::MemoryMap,
        "hls" => ArtifactSlot::HlsDesigns,
        "rtl" => ArtifactSlot::Placements,
        "codegen" => ArtifactSlot::CPrograms,
        other => {
            return Err(format!(
                "unknown --to-stage `{other}`; expected one of cost, partition, schedule, \
                 stg, hls, rtl, codegen (spec/sim-prep produce no artifact — run the full flow)"
            )
            .into())
        }
    })
}

/// Configure a single-target [`FlowSession`] from the command line,
/// attaching a stage cache only when `--cache` or `--cache-dir` was
/// explicitly given (`--no-cache` wins). A single invocation can never
/// *hit* a fresh in-memory cache, so recording — which clones every
/// artifact the stages deposit — is never paid by default; with
/// `--cache-dir` the persistent tier makes repeated invocations
/// warm-start from each other. The cache handle is returned so
/// `--trace` can print its stats.
fn configure_session<'g>(
    graph: &'g PartitioningGraph,
    options: &FlowOptions,
    rest: &[String],
) -> Result<(FlowSession<'g>, Option<StageCache>), Box<dyn Error>> {
    let mut session = FlowSession::new(graph)
        .target(target_flag(rest)?)
        .options(options.clone());
    let cache = cache_from_flags(rest)?;
    if let Some(cache) = &cache {
        session = session.cache(cache.clone());
    }
    Ok((session, cache))
}

/// The stage cache the flags ask for, if any.
fn cache_from_flags(rest: &[String]) -> Result<Option<StageCache>, Box<dyn Error>> {
    let no_cache = rest.iter().any(|a| a == "--no-cache");
    let dir = cache_dir_flag(rest);
    let wanted = !no_cache && (dir.is_some() || rest.iter().any(|a| a == "--cache"));
    if !wanted {
        return Ok(None);
    }
    Ok(Some(match dir {
        Some(dir) => StageCache::persistent_with_cap(
            StageCache::DEFAULT_CAPACITY,
            dir,
            cache_max_bytes_flag(rest)?,
        )?,
        None => StageCache::default(),
    }))
}

/// `cool flow --targets a,b,c`: implement the specification on a board
/// family through one [`FlowSession::run_family`] — the cost model is
/// estimated once and retargeted per board — and print the comparative
/// report. File output is per-implementation, so family mode reports
/// only; re-run with `--target BOARD` to write a chosen board's files.
fn run_family_mode(
    graph: &PartitioningGraph,
    options: &FlowOptions,
    list: &str,
    rest: &[String],
) -> Result<(), Box<dyn Error>> {
    let mut targets = Vec::new();
    for spec in list.split(',').filter(|s| !s.is_empty()) {
        targets.push(parse_board(spec)?);
    }
    if targets.is_empty() {
        return Err("--targets expects a comma-separated board list (e.g. fuzzy@48,fuzzy)".into());
    }
    let mut session = FlowSession::new(graph)
        .targets(targets)
        .options(options.clone());
    let cache = cache_from_flags(rest)?;
    if let Some(cache) = &cache {
        session = session.cache(cache.clone());
    }
    let family = session.run_family()?;
    print!("{}", family.report());
    for art in &family {
        warn_on_truncation(art);
    }
    if rest.iter().any(|a| a == "--trace") {
        for (i, art) in family.iter().enumerate() {
            println!("board #{i} trace:");
            print!("{}", art.trace.to_table());
        }
        if let Some(cache) = &cache {
            println!("{}", cache.stats().summary());
        }
    }
    println!(
        "family mode reports without writing files; re-run with --target BOARD \
         to write one board's VHDL/C"
    );
    Ok(())
}

/// `cool flow --to-stage STAGE`: run the flow prefix up to the named
/// stage and report the partial artifact set.
fn run_partial_mode(
    graph: &PartitioningGraph,
    options: &FlowOptions,
    stage: &str,
    rest: &[String],
) -> Result<(), Box<dyn Error>> {
    let stop = parse_stop_stage(stage)?;
    let (session, cache) = configure_session(graph, options, rest)?;
    let partial = session.run_to(stop)?;
    println!(
        "partial flow of design `{}` (stopped after `{stage}`):",
        graph.name()
    );
    for slot in ArtifactSlot::ALL {
        println!(
            "  {:<16} {}",
            slot.name(),
            if partial.is_filled(slot) {
                "produced"
            } else {
                "-"
            }
        );
    }
    if let Ok(p) = partial.partition() {
        println!(
            "partition: {} sw node(s), {} hw node(s), makespan {} cycles ({})",
            p.software_nodes(graph),
            p.hardware_nodes(graph),
            p.makespan,
            p.optimality_label(),
        );
    }
    if rest.iter().any(|a| a == "--trace") {
        print!("{}", partial.trace().to_table());
        if let Some(cache) = &cache {
            println!("{}", cache.stats().summary());
        }
    }
    println!(
        "partial flows report without writing files; run the full flow \
         (drop --to-stage) to write VHDL/C{}",
        if flag_value(rest, "--out").is_some() {
            " — the given --out was not used"
        } else {
            ""
        }
    );
    Ok(())
}

/// The disk tier's byte-size cap from `--cache-max-bytes N` (`0` =
/// unbounded), defaulting to [`cool_core::disk::DEFAULT_MAX_BYTES`].
fn cache_max_bytes_flag(rest: &[String]) -> Result<u64, Box<dyn Error>> {
    match flag_value(rest, "--cache-max-bytes") {
        None => Ok(cool_core::disk::DEFAULT_MAX_BYTES),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--cache-max-bytes expects a byte count, got `{v}`").into()),
    }
}

/// `cool cache stats|clear [--cache-dir DIR] [--cache-max-bytes N]`.
fn run_cache_command(rest: &[String]) -> Result<(), Box<dyn Error>> {
    let dir = cache_dir_flag(rest).unwrap_or_else(|| DEFAULT_CACHE_DIR.to_string());
    // The action is the first token that is neither a flag nor a flag's
    // value, so both `cool cache stats --cache-dir D` and
    // `cool cache --cache-dir D stats` work.
    let value_positions: Vec<usize> = rest
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--cache-dir" || *a == "--cache-max-bytes")
        .map(|(i, _)| i + 1)
        .collect();
    let action = rest
        .iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && !value_positions.contains(i))
        .map(|(_, a)| a.as_str())
        .ok_or("cache: expected `stats` or `clear`")?;
    let plural = |n: usize| if n == 1 { "y" } else { "ies" };
    match action {
        "stats" => {
            if !std::path::Path::new(&dir).is_dir() {
                println!("cache directory `{dir}` does not exist (0 entries)");
                return Ok(());
            }
            // Strictly read-only: open unbounded (cap 0 disables the
            // open-time enforcement — the flows that *write* the cache
            // enforce their own cap) and report what the cap in force
            // would do, rather than trimming someone else's entries just
            // because they were inspected.
            let cap = cache_max_bytes_flag(rest)?;
            let store = cool_core::DiskStore::open_with_cap(&dir, 0)?;
            let n = store.entry_count();
            println!(
                "cache directory `{dir}`: {n} entr{}, {} bytes (cap {cap} bytes, format v{})",
                plural(n),
                store.total_bytes(),
                cool_core::disk::FORMAT_VERSION,
            );
            let victims = store.would_evict(cap);
            if victims > 0 {
                println!(
                    "over cap: the next capped flow will evict {victims} entr{} (LRU by mtime)",
                    plural(victims),
                );
            } else {
                println!("within cap: 0 size-cap evictions pending");
            }
            Ok(())
        }
        "clear" => {
            if !std::path::Path::new(&dir).is_dir() {
                println!("cache directory `{dir}` does not exist; nothing to clear");
                return Ok(());
            }
            let store = cool_core::DiskStore::open(&dir)?;
            let removed = store.clear()?;
            println!("removed {removed} entr{} from `{dir}`", plural(removed));
            Ok(())
        }
        other => Err(format!("unknown cache action `{other}`; expected `stats` or `clear`").into()),
    }
}

/// Surface a truncated MILP solve on stderr: the report already labels
/// the partition "node-limit truncated", but a user piping stdout into a
/// file must not mistake the incumbent for the proven optimum.
fn warn_on_truncation(art: &FlowArtifacts) {
    if art.partition.optimality == Optimality::LimitReached {
        let gap = match art.partition.gap {
            Some(gap) => format!(" — within {:.1} % of the solver optimum", gap * 100.0),
            None => String::new(),
        };
        eprintln!(
            "cool: warning: the MILP branch & bound hit its node limit; the partition \
             is feasible but not proven optimal{gap} (raise --milp-max-nodes)"
        );
    }
}

fn read_spec(rest: &[String]) -> Result<String, Box<dyn Error>> {
    let path = rest
        .iter()
        .find(|a| !a.starts_with("--") && !a.contains('='))
        .ok_or("missing specification file argument")?;
    Ok(fs::read_to_string(path)?)
}

fn flag_value(rest: &[String], flag: &str) -> Option<String> {
    rest.iter()
        .position(|a| a == flag)
        .and_then(|i| rest.get(i + 1))
        .cloned()
}

fn parse_options(rest: &[String]) -> Result<FlowOptions, Box<dyn Error>> {
    let mut options = if rest.iter().any(|a| a == "--quick") {
        FlowOptions::quick()
    } else {
        FlowOptions::default()
    };
    if let Some(p) = flag_value(rest, "--partitioner") {
        options.partitioner = match p.as_str() {
            "milp" => Partitioner::Milp(MilpOptions::default()),
            "heuristic" => Partitioner::Heuristic(HeuristicOptions::default()),
            "ga" => Partitioner::Genetic(GaOptions::default()),
            other => return Err(format!("unknown partitioner `{other}`").into()),
        };
    }
    if let Some(s) = flag_value(rest, "--scheme") {
        options.scheme = match s.as_str() {
            "mmio" => CommScheme::MemoryMapped,
            "direct" => CommScheme::Direct,
            other => return Err(format!("unknown scheme `{other}`").into()),
        };
    }
    if let Some(j) = flag_value(rest, "--jobs") {
        options.jobs = j
            .parse()
            .map_err(|_| format!("--jobs expects a non-negative integer, got `{j}`"))?;
    }
    if let Some(n) = flag_value(rest, "--milp-max-nodes") {
        let max_nodes: usize = n
            .parse()
            .map_err(|_| format!("--milp-max-nodes expects a positive integer, got `{n}`"))?;
        match &mut options.partitioner {
            Partitioner::Milp(o) => o.max_nodes = max_nodes,
            Partitioner::Heuristic(o) => o.milp.max_nodes = max_nodes,
            _ => {
                return Err(
                    "--milp-max-nodes applies to the milp/heuristic partitioners only".into(),
                )
            }
        }
    }
    if let Some(w) = flag_value(rest, "--milp-comm-weight") {
        let weight: f64 = w
            .parse()
            .map_err(|_| format!("--milp-comm-weight expects a number, got `{w}`"))?;
        match &mut options.partitioner {
            Partitioner::Milp(o) => o.comm_weight = weight,
            Partitioner::Heuristic(o) => o.milp.comm_weight = weight,
            _ => {
                return Err(
                    "--milp-comm-weight applies to the milp/heuristic partitioners only".into(),
                )
            }
        }
    }
    Ok(options)
}
