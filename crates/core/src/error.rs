//! Flow-level errors (wrapping every stage's failure mode).

use std::fmt;

/// Flow-level errors (wrapping every stage's failure mode).
#[derive(Debug)]
#[non_exhaustive]
pub enum FlowError {
    /// Invalid specification graph.
    Ir(cool_ir::IrError),
    /// Partitioning failed or proved infeasible.
    Partition(cool_partition::PartitionError),
    /// Static scheduling failed.
    Schedule(cool_schedule::ScheduleError),
    /// Memory allocation overflowed the shared memory.
    Memory(cool_stg::MemoryError),
    /// Co-simulation failed.
    Sim(cool_sim::SimError),
    /// An internal consistency check failed (synthesis bug).
    Consistency(String),
    /// A stage ran before one of its producers: the named artifact is not
    /// in the [`crate::stage::FlowContext`] yet. Indicates a mis-ordered
    /// custom [`crate::engine::Engine`].
    MissingArtifact(&'static str),
    /// A [`crate::FlowSession`] was configured with an invalid
    /// combination of inputs (no target, a pre-seeded cost model whose
    /// embedded board is incompatible with the session target, a mapping
    /// sized for a different graph, …) — caught before any stage runs.
    Session(String),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Ir(e) => write!(f, "specification error: {e}"),
            FlowError::Partition(e) => write!(f, "partitioning error: {e}"),
            FlowError::Schedule(e) => write!(f, "scheduling error: {e}"),
            FlowError::Memory(e) => write!(f, "memory allocation error: {e}"),
            FlowError::Sim(e) => write!(f, "co-simulation error: {e}"),
            FlowError::Consistency(why) => write!(f, "internal consistency error: {why}"),
            FlowError::MissingArtifact(what) => {
                write!(
                    f,
                    "stage ordering error: `{what}` has not been produced yet"
                )
            }
            FlowError::Session(why) => write!(f, "flow session misconfigured: {why}"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Ir(e) => Some(e),
            FlowError::Partition(e) => Some(e),
            FlowError::Schedule(e) => Some(e),
            FlowError::Memory(e) => Some(e),
            FlowError::Sim(e) => Some(e),
            FlowError::Consistency(_) | FlowError::MissingArtifact(_) | FlowError::Session(_) => {
                None
            }
        }
    }
}

impl From<cool_ir::IrError> for FlowError {
    fn from(e: cool_ir::IrError) -> FlowError {
        FlowError::Ir(e)
    }
}
impl From<cool_partition::PartitionError> for FlowError {
    fn from(e: cool_partition::PartitionError) -> FlowError {
        FlowError::Partition(e)
    }
}
impl From<cool_schedule::ScheduleError> for FlowError {
    fn from(e: cool_schedule::ScheduleError) -> FlowError {
        FlowError::Schedule(e)
    }
}
impl From<cool_stg::MemoryError> for FlowError {
    fn from(e: cool_stg::MemoryError) -> FlowError {
        FlowError::Memory(e)
    }
}
impl From<cool_sim::SimError> for FlowError {
    fn from(e: cool_sim::SimError) -> FlowError {
        FlowError::Sim(e)
    }
}
