//! The COOL co-design flow: coupled hardware/software partitioning and
//! co-synthesis of communicating controllers, as a stage-graph engine.
//!
//! This crate is the tool the paper describes. The complete design flow
//! of paper Figure 1 is modelled as a linear graph of named stages
//! ([`engine::Engine::standard`]):
//!
//! ```text
//! spec → cost → partition → schedule → stg → hls → rtl → codegen → sim-prep
//! ```
//!
//! * **`spec`** — validate the [`cool_ir::PartitioningGraph`] (parsed
//!   from the DSL or built by a workload generator);
//! * **`cost`** — cost estimation ([`cool_cost`]);
//! * **`partition`** — hardware/software partitioning (MILP /
//!   MILP+heuristic / genetic, [`cool_partition`]);
//! * **`schedule`** — static scheduling ([`cool_schedule`]);
//! * **`stg`** — STG generation + minimization + memory allocation
//!   ([`cool_stg`]);
//! * **`hls`** — hardware synthesis of every hardware node
//!   ([`cool_hls`]);
//! * **`rtl`** — the system controller, I/O controller, bus arbiter,
//!   netlist, VHDL and CLB placement ([`cool_rtl`]);
//! * **`codegen`** — C code generation ([`cool_codegen`]);
//! * **`sim-prep`** — validation that the artifact set wires up on the
//!   board stand-in ([`cool_sim`]).
//!
//! Each stage is an individually timed, individually testable
//! [`stage::Stage`] over a typed [`stage::FlowContext`]; the
//! [`FlowSession`] builder is the public entry point over the engine.
//! [`FlowArtifacts::trace`] holds the per-stage timing journal and
//! [`FlowArtifacts::timings`] the paper's six-bucket summary,
//! reproducing the paper's observation that hardware synthesis consumes
//! the bulk (> 90 %) of the design time.
//!
//! The dominant stages parallelize across [`FlowOptions::jobs`] scoped
//! worker threads (per-node HLS, STG-minimization refinement rounds,
//! per-device placement anneals); artifacts are byte-identical for every
//! `jobs` value.
//!
//! Repeated and multi-board runs become incremental and concurrent
//! through the content-addressed [`cache::StageCache`]
//! ([`FlowSession::cache`]): stages whose dependency-DAG content key
//! (graph + [`Stage::cache_key`] + the digests of the artifact slots in
//! [`Stage::reads`]) already executed are skipped and their artifacts
//! restored, byte-identically to a cold run. With
//! [`FlowSession::cache_dir`] ([`StageCache::persistent`]) the cache
//! gains an on-disk tier (`.cool-cache/` by convention): inserts are
//! written through as checksummed [`cool_ir::codec`] entries, and a
//! *fresh process* — the next CLI invocation, the next CI job —
//! warm-starts from them.
//!
//! # Example
//!
//! ```
//! use cool_core::{FlowOptions, FlowSession};
//! use cool_ir::Target;
//! use cool_spec::workloads;
//!
//! # fn main() -> Result<(), cool_core::FlowError> {
//! let graph = workloads::equalizer(2);
//! let artifacts = FlowSession::new(&graph)
//!     .target(Target::fuzzy_board())
//!     .options(FlowOptions::quick())
//!     .run()?;
//! let inputs = cool_ir::eval::input_map([("x0", 10), ("x1", 5), ("x2", 1)]);
//! let result = artifacts.simulate(&inputs)?;
//! assert_eq!(result.outputs, cool_ir::eval::evaluate(&graph, &inputs)?);
//! # Ok(())
//! # }
//! ```
//!
//! A board *family* — the same specification implemented across several
//! hardware budgets, with the cost model estimated once and retargeted
//! per board — runs through the same builder:
//!
//! ```
//! use cool_core::{FlowOptions, FlowSession};
//! use cool_ir::Target;
//! use cool_spec::workloads;
//!
//! # fn main() -> Result<(), cool_core::FlowError> {
//! let graph = workloads::equalizer(2);
//! let boards = [96u32, 196].map(|clbs| {
//!     let mut t = Target::fuzzy_board();
//!     t.hw[0].clb_capacity = clbs;
//!     t.hw[1].clb_capacity = clbs;
//!     t
//! });
//! let family = FlowSession::new(&graph)
//!     .targets(boards)
//!     .options(FlowOptions::quick())
//!     .run_family()?;
//! assert_eq!(family.len(), 2);
//! assert!(family.cost_estimations() <= 1);
//! println!("{}", family.report());
//! # Ok(())
//! # }
//! ```

pub mod artifacts;
pub mod cache;
pub mod disk;
pub mod engine;
pub mod error;
pub mod remote;
pub mod server;
pub mod session;
pub mod stage;
pub mod table;
pub mod timing;

pub use artifacts::FlowArtifacts;
pub use cache::{ArtifactSlot, CacheStats, NodeArtifact, NodeHit, StageCache};
pub use disk::{DiskStore, KindCounts, NodeLoad};
pub use engine::Engine;
pub use error::FlowError;
pub use remote::{RemoteCounters, RemoteStore};
pub use server::{
    CacheStatsReply, Client, FlowRequest, FlowResponse, Request, Response, ServeError, Server,
    ServerHandle, SimResponse,
};
pub use session::{FamilyArtifacts, FlowSession, ParetoFront, ParetoPoint, PartialArtifacts};
pub use stage::{FlowContext, Stage};
pub use table::{Align, Col, TextTable};
pub use timing::{CacheOutcome, FlowTrace, NodeDelta, StageRecord, StageTimings};

use cool_cost::CommScheme;
use cool_hls::HlsOptions;
use cool_ir::codec::{Codec, CodecError, Decoder, Encoder};
use cool_ir::hash::{ContentHash, ContentHasher};
use cool_ir::{Mapping, Objective, PartitioningGraph, Resource};
use cool_partition::{GaOptions, HeuristicOptions, MilpOptions};

/// Which partitioner the flow runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Partitioner {
    /// Exact MILP.
    Milp(MilpOptions),
    /// Clustering + MILP.
    Heuristic(HeuristicOptions),
    /// Genetic algorithm.
    Genetic(GaOptions),
    /// Skip partitioning: use a caller-provided colouring (for sweeps).
    Fixed(Mapping),
}

/// All knobs of one flow run.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowOptions {
    /// Partitioning algorithm.
    pub partitioner: Partitioner,
    /// Communication refinement scheme.
    pub scheme: CommScheme,
    /// Declared optimization objective. `None` respects whatever the
    /// configured partitioner's own options say (the historical
    /// behaviour); `Some` overrides the objective of whichever
    /// optimizing partitioner runs (a fixed mapping is left untouched).
    pub objective: Option<Objective>,
    /// HLS options for the final hardware synthesis (higher effort than
    /// the estimates used during partitioning).
    pub hls: HlsOptions,
    /// Effort of the FSM state-encoding search (logic synthesis).
    pub encoding_effort: u32,
    /// Effort of the simulated-annealing CLB placement (the Xilinx
    /// implementation stand-in; scales the move budget per device).
    pub placement_effort: u32,
    /// Use the lifetime-packed memory allocator instead of the paper's
    /// sequential one.
    pub packed_memory: bool,
    /// Worker threads for the parallel stages (per-node HLS, STG
    /// minimization, per-device placement). `1` = serial, `0` = all
    /// available cores. Never affects artifacts, only wall-clock.
    pub jobs: usize,
}

impl Default for FlowOptions {
    fn default() -> FlowOptions {
        FlowOptions {
            // The GA optimizes the *real* schedule makespan, so it discovers
            // mixed partitions that exploit hardware concurrency — the MILP
            // variants optimize a load proxy and tend to stay in software on
            // DSP-friendly designs (use them via `partitioner` when the
            // proxy is the point, e.g. in the partitioner ablation).
            partitioner: Partitioner::Genetic(GaOptions::default()),
            scheme: CommScheme::MemoryMapped,
            objective: None,
            hls: HlsOptions {
                effort: 48,
                ..HlsOptions::default()
            },
            encoding_effort: 320,
            placement_effort: 768,
            packed_memory: false,
            jobs: 1,
        }
    }
}

impl FlowOptions {
    /// Fast settings for tests and doc examples: genetic partitioner with
    /// a tiny population, low synthesis effort.
    #[must_use]
    pub fn quick() -> FlowOptions {
        FlowOptions {
            partitioner: Partitioner::Genetic(GaOptions {
                population: 8,
                generations: 4,
                threads: 1,
                ..GaOptions::default()
            }),
            scheme: CommScheme::MemoryMapped,
            objective: None,
            hls: HlsOptions {
                effort: 2,
                ..HlsOptions::default()
            },
            encoding_effort: 2,
            placement_effort: 1,
            packed_memory: false,
            jobs: 1,
        }
    }

    /// The same options with a different `jobs` knob.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> FlowOptions {
        self.jobs = jobs;
        self
    }

    /// The same options with the declared objective overridden.
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> FlowOptions {
        self.objective = Some(objective);
        self
    }
}

impl ContentHash for Partitioner {
    fn content_hash(&self, h: &mut ContentHasher) {
        match self {
            Partitioner::Milp(o) => {
                h.write_u8(0);
                o.content_hash(h);
            }
            Partitioner::Heuristic(o) => {
                h.write_u8(1);
                o.content_hash(h);
            }
            Partitioner::Genetic(o) => {
                h.write_u8(2);
                o.content_hash(h);
            }
            Partitioner::Fixed(mapping) => {
                h.write_u8(3);
                mapping.content_hash(h);
            }
        }
    }
}

impl ContentHash for FlowOptions {
    /// Digests every artifact-relevant knob. `jobs` is deliberately
    /// excluded: by the engine's determinism contract it scales
    /// wall-clock only, never a generated byte, so serial and parallel
    /// runs share cache entries.
    fn content_hash(&self, h: &mut ContentHasher) {
        self.partitioner.content_hash(h);
        self.scheme.content_hash(h);
        match &self.objective {
            None => h.write_u8(0),
            Some(o) => {
                h.write_u8(1);
                o.content_hash(h);
            }
        }
        self.hls.content_hash(h);
        h.write_u32(self.encoding_effort);
        h.write_u32(self.placement_effort);
        h.write_bool(self.packed_memory);
    }
}

impl Codec for Partitioner {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Partitioner::Milp(o) => {
                e.put_u8(0);
                o.encode(e);
            }
            Partitioner::Heuristic(o) => {
                e.put_u8(1);
                o.encode(e);
            }
            Partitioner::Genetic(o) => {
                e.put_u8(2);
                o.encode(e);
            }
            Partitioner::Fixed(mapping) => {
                e.put_u8(3);
                mapping.encode(e);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.take_u8()? {
            0 => Ok(Partitioner::Milp(MilpOptions::decode(d)?)),
            1 => Ok(Partitioner::Heuristic(HeuristicOptions::decode(d)?)),
            2 => Ok(Partitioner::Genetic(GaOptions::decode(d)?)),
            3 => Ok(Partitioner::Fixed(Mapping::decode(d)?)),
            tag => Err(CodecError::InvalidTag {
                type_name: "Partitioner",
                tag,
            }),
        }
    }
}

impl Codec for FlowOptions {
    /// The wire encoding carries every knob, `jobs` included (unlike the
    /// content hash): a served request must run with exactly the options
    /// the client asked for.
    fn encode(&self, e: &mut Encoder) {
        self.partitioner.encode(e);
        self.scheme.encode(e);
        match &self.objective {
            None => e.put_u8(0),
            Some(o) => {
                e.put_u8(1);
                o.encode(e);
            }
        }
        self.hls.encode(e);
        e.put_u32(self.encoding_effort);
        e.put_u32(self.placement_effort);
        e.put_bool(self.packed_memory);
        e.put_usize(self.jobs);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(FlowOptions {
            partitioner: Partitioner::decode(d)?,
            scheme: CommScheme::decode(d)?,
            objective: match d.take_u8()? {
                0 => None,
                1 => Some(Objective::decode(d)?),
                tag => {
                    return Err(CodecError::InvalidTag {
                        type_name: "FlowOptions.objective",
                        tag,
                    })
                }
            },
            hls: HlsOptions::decode(d)?,
            encoding_effort: d.take_u32()?,
            placement_effort: d.take_u32()?,
            packed_memory: d.take_bool()?,
            jobs: d.take_usize()?,
        })
    }
}

/// Build the all-software baseline mapping for `graph` (pinned to the
/// first processor), re-exported for sweeps and examples.
#[must_use]
pub fn all_software_mapping(graph: &PartitioningGraph) -> Mapping {
    Mapping::uniform(graph.node_count(), Resource::Software(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_cost::CostModel;
    use cool_ir::eval::input_map;
    use cool_ir::Target;
    use cool_spec::workloads;
    use std::time::Duration;

    fn quick_run(g: &PartitioningGraph) -> Result<FlowArtifacts, FlowError> {
        FlowSession::new(g)
            .target(Target::fuzzy_board())
            .options(FlowOptions::quick())
            .run()
    }

    #[test]
    fn full_flow_on_equalizer() {
        let g = workloads::equalizer(4);
        let art = quick_run(&g).unwrap();
        // All five artefact families exist.
        assert!(art.netlist.components.len() >= 4);
        assert!(!art.vhdl.is_empty());
        assert!(!art.c_programs.is_empty() || art.partition.software_nodes(&g) == 0);
        assert!(art.minimize_stats.states_after <= art.minimize_stats.states_before);
        // Functional check.
        let r = art
            .simulate(&input_map([("x0", 7), ("x1", -2), ("x2", 3)]))
            .unwrap();
        assert!(r.cycles > 0);
    }

    #[test]
    fn fuzzy_flow_with_fixed_mapping() {
        let g = workloads::fuzzy_controller();
        let mut mapping = all_software_mapping(&g);
        mapping.assign(g.node_by_name("defuzz").unwrap(), Resource::Hardware(0));
        let art = FlowSession::new(&g)
            .target(Target::fuzzy_board())
            .options(FlowOptions::quick())
            .with_mapping(mapping)
            .run()
            .unwrap();
        assert_eq!(art.hls_designs.len(), 1);
        assert_eq!(art.partition.hardware_nodes(&g), 1);
        let r = art
            .simulate(&input_map([("err", 60), ("derr", -30)]))
            .unwrap();
        assert!((0..=255).contains(&r.outputs["u"]));
    }

    #[test]
    fn report_mentions_all_sections() {
        let g = workloads::equalizer(2);
        let art = quick_run(&g).unwrap();
        let rep = art.report();
        for needle in [
            "partitioning",
            "STG",
            "netlist",
            "timing breakdown",
            "total",
        ] {
            assert!(rep.contains(needle), "report lacks `{needle}`:\n{rep}");
        }
    }

    #[test]
    fn timings_are_recorded() {
        let g = workloads::equalizer(2);
        let art = quick_run(&g).unwrap();
        assert!(art.timings.total() > Duration::ZERO);
        let f = art.timings.hardware_fraction();
        assert!((0.0..=1.0).contains(&f));
        // The trace journal covers the whole standard engine.
        assert_eq!(art.trace.stage_names(), Engine::standard().stage_names());
    }

    #[test]
    fn packed_memory_option_is_honoured() {
        let g = workloads::equalizer(4);
        let target = Target::fuzzy_board();
        let mut mapping = all_software_mapping(&g);
        // A couple of gain nodes in hardware: enough to create cut edges
        // while staying far below the 196-CLB budget.
        mapping.assign(g.node_by_name("gain0").unwrap(), Resource::Hardware(0));
        mapping.assign(g.node_by_name("gain2").unwrap(), Resource::Hardware(0));
        let seq = FlowSession::new(&g)
            .target(target.clone())
            .options(FlowOptions::quick())
            .with_mapping(mapping.clone())
            .run()
            .unwrap();
        let packed = FlowSession::new(&g)
            .target(target)
            .options(FlowOptions {
                packed_memory: true,
                ..FlowOptions::quick()
            })
            .with_mapping(mapping)
            .run()
            .unwrap();
        assert!(packed.memory_map.bytes_used() <= seq.memory_map.bytes_used());
    }

    #[test]
    fn invalid_graph_is_rejected() {
        let mut g = PartitioningGraph::new("broken");
        let _ = g
            .add_function("f", cool_ir::Behavior::unary(cool_ir::Op::Neg))
            .unwrap();
        let err = quick_run(&g).unwrap_err();
        assert!(matches!(err, FlowError::Ir(_)));
    }

    #[test]
    fn shared_cost_model_matches_fresh_flow() {
        let g = workloads::equalizer(4);
        let target = Target::fuzzy_board();
        let fresh = quick_run(&g).unwrap();
        let cost = CostModel::new(&g, &target);
        let shared = FlowSession::new(&g)
            .target(target)
            .options(FlowOptions::quick())
            .with_cost(cost)
            .run()
            .unwrap();
        assert_eq!(fresh.partition.mapping, shared.partition.mapping);
        assert_eq!(fresh.vhdl, shared.vhdl);
    }
}
