//! The COOL co-design flow: coupled hardware/software partitioning and
//! co-synthesis of communicating controllers.
//!
//! This crate is the tool the paper describes — it wires every substrate
//! of the reproduction into the complete design flow of paper Figure 1:
//!
//! 1. **system specification** (a [`cool_ir::PartitioningGraph`], parsed
//!    from the DSL or built by a workload generator),
//! 2. **cost estimation** ([`cool_cost`]),
//! 3. **hardware/software partitioning** (MILP / MILP+heuristic / genetic,
//!    [`cool_partition`]),
//! 4. **static scheduling** ([`cool_schedule`]),
//! 5. **co-synthesis**: STG generation + minimization + memory allocation
//!    ([`cool_stg`]), hardware synthesis of every hardware node
//!    ([`cool_hls`]), synthesis of the system controller, I/O controller,
//!    bus arbiter and netlist with VHDL emission ([`cool_rtl`]), C code
//!    generation ([`cool_codegen`]),
//! 6. **validation** on the board stand-in ([`cool_sim`]).
//!
//! Every stage is timed; [`FlowArtifacts::timings`] reproduces the paper's
//! observation that hardware synthesis consumes the bulk (> 90 %) of the
//! design time.
//!
//! # Example
//!
//! ```
//! use cool_core::{run_flow, FlowOptions};
//! use cool_ir::Target;
//! use cool_spec::workloads;
//!
//! # fn main() -> Result<(), cool_core::FlowError> {
//! let graph = workloads::equalizer(2);
//! let artifacts = run_flow(&graph, &Target::fuzzy_board(), &FlowOptions::quick())?;
//! let inputs = cool_ir::eval::input_map([("x0", 10), ("x1", 5), ("x2", 1)]);
//! let result = artifacts.simulate(&inputs)?;
//! assert_eq!(result.outputs, cool_ir::eval::evaluate(&graph, &inputs)?);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::time::{Duration, Instant};

use cool_cost::{CommScheme, CostModel};
use cool_hls::{HlsDesign, HlsOptions};
use cool_ir::{Mapping, PartitioningGraph, Resource, Target};
use cool_partition::{GaOptions, HeuristicOptions, MilpOptions, PartitionResult};
use cool_rtl::encoding::StateEncoding;
use cool_rtl::{Netlist, SystemController};
use cool_schedule::StaticSchedule;
use cool_sim::{SimResult, Simulator};
use cool_stg::{MemoryMap, MinimizeStats, Stg};

/// Flow-level errors (wrapping every stage's failure mode).
#[derive(Debug)]
#[non_exhaustive]
pub enum FlowError {
    /// Invalid specification graph.
    Ir(cool_ir::IrError),
    /// Partitioning failed or proved infeasible.
    Partition(cool_partition::PartitionError),
    /// Static scheduling failed.
    Schedule(cool_schedule::ScheduleError),
    /// Memory allocation overflowed the shared memory.
    Memory(cool_stg::MemoryError),
    /// Co-simulation failed.
    Sim(cool_sim::SimError),
    /// An internal consistency check failed (synthesis bug).
    Consistency(String),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Ir(e) => write!(f, "specification error: {e}"),
            FlowError::Partition(e) => write!(f, "partitioning error: {e}"),
            FlowError::Schedule(e) => write!(f, "scheduling error: {e}"),
            FlowError::Memory(e) => write!(f, "memory allocation error: {e}"),
            FlowError::Sim(e) => write!(f, "co-simulation error: {e}"),
            FlowError::Consistency(why) => write!(f, "internal consistency error: {why}"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Ir(e) => Some(e),
            FlowError::Partition(e) => Some(e),
            FlowError::Schedule(e) => Some(e),
            FlowError::Memory(e) => Some(e),
            FlowError::Sim(e) => Some(e),
            FlowError::Consistency(_) => None,
        }
    }
}

impl From<cool_ir::IrError> for FlowError {
    fn from(e: cool_ir::IrError) -> FlowError {
        FlowError::Ir(e)
    }
}
impl From<cool_partition::PartitionError> for FlowError {
    fn from(e: cool_partition::PartitionError) -> FlowError {
        FlowError::Partition(e)
    }
}
impl From<cool_schedule::ScheduleError> for FlowError {
    fn from(e: cool_schedule::ScheduleError) -> FlowError {
        FlowError::Schedule(e)
    }
}
impl From<cool_stg::MemoryError> for FlowError {
    fn from(e: cool_stg::MemoryError) -> FlowError {
        FlowError::Memory(e)
    }
}
impl From<cool_sim::SimError> for FlowError {
    fn from(e: cool_sim::SimError) -> FlowError {
        FlowError::Sim(e)
    }
}

/// Which partitioner the flow runs.
#[derive(Debug, Clone)]
pub enum Partitioner {
    /// Exact MILP.
    Milp(MilpOptions),
    /// Clustering + MILP.
    Heuristic(HeuristicOptions),
    /// Genetic algorithm.
    Genetic(GaOptions),
    /// Skip partitioning: use a caller-provided colouring (for sweeps).
    Fixed(Mapping),
}

/// All knobs of one flow run.
#[derive(Debug, Clone)]
pub struct FlowOptions {
    /// Partitioning algorithm.
    pub partitioner: Partitioner,
    /// Communication refinement scheme.
    pub scheme: CommScheme,
    /// HLS options for the final hardware synthesis (higher effort than
    /// the estimates used during partitioning).
    pub hls: HlsOptions,
    /// Effort of the FSM state-encoding search (logic synthesis).
    pub encoding_effort: u32,
    /// Effort of the simulated-annealing CLB placement (the Xilinx
    /// implementation stand-in; scales the move budget per device).
    pub placement_effort: u32,
    /// Use the lifetime-packed memory allocator instead of the paper's
    /// sequential one.
    pub packed_memory: bool,
}

impl Default for FlowOptions {
    fn default() -> FlowOptions {
        FlowOptions {
            // The GA optimizes the *real* schedule makespan, so it discovers
            // mixed partitions that exploit hardware concurrency — the MILP
            // variants optimize a load proxy and tend to stay in software on
            // DSP-friendly designs (use them via `partitioner` when the
            // proxy is the point, e.g. in the partitioner ablation).
            partitioner: Partitioner::Genetic(GaOptions::default()),
            scheme: CommScheme::MemoryMapped,
            hls: HlsOptions { effort: 48, ..HlsOptions::default() },
            encoding_effort: 320,
            placement_effort: 768,
            packed_memory: false,
        }
    }
}

impl FlowOptions {
    /// Fast settings for tests and doc examples: genetic partitioner with
    /// a tiny population, low synthesis effort.
    #[must_use]
    pub fn quick() -> FlowOptions {
        FlowOptions {
            partitioner: Partitioner::Genetic(GaOptions {
                population: 8,
                generations: 4,
                threads: 1,
                ..GaOptions::default()
            }),
            scheme: CommScheme::MemoryMapped,
            hls: HlsOptions { effort: 2, ..HlsOptions::default() },
            encoding_effort: 2,
            placement_effort: 1,
            packed_memory: false,
        }
    }
}

/// Wall-clock time per flow stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Cost estimation (software timing + quick HLS estimates).
    pub estimation: Duration,
    /// Hardware/software partitioning.
    pub partitioning: Duration,
    /// Static scheduling.
    pub scheduling: Duration,
    /// STG generation + minimization + memory allocation.
    pub cosynthesis: Duration,
    /// Hardware synthesis: full-effort HLS per hardware node, VHDL
    /// emission, FSM encoding search.
    pub hardware_synthesis: Duration,
    /// C code generation.
    pub software_synthesis: Duration,
}

impl StageTimings {
    /// Total flow time.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.estimation
            + self.partitioning
            + self.scheduling
            + self.cosynthesis
            + self.hardware_synthesis
            + self.software_synthesis
    }

    /// Fraction of total time spent in hardware synthesis (the paper
    /// reports > 0.9 on its workloads).
    #[must_use]
    pub fn hardware_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.hardware_synthesis.as_secs_f64() / total
        }
    }

    /// One row per stage, for reports.
    #[must_use]
    pub fn to_table(&self) -> String {
        let row = |name: &str, d: Duration| -> String {
            let total = self.total().as_secs_f64().max(1e-12);
            format!("{name:<20} {:>10.3} ms {:>5.1} %\n", d.as_secs_f64() * 1e3, 100.0 * d.as_secs_f64() / total)
        };
        let mut s = String::new();
        s.push_str(&row("estimation", self.estimation));
        s.push_str(&row("partitioning", self.partitioning));
        s.push_str(&row("scheduling", self.scheduling));
        s.push_str(&row("co-synthesis", self.cosynthesis));
        s.push_str(&row("hardware synthesis", self.hardware_synthesis));
        s.push_str(&row("software synthesis", self.software_synthesis));
        s.push_str(&format!("total                {:>10.3} ms\n", self.total().as_secs_f64() * 1e3));
        s
    }
}

/// Everything one flow run produces.
#[derive(Debug, Clone)]
pub struct FlowArtifacts {
    /// The input specification.
    pub graph: PartitioningGraph,
    /// The target board.
    pub target: Target,
    /// Cost model used by partitioning and scheduling.
    pub cost: CostModel,
    /// The partitioning outcome (mapping + stats).
    pub partition: PartitionResult,
    /// The static schedule.
    pub schedule: StaticSchedule,
    /// The raw STG.
    pub stg: Stg,
    /// The minimized STG.
    pub stg_minimized: Stg,
    /// Minimization statistics.
    pub minimize_stats: MinimizeStats,
    /// The communication memory map.
    pub memory_map: MemoryMap,
    /// Full-effort HLS results for every hardware node.
    pub hls_designs: Vec<HlsDesign>,
    /// The synthesized system controller.
    pub controller: SystemController,
    /// Its optimized state encoding.
    pub encoding: StateEncoding,
    /// CLB placement per hardware device (the Xilinx implementation
    /// stand-in), one entry per FPGA hosting logic.
    pub placements: Vec<(Resource, cool_rtl::place::Placement)>,
    /// The generated netlist (Figure 4).
    pub netlist: Netlist,
    /// Emitted VHDL units: `(file name, source)`.
    pub vhdl: Vec<(String, String)>,
    /// Generated C programs.
    pub c_programs: Vec<cool_codegen::CProgram>,
    /// Per-stage wall-clock times.
    pub timings: StageTimings,
    /// Communication scheme in effect.
    pub scheme: CommScheme,
}

impl FlowArtifacts {
    /// Simulate one system invocation on the board stand-in and check the
    /// outputs against the reference evaluator.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn simulate(&self, inputs: &BTreeMap<String, i64>) -> Result<SimResult, FlowError> {
        let sim = Simulator::new(
            &self.graph,
            &self.partition.mapping,
            &self.schedule,
            &self.memory_map,
            &self.cost,
            self.scheme,
        );
        Ok(sim.run_checked(inputs)?)
    }

    /// A human-readable design report: partition summary, schedule
    /// makespan, STG sizes, memory usage, netlist inventory and timing
    /// breakdown.
    #[must_use]
    pub fn report(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("design `{}` on {}\n", self.graph.name(), self.target));
        s.push_str(&format!(
            "partitioning ({}): {} sw node(s), {} hw node(s), makespan {} cycles\n",
            self.partition.algorithm,
            self.partition.software_nodes(&self.graph),
            self.partition.hardware_nodes(&self.graph),
            self.partition.makespan,
        ));
        for (i, used) in self.partition.hw_area.iter().enumerate() {
            s.push_str(&format!(
                "  {}: {used}/{} CLBs\n",
                self.target.hw[i].name, self.target.hw[i].clb_capacity
            ));
        }
        s.push_str(&format!(
            "STG: {} -> {} states ({}% reduction), {} transfer cell(s), {} byte(s)\n",
            self.minimize_stats.states_before,
            self.minimize_stats.states_after,
            (self.minimize_stats.reduction() * 100.0).round(),
            self.memory_map.cell_count(),
            self.memory_map.bytes_used(),
        ));
        s.push_str(&format!(
            "netlist: {} component(s), {} net(s); controller: {} states, {} FF binary\n",
            self.netlist.components.len(),
            self.netlist.nets.len(),
            self.controller.stg().state_count(),
            self.controller.binary_ffs(),
        ));
        s.push_str(&format!("VHDL units: {}, C units: {}\n", self.vhdl.len(), self.c_programs.len()));
        for (res, placed) in &self.placements {
            s.push_str(&format!(
                "placement {}: {} CLBs, HPWL {} ({:.0}% better than initial)\n",
                self.target.resource_name(*res),
                placed.positions.len(),
                placed.wirelength,
                placed.improvement() * 100.0,
            ));
        }
        s.push_str("timing breakdown:\n");
        s.push_str(&self.timings.to_table());
        s
    }
}

/// Run the complete COOL design flow on `graph` for `target`.
///
/// # Errors
///
/// Any stage's failure, wrapped in [`FlowError`].
pub fn run_flow(
    graph: &PartitioningGraph,
    target: &Target,
    options: &FlowOptions,
) -> Result<FlowArtifacts, FlowError> {
    graph.validate()?;

    // --- Estimation. ---
    let t0 = Instant::now();
    let cost = CostModel::new(graph, target);
    let estimation = t0.elapsed();

    // --- Partitioning. ---
    let t0 = Instant::now();
    let partition = match &options.partitioner {
        Partitioner::Milp(o) => cool_partition::milp::partition(graph, &cost, o)?,
        Partitioner::Heuristic(o) => cool_partition::heuristic::partition(graph, &cost, o)?,
        Partitioner::Genetic(o) => cool_partition::genetic::partition(graph, &cost, o)?,
        Partitioner::Fixed(mapping) => {
            let (makespan, hw_area) =
                cool_partition::evaluate(graph, mapping, &cost, options.scheme)?;
            PartitionResult {
                mapping: mapping.clone(),
                algorithm: cool_partition::Algorithm::Milp,
                makespan,
                hw_area,
                work_units: 0,
            }
        }
    };
    let partitioning = t0.elapsed();

    // --- Scheduling. ---
    let t0 = Instant::now();
    let schedule = cool_schedule::schedule(graph, &partition.mapping, &cost, options.scheme)?;
    schedule
        .verify(graph, &partition.mapping)
        .map_err(FlowError::Consistency)?;
    let scheduling = t0.elapsed();

    // --- Co-synthesis: STG, minimization, memory. ---
    let t0 = Instant::now();
    let stg = cool_stg::generate(graph, &partition.mapping, &schedule);
    stg.verify().map_err(FlowError::Consistency)?;
    let (stg_minimized, minimize_stats) = cool_stg::minimize(&stg);
    stg_minimized.verify().map_err(FlowError::Consistency)?;
    let memory_map = if options.packed_memory {
        cool_stg::allocate_memory_packed(
            graph,
            &partition.mapping,
            &schedule,
            &target.memory,
            target.bus.width_bits,
        )?
    } else {
        cool_stg::allocate_memory(
            graph,
            &partition.mapping,
            &target.memory,
            target.bus.width_bits,
        )?
    };
    let cosynthesis = t0.elapsed();

    // --- Hardware synthesis: full-effort HLS per hardware node, system
    // controller + encoding search, VHDL for every generated piece. ---
    let t0 = Instant::now();
    let hw_nodes: Vec<cool_ir::NodeId> = graph
        .function_nodes()
        .into_iter()
        .filter(|&n| partition.mapping.resource(n).is_hardware())
        .collect();
    let mut hls_designs = Vec::with_capacity(hw_nodes.len());
    for &n in &hw_nodes {
        let node = graph.node(n)?;
        hls_designs.push(cool_hls::synthesize(node.name(), node.behavior(), &options.hls));
    }
    let controller = SystemController::from_stg(stg_minimized.clone(), graph);
    let encoding = cool_rtl::encoding::optimize_encoding(
        controller.stg(),
        options.encoding_effort,
    );
    let netlist = cool_rtl::build_netlist(graph, &partition.mapping, target);
    netlist.verify().map_err(FlowError::Consistency)?;
    let mut vhdl = Vec::new();
    vhdl.push((
        "system_controller.vhd".to_string(),
        cool_rtl::vhdl::emit_system_controller(&controller),
    ));
    let masters = netlist.count_kind(|k| {
        matches!(
            k,
            cool_rtl::ComponentKind::Processor(_)
                | cool_rtl::ComponentKind::DatapathController(_)
                | cool_rtl::ComponentKind::IoController
        )
    });
    vhdl.push(("bus_arbiter.vhd".to_string(), cool_rtl::vhdl::emit_bus_arbiter(masters)));
    vhdl.push((
        "io_controller.vhd".to_string(),
        cool_rtl::vhdl::emit_io_controller(
            graph.primary_inputs().len().max(1),
            graph.primary_outputs().len().max(1),
            target.bus.width_bits,
        ),
    ));
    for (i, &n) in hw_nodes.iter().enumerate() {
        let node = graph.node(n)?;
        vhdl.push((
            format!("hw_{}.vhd", node.name()),
            cool_rtl::vhdl::emit_hw_block(graph, n, hls_designs[i].latency_cycles),
        ));
    }
    // One datapath controller per FPGA in use: sequences the device's
    // shared-memory transactions in schedule order.
    for h in 0..target.hw.len() {
        let res = Resource::Hardware(h);
        if !hw_nodes.iter().any(|&n| partition.mapping.resource(n) == res) {
            continue;
        }
        let mut transfers: Vec<(u64, cool_rtl::vhdl::BusTransfer)> = Vec::new();
        for cell in memory_map.cells() {
            let e = graph.edge(cell.edge)?;
            if partition.mapping.resource(e.src) == res {
                transfers.push((
                    schedule.slot(e.src).finish,
                    cool_rtl::vhdl::BusTransfer { address: cell.address, write: true },
                ));
            }
            if partition.mapping.resource(e.dst) == res {
                transfers.push((
                    schedule.slot(e.dst).start,
                    cool_rtl::vhdl::BusTransfer { address: cell.address, write: false },
                ));
            }
        }
        transfers.sort_by_key(|&(t, x)| (t, x.address, x.write));
        let ordered: Vec<cool_rtl::vhdl::BusTransfer> =
            transfers.into_iter().map(|(_, x)| x).collect();
        let name = target.resource_name(res).to_string();
        vhdl.push((
            format!("dpctl_{name}.vhd"),
            cool_rtl::vhdl::emit_datapath_controller(&name, &ordered, target.bus.width_bits),
        ));
    }
    vhdl.push((
        format!("{}_top.vhd", graph.name()),
        cool_rtl::vhdl::emit_toplevel(&netlist, graph.name()),
    ));
    for (name, unit) in &vhdl {
        cool_rtl::vhdl::check_well_formed(unit)
            .map_err(|e| FlowError::Consistency(format!("{name}: {e}")))?;
    }
    // Xilinx implementation stand-in: anneal a CLB placement per device.
    // The system controller shares the first FPGA with its blocks, every
    // other device hosts its blocks plus a datapath controller.
    let mut placements = Vec::new();
    for h in 0..target.hw.len() {
        let block_clbs: Vec<u32> = hw_nodes
            .iter()
            .zip(&hls_designs)
            .filter(|(&n, _)| partition.mapping.resource(n) == Resource::Hardware(h))
            .map(|(_, d)| d.area_clbs)
            .collect();
        if block_clbs.is_empty() && h > 0 {
            continue;
        }
        let blocks_total: u32 = block_clbs.iter().sum();
        let wanted_ctrl = if h == 0 {
            cool_hls::area::fsm_clbs(controller.stg().state_count(), graph.function_nodes().len())
        } else {
            8 // datapath controller
        };
        let grid = (14u16, 14u16); // XC4005 CLB array
        let capacity = u32::from(grid.0) * u32::from(grid.1);
        let ctrl_clbs = wanted_ctrl.min(capacity.saturating_sub(blocks_total)).max(1);
        let problem =
            cool_rtl::place::PlacementProblem::for_device(&block_clbs, ctrl_clbs, grid.0, grid.1);
        if problem.fits() {
            let placed = cool_rtl::place::anneal(&problem, options.placement_effort, 0x5eed + h as u64);
            placements.push((Resource::Hardware(h), placed));
        }
    }
    let hardware_synthesis = t0.elapsed();

    // --- Software synthesis: C generation. ---
    let t0 = Instant::now();
    let c_programs =
        cool_codegen::emit_programs(graph, &partition.mapping, &schedule, &memory_map);
    for p in &c_programs {
        cool_codegen::check_c_structure(&p.source)
            .map_err(|e| FlowError::Consistency(format!("{}: {e}", p.file_name)))?;
    }
    let software_synthesis = t0.elapsed();

    Ok(FlowArtifacts {
        graph: graph.clone(),
        target: target.clone(),
        cost,
        partition,
        schedule,
        stg,
        stg_minimized,
        minimize_stats,
        memory_map,
        hls_designs,
        controller,
        encoding,
        placements,
        netlist,
        vhdl,
        c_programs,
        timings: StageTimings {
            estimation,
            partitioning,
            scheduling,
            cosynthesis,
            hardware_synthesis,
            software_synthesis,
        },
        scheme: options.scheme,
    })
}

/// Convenience: run the flow with a fixed, caller-chosen mapping.
///
/// # Errors
///
/// Same as [`run_flow`].
pub fn run_flow_with_mapping(
    graph: &PartitioningGraph,
    target: &Target,
    mapping: Mapping,
    options: &FlowOptions,
) -> Result<FlowArtifacts, FlowError> {
    let mut opts = options.clone();
    opts.partitioner = Partitioner::Fixed(mapping);
    run_flow(graph, target, &opts)
}

/// Build the all-software baseline mapping for `graph` (pinned to the
/// first processor), re-exported for sweeps and examples.
#[must_use]
pub fn all_software_mapping(graph: &PartitioningGraph) -> Mapping {
    Mapping::uniform(graph.node_count(), Resource::Software(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_ir::eval::input_map;
    use cool_spec::workloads;

    #[test]
    fn full_flow_on_equalizer() {
        let g = workloads::equalizer(4);
        let target = Target::fuzzy_board();
        let art = run_flow(&g, &target, &FlowOptions::quick()).unwrap();
        // All five artefact families exist.
        assert!(art.netlist.components.len() >= 4);
        assert!(!art.vhdl.is_empty());
        assert!(!art.c_programs.is_empty() || art.partition.software_nodes(&g) == 0);
        assert!(art.minimize_stats.states_after <= art.minimize_stats.states_before);
        // Functional check.
        let r = art.simulate(&input_map([("x0", 7), ("x1", -2), ("x2", 3)])).unwrap();
        assert!(r.cycles > 0);
    }

    #[test]
    fn fuzzy_flow_with_fixed_mapping() {
        let g = workloads::fuzzy_controller();
        let target = Target::fuzzy_board();
        let mut mapping = all_software_mapping(&g);
        mapping.assign(g.node_by_name("defuzz").unwrap(), Resource::Hardware(0));
        let art = run_flow_with_mapping(&g, &target, mapping, &FlowOptions::quick()).unwrap();
        assert_eq!(art.hls_designs.len(), 1);
        assert_eq!(art.partition.hardware_nodes(&g), 1);
        let r = art.simulate(&input_map([("err", 60), ("derr", -30)])).unwrap();
        assert!((0..=255).contains(&r.outputs["u"]));
    }

    #[test]
    fn report_mentions_all_sections() {
        let g = workloads::equalizer(2);
        let art = run_flow(&g, &Target::fuzzy_board(), &FlowOptions::quick()).unwrap();
        let rep = art.report();
        for needle in ["partitioning", "STG", "netlist", "timing breakdown", "total"] {
            assert!(rep.contains(needle), "report lacks `{needle}`:\n{rep}");
        }
    }

    #[test]
    fn timings_are_recorded() {
        let g = workloads::equalizer(2);
        let art = run_flow(&g, &Target::fuzzy_board(), &FlowOptions::quick()).unwrap();
        assert!(art.timings.total() > Duration::ZERO);
        let f = art.timings.hardware_fraction();
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn packed_memory_option_is_honoured() {
        let g = workloads::equalizer(4);
        let target = Target::fuzzy_board();
        let mut mapping = all_software_mapping(&g);
        // A couple of gain nodes in hardware: enough to create cut edges
        // while staying far below the 196-CLB budget.
        mapping.assign(g.node_by_name("gain0").unwrap(), Resource::Hardware(0));
        mapping.assign(g.node_by_name("gain2").unwrap(), Resource::Hardware(0));
        let seq = run_flow_with_mapping(&g, &target, mapping.clone(), &FlowOptions::quick())
            .unwrap();
        let packed = run_flow_with_mapping(
            &g,
            &target,
            mapping,
            &FlowOptions { packed_memory: true, ..FlowOptions::quick() },
        )
        .unwrap();
        assert!(packed.memory_map.bytes_used() <= seq.memory_map.bytes_used());
    }

    #[test]
    fn invalid_graph_is_rejected() {
        let mut g = PartitioningGraph::new("broken");
        let _ = g.add_function("f", cool_ir::Behavior::unary(cool_ir::Op::Neg)).unwrap();
        let err = run_flow(&g, &Target::fuzzy_board(), &FlowOptions::quick()).unwrap_err();
        assert!(matches!(err, FlowError::Ir(_)));
    }
}
