//! The [`FlowSession`] builder — the single entry point of the COOL
//! flow.
//!
//! One specification explored across boards, partial flows, caches and
//! cost models used to be a cross-product of `run_flow*` free functions
//! whose knobs did not compose (there was no cached run with a fixed
//! mapping, and multi-board evaluation meant hand-rolling candidate
//! lists). A session composes them all:
//!
//! ```
//! use cool_core::FlowSession;
//! use cool_ir::Target;
//! use cool_spec::workloads;
//!
//! # fn main() -> Result<(), cool_core::FlowError> {
//! let graph = workloads::equalizer(2);
//! let artifacts = FlowSession::new(&graph)
//!     .target(Target::fuzzy_board())
//!     .options(cool_core::FlowOptions::quick())
//!     .run()?;
//! let inputs = cool_ir::eval::input_map([("x0", 10), ("x1", 5), ("x2", 1)]);
//! let result = artifacts.simulate(&inputs)?;
//! assert_eq!(result.outputs, cool_ir::eval::evaluate(&graph, &inputs)?);
//! # Ok(())
//! # }
//! ```
//!
//! * [`FlowSession::run`] — the complete flow on one board, byte-identical
//!   to the retired `run_flow*` family for equivalent inputs.
//! * [`FlowSession::run_to`] — a partial flow: stop after any
//!   [`ArtifactSlot`]'s producer and get a typed [`PartialArtifacts`].
//!   The executed prefix is byte-identical to the same prefix of a full
//!   run.
//! * [`FlowSession::run_family`] — first-class multi-board runs: one
//!   [`FamilyArtifacts`] spanning a board family, the cost model
//!   estimated **once** and [`CostModel::retarget`]-ed per board, boards
//!   evaluated on scoped workers in input order, and a comparative
//!   [`FamilyArtifacts::report`].
//!
//! Invalid combinations (no target, a seeded cost model whose board is
//! inventory-incompatible with the session target, a mapping sized for a
//! different graph, two cache sources) fail fast with
//! [`FlowError::Session`] before any stage runs.

use std::path::PathBuf;

use cool_codegen::CProgram;
use cool_cost::CostModel;
use cool_hls::HlsDesign;
use cool_ir::{BudgetConstraint, Mapping, NodeId, PartitioningGraph, Resource, Target};
use cool_partition::{Optimality, PartitionResult};
use cool_rtl::encoding::StateEncoding;
use cool_rtl::place::Placement;
use cool_rtl::{Netlist, SystemController};
use cool_schedule::StaticSchedule;
use cool_stg::{MemoryMap, MinimizeStats, Stg};

use crate::cache::ArtifactSlot;
use crate::engine::Engine;
use crate::stage::FlowContext;
use crate::timing::{CacheOutcome, FlowTrace};
use crate::{FlowArtifacts, FlowError, FlowOptions, Partitioner, StageCache};

/// A configured (but not yet executed) exploration of one specification:
/// the builder over every knob of the flow. See the [module
/// docs](crate::session) for the three ways to run one.
#[derive(Debug, Clone)]
pub struct FlowSession<'a> {
    graph: &'a PartitioningGraph,
    targets: Vec<Target>,
    options: FlowOptions,
    jobs: Option<usize>,
    cache: Option<StageCache>,
    cache_dir: Option<PathBuf>,
    cache_max_bytes: Option<u64>,
    cache_remote: Option<String>,
    cost: Option<CostModel>,
    mapping: Option<Mapping>,
}

impl<'a> FlowSession<'a> {
    /// A session over `graph` with default [`FlowOptions`], no target
    /// yet, and no cache. Configure with the chainable builders, then
    /// call one of [`run`](FlowSession::run),
    /// [`run_to`](FlowSession::run_to) or
    /// [`run_family`](FlowSession::run_family).
    #[must_use]
    pub fn new(graph: &'a PartitioningGraph) -> FlowSession<'a> {
        FlowSession {
            graph,
            targets: Vec::new(),
            options: FlowOptions::default(),
            jobs: None,
            cache: None,
            cache_dir: None,
            cache_max_bytes: None,
            cache_remote: None,
            cost: None,
            mapping: None,
        }
    }

    /// The single board to implement the specification on (replaces any
    /// previously configured target list).
    #[must_use]
    pub fn target(mut self, target: Target) -> FlowSession<'a> {
        self.targets = vec![target];
        self
    }

    /// A board *family* to implement the specification on, for
    /// [`run_family`](FlowSession::run_family). Boards must share their
    /// processor/hardware inventory and clocks (the
    /// [`CostModel::retarget`] contract) — typically the same board with
    /// different CLB or memory budgets. Replaces any previously
    /// configured target(s).
    #[must_use]
    pub fn targets(mut self, targets: impl IntoIterator<Item = Target>) -> FlowSession<'a> {
        self.targets = targets.into_iter().collect();
        self
    }

    /// All flow knobs at once (partitioner, scheme, synthesis efforts,
    /// jobs). The dedicated builders — [`jobs`](FlowSession::jobs),
    /// [`with_mapping`](FlowSession::with_mapping),
    /// [`with_cost`](FlowSession::with_cost) — always take precedence
    /// over the corresponding fields of `options`, regardless of call
    /// order.
    #[must_use]
    pub fn options(mut self, options: FlowOptions) -> FlowSession<'a> {
        self.options = options;
        self
    }

    /// Worker threads for the parallel stages (and for the board fan-out
    /// of [`run_family`](FlowSession::run_family)): `1` = serial, `0` =
    /// all cores. Never changes a generated byte, only wall-clock.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> FlowSession<'a> {
        self.jobs = Some(jobs);
        self
    }

    /// Attach a content-addressed stage cache: stages whose
    /// dependency-DAG content key already executed (in this session or
    /// any other holding a clone) are skipped and restored. Mutually
    /// exclusive with [`cache_dir`](FlowSession::cache_dir).
    #[must_use]
    pub fn cache(mut self, cache: StageCache) -> FlowSession<'a> {
        self.cache = Some(cache);
        self
    }

    /// Attach a two-tier cache backed by the persistent store in `dir`
    /// (created at run time if absent), so separate *processes* share
    /// stage executions. Mutually exclusive with
    /// [`cache`](FlowSession::cache); the directory is opened when the
    /// session runs, and open failures surface as [`FlowError::Session`].
    #[must_use]
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> FlowSession<'a> {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Byte-size cap for the [`cache_dir`](FlowSession::cache_dir) disk
    /// tier (`0` = unbounded). Defaults to
    /// [`crate::disk::DEFAULT_MAX_BYTES`].
    #[must_use]
    pub fn cache_max_bytes(mut self, max_bytes: u64) -> FlowSession<'a> {
        self.cache_max_bytes = Some(max_bytes);
        self
    }

    /// Attach a remote fleet tier: a `coold` daemon at `addr` consulted
    /// when both the memory and disk tiers miss, and written through on
    /// every computed stage. Composes with [`cache`](FlowSession::cache)
    /// or [`cache_dir`](FlowSession::cache_dir) (with neither, a default
    /// in-memory cache is created to host the remote tier). The daemon
    /// being unreachable never fails the flow — the cache degrades to
    /// local-only with a one-line warning per outage streak.
    #[must_use]
    pub fn cache_remote(mut self, addr: impl Into<String>) -> FlowSession<'a> {
        self.cache_remote = Some(addr.into());
        self
    }

    /// Seed the session with an already-built cost model, so the `cost`
    /// stage becomes a pass-through (recorded as
    /// [`CacheOutcome::Seeded`] in the trace) instead of re-estimating.
    ///
    /// The model's embedded board must be [`CostModel::retarget`]
    /// compatible with the session target(s): same inventory and clocks.
    /// A compatible model whose *budgets* differ is retargeted
    /// automatically (estimates do not depend on budgets); an
    /// incompatible one is an invalid combination and fails the run with
    /// [`FlowError::Session`].
    #[must_use]
    pub fn with_cost(mut self, cost: CostModel) -> FlowSession<'a> {
        self.cost = Some(cost);
        self
    }

    /// Skip partitioning: implement the caller's node→resource colouring
    /// (overrides the partitioner configured via
    /// [`options`](FlowSession::options)). The mapping must cover exactly
    /// this session's graph.
    #[must_use]
    pub fn with_mapping(mut self, mapping: Mapping) -> FlowSession<'a> {
        self.mapping = Some(mapping);
        self
    }

    // ------------------------------------------------------------------
    // Execution.

    /// Run the complete flow on the session's single target.
    ///
    /// # Errors
    ///
    /// [`FlowError::Session`] for invalid configurations (no target, more
    /// than one — call [`run_family`](FlowSession::run_family) —,
    /// incompatible seeded cost model, wrong-sized mapping, two cache
    /// sources); otherwise any stage's failure, exactly as the engine
    /// reports it.
    pub fn run(self) -> Result<FlowArtifacts, FlowError> {
        let prepared = self.prepare_single()?;
        prepared.run_full()
    }

    /// Run the flow only until `stop` is produced: the prefix of the
    /// standard stage graph up to and including the stage that writes the
    /// requested artifact slot. The executed prefix is byte-identical to
    /// the same prefix of a full [`run`](FlowSession::run) — stopping
    /// early changes nothing about the stages that did run — and a
    /// pre-seeded slot (e.g. [`with_cost`](FlowSession::with_cost) +
    /// `run_to(ArtifactSlot::Cost)`) stops before its producer.
    ///
    /// # Errors
    ///
    /// Same as [`run`](FlowSession::run).
    pub fn run_to(self, stop: ArtifactSlot) -> Result<PartialArtifacts, FlowError> {
        let prepared = self.prepare_single()?;
        prepared.run_prefix(stop)
    }

    /// Implement the specification on every configured board
    /// ([`targets`](FlowSession::targets)) and return one artifact set
    /// spanning the family.
    ///
    /// The cost model is estimated **once** — by the first board's flow,
    /// or taken from [`with_cost`](FlowSession::with_cost) — and
    /// [`CostModel::retarget`]-ed to every other board, whose `cost`
    /// stages then run as seeded pass-throughs (visible per board as
    /// [`CacheOutcome::Seeded`] in the traces, and counted by
    /// [`FamilyArtifacts::cost_estimations`]). The remaining boards
    /// evaluate on up to `jobs` scoped workers; results come back in
    /// input order for every job count, and each board's artifacts are
    /// byte-identical to a standalone [`run`](FlowSession::run) of the
    /// same inputs.
    ///
    /// # Errors
    ///
    /// [`FlowError::Session`] when no target is configured, when the
    /// boards are not mutually retarget-compatible, or for the other
    /// invalid combinations of [`run`](FlowSession::run); otherwise the
    /// first failing board's error (in input order).
    pub fn run_family(self) -> Result<FamilyArtifacts, FlowError> {
        if self.targets.is_empty() {
            return Err(FlowError::Session(
                "no target configured; call .targets([..]) before .run_family()".to_string(),
            ));
        }
        for (i, t) in self.targets.iter().enumerate().skip(1) {
            if !retarget_compatible(&self.targets[0], t) {
                return Err(FlowError::Session(format!(
                    "board #{i} is not retarget-compatible with board #0 (the family shares \
                     one estimated cost model, which requires identical processor/hardware \
                     inventories, clocks and instruction-timing classes; budgets may differ)"
                )));
            }
        }
        let graph = self.graph;
        let targets = self.targets.clone();
        let options = self.resolved_options()?;
        let cache = self.resolved_cache()?;
        let seed = match self.cost {
            Some(cost) => {
                check_cost_compatible(&cost, &targets[0])?;
                Some(cost)
            }
            None => None,
        };

        // Phase 1 — estimate once. The spec→cost *prefix* over board 0
        // (a caller-seeded model makes even that a no-op) produces the
        // family's one cost model; its trace is the auditable evidence
        // of the single estimation. Phase 2 then runs every board's
        // complete flow concurrently, each seeded with a
        // `CostModel::retarget` of the shared model — budgets do not
        // affect the per-node estimates — so every board's `cost` stage
        // is a pass-through and no board serializes behind another's
        // hardware synthesis.
        let (base_cost, estimation) = estimate_prefix(
            graph,
            &targets[0],
            &options,
            cache.as_ref(),
            seed.map(|c| c.retarget(&targets[0])),
        )?;
        // The jobs budget is spent once, not squared: with several
        // boards in flight the fan-out gets the workers and each
        // board's intra-flow stages run serial (jobs never changes an
        // artifact, only wall-clock, so the per-board results stay
        // byte-identical to any standalone run).
        let board_options = if targets.len() > 1 {
            FlowOptions {
                jobs: 1,
                ..options.clone()
            }
        } else {
            options.clone()
        };
        let results = cool_ir::par::par_map(&targets, options.jobs, |target| {
            run_one(
                graph,
                target,
                &board_options,
                cache.as_ref(),
                Some(base_cost.retarget(target)),
            )
        });
        let mut boards = Vec::with_capacity(targets.len());
        for result in results {
            boards.push(result?);
        }
        Ok(FamilyArtifacts { boards, estimation })
    }

    /// Epsilon-constraint design-space exploration: sweep the session's
    /// single board over `budgets` — each point constrains every FPGA's
    /// CLB capacity ([`BudgetConstraint::apply`]) — optimize the
    /// declared objective at every point, and return the resulting
    /// [`ParetoFront`] over (makespan, total CLB usage).
    ///
    /// The sweep is engineered like
    /// [`run_family`](FlowSession::run_family): the cost model is
    /// estimated **once** — by the first point's spec→cost prefix, or
    /// taken from [`with_cost`](FlowSession::with_cost) — and
    /// [`CostModel::retarget`]-ed to every point, whose `cost` stages
    /// run as seeded pass-throughs ([`CacheOutcome::Seeded`], counted
    /// by [`ParetoFront::cost_estimations`]). Points run their
    /// spec→partition prefix on up to `jobs` scoped workers and come
    /// back in input order for every job count, so the front is
    /// byte-identical at any `jobs`; one shared [`StageCache`] (when
    /// configured) serves all points. Node-limit-truncated points
    /// carry their optimality [`gap`](ParetoPoint::gap).
    ///
    /// # Errors
    ///
    /// [`FlowError::Session`] when no target or more than one target is
    /// configured, or when `budgets` is empty; otherwise the first
    /// failing point's error (in input order).
    pub fn pareto(
        self,
        budgets: impl IntoIterator<Item = BudgetConstraint>,
    ) -> Result<ParetoFront, FlowError> {
        let budgets: Vec<BudgetConstraint> = budgets.into_iter().collect();
        if budgets.is_empty() {
            return Err(FlowError::Session(
                "no budgets configured; pass at least one BudgetConstraint to .pareto(..)"
                    .to_string(),
            ));
        }
        let base = match self.targets.len() {
            1 => self.targets[0].clone(),
            0 => {
                return Err(FlowError::Session(
                    "no target configured; call .target(..) before .pareto(..)".to_string(),
                ))
            }
            n => {
                return Err(FlowError::Session(format!(
                    "{n} targets configured; .pareto(..) sweeps budgets of one base board"
                )))
            }
        };
        let graph = self.graph;
        let options = self.resolved_options()?;
        let cache = self.resolved_cache()?;
        let seed = match self.cost {
            Some(cost) => {
                check_cost_compatible(&cost, &base)?;
                Some(cost)
            }
            None => None,
        };
        let objective = declared_objective(&options);
        let targets: Vec<Target> = budgets.iter().map(|b| b.apply(&base)).collect();

        // Phase 1 — estimate once (budget-only target changes are
        // retarget-compatible by construction, so no pairwise check is
        // needed). Phase 2 — every point's spec→partition prefix, in
        // input order, intra-point serial whenever the fan-out is the
        // parallel axis.
        let (base_cost, estimation) = estimate_prefix(
            graph,
            &targets[0],
            &options,
            cache.as_ref(),
            seed.map(|c| c.retarget(&targets[0])),
        )?;
        let point_options = if targets.len() > 1 {
            FlowOptions {
                jobs: 1,
                ..options.clone()
            }
        } else {
            options.clone()
        };
        let results = cool_ir::par::par_map(&targets, options.jobs, |target| {
            let engine = match cache.as_ref() {
                Some(cache) => Engine::standard().with_cache(cache.clone()),
                None => Engine::standard(),
            };
            let mut cx =
                FlowContext::with_cost(graph, target, &point_options, base_cost.retarget(target));
            let trace = engine.run_until(&mut cx, Some(ArtifactSlot::Partition))?;
            Ok::<_, FlowError>(PartialArtifacts::from_context(
                cx,
                trace,
                ArtifactSlot::Partition,
            ))
        });
        let mut points = Vec::with_capacity(budgets.len());
        for (budget, result) in budgets.into_iter().zip(results) {
            points.push(ParetoPoint::from_partial(budget, result?)?);
        }
        mark_dominated(&mut points);
        Ok(ParetoFront {
            design: graph.name().to_string(),
            objective,
            points,
            estimation,
        })
    }

    // ------------------------------------------------------------------
    // Resolution helpers.

    /// The session options with the `jobs` and mapping overrides applied
    /// and the mapping validated against the graph.
    fn resolved_options(&self) -> Result<FlowOptions, FlowError> {
        let mut options = self.options.clone();
        if let Some(jobs) = self.jobs {
            options.jobs = jobs;
        }
        if let Some(mapping) = &self.mapping {
            if mapping.len() != self.graph.node_count() {
                return Err(FlowError::Session(format!(
                    "with_mapping: the mapping covers {} node(s) but the graph `{}` has {} — \
                     it was built for a different graph",
                    mapping.len(),
                    self.graph.name(),
                    self.graph.node_count(),
                )));
            }
            options.partitioner = Partitioner::Fixed(mapping.clone());
        }
        Ok(options)
    }

    /// The cache the run should attach, opening the persistent directory
    /// if one was configured.
    fn resolved_cache(&self) -> Result<Option<StageCache>, FlowError> {
        let local = match (&self.cache, &self.cache_dir) {
            (Some(_), Some(_)) => {
                return Err(FlowError::Session(
                    "both .cache(..) and .cache_dir(..) configured; pick one cache source \
                     (a persistent cache is created from the directory alone)"
                        .to_string(),
                ))
            }
            (Some(cache), None) => Some(cache.clone()),
            (None, Some(dir)) => {
                let max_bytes = self
                    .cache_max_bytes
                    .unwrap_or(crate::disk::DEFAULT_MAX_BYTES);
                let cache =
                    StageCache::persistent_with_cap(StageCache::DEFAULT_CAPACITY, dir, max_bytes)
                        .map_err(|e| {
                        FlowError::Session(format!(
                            "cannot open cache directory `{}`: {e}",
                            dir.display()
                        ))
                    })?;
                Some(cache)
            }
            (None, None) => match self.cache_max_bytes {
                Some(_) => {
                    return Err(FlowError::Session(
                        "cache_max_bytes configured without .cache_dir(..); the byte cap \
                         applies to the persistent disk tier only"
                            .to_string(),
                    ))
                }
                None => None,
            },
        };
        // The remote tier composes onto whatever resolved locally; with
        // no local cache configured, a default in-memory cache hosts it.
        match &self.cache_remote {
            None => Ok(local),
            Some(addr) => {
                let remote = std::sync::Arc::new(crate::remote::RemoteStore::new(addr.clone()));
                Ok(Some(local.unwrap_or_default().with_remote(remote)))
            }
        }
    }

    /// Validate a single-target session and resolve every input.
    fn prepare_single(self) -> Result<PreparedRun<'a>, FlowError> {
        let target = match self.targets.len() {
            0 => {
                return Err(FlowError::Session(
                    "no target configured; call .target(..) before .run()/.run_to(..)".to_string(),
                ))
            }
            1 => self.targets[0].clone(),
            n => {
                return Err(FlowError::Session(format!(
                    "{n} targets configured; .run()/.run_to(..) implement one board — \
                     use .run_family() for a board family"
                )))
            }
        };
        let options = self.resolved_options()?;
        let cache = self.resolved_cache()?;
        let cost = match self.cost {
            Some(cost) => {
                check_cost_compatible(&cost, &target)?;
                Some(cost.retarget(&target))
            }
            None => None,
        };
        Ok(PreparedRun {
            graph: self.graph,
            target,
            options,
            cache,
            cost,
        })
    }
}

/// A fully resolved single-target run: everything validated, nothing
/// borrowed from the (consumed) session.
struct PreparedRun<'a> {
    graph: &'a PartitioningGraph,
    target: Target,
    options: FlowOptions,
    cache: Option<StageCache>,
    cost: Option<CostModel>,
}

impl PreparedRun<'_> {
    fn engine(&self) -> Engine {
        match &self.cache {
            Some(cache) => Engine::standard().with_cache(cache.clone()),
            None => Engine::standard(),
        }
    }

    fn run_full(self) -> Result<FlowArtifacts, FlowError> {
        let engine = self.engine();
        let mut cx = self.context();
        let trace = engine.run(&mut cx)?;
        FlowArtifacts::from_context(cx, trace)
    }

    fn run_prefix(self, stop: ArtifactSlot) -> Result<PartialArtifacts, FlowError> {
        let engine = self.engine();
        let mut cx = self.context();
        let trace = engine.run_until(&mut cx, Some(stop))?;
        Ok(PartialArtifacts::from_context(cx, trace, stop))
    }

    fn context(&self) -> FlowContext<'_> {
        match &self.cost {
            Some(cost) => {
                FlowContext::with_cost(self.graph, &self.target, &self.options, cost.clone())
            }
            None => FlowContext::new(self.graph, &self.target, &self.options),
        }
    }
}

/// The spec→cost prefix of one board: the family's single estimation.
/// Returns the estimated (or passed-through) cost model plus the prefix
/// trace — the evidence [`FamilyArtifacts::cost_estimations`] counts.
fn estimate_prefix(
    graph: &PartitioningGraph,
    target: &Target,
    options: &FlowOptions,
    cache: Option<&StageCache>,
    seed: Option<CostModel>,
) -> Result<(CostModel, FlowTrace), FlowError> {
    let engine = match cache {
        Some(cache) => Engine::standard().with_cache(cache.clone()),
        None => Engine::standard(),
    };
    let mut cx = match seed {
        Some(cost) => FlowContext::with_cost(graph, target, options, cost),
        None => FlowContext::new(graph, target, options),
    };
    let trace = engine.run_until(&mut cx, Some(ArtifactSlot::Cost))?;
    let cost = cx.cost.ok_or(FlowError::MissingArtifact("cost model"))?;
    Ok((cost, trace))
}

/// One complete flow over explicit inputs (the shared leg of `run` and
/// `run_family`).
fn run_one(
    graph: &PartitioningGraph,
    target: &Target,
    options: &FlowOptions,
    cache: Option<&StageCache>,
    cost: Option<CostModel>,
) -> Result<FlowArtifacts, FlowError> {
    let engine = match cache {
        Some(cache) => Engine::standard().with_cache(cache.clone()),
        None => Engine::standard(),
    };
    let mut cx = match cost {
        Some(cost) => FlowContext::with_cost(graph, target, options, cost),
        None => FlowContext::new(graph, target, options),
    };
    let trace = engine.run(&mut cx)?;
    FlowArtifacts::from_context(cx, trace)
}

/// `true` when `b` can be produced from a cost model estimated on `a`
/// via [`CostModel::retarget`]: identical processor/hardware inventories,
/// clocks and instruction-timing classes — everything the per-node
/// estimates read (budgets — CLB capacities, memory size — may differ,
/// the estimates do not depend on them).
fn retarget_compatible(a: &Target, b: &Target) -> bool {
    a.processors.len() == b.processors.len()
        && a.hw.len() == b.hw.len()
        && a.processors
            .iter()
            .zip(&b.processors)
            .all(|(x, y)| (x.clock_mhz - y.clock_mhz).abs() < f64::EPSILON && x.timing == y.timing)
        && a.hw
            .iter()
            .zip(&b.hw)
            .all(|(x, y)| (x.clock_mhz - y.clock_mhz).abs() < f64::EPSILON)
}

fn check_cost_compatible(cost: &CostModel, target: &Target) -> Result<(), FlowError> {
    if retarget_compatible(cost.target(), target) {
        Ok(())
    } else {
        Err(FlowError::Session(
            "with_cost: the seeded cost model was estimated for a board with a different \
             processor/hardware inventory, clocks or instruction-timing classes than the \
             session target; per-node estimates do not transfer — estimate a fresh model \
             (budget-only differences are retargeted automatically)"
                .to_string(),
        ))
    }
}

// ----------------------------------------------------------------------
// Partial artifacts.

/// What a partial flow ([`FlowSession::run_to`]) produced: the typed
/// artifact set of the executed prefix. Every accessor returns
/// [`FlowError::MissingArtifact`] for slots downstream of the stop
/// point, so consumers get a diagnosable error instead of an `Option`
/// dance or a panic.
#[derive(Debug, Clone)]
pub struct PartialArtifacts {
    graph: PartitioningGraph,
    target: Target,
    stop: ArtifactSlot,
    trace: FlowTrace,
    cost: Option<CostModel>,
    partition: Option<PartitionResult>,
    schedule: Option<StaticSchedule>,
    stg: Option<Stg>,
    stg_minimized: Option<Stg>,
    minimize_stats: Option<MinimizeStats>,
    memory_map: Option<MemoryMap>,
    hw_nodes: Option<Vec<NodeId>>,
    hls_designs: Option<Vec<HlsDesign>>,
    controller: Option<SystemController>,
    encoding: Option<StateEncoding>,
    netlist: Option<Netlist>,
    vhdl: Option<Vec<(String, String)>>,
    placements: Option<Vec<(Resource, Placement)>>,
    c_programs: Option<Vec<CProgram>>,
}

macro_rules! partial_accessor {
    ($(#[$doc:meta])* $name:ident, $field:ident, $ty:ty, $what:expr) => {
        $(#[$doc])*
        pub fn $name(&self) -> Result<&$ty, FlowError> {
            self.$field.as_ref().ok_or(FlowError::MissingArtifact($what))
        }
    };
}

impl PartialArtifacts {
    fn from_context(cx: FlowContext<'_>, trace: FlowTrace, stop: ArtifactSlot) -> PartialArtifacts {
        PartialArtifacts {
            graph: cx.graph.clone(),
            target: cx.target.clone(),
            stop,
            trace,
            cost: cx.cost,
            partition: cx.partition,
            schedule: cx.schedule,
            stg: cx.stg,
            stg_minimized: cx.stg_minimized,
            minimize_stats: cx.minimize_stats,
            memory_map: cx.memory_map,
            hw_nodes: cx.hw_nodes,
            hls_designs: cx.hls_designs,
            controller: cx.controller,
            encoding: cx.encoding,
            netlist: cx.netlist,
            vhdl: cx.vhdl,
            placements: cx.placements,
            c_programs: cx.c_programs,
        }
    }

    /// The input specification.
    #[must_use]
    pub fn graph(&self) -> &PartitioningGraph {
        &self.graph
    }

    /// The target board.
    #[must_use]
    pub fn target(&self) -> &Target {
        &self.target
    }

    /// The slot this partial run stopped after.
    #[must_use]
    pub fn stop(&self) -> ArtifactSlot {
        self.stop
    }

    /// The timing journal of the executed prefix.
    #[must_use]
    pub fn trace(&self) -> &FlowTrace {
        &self.trace
    }

    /// `true` when the prefix produced (or restored) `slot`.
    #[must_use]
    pub fn is_filled(&self, slot: ArtifactSlot) -> bool {
        match slot {
            ArtifactSlot::Cost => self.cost.is_some(),
            ArtifactSlot::Partition => self.partition.is_some(),
            ArtifactSlot::Schedule => self.schedule.is_some(),
            ArtifactSlot::Stg => self.stg.is_some(),
            ArtifactSlot::StgMinimized => self.stg_minimized.is_some(),
            ArtifactSlot::MinimizeStats => self.minimize_stats.is_some(),
            ArtifactSlot::MemoryMap => self.memory_map.is_some(),
            ArtifactSlot::HwNodes => self.hw_nodes.is_some(),
            ArtifactSlot::HlsDesigns => self.hls_designs.is_some(),
            ArtifactSlot::Controller => self.controller.is_some(),
            ArtifactSlot::Encoding => self.encoding.is_some(),
            ArtifactSlot::Netlist => self.netlist.is_some(),
            ArtifactSlot::Vhdl => self.vhdl.is_some(),
            ArtifactSlot::Placements => self.placements.is_some(),
            ArtifactSlot::CPrograms => self.c_programs.is_some(),
        }
    }

    partial_accessor!(
        /// The cost model, or [`FlowError::MissingArtifact`].
        ///
        /// # Errors
        /// [`FlowError::MissingArtifact`] when the prefix stopped short.
        cost, cost, CostModel, "cost model");
    partial_accessor!(
        /// The partitioning outcome.
        ///
        /// # Errors
        /// [`FlowError::MissingArtifact`] when the prefix stopped short.
        partition, partition, PartitionResult, "partition result");
    partial_accessor!(
        /// The static schedule.
        ///
        /// # Errors
        /// [`FlowError::MissingArtifact`] when the prefix stopped short.
        schedule, schedule, StaticSchedule, "static schedule");
    partial_accessor!(
        /// The raw STG.
        ///
        /// # Errors
        /// [`FlowError::MissingArtifact`] when the prefix stopped short.
        stg, stg, Stg, "STG");
    partial_accessor!(
        /// The minimized STG.
        ///
        /// # Errors
        /// [`FlowError::MissingArtifact`] when the prefix stopped short.
        stg_minimized, stg_minimized, Stg, "minimized STG");
    partial_accessor!(
        /// STG minimization statistics.
        ///
        /// # Errors
        /// [`FlowError::MissingArtifact`] when the prefix stopped short.
        minimize_stats, minimize_stats, MinimizeStats, "minimization stats");
    partial_accessor!(
        /// The communication memory map.
        ///
        /// # Errors
        /// [`FlowError::MissingArtifact`] when the prefix stopped short.
        memory_map, memory_map, MemoryMap, "memory map");
    partial_accessor!(
        /// Hardware-mapped function nodes, in graph order.
        ///
        /// # Errors
        /// [`FlowError::MissingArtifact`] when the prefix stopped short.
        hw_nodes, hw_nodes, Vec<NodeId>, "hardware node list");
    partial_accessor!(
        /// Full-effort HLS designs, parallel to `hw_nodes`.
        ///
        /// # Errors
        /// [`FlowError::MissingArtifact`] when the prefix stopped short.
        hls_designs, hls_designs, Vec<HlsDesign>, "HLS designs");
    partial_accessor!(
        /// The synthesized system controller.
        ///
        /// # Errors
        /// [`FlowError::MissingArtifact`] when the prefix stopped short.
        controller, controller, SystemController, "system controller");
    partial_accessor!(
        /// The controller state encoding.
        ///
        /// # Errors
        /// [`FlowError::MissingArtifact`] when the prefix stopped short.
        encoding, encoding, StateEncoding, "state encoding");
    partial_accessor!(
        /// The generated netlist.
        ///
        /// # Errors
        /// [`FlowError::MissingArtifact`] when the prefix stopped short.
        netlist, netlist, Netlist, "netlist");
    partial_accessor!(
        /// Emitted VHDL units `(file name, source)`.
        ///
        /// # Errors
        /// [`FlowError::MissingArtifact`] when the prefix stopped short.
        vhdl, vhdl, Vec<(String, String)>, "VHDL units");
    partial_accessor!(
        /// Per-device CLB placements.
        ///
        /// # Errors
        /// [`FlowError::MissingArtifact`] when the prefix stopped short.
        placements, placements, Vec<(Resource, Placement)>, "placements");
    partial_accessor!(
        /// Generated C programs.
        ///
        /// # Errors
        /// [`FlowError::MissingArtifact`] when the prefix stopped short.
        c_programs, c_programs, Vec<CProgram>, "C programs");
}

// ----------------------------------------------------------------------
// Family artifacts.

/// One artifact set spanning a board family: every board's complete
/// [`FlowArtifacts`], in the input order of
/// [`FlowSession::targets`], plus the comparative accessors the
/// multi-board workflow exists for.
#[derive(Debug, Clone)]
pub struct FamilyArtifacts {
    boards: Vec<FlowArtifacts>,
    /// Trace of the family's estimation prefix (spec→cost over board 0):
    /// the one place a family run may actually estimate.
    estimation: FlowTrace,
}

impl FamilyArtifacts {
    /// Every board's artifacts, in input order.
    #[must_use]
    pub fn boards(&self) -> &[FlowArtifacts] {
        &self.boards
    }

    /// Number of boards in the family.
    #[must_use]
    pub fn len(&self) -> usize {
        self.boards.len()
    }

    /// `true` for an empty family (never produced by
    /// [`FlowSession::run_family`], which requires a target).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.boards.is_empty()
    }

    /// The `i`-th board's artifacts (input order).
    #[must_use]
    pub fn get(&self, i: usize) -> Option<&FlowArtifacts> {
        self.boards.get(i)
    }

    /// Iterate the boards in input order.
    pub fn iter(&self) -> std::slice::Iter<'_, FlowArtifacts> {
        self.boards.iter()
    }

    /// Consume the family into the per-board artifact list.
    #[must_use]
    pub fn into_boards(self) -> Vec<FlowArtifacts> {
        self.boards
    }

    /// Index of the best board: lowest schedule makespan, ties broken by
    /// lowest total CLB usage (less hardware for the same speed), then by
    /// input order. Deterministic for every job count because the
    /// per-board artifacts are.
    #[must_use]
    pub fn best_index(&self) -> usize {
        (0..self.boards.len())
            .min_by_key(|&i| {
                let art = &self.boards[i];
                let clbs: u32 = art.partition.hw_area.iter().sum();
                (art.partition.makespan, clbs, i)
            })
            .unwrap_or(0)
    }

    /// The best board's artifacts (see
    /// [`best_index`](FamilyArtifacts::best_index)).
    ///
    /// # Panics
    ///
    /// Panics on an empty family, which
    /// [`FlowSession::run_family`] never produces.
    #[must_use]
    pub fn best(&self) -> &FlowArtifacts {
        &self.boards[self.best_index()]
    }

    /// The trace of the family's estimation prefix (spec→cost over
    /// board 0). Empty when the caller seeded a cost model (nothing had
    /// to run); `cost` appears as a cache hit when a shared cache
    /// already held the estimate.
    #[must_use]
    pub fn estimation_trace(&self) -> &FlowTrace {
        &self.estimation
    }

    /// How many times the family actually *executed* cost estimation:
    /// the estimation prefix plus any board whose `cost` stage ran for
    /// real (as opposed to a seeded pass-through or a cache restore).
    /// [`FlowSession::run_family`]'s contract is that this is at most
    /// 1 — the evidence lives in the recorded [`FlowTrace`]s, not in a
    /// self-reported counter.
    #[must_use]
    pub fn cost_estimations(&self) -> usize {
        let executed = |trace: &FlowTrace| {
            trace.records().iter().any(|r| {
                r.name == "cost" && matches!(r.cache, CacheOutcome::Uncached | CacheOutcome::Miss)
            })
        };
        usize::from(executed(&self.estimation))
            + self
                .boards
                .iter()
                .filter(|art| executed(&art.trace))
                .count()
    }

    /// Boards whose MILP partition was node-limit truncated.
    #[must_use]
    pub fn truncated_boards(&self) -> usize {
        self.boards
            .iter()
            .filter(|a| a.partition.optimality == cool_partition::Optimality::LimitReached)
            .count()
    }

    /// The comparative family report: one row per board (makespan,
    /// partition shape, per-FPGA CLB usage, optimality with the
    /// quantified gap for truncated solves), the best-board summary, and
    /// the shared-cost-model accounting.
    #[must_use]
    pub fn report(&self) -> String {
        let mut s = String::new();
        let design = self.boards.first().map_or("(empty)", |a| a.graph.name());
        s.push_str(&format!(
            "board family report — design `{design}`, {} board(s)\n",
            self.boards.len()
        ));
        let table = crate::TextTable::new(vec![
            crate::Col::right(3, ""),
            crate::Col::left(28, ""),
            crate::Col::right(6, ""),
            crate::Col::right(6, ""),
            crate::Col::right(10, ""),
            crate::Col::right(12, " "),
        ]);
        let header: Vec<String> = ["#", "board", "sw", "hw", "makespan", "CLBs"]
            .into_iter()
            .map(String::from)
            .collect();
        s.push_str(&table.row(&header, " partition"));
        for (i, art) in self.boards.iter().enumerate() {
            let budgets: Vec<String> = art
                .target
                .hw
                .iter()
                .map(|h| format!("{}/{}", h.name, h.clb_capacity))
                .collect();
            let used: Vec<String> = art
                .partition
                .hw_area
                .iter()
                .map(ToString::to_string)
                .collect();
            s.push_str(&table.row(
                &[
                    i.to_string(),
                    budgets.join("+"),
                    art.partition.software_nodes(&art.graph).to_string(),
                    art.partition.hardware_nodes(&art.graph).to_string(),
                    art.partition.makespan.to_string(),
                    used.join("+"),
                ],
                &format!(" {}", art.partition.optimality_label()),
            ));
        }
        let best = self.best_index();
        let best_art = &self.boards[best];
        s.push_str(&format!(
            "best board: #{best} (makespan {} cycles ≈ {:.2} µs, {} CLB(s) used)\n",
            best_art.partition.makespan,
            best_art.cost.cycles_to_us(best_art.partition.makespan),
            best_art.partition.hw_area.iter().sum::<u32>(),
        ));
        s.push_str(&format!(
            "cost model: estimated {} time(s) for {} board(s) (retargeted to the rest)\n",
            self.cost_estimations(),
            self.boards.len()
        ));
        let truncated = self.truncated_boards();
        if truncated > 0 {
            s.push_str(&format!(
                "warning: {truncated} board(s) carry node-limit-truncated MILP partitions\n"
            ));
        }
        s
    }
}

impl<'f> IntoIterator for &'f FamilyArtifacts {
    type Item = &'f FlowArtifacts;
    type IntoIter = std::slice::Iter<'f, FlowArtifacts>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for FamilyArtifacts {
    type Item = FlowArtifacts;
    type IntoIter = std::vec::IntoIter<FlowArtifacts>;

    fn into_iter(self) -> Self::IntoIter {
        self.boards.into_iter()
    }
}

// ----------------------------------------------------------------------
// Pareto sweeps.

/// Display label of the objective a sweep actually optimizes: the
/// flow-level override when set, otherwise whatever the configured
/// partitioner's own options declare.
fn declared_objective(options: &FlowOptions) -> String {
    match (&options.objective, &options.partitioner) {
        (Some(o), _) => o.to_string(),
        (None, Partitioner::Milp(m)) => m.objective.to_string(),
        (None, Partitioner::Heuristic(h)) => h.milp.objective.to_string(),
        (None, Partitioner::Genetic(g)) => g.objective.to_string(),
        (None, Partitioner::Fixed(_)) => "fixed".to_string(),
    }
}

/// One evaluated point of a [`FlowSession::pareto`] sweep.
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    /// The area budget this point was solved under.
    pub budget: BudgetConstraint,
    /// The full partitioning outcome (mapping, makespan, per-FPGA CLB
    /// usage, optimality claim and gap).
    pub partition: PartitionResult,
    /// The makespan in microseconds under the point's retargeted cost
    /// model.
    pub makespan_us: f64,
    /// Function nodes mapped to software.
    pub software_nodes: usize,
    /// Function nodes mapped to hardware.
    pub hardware_nodes: usize,
    /// `true` when another sweep point weakly dominates this one
    /// (no worse in both makespan and total CLB usage, strictly better
    /// in at least one). The non-dominated points are the front.
    pub dominated: bool,
    trace: FlowTrace,
}

impl ParetoPoint {
    fn from_partial(
        budget: BudgetConstraint,
        partial: PartialArtifacts,
    ) -> Result<ParetoPoint, FlowError> {
        let partition = partial.partition()?.clone();
        let makespan_us = partial.cost()?.cycles_to_us(partition.makespan);
        let software_nodes = partition.software_nodes(partial.graph());
        let hardware_nodes = partition.hardware_nodes(partial.graph());
        Ok(ParetoPoint {
            budget,
            partition,
            makespan_us,
            software_nodes,
            hardware_nodes,
            dominated: false,
            trace: partial.trace,
        })
    }

    /// Schedule makespan, system cycles.
    #[must_use]
    pub fn makespan(&self) -> u64 {
        self.partition.makespan
    }

    /// Total CLB usage across the point's hardware resources.
    #[must_use]
    pub fn total_clbs(&self) -> u32 {
        self.partition.hw_area.iter().sum()
    }

    /// Relative optimality gap of a node-limit-truncated MILP solve:
    /// `Some` exactly when the solver gave up with
    /// [`Optimality::LimitReached`], in which case the point's objective
    /// is only proven to be within `gap × 100` % of the true optimum —
    /// treat its position on the front accordingly.
    #[must_use]
    pub fn gap(&self) -> Option<f64> {
        self.partition.gap
    }

    /// `true` for a node-limit-truncated solve (see
    /// [`gap`](ParetoPoint::gap)).
    #[must_use]
    pub fn is_truncated(&self) -> bool {
        self.partition.optimality == Optimality::LimitReached
    }

    /// The timing journal of this point's spec→partition prefix.
    #[must_use]
    pub fn trace(&self) -> &FlowTrace {
        &self.trace
    }
}

/// Mark every point that is weakly dominated by another (minimizing
/// makespan and total CLB usage; duplicates do not dominate each other).
fn mark_dominated(points: &mut [ParetoPoint]) {
    let metrics: Vec<(u64, u32)> = points
        .iter()
        .map(|p| (p.makespan(), p.total_clbs()))
        .collect();
    for (i, p) in points.iter_mut().enumerate() {
        let (m, a) = metrics[i];
        p.dominated = metrics
            .iter()
            .enumerate()
            .any(|(j, &(mj, aj))| j != i && mj <= m && aj <= a && (mj < m || aj < a));
    }
}

/// The outcome of one [`FlowSession::pareto`] sweep: every evaluated
/// point in input (budget) order with its dominance flag, plus the
/// evidence of the sweep's single cost estimation.
#[derive(Debug, Clone)]
pub struct ParetoFront {
    design: String,
    objective: String,
    points: Vec<ParetoPoint>,
    estimation: FlowTrace,
}

impl ParetoFront {
    /// Every evaluated point, in input (budget) order.
    #[must_use]
    pub fn points(&self) -> &[ParetoPoint] {
        &self.points
    }

    /// Number of evaluated points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` for an empty sweep (never produced by
    /// [`FlowSession::pareto`], which requires a budget).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The dominance-filtered front: every non-dominated point, in
    /// input order.
    #[must_use]
    pub fn non_dominated(&self) -> Vec<&ParetoPoint> {
        self.points.iter().filter(|p| !p.dominated).collect()
    }

    /// The objective label the sweep optimized (e.g. `makespan`,
    /// `blend:1,0.3,0.05`).
    #[must_use]
    pub fn objective(&self) -> &str {
        &self.objective
    }

    /// The trace of the sweep's estimation prefix (spec→cost over the
    /// first point's board).
    #[must_use]
    pub fn estimation_trace(&self) -> &FlowTrace {
        &self.estimation
    }

    /// How many times the sweep actually *executed* cost estimation —
    /// the contract is at most 1, evidenced by the recorded traces:
    /// every point's `cost` stage must appear as
    /// [`CacheOutcome::Seeded`] (or a cache restore), never as an
    /// execution.
    #[must_use]
    pub fn cost_estimations(&self) -> usize {
        let executed = |trace: &FlowTrace| {
            trace.records().iter().any(|r| {
                r.name == "cost" && matches!(r.cache, CacheOutcome::Uncached | CacheOutcome::Miss)
            })
        };
        usize::from(executed(&self.estimation))
            + self.points.iter().filter(|p| executed(&p.trace)).count()
    }

    /// Stages that actually executed across the whole sweep (estimation
    /// prefix + every point): cache restores and seeded pass-throughs
    /// do not count, so a fully warm re-run reports 0.
    #[must_use]
    pub fn computed_stages(&self) -> usize {
        let computed = |trace: &FlowTrace| {
            trace
                .records()
                .iter()
                .filter(|r| matches!(r.cache, CacheOutcome::Uncached | CacheOutcome::Miss))
                .count()
        };
        computed(&self.estimation)
            + self
                .points
                .iter()
                .map(|p| computed(&p.trace))
                .sum::<usize>()
    }

    /// Points whose MILP partition was node-limit truncated.
    #[must_use]
    pub fn truncated_points(&self) -> usize {
        self.points.iter().filter(|p| p.is_truncated()).count()
    }

    /// The comparative sweep report: one row per point (budget,
    /// partition shape, makespan, CLB usage, front membership,
    /// optimality with the quantified gap for truncated solves) plus
    /// the sweep accounting the CI smoke greps for.
    #[must_use]
    pub fn report(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "pareto sweep — design `{}`, objective {}, {} point(s)\n",
            self.design,
            self.objective,
            self.points.len()
        ));
        let table = crate::TextTable::new(vec![
            crate::Col::right(3, ""),
            crate::Col::right(8, ""),
            crate::Col::right(6, ""),
            crate::Col::right(6, ""),
            crate::Col::right(10, ""),
            crate::Col::right(8, ""),
            crate::Col::right(5, " "),
        ]);
        let header: Vec<String> = ["#", "budget", "sw", "hw", "makespan", "CLBs", "front"]
            .into_iter()
            .map(String::from)
            .collect();
        s.push_str(&table.row(&header, " optimality"));
        for (i, p) in self.points.iter().enumerate() {
            s.push_str(&table.row(
                &[
                    i.to_string(),
                    p.budget.to_string(),
                    p.software_nodes.to_string(),
                    p.hardware_nodes.to_string(),
                    p.makespan().to_string(),
                    p.total_clbs().to_string(),
                    if p.dominated { "-" } else { "*" }.to_string(),
                ],
                &format!(" {}", p.partition.optimality_label()),
            ));
        }
        s.push_str(&format!(
            "pareto sweep: {} point(s), {} non-dominated, {} stage(s) computed\n",
            self.points.len(),
            self.non_dominated().len(),
            self.computed_stages()
        ));
        s.push_str(&format!(
            "cost model: estimated {} time(s) for {} point(s) (retargeted to the rest)\n",
            self.cost_estimations(),
            self.points.len()
        ));
        let truncated = self.truncated_points();
        if truncated > 0 {
            s.push_str(&format!(
                "warning: {truncated} point(s) carry node-limit-truncated MILP partitions — \
                 their optimality gap bounds how far off the front they may sit\n"
            ));
        }
        s
    }

    /// The sweep as CSV (one row per point, input order), for plotting.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut s = String::from(
            "budget,makespan_cycles,makespan_us,clbs,software_nodes,hardware_nodes,optimality,gap,non_dominated\n",
        );
        for p in &self.points {
            s.push_str(&format!(
                "{},{},{:.3},{},{},{},{},{},{}\n",
                p.budget.max_clbs_per_fpga,
                p.makespan(),
                p.makespan_us,
                p.total_clbs(),
                p.software_nodes,
                p.hardware_nodes,
                p.partition.optimality,
                p.gap().map(|g| format!("{g:.6}")).unwrap_or_default(),
                !p.dominated
            ));
        }
        s
    }
}
