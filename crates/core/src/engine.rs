//! The stage-graph flow engine and the nine standard stages.
//!
//! [`Engine::standard`] wires the paper's design flow as a linear graph
//! of [`Stage`]s over a shared [`FlowContext`]:
//!
//! ```text
//! spec → cost → partition → schedule → stg → hls → rtl → codegen → sim-prep
//! ```
//!
//! [`Engine::run`] executes the stages in order, timing each one into a
//! [`FlowTrace`]. The compute-dominant stages fan work out across scoped
//! worker threads when `FlowOptions::jobs > 1`:
//!
//! * `hls` — one [`cool_hls::synthesize`] call per hardware node
//!   ([`cool_hls::synthesize_many`]);
//! * `stg` — the per-state signature rounds of STG minimization
//!   ([`cool_stg::minimize_jobs`]);
//! * `rtl` — the FSM state-encoding search streams
//!   ([`cool_rtl::encoding::optimize_encoding_jobs`]) and the
//!   multi-start CLB placement chains
//!   ([`cool_rtl::place::anneal_multistart`]).
//!
//! All three are deterministic: artifacts are byte-identical for every
//! `jobs` value; only wall-clock changes.

use std::time::Instant;

use cool_ir::hash::{ContentHash, ContentHasher};
use cool_ir::Resource;
use cool_partition::PartitionResult;
use cool_rtl::place::Placement;
use cool_rtl::SystemController;

use crate::cache::{ArtifactDelta, ArtifactFlags, StageCache, StageKey};
use crate::stage::{FlowContext, Stage};
use crate::timing::{CacheOutcome, FlowTrace};
use crate::{FlowError, Partitioner};

/// A linear pipeline of named stages, optionally backed by a
/// content-addressed [`StageCache`].
pub struct Engine {
    stages: Vec<Box<dyn Stage>>,
    cache: Option<StageCache>,
}

impl Engine {
    /// Build an engine from an explicit stage list (for tests and custom
    /// flows; most callers want [`Engine::standard`]).
    #[must_use]
    pub fn new(stages: Vec<Box<dyn Stage>>) -> Engine {
        Engine {
            stages,
            cache: None,
        }
    }

    /// Attach a stage cache. The cache is consulted before every stage
    /// whose [`Stage::cache_key`] is `Some`: on a key match the stage is
    /// skipped and its recorded artifacts are restored; on a miss the
    /// stage runs and its artifact delta is stored. Caches are cheaply
    /// cloneable and may be shared across engines and threads (this is
    /// how [`crate::run_flow_sweep`] reuses unchanged flow prefixes
    /// across candidates).
    #[must_use]
    pub fn with_cache(mut self, cache: StageCache) -> Engine {
        self.cache = Some(cache);
        self
    }

    /// The attached cache, if any.
    #[must_use]
    pub fn cache(&self) -> Option<&StageCache> {
        self.cache.as_ref()
    }

    /// The paper's complete design flow, one stage per box of Figure 1.
    #[must_use]
    pub fn standard() -> Engine {
        Engine::new(vec![
            Box::new(SpecStage),
            Box::new(CostStage),
            Box::new(PartitionStage),
            Box::new(ScheduleStage),
            Box::new(StgStage),
            Box::new(HlsStage),
            Box::new(RtlStage),
            Box::new(CodegenStage),
            Box::new(SimPrepStage),
        ])
    }

    /// The stage names, in execution order.
    #[must_use]
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Run every stage in order over `cx`, timing each into the returned
    /// trace. With an attached cache, stages whose chained content key is
    /// already cached are skipped and their artifacts restored — the
    /// resulting context is byte-identical to an uncached run, because
    /// every cacheable stage is deterministic for equal inputs.
    ///
    /// # Errors
    ///
    /// The first failing stage's error; `cx` keeps all artifacts produced
    /// before the failure.
    pub fn run(&self, cx: &mut FlowContext<'_>) -> Result<FlowTrace, FlowError> {
        let mut trace = FlowTrace::new();
        // The chained key: a digest of the input graph plus, per executed
        // stage, its name and its `cache_key` digest. By induction the
        // chain covers everything each stage can read (graph, upstream
        // artifacts via their producers' links, and the stage's own
        // declared inputs), so equal chains imply equal outputs. A stage
        // returning `None` breaks the chain for the rest of the run.
        let mut chain: Option<StageKey> = self.cache.as_ref().map(|_| {
            let mut h = ContentHasher::new();
            cx.graph.content_hash(&mut h);
            h.finish()
        });
        for stage in &self.stages {
            let key = match (chain, self.cache.as_ref()) {
                (Some(prev), Some(_)) => match stage.cache_key(cx) {
                    Some(local) => {
                        let mut h = ContentHasher::new();
                        h.write_u128(prev);
                        h.write_str(stage.name());
                        h.write_u128(local);
                        chain = Some(h.finish());
                        chain
                    }
                    None => {
                        chain = None;
                        None
                    }
                },
                _ => None,
            };
            if let (Some(key), Some(cache)) = (key, self.cache.as_ref()) {
                let t0 = Instant::now();
                if let Some((delta, saved)) = cache.lookup(key) {
                    delta.apply(cx);
                    trace.push_outcome(stage.name(), t0.elapsed(), CacheOutcome::Hit { saved });
                    continue;
                }
                let before = ArtifactFlags::of(cx);
                let t0 = Instant::now();
                stage.run(cx)?;
                let elapsed = t0.elapsed();
                cache.insert(key, ArtifactDelta::capture(cx, before), elapsed);
                trace.push_outcome(stage.name(), elapsed, CacheOutcome::Miss);
            } else {
                let t0 = Instant::now();
                stage.run(cx)?;
                trace.push(stage.name(), t0.elapsed());
            }
        }
        Ok(trace)
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("stages", &self.stage_names())
            .finish()
    }
}

/// `spec` — validate the input specification graph.
pub struct SpecStage;

impl Stage for SpecStage {
    fn name(&self) -> &'static str {
        "spec"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<(), FlowError> {
        cx.graph.validate()?;
        Ok(())
    }

    /// Reads only the graph (already in the engine's chain seed), so
    /// candidates that differ in target or options still share this key.
    fn cache_key(&self, _cx: &FlowContext<'_>) -> Option<u128> {
        Some(0)
    }
}

/// `cost` — software timings plus quick per-node HLS estimates. A no-op
/// when the context was pre-seeded via [`FlowContext::with_cost`].
pub struct CostStage;

impl Stage for CostStage {
    fn name(&self) -> &'static str {
        "cost"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<(), FlowError> {
        if cx.cost.is_none() {
            cx.cost = Some(cool_cost::CostModel::new(cx.graph, cx.target));
        }
        Ok(())
    }

    /// The target (clocks, memory, bus — and budgets, which the embedded
    /// target copy exposes to consumers) plus, when the context was
    /// pre-seeded via [`FlowContext::with_cost`], the full content of the
    /// seeded model: a pre-seeded run must never collide with a computed
    /// one unless the resulting context is identical.
    fn cache_key(&self, cx: &FlowContext<'_>) -> Option<u128> {
        let mut h = ContentHasher::new();
        cx.target.content_hash(&mut h);
        cx.cost.content_hash(&mut h);
        Some(h.finish())
    }
}

/// `partition` — hardware/software partitioning with the configured
/// algorithm.
pub struct PartitionStage;

impl Stage for PartitionStage {
    fn name(&self) -> &'static str {
        "partition"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<(), FlowError> {
        let cost = cx.cost()?;
        let partition = match &cx.options.partitioner {
            Partitioner::Milp(o) => cool_partition::milp::partition(cx.graph, cost, o)?,
            Partitioner::Heuristic(o) => cool_partition::heuristic::partition(cx.graph, cost, o)?,
            Partitioner::Genetic(o) => cool_partition::genetic::partition(cx.graph, cost, o)?,
            Partitioner::Fixed(mapping) => {
                let (makespan, hw_area) =
                    cool_partition::evaluate(cx.graph, mapping, cost, cx.options.scheme)?;
                PartitionResult {
                    mapping: mapping.clone(),
                    algorithm: cool_partition::Algorithm::Milp,
                    makespan,
                    hw_area,
                    work_units: 0,
                }
            }
        };
        cx.partition = Some(partition);
        Ok(())
    }

    /// The partitioner configuration (including a fixed mapping, if any)
    /// and the flow's communication scheme; graph, cost model and target
    /// arrive through the chain.
    fn cache_key(&self, cx: &FlowContext<'_>) -> Option<u128> {
        let mut h = ContentHasher::new();
        cx.options.partitioner.content_hash(&mut h);
        cx.options.scheme.content_hash(&mut h);
        Some(h.finish())
    }
}

/// `schedule` — static list scheduling, verified against the mapping.
pub struct ScheduleStage;

impl Stage for ScheduleStage {
    fn name(&self) -> &'static str {
        "schedule"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<(), FlowError> {
        let cost = cx.cost()?;
        let mapping = &cx.partition()?.mapping;
        let schedule = cool_schedule::schedule(cx.graph, mapping, cost, cx.options.scheme)?;
        schedule
            .verify(cx.graph, mapping)
            .map_err(FlowError::Consistency)?;
        cx.schedule = Some(schedule);
        Ok(())
    }

    /// Only the communication scheme; mapping and costs are chained.
    fn cache_key(&self, cx: &FlowContext<'_>) -> Option<u128> {
        let mut h = ContentHasher::new();
        cx.options.scheme.content_hash(&mut h);
        Some(h.finish())
    }
}

/// `stg` — co-synthesis core: STG generation, minimization (parallel
/// refinement rounds under `jobs`), memory allocation.
pub struct StgStage;

impl Stage for StgStage {
    fn name(&self) -> &'static str {
        "stg"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<(), FlowError> {
        let mapping = &cx.partition()?.mapping;
        let schedule = cx.schedule()?;
        let stg = cool_stg::generate(cx.graph, mapping, schedule);
        stg.verify().map_err(FlowError::Consistency)?;
        let (stg_minimized, minimize_stats) = cool_stg::minimize_jobs(&stg, cx.options.jobs);
        stg_minimized.verify().map_err(FlowError::Consistency)?;
        let memory_map = if cx.options.packed_memory {
            cool_stg::allocate_memory_packed(
                cx.graph,
                mapping,
                schedule,
                &cx.target.memory,
                cx.target.bus.width_bits,
            )?
        } else {
            cool_stg::allocate_memory(
                cx.graph,
                mapping,
                &cx.target.memory,
                cx.target.bus.width_bits,
            )?
        };
        cx.stg = Some(stg);
        cx.stg_minimized = Some(stg_minimized);
        cx.minimize_stats = Some(minimize_stats);
        cx.memory_map = Some(memory_map);
        Ok(())
    }

    /// Only the allocator choice; the shared memory and bus geometry it
    /// reads are part of the target, which is chained via `cost`.
    fn cache_key(&self, cx: &FlowContext<'_>) -> Option<u128> {
        let mut h = ContentHasher::new();
        h.write_bool(cx.options.packed_memory);
        Some(h.finish())
    }
}

/// `hls` — full-effort hardware synthesis of every hardware-mapped node,
/// fanned out across `jobs` scoped worker threads. This is the stage the
/// paper measures at > 90 % of design time.
pub struct HlsStage;

impl Stage for HlsStage {
    fn name(&self) -> &'static str {
        "hls"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<(), FlowError> {
        let mapping = &cx.partition()?.mapping;
        let hw_nodes: Vec<cool_ir::NodeId> = cx
            .graph
            .function_nodes()
            .into_iter()
            .filter(|&n| mapping.resource(n).is_hardware())
            .collect();
        let mut named = Vec::with_capacity(hw_nodes.len());
        for &n in &hw_nodes {
            let node = cx.graph.node(n)?;
            named.push((node.name(), node.behavior()));
        }
        let hls_designs = cool_hls::synthesize_many(&named, &cx.options.hls, cx.options.jobs);
        cx.hw_nodes = Some(hw_nodes);
        cx.hls_designs = Some(hls_designs);
        Ok(())
    }

    /// The full-effort synthesis options (`jobs` excluded: the per-node
    /// fan-out never changes a generated byte).
    fn cache_key(&self, cx: &FlowContext<'_>) -> Option<u128> {
        let mut h = ContentHasher::new();
        cx.options.hls.content_hash(&mut h);
        Some(h.finish())
    }
}

/// `rtl` — system controller + encoding search, netlist, all VHDL units,
/// and the per-device CLB placement (encoding streams and placement
/// chains parallel under `jobs`).
pub struct RtlStage;

impl Stage for RtlStage {
    fn name(&self) -> &'static str {
        "rtl"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<(), FlowError> {
        let mapping = &cx.partition()?.mapping;
        let schedule = cx.schedule()?;
        let memory_map = cx.memory_map()?;
        let hw_nodes = cx.hw_nodes()?;
        let hls_designs = cx.hls_designs()?;
        let graph = cx.graph;
        let target = cx.target;

        let controller = SystemController::from_stg(cx.stg_minimized()?.clone(), graph);
        let encoding = cool_rtl::encoding::optimize_encoding_jobs(
            controller.stg(),
            cx.options.encoding_effort,
            cx.options.jobs,
        );
        let netlist = cool_rtl::build_netlist(graph, mapping, target);
        netlist.verify().map_err(FlowError::Consistency)?;

        let mut vhdl = Vec::new();
        vhdl.push((
            "system_controller.vhd".to_string(),
            cool_rtl::vhdl::emit_system_controller(&controller),
        ));
        let masters = netlist.count_kind(|k| {
            matches!(
                k,
                cool_rtl::ComponentKind::Processor(_)
                    | cool_rtl::ComponentKind::DatapathController(_)
                    | cool_rtl::ComponentKind::IoController
            )
        });
        vhdl.push((
            "bus_arbiter.vhd".to_string(),
            cool_rtl::vhdl::emit_bus_arbiter(masters),
        ));
        vhdl.push((
            "io_controller.vhd".to_string(),
            cool_rtl::vhdl::emit_io_controller(
                graph.primary_inputs().len().max(1),
                graph.primary_outputs().len().max(1),
                target.bus.width_bits,
            ),
        ));
        for (i, &n) in hw_nodes.iter().enumerate() {
            let node = graph.node(n)?;
            vhdl.push((
                format!("hw_{}.vhd", node.name()),
                cool_rtl::vhdl::emit_hw_block(graph, n, hls_designs[i].latency_cycles),
            ));
        }
        // One datapath controller per FPGA in use: sequences the device's
        // shared-memory transactions in schedule order.
        for h in 0..target.hw.len() {
            let res = Resource::Hardware(h);
            if !hw_nodes.iter().any(|&n| mapping.resource(n) == res) {
                continue;
            }
            let mut transfers: Vec<(u64, cool_rtl::vhdl::BusTransfer)> = Vec::new();
            for cell in memory_map.cells() {
                let e = graph.edge(cell.edge)?;
                if mapping.resource(e.src) == res {
                    transfers.push((
                        schedule.slot(e.src).finish,
                        cool_rtl::vhdl::BusTransfer {
                            address: cell.address,
                            write: true,
                        },
                    ));
                }
                if mapping.resource(e.dst) == res {
                    transfers.push((
                        schedule.slot(e.dst).start,
                        cool_rtl::vhdl::BusTransfer {
                            address: cell.address,
                            write: false,
                        },
                    ));
                }
            }
            transfers.sort_by_key(|&(t, x)| (t, x.address, x.write));
            let ordered: Vec<cool_rtl::vhdl::BusTransfer> =
                transfers.into_iter().map(|(_, x)| x).collect();
            let name = target.resource_name(res).to_string();
            vhdl.push((
                format!("dpctl_{name}.vhd"),
                cool_rtl::vhdl::emit_datapath_controller(&name, &ordered, target.bus.width_bits),
            ));
        }
        vhdl.push((
            format!("{}_top.vhd", graph.name()),
            cool_rtl::vhdl::emit_toplevel(&netlist, graph.name()),
        ));
        for (name, unit) in &vhdl {
            cool_rtl::vhdl::check_well_formed(unit)
                .map_err(|e| FlowError::Consistency(format!("{name}: {e}")))?;
        }

        // Xilinx implementation stand-in: anneal a CLB placement per
        // device. The system controller shares the first FPGA with its
        // blocks, every other device hosts its blocks plus a datapath
        // controller. Each device runs a deterministic multi-start anneal
        // whose chains fan out across workers without affecting the
        // result.
        let mut problems: Vec<(Resource, cool_rtl::place::PlacementProblem, u64)> = Vec::new();
        for h in 0..target.hw.len() {
            let block_clbs: Vec<u32> = hw_nodes
                .iter()
                .zip(hls_designs)
                .filter(|(&n, _)| mapping.resource(n) == Resource::Hardware(h))
                .map(|(_, d)| d.area_clbs)
                .collect();
            if block_clbs.is_empty() && h > 0 {
                continue;
            }
            let blocks_total: u32 = block_clbs.iter().sum();
            let wanted_ctrl = if h == 0 {
                cool_hls::area::fsm_clbs(
                    controller.stg().state_count(),
                    graph.function_nodes().len(),
                )
            } else {
                8 // datapath controller
            };
            let grid = (14u16, 14u16); // XC4005 CLB array
            let capacity = u32::from(grid.0) * u32::from(grid.1);
            let ctrl_clbs = wanted_ctrl
                .min(capacity.saturating_sub(blocks_total))
                .max(1);
            let problem = cool_rtl::place::PlacementProblem::for_device(
                &block_clbs,
                ctrl_clbs,
                grid.0,
                grid.1,
            );
            if problem.fits() {
                problems.push((Resource::Hardware(h), problem, 0x5eed + h as u64));
            }
        }
        let placements: Vec<(Resource, Placement)> = problems
            .iter()
            .map(|(res, problem, seed)| {
                (
                    *res,
                    cool_rtl::place::anneal_multistart(
                        problem,
                        cx.options.placement_effort,
                        *seed,
                        cx.options.jobs,
                    ),
                )
            })
            .collect();

        cx.controller = Some(controller);
        cx.encoding = Some(encoding);
        cx.netlist = Some(netlist);
        cx.vhdl = Some(vhdl);
        cx.placements = Some(placements);
        Ok(())
    }

    /// Encoding-search and placement effort knobs; everything else this
    /// stage reads (target, mapping, schedule, memory map, HLS designs)
    /// is chained.
    fn cache_key(&self, cx: &FlowContext<'_>) -> Option<u128> {
        let mut h = ContentHasher::new();
        h.write_u32(cx.options.encoding_effort);
        h.write_u32(cx.options.placement_effort);
        Some(h.finish())
    }
}

/// `codegen` — C program generation for every software partition.
pub struct CodegenStage;

impl Stage for CodegenStage {
    fn name(&self) -> &'static str {
        "codegen"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<(), FlowError> {
        let mapping = &cx.partition()?.mapping;
        let c_programs =
            cool_codegen::emit_programs(cx.graph, mapping, cx.schedule()?, cx.memory_map()?);
        for p in &c_programs {
            cool_codegen::check_c_structure(&p.source)
                .map_err(|e| FlowError::Consistency(format!("{}: {e}", p.file_name)))?;
        }
        cx.c_programs = Some(c_programs);
        Ok(())
    }

    /// Reads chained artifacts only.
    fn cache_key(&self, _cx: &FlowContext<'_>) -> Option<u128> {
        Some(0)
    }
}

/// `sim-prep` — validate that the produced artifact set is complete and
/// wires up into a simulator, so `FlowArtifacts::simulate` cannot fail on
/// missing pieces later.
pub struct SimPrepStage;

impl Stage for SimPrepStage {
    fn name(&self) -> &'static str {
        "sim-prep"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<(), FlowError> {
        let sim = cool_sim::Simulator::new(
            cx.graph,
            cx.mapping()?,
            cx.schedule()?,
            cx.memory_map()?,
            cx.cost()?,
            cx.options.scheme,
        );
        let _ = sim;
        // Every remaining artifact slot the simulator does not touch —
        // the full set `FlowArtifacts::from_context` will demand, so a
        // custom engine that skipped a producer fails here, inside a
        // named stage, rather than after the run.
        cx.stg_minimized()?;
        cx.controller()?;
        cx.netlist()?;
        cx.hw_nodes()?;
        cx.hls_designs()?;
        if cx.stg.is_none() {
            return Err(FlowError::MissingArtifact("STG"));
        }
        if cx.minimize_stats.is_none() {
            return Err(FlowError::MissingArtifact("minimization stats"));
        }
        if cx.encoding.is_none() {
            return Err(FlowError::MissingArtifact("state encoding"));
        }
        if cx.placements.is_none() {
            return Err(FlowError::MissingArtifact("placements"));
        }
        if cx.vhdl.is_none() {
            return Err(FlowError::MissingArtifact("VHDL units"));
        }
        if cx.c_programs.is_none() {
            return Err(FlowError::MissingArtifact("C programs"));
        }
        Ok(())
    }

    /// Validation only; every input (including the scheme the simulator
    /// is built with) is chained.
    fn cache_key(&self, _cx: &FlowContext<'_>) -> Option<u128> {
        Some(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowOptions;
    use cool_ir::Target;
    use cool_spec::workloads;

    #[test]
    fn standard_engine_stage_order_matches_paper_flow() {
        assert_eq!(
            Engine::standard().stage_names(),
            vec![
                "spec",
                "cost",
                "partition",
                "schedule",
                "stg",
                "hls",
                "rtl",
                "codegen",
                "sim-prep"
            ]
        );
    }

    #[test]
    fn trace_covers_every_stage_in_order() {
        let g = workloads::equalizer(2);
        let target = Target::fuzzy_board();
        let options = FlowOptions::quick();
        let engine = Engine::standard();
        let mut cx = FlowContext::new(&g, &target, &options);
        let trace = engine.run(&mut cx).unwrap();
        assert_eq!(trace.stage_names(), engine.stage_names());
        assert!(trace.total() > std::time::Duration::ZERO);
    }

    #[test]
    fn misordered_engine_reports_missing_artifact() {
        let g = workloads::equalizer(2);
        let target = Target::fuzzy_board();
        let options = FlowOptions::quick();
        // Scheduling before partitioning must fail cleanly.
        let engine = Engine::new(vec![
            Box::new(SpecStage),
            Box::new(CostStage),
            Box::new(ScheduleStage),
        ]);
        let mut cx = FlowContext::new(&g, &target, &options);
        let err = engine.run(&mut cx).unwrap_err();
        assert!(matches!(err, FlowError::MissingArtifact(_)), "{err}");
    }
}
