//! The stage-graph flow engine and the nine standard stages.
//!
//! [`Engine::standard`] wires the paper's design flow as a linear graph
//! of [`Stage`]s over a shared [`FlowContext`]:
//!
//! ```text
//! spec → cost → partition → schedule → stg → hls → rtl → codegen → sim-prep
//! ```
//!
//! [`Engine::run`] executes the stages in order, timing each one into a
//! [`FlowTrace`]. The compute-dominant stages fan work out across scoped
//! worker threads when `FlowOptions::jobs > 1`:
//!
//! * `hls` — one [`cool_hls::synthesize`] call per hardware node
//!   ([`cool_hls::synthesize_many`]);
//! * `stg` — the per-state signature rounds of STG minimization
//!   ([`cool_stg::minimize_jobs`]);
//! * `rtl` — the FSM state-encoding search streams
//!   ([`cool_rtl::encoding::optimize_encoding_jobs`]) and the
//!   multi-start CLB placement chains
//!   ([`cool_rtl::place::anneal_multistart`]).
//!
//! All three are deterministic: artifacts are byte-identical for every
//! `jobs` value; only wall-clock changes.

use std::time::Instant;

use cool_ir::hash::{ContentHash, ContentHasher};
use cool_ir::Resource;
use cool_partition::PartitionResult;
use cool_rtl::place::Placement;
use cool_rtl::SystemController;

use crate::cache::{
    self, ArtifactDelta, ArtifactFlags, ArtifactSlot, NodeArtifact, SlotDigests, StageCache,
    StageKey,
};
use crate::stage::{FlowContext, Stage};
use crate::timing::{CacheOutcome, FlowTrace, NodeDelta};
use crate::{FlowError, Partitioner};

/// Version tag folded into every stage key. Bump whenever the key
/// construction changes shape, so caches populated by an older engine
/// can never alias new keys.
const KEY_SCHEME: &str = "cool-stage-key/dag-v1";

/// Version tag for the `stg` stage's node-level keys (one per-node STG
/// fragment). A fragment is a pure function of the node id and its
/// mapped resource, so that is the entire key. Bump on any change to
/// the fragment shape or the key construction.
pub const STG_NODE_KEY_SCHEME: &str = "cool-node-key/stg-v1";

/// Version tag for the `rtl` stage's node-level keys (one VHDL unit per
/// hardware node). [`cool_rtl::vhdl::emit_hw_block`] reads exactly the
/// node's name, its behavior, and the HLS latency, so those three make
/// up the key. Bump on any change to the emitter's input set or the key
/// construction.
pub const RTL_NODE_KEY_SCHEME: &str = "cool-node-key/rtl-vhdl-v1";

/// Node-level key for one node's STG fragment.
#[must_use]
fn stg_node_key(node: cool_ir::NodeId, resource: Resource) -> u128 {
    let mut h = ContentHasher::new();
    h.write_str(STG_NODE_KEY_SCHEME);
    node.content_hash(&mut h);
    resource.content_hash(&mut h);
    h.finish()
}

/// Node-level key for one hardware node's emitted VHDL unit.
#[must_use]
fn rtl_node_key(name: &str, behavior: &cool_ir::Behavior, latency: u64) -> u128 {
    let mut h = ContentHasher::new();
    h.write_str(RTL_NODE_KEY_SCHEME);
    h.write_str(name);
    behavior.content_hash(&mut h);
    h.write_u64(latency);
    h.finish()
}

/// Remove and return the node delta a stage deposited for itself, if
/// any. Stages tag their deltas with their own name, so a custom stage
/// list never mis-attributes one stage's node activity to another.
fn take_node_delta(cx: &mut FlowContext<'_>, name: &'static str) -> Option<NodeDelta> {
    let i = cx.node_deltas.iter().position(|(n, _)| *n == name)?;
    Some(cx.node_deltas.remove(i).1)
}

/// A linear pipeline of named stages, optionally backed by a
/// content-addressed [`StageCache`].
pub struct Engine {
    stages: Vec<Box<dyn Stage>>,
    cache: Option<StageCache>,
}

impl Engine {
    /// Build an engine from an explicit stage list (for tests and custom
    /// flows; most callers want [`Engine::standard`]).
    #[must_use]
    pub fn new(stages: Vec<Box<dyn Stage>>) -> Engine {
        Engine {
            stages,
            cache: None,
        }
    }

    /// Attach a stage cache. The cache is consulted before every stage
    /// whose [`Stage::cache_key`] is `Some`: on a key match the stage is
    /// skipped and its recorded artifacts are restored; on a miss the
    /// stage runs and its artifact delta is stored. Caches are cheaply
    /// cloneable and may be shared across engines and threads (this is
    /// how concurrent [`crate::FlowSession`]s over one
    /// [`StageCache`] reuse each other's unchanged flow prefixes).
    #[must_use]
    pub fn with_cache(mut self, cache: StageCache) -> Engine {
        self.cache = Some(cache);
        self
    }

    /// The attached cache, if any.
    #[must_use]
    pub fn cache(&self) -> Option<&StageCache> {
        self.cache.as_ref()
    }

    /// The paper's complete design flow, one stage per box of Figure 1.
    #[must_use]
    pub fn standard() -> Engine {
        Engine::new(vec![
            Box::new(SpecStage),
            Box::new(CostStage),
            Box::new(PartitionStage),
            Box::new(ScheduleStage),
            Box::new(StgStage),
            Box::new(HlsStage),
            Box::new(RtlStage),
            Box::new(CodegenStage),
            Box::new(SimPrepStage),
        ])
    }

    /// The stage names, in execution order.
    #[must_use]
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Run every stage in order over `cx`, timing each into the returned
    /// trace. With an attached cache, stages whose content key is already
    /// cached (in memory or on disk) are skipped and their artifacts
    /// restored — the resulting context is byte-identical to an uncached
    /// run, because every cacheable stage is deterministic for equal
    /// inputs.
    ///
    /// # Cache keys
    ///
    /// Stage keys form a dependency DAG, not a chain: each stage is keyed
    /// on a digest of the input graph, the stage's own
    /// [`Stage::cache_key`] (its target/option inputs), and the content
    /// digests of exactly the artifact slots it declares in
    /// [`Stage::reads`]. Equal keys therefore imply equal inputs, and —
    /// by the determinism contract — equal outputs; while an input that
    /// only one stage reads (say, an `hls`-only option) re-runs just
    /// that stage and the stages whose *read artifacts* actually change.
    /// The engine maintains the slot digests incrementally: computed from
    /// the artifacts after each executed stage, restored from the cache
    /// entry on each hit.
    ///
    /// # Errors
    ///
    /// The first failing stage's error; `cx` keeps all artifacts produced
    /// before the failure.
    pub fn run(&self, cx: &mut FlowContext<'_>) -> Result<FlowTrace, FlowError> {
        self.run_until(cx, None)
    }

    /// [`Engine::run`], optionally stopping once the `stop_after`
    /// artifact slot is filled: the prefix of the flow up to and
    /// including the stage that produces the requested artifact, skipped
    /// and restored from the cache exactly like a full run. This is the
    /// engine seam behind [`crate::FlowSession::run_to`] — the executed
    /// prefix is byte-identical to the same prefix of a full run,
    /// because stopping early changes nothing about the stages that did
    /// run.
    ///
    /// A `stop_after` slot that is already filled when the engine starts
    /// (pre-seeded) stops the run before its producer — the artifact the
    /// caller asked for exists.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::run`]; additionally
    /// [`FlowError::MissingArtifact`] when every stage ran and the
    /// requested slot is still empty (a custom engine without the
    /// producing stage).
    pub fn run_until(
        &self,
        cx: &mut FlowContext<'_>,
        stop_after: Option<ArtifactSlot>,
    ) -> Result<FlowTrace, FlowError> {
        let trace = self.run_stages(cx, stop_after)?;
        if let Some(slot) = stop_after {
            if !slot.is_filled(cx) {
                return Err(FlowError::MissingArtifact(slot.name()));
            }
        }
        Ok(trace)
    }

    fn run_stages(
        &self,
        cx: &mut FlowContext<'_>,
        stop_after: Option<ArtifactSlot>,
    ) -> Result<FlowTrace, FlowError> {
        let reached = |cx: &FlowContext<'_>| stop_after.is_some_and(|slot| slot.is_filled(cx));
        let mut trace = FlowTrace::new();
        let Some(cache) = self.cache.as_ref() else {
            for stage in &self.stages {
                if reached(cx) {
                    break;
                }
                let before = ArtifactFlags::of(cx);
                let t0 = Instant::now();
                stage.run(cx)?;
                let outcome = if pre_seeded(&**stage, before) {
                    CacheOutcome::Seeded
                } else {
                    CacheOutcome::Uncached
                };
                trace.push_outcome(stage.name(), t0.elapsed(), outcome);
            }
            collect_warnings(&mut trace, cx);
            return Ok(trace);
        };

        // Hand the stages the node-level cache tier: per-node artifacts
        // (HLS designs, STG fragments, hardware VHDL units) survive even
        // when a graph edit invalidates every stage-level key, so a warm
        // edit re-synthesizes only the dirty nodes.
        cx.node_cache = Some(cache.clone());

        let graph_digest = {
            let mut h = ContentHasher::new();
            cx.graph.content_hash(&mut h);
            h.finish()
        };
        // Digests of every filled slot, covering pre-seeded artifacts
        // (e.g. `FlowContext::with_cost` cost models) from the start.
        let mut digests = cache::slot_digests(cx);

        for stage in &self.stages {
            if reached(cx) {
                break;
            }
            let Some(key) = stage
                .cache_key(cx)
                .map(|local| stage_key(graph_digest, &**stage, local, &digests))
            else {
                // Uncacheable stage: run it, then rebuild the digest
                // table from scratch — downstream keys cover artifact
                // *content*, so they stay sound (and cacheable) even if
                // this stage mutated filled slots in place (which
                // uncacheable stages are allowed to do).
                let t0 = Instant::now();
                stage.run(cx)?;
                let nodes = take_node_delta(cx, stage.name());
                trace.push_record(stage.name(), t0.elapsed(), CacheOutcome::Uncached, nodes);
                digests = cache::slot_digests(cx);
                continue;
            };
            let t0 = Instant::now();
            if let Some(hit) = cache.lookup(key) {
                hit.delta.apply(cx);
                for &(slot, d) in hit.writes.iter() {
                    digests[slot.index()] = Some(d);
                }
                let outcome = if hit.from_remote {
                    CacheOutcome::RemoteHit { saved: hit.saved }
                } else if hit.from_disk {
                    CacheOutcome::DiskHit { saved: hit.saved }
                } else {
                    CacheOutcome::Hit { saved: hit.saved }
                };
                trace.push_outcome(stage.name(), t0.elapsed(), outcome);
                continue;
            }
            let before = ArtifactFlags::of(cx);
            let t0 = Instant::now();
            stage.run(cx)?;
            let elapsed = t0.elapsed();
            let nodes = take_node_delta(cx, stage.name());
            let writes = cache::update_slot_digests(cx, before, &mut digests);
            // A cacheable stage must only fill empty slots — an in-place
            // mutation would be invisible to the delta and leave stale
            // digests. Re-hashing everything per stage is too costly for
            // release builds, so the contract is enforced mechanically
            // in debug builds (i.e. under `cargo test`).
            #[cfg(debug_assertions)]
            if let Some(slot) = cache::find_mutated_slot(cx, before, &digests) {
                panic!(
                    "stage `{}` mutated the already-filled artifact slot `{slot}` \
                     but returned Some from cache_key; stages that mutate \
                     artifacts in place must return None (see Stage::cache_key)",
                    stage.name(),
                );
            }
            // A write outside the declared set means the declarations are
            // wrong; refuse to cache rather than risk serving an entry
            // keyed on an incomplete read set. Like the mutated-slot
            // check above, debug builds turn the broken declaration into
            // a panic instead of a silent permanent cache miss.
            let undeclared = writes.iter().find(|(s, _)| !stage.writes().contains(s));
            #[cfg(debug_assertions)]
            if let Some((slot, _)) = undeclared {
                panic!(
                    "stage `{}` filled the artifact slot `{}` without declaring it \
                     in Stage::writes(); fix the declaration (and check reads() \
                     matches what the stage consumes)",
                    stage.name(),
                    slot.name(),
                );
            }
            // A node-limit-truncated partition is not a deterministic
            // function of the stage's inputs: under `jobs > 1` which
            // subtrees the budget reached — and hence the incumbent at
            // truncation — depends on worker scheduling, and `jobs` is
            // deliberately outside every cache key. Caching it would pin
            // one scheduling accident as *the* result for this key, so
            // truncated solves are recomputed instead (they cost at most
            // the node budget the caller chose).
            let truncated_partition = writes
                .iter()
                .any(|&(slot, _)| slot == ArtifactSlot::Partition)
                && cx
                    .partition
                    .as_ref()
                    .is_some_and(|p| p.optimality == cool_partition::Optimality::LimitReached);
            let seeded = pre_seeded(&**stage, before);
            // A pre-seeded pass-through deposited nothing: there is no
            // delta worth an LRU slot or a disk-tier file, and warm runs
            // re-running the (free) pass-through is strictly cheaper
            // than restoring an empty entry.
            if undeclared.is_none() && !truncated_partition && !seeded {
                cache.insert(key, ArtifactDelta::capture(cx, before), writes, elapsed);
            }
            let outcome = if seeded {
                CacheOutcome::Seeded
            } else {
                CacheOutcome::Miss
            };
            trace.push_record(stage.name(), elapsed, outcome, nodes);
        }
        collect_warnings(&mut trace, cx);
        Ok(trace)
    }
}

/// `true` when the stage ran as a pre-seeded pass-through: every slot it
/// declares writing was already filled before it ran (e.g. the `cost`
/// stage over a model seeded via `FlowSession::with_cost` or a
/// `run_family` retarget). Distinct from a stage that legitimately
/// *produces* nothing (`spec`, `sim-prep`, custom lints): those declare
/// empty write sets and are excluded.
fn pre_seeded(stage: &dyn Stage, before: ArtifactFlags) -> bool {
    !stage.writes().is_empty() && stage.writes().iter().all(|&s| before.slot_filled(s))
}

/// Append result-quality warnings to the trace after a run. Done on the
/// finished context — not inside the stages — so a partition restored
/// from the cache warns exactly like a freshly computed one.
fn collect_warnings(trace: &mut FlowTrace, cx: &FlowContext<'_>) {
    if let Some(p) = &cx.partition {
        if p.optimality == cool_partition::Optimality::LimitReached {
            let gap = match p.gap {
                Some(gap) => format!(
                    " (the frontier's best remaining LP bound places it within \
                     {:.1} % of the solver optimum)",
                    gap * 100.0
                ),
                None => String::new(),
            };
            trace.push_warning(format!(
                "partition ({}): branch & bound hit its node limit after {} node(s); \
                 the returned colouring is feasible but NOT proven optimal{gap} — raise \
                 the MILP node limit to close the gap",
                p.algorithm, p.work_units,
            ));
        }
    }
}

/// Assemble one stage's dependency-DAG key: the key-scheme version, the
/// input graph digest, the stage name, the stage's local input digest
/// ([`Stage::cache_key`]), and per declared read slot its fill state and
/// content digest. Slots are tagged, and empty/filled is encoded
/// explicitly, so distinct read sets can never alias by concatenation.
fn stage_key(
    graph_digest: u128,
    stage: &dyn Stage,
    local: u128,
    digests: &SlotDigests,
) -> StageKey {
    let mut h = ContentHasher::new();
    h.write_str(KEY_SCHEME);
    h.write_u128(graph_digest);
    h.write_str(stage.name());
    h.write_u128(local);
    for &slot in stage.reads() {
        h.write_u8(slot.index() as u8);
        match digests[slot.index()] {
            Some(d) => {
                h.write_u8(1);
                h.write_u128(d);
            }
            None => h.write_u8(0),
        }
    }
    h.finish()
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("stages", &self.stage_names())
            .finish()
    }
}

/// `spec` — validate the input specification graph.
pub struct SpecStage;

impl Stage for SpecStage {
    fn name(&self) -> &'static str {
        "spec"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<(), FlowError> {
        cx.graph.validate()?;
        Ok(())
    }

    /// Reads only the graph (already in the engine's key seed), so
    /// candidates that differ in target or options still share this key.
    fn cache_key(&self, _cx: &FlowContext<'_>) -> Option<u128> {
        Some(0)
    }

    fn reads(&self) -> &'static [ArtifactSlot] {
        &[]
    }

    fn writes(&self) -> &'static [ArtifactSlot] {
        &[]
    }
}

/// `cost` — software timings plus quick per-node HLS estimates. A no-op
/// when the context was pre-seeded via [`FlowContext::with_cost`].
pub struct CostStage;

impl Stage for CostStage {
    fn name(&self) -> &'static str {
        "cost"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<(), FlowError> {
        if cx.cost.is_none() {
            cx.cost = Some(cool_cost::CostModel::new(cx.graph, cx.target));
        }
        Ok(())
    }

    /// The target (clocks, memory, bus — and budgets, which the embedded
    /// target copy exposes to consumers). A context pre-seeded via
    /// [`FlowContext::with_cost`] is distinguished through the declared
    /// `cost` read slot: the engine folds the seeded model's content
    /// digest into the key, so a pre-seeded run can never collide with a
    /// computed one unless the resulting context is identical.
    fn cache_key(&self, cx: &FlowContext<'_>) -> Option<u128> {
        let mut h = ContentHasher::new();
        cx.target.content_hash(&mut h);
        Some(h.finish())
    }

    /// Reads its own output slot: filled means "pre-seeded, pass
    /// through", empty means "estimate now".
    fn reads(&self) -> &'static [ArtifactSlot] {
        &[ArtifactSlot::Cost]
    }

    fn writes(&self) -> &'static [ArtifactSlot] {
        &[ArtifactSlot::Cost]
    }
}

/// `partition` — hardware/software partitioning with the configured
/// algorithm.
pub struct PartitionStage;

impl PartitionStage {
    /// The partitioner the stage actually runs: the configured one, with
    /// the flow-level [`FlowOptions::objective`] override (if any)
    /// pushed into its options. A fixed mapping has nothing to
    /// optimize, so the override leaves it untouched. Used by both
    /// `run` and `cache_key` so the key always describes the solve
    /// that produced the artifact.
    fn effective_partitioner(options: &crate::FlowOptions) -> Partitioner {
        let mut p = options.partitioner.clone();
        if let Some(objective) = options.objective {
            match &mut p {
                Partitioner::Milp(o) => o.objective = objective,
                Partitioner::Heuristic(o) => o.milp.objective = objective,
                Partitioner::Genetic(o) => o.objective = objective,
                Partitioner::Fixed(_) => {}
            }
        }
        p
    }
}

impl Stage for PartitionStage {
    fn name(&self) -> &'static str {
        "partition"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<(), FlowError> {
        let cost = cx.cost()?;
        // The flow's `jobs` knob governs every parallel stage; thread it
        // into the MILP branch & bound too. A completed solve is
        // deterministic for every worker count (why `jobs` stays out of
        // the options' content hashes and cache keys); the one
        // exception, a node-limit-truncated solve, is excluded from the
        // cache below.
        let partition = match &Self::effective_partitioner(cx.options) {
            Partitioner::Milp(o) => {
                let o = cool_partition::MilpOptions {
                    jobs: cx.options.jobs,
                    ..o.clone()
                };
                cool_partition::milp::partition(cx.graph, cost, &o)?
            }
            Partitioner::Heuristic(o) => {
                let mut o = o.clone();
                o.milp.jobs = cx.options.jobs;
                cool_partition::heuristic::partition(cx.graph, cost, &o)?
            }
            Partitioner::Genetic(o) => cool_partition::genetic::partition(cx.graph, cost, o)?,
            Partitioner::Fixed(mapping) => {
                let (makespan, hw_area) =
                    cool_partition::evaluate(cx.graph, mapping, cost, cx.options.scheme)?;
                PartitionResult {
                    mapping: mapping.clone(),
                    algorithm: cool_partition::Algorithm::Milp,
                    optimality: cool_partition::Optimality::Heuristic,
                    gap: None,
                    makespan,
                    hw_area,
                    work_units: 0,
                }
            }
        };
        cx.partition = Some(partition);
        Ok(())
    }

    /// The *effective* partitioner configuration (the configured one
    /// with the flow-level objective override applied, including a fixed
    /// mapping, if any) and the flow's communication scheme; the cost
    /// model (which embeds the target, budgets included) arrives
    /// through the declared read slot.
    fn cache_key(&self, cx: &FlowContext<'_>) -> Option<u128> {
        let mut h = ContentHasher::new();
        Self::effective_partitioner(cx.options).content_hash(&mut h);
        cx.options.scheme.content_hash(&mut h);
        Some(h.finish())
    }

    fn reads(&self) -> &'static [ArtifactSlot] {
        &[ArtifactSlot::Cost]
    }

    fn writes(&self) -> &'static [ArtifactSlot] {
        &[ArtifactSlot::Partition]
    }
}

/// `schedule` — static list scheduling, verified against the mapping.
pub struct ScheduleStage;

impl Stage for ScheduleStage {
    fn name(&self) -> &'static str {
        "schedule"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<(), FlowError> {
        let cost = cx.cost()?;
        let mapping = &cx.partition()?.mapping;
        let schedule = cool_schedule::schedule(cx.graph, mapping, cost, cx.options.scheme)?;
        schedule
            .verify(cx.graph, mapping)
            .map_err(FlowError::Consistency)?;
        cx.schedule = Some(schedule);
        Ok(())
    }

    /// Only the communication scheme; mapping and costs arrive through
    /// the declared read slots.
    fn cache_key(&self, cx: &FlowContext<'_>) -> Option<u128> {
        let mut h = ContentHasher::new();
        cx.options.scheme.content_hash(&mut h);
        Some(h.finish())
    }

    fn reads(&self) -> &'static [ArtifactSlot] {
        &[ArtifactSlot::Cost, ArtifactSlot::Partition]
    }

    fn writes(&self) -> &'static [ArtifactSlot] {
        &[ArtifactSlot::Schedule]
    }
}

/// `stg` — co-synthesis core: STG generation, minimization (parallel
/// refinement rounds under `jobs`), memory allocation.
pub struct StgStage;

impl Stage for StgStage {
    fn name(&self) -> &'static str {
        "stg"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<(), FlowError> {
        let node_cache = cx.node_cache.clone();
        let graph = cx.graph;
        let mapping = &cx.partition()?.mapping;
        let schedule = cx.schedule()?;
        let (stg, stg_delta) = match &node_cache {
            Some(cache) => {
                let mut delta = NodeDelta::default();
                let mut provider = |n: cool_ir::NodeId, res: Resource| {
                    let key = stg_node_key(n, res);
                    if let Some(hit) = cache.lookup_node(key) {
                        if let NodeArtifact::StgFragment(f) = hit.artifact.as_ref() {
                            // The canonical-shape gate turns a corrupt or
                            // stale fragment into a recompute instead of a
                            // malformed STG.
                            if f.is_canonical_for(n, res) {
                                delta.reused += 1;
                                if hit.from_disk || hit.from_remote {
                                    delta.reused_disk += 1;
                                }
                                return f.clone();
                            }
                        }
                    }
                    let f = cool_stg::node_fragment(n, res);
                    cache.insert_node(key, NodeArtifact::StgFragment(f.clone()));
                    delta.computed += 1;
                    if let Ok(node) = graph.node(n) {
                        delta.computed_names.push(node.name().to_string());
                    }
                    f
                };
                let stg = cool_stg::generate_with(graph, mapping, schedule, &mut provider);
                (stg, Some(delta))
            }
            None => (cool_stg::generate(graph, mapping, schedule), None),
        };
        stg.verify().map_err(FlowError::Consistency)?;
        let (stg_minimized, minimize_stats) = cool_stg::minimize_jobs(&stg, cx.options.jobs);
        stg_minimized.verify().map_err(FlowError::Consistency)?;
        let memory_map = if cx.options.packed_memory {
            cool_stg::allocate_memory_packed(
                cx.graph,
                mapping,
                schedule,
                &cx.target.memory,
                cx.target.bus.width_bits,
            )?
        } else {
            cool_stg::allocate_memory(
                cx.graph,
                mapping,
                &cx.target.memory,
                cx.target.bus.width_bits,
            )?
        };
        cx.stg = Some(stg);
        cx.stg_minimized = Some(stg_minimized);
        cx.minimize_stats = Some(minimize_stats);
        cx.memory_map = Some(memory_map);
        if let Some(delta) = stg_delta {
            cx.node_deltas.push(("stg", delta));
        }
        Ok(())
    }

    /// The allocator choice plus the shared memory and bus geometry the
    /// allocators read — target inputs, so they belong in this local key
    /// (the DAG keys no longer funnel the whole target through `cost`).
    /// An `hls`-only option change leaves this key and the read-slot
    /// digests untouched, so `stg` stays valid — the hit-rate payoff the
    /// DAG keying exists for.
    fn cache_key(&self, cx: &FlowContext<'_>) -> Option<u128> {
        let mut h = ContentHasher::new();
        h.write_bool(cx.options.packed_memory);
        cx.target.memory.content_hash(&mut h);
        cx.target.bus.content_hash(&mut h);
        Some(h.finish())
    }

    fn reads(&self) -> &'static [ArtifactSlot] {
        &[ArtifactSlot::Partition, ArtifactSlot::Schedule]
    }

    fn writes(&self) -> &'static [ArtifactSlot] {
        &[
            ArtifactSlot::Stg,
            ArtifactSlot::StgMinimized,
            ArtifactSlot::MinimizeStats,
            ArtifactSlot::MemoryMap,
        ]
    }
}

/// `hls` — full-effort hardware synthesis of every hardware-mapped node,
/// fanned out across `jobs` scoped worker threads. This is the stage the
/// paper measures at > 90 % of design time.
pub struct HlsStage;

/// Adapter exposing the [`StageCache`] node tier to
/// [`cool_hls::synthesize_many_cached`] (the `hls` crate cannot depend
/// on `cool_core`, so the cache crosses the boundary behind the
/// [`cool_hls::NodeCache`] trait).
struct HlsNodeTier<'c> {
    cache: &'c StageCache,
}

impl cool_hls::NodeCache for HlsNodeTier<'_> {
    fn lookup(&self, key: u128) -> Option<(cool_hls::HlsDesign, cool_hls::CacheSource)> {
        let hit = self.cache.lookup_node(key)?;
        match hit.artifact.as_ref() {
            NodeArtifact::Hls(d) => {
                let source = if hit.from_disk || hit.from_remote {
                    cool_hls::CacheSource::Disk
                } else {
                    cool_hls::CacheSource::Memory
                };
                Some((d.clone(), source))
            }
            // Namespaced keys make a kind mismatch unreachable from this
            // engine's own writers; treat it as a miss regardless.
            _ => None,
        }
    }

    fn insert(&self, key: u128, design: &cool_hls::HlsDesign) {
        self.cache
            .insert_node(key, NodeArtifact::Hls(design.clone()));
    }
}

impl Stage for HlsStage {
    fn name(&self) -> &'static str {
        "hls"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<(), FlowError> {
        let mapping = &cx.partition()?.mapping;
        let hw_nodes: Vec<cool_ir::NodeId> = cx
            .graph
            .function_nodes()
            .into_iter()
            .filter(|&n| mapping.resource(n).is_hardware())
            .collect();
        let mut named = Vec::with_capacity(hw_nodes.len());
        for &n in &hw_nodes {
            let node = cx.graph.node(n)?;
            named.push((node.name(), node.behavior()));
        }
        let node_cache = cx.node_cache.clone();
        let hls_designs = match &node_cache {
            Some(cache) => {
                let tier = HlsNodeTier { cache };
                let (designs, outcomes) = cool_hls::synthesize_many_cached(
                    &named,
                    &cx.options.hls,
                    cx.options.jobs,
                    &tier,
                );
                let mut delta = NodeDelta::default();
                for (outcome, &(name, _)) in outcomes.iter().zip(&named) {
                    match outcome {
                        cool_hls::NodeOutcome::Computed => {
                            delta.computed += 1;
                            delta.computed_names.push(name.to_string());
                        }
                        cool_hls::NodeOutcome::ReusedMemory => delta.reused += 1,
                        cool_hls::NodeOutcome::ReusedDisk => {
                            delta.reused += 1;
                            delta.reused_disk += 1;
                        }
                    }
                }
                cx.node_deltas.push(("hls", delta));
                designs
            }
            None => cool_hls::synthesize_many(&named, &cx.options.hls, cx.options.jobs),
        };
        cx.hw_nodes = Some(hw_nodes);
        cx.hls_designs = Some(hls_designs);
        Ok(())
    }

    /// The full-effort synthesis options (`jobs` excluded: the per-node
    /// fan-out never changes a generated byte).
    fn cache_key(&self, cx: &FlowContext<'_>) -> Option<u128> {
        let mut h = ContentHasher::new();
        cx.options.hls.content_hash(&mut h);
        Some(h.finish())
    }

    /// Reads the mapping only (plus the graph's behaviors, covered by the
    /// key seed) — notably *not* the schedule or the STG, so
    /// schedule-side changes never re-synthesize hardware.
    fn reads(&self) -> &'static [ArtifactSlot] {
        &[ArtifactSlot::Partition]
    }

    fn writes(&self) -> &'static [ArtifactSlot] {
        &[ArtifactSlot::HwNodes, ArtifactSlot::HlsDesigns]
    }
}

/// `rtl` — system controller + encoding search, netlist, all VHDL units,
/// and the per-device CLB placement (encoding streams and placement
/// chains parallel under `jobs`).
pub struct RtlStage;

impl Stage for RtlStage {
    fn name(&self) -> &'static str {
        "rtl"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<(), FlowError> {
        let mapping = &cx.partition()?.mapping;
        let schedule = cx.schedule()?;
        let memory_map = cx.memory_map()?;
        let hw_nodes = cx.hw_nodes()?;
        let hls_designs = cx.hls_designs()?;
        let graph = cx.graph;
        let target = cx.target;

        let controller = SystemController::from_stg(cx.stg_minimized()?.clone(), graph);
        let encoding = cool_rtl::encoding::optimize_encoding_jobs(
            controller.stg(),
            cx.options.encoding_effort,
            cx.options.jobs,
        );
        let netlist = cool_rtl::build_netlist(graph, mapping, target);
        netlist.verify().map_err(FlowError::Consistency)?;

        let mut vhdl = Vec::new();
        vhdl.push((
            "system_controller.vhd".to_string(),
            cool_rtl::vhdl::emit_system_controller(&controller),
        ));
        let masters = netlist.count_kind(|k| {
            matches!(
                k,
                cool_rtl::ComponentKind::Processor(_)
                    | cool_rtl::ComponentKind::DatapathController(_)
                    | cool_rtl::ComponentKind::IoController
            )
        });
        vhdl.push((
            "bus_arbiter.vhd".to_string(),
            cool_rtl::vhdl::emit_bus_arbiter(masters),
        ));
        vhdl.push((
            "io_controller.vhd".to_string(),
            cool_rtl::vhdl::emit_io_controller(
                graph.primary_inputs().len().max(1),
                graph.primary_outputs().len().max(1),
                target.bus.width_bits,
            ),
        ));
        let node_cache = cx.node_cache.clone();
        let mut rtl_delta = node_cache.as_ref().map(|_| NodeDelta::default());
        for (i, &n) in hw_nodes.iter().enumerate() {
            let node = graph.node(n)?;
            let latency = hls_designs[i].latency_cycles;
            let unit = match (&node_cache, &mut rtl_delta) {
                (Some(cache), Some(delta)) => {
                    let key = rtl_node_key(node.name(), node.behavior(), latency);
                    let cached =
                        cache
                            .lookup_node(key)
                            .and_then(|hit| match hit.artifact.as_ref() {
                                NodeArtifact::Vhdl(src) => {
                                    Some((src.clone(), hit.from_disk || hit.from_remote))
                                }
                                _ => None,
                            });
                    match cached {
                        Some((src, from_disk)) => {
                            delta.reused += 1;
                            if from_disk {
                                delta.reused_disk += 1;
                            }
                            src
                        }
                        None => {
                            let src = cool_rtl::vhdl::emit_hw_block(graph, n, latency);
                            cache.insert_node(key, NodeArtifact::Vhdl(src.clone()));
                            delta.computed += 1;
                            delta.computed_names.push(node.name().to_string());
                            src
                        }
                    }
                }
                _ => cool_rtl::vhdl::emit_hw_block(graph, n, latency),
            };
            vhdl.push((format!("hw_{}.vhd", node.name()), unit));
        }
        // One datapath controller per FPGA in use: sequences the device's
        // shared-memory transactions in schedule order.
        for h in 0..target.hw.len() {
            let res = Resource::Hardware(h);
            if !hw_nodes.iter().any(|&n| mapping.resource(n) == res) {
                continue;
            }
            let mut transfers: Vec<(u64, cool_rtl::vhdl::BusTransfer)> = Vec::new();
            for cell in memory_map.cells() {
                let e = graph.edge(cell.edge)?;
                if mapping.resource(e.src) == res {
                    transfers.push((
                        schedule.slot(e.src).finish,
                        cool_rtl::vhdl::BusTransfer {
                            address: cell.address,
                            write: true,
                        },
                    ));
                }
                if mapping.resource(e.dst) == res {
                    transfers.push((
                        schedule.slot(e.dst).start,
                        cool_rtl::vhdl::BusTransfer {
                            address: cell.address,
                            write: false,
                        },
                    ));
                }
            }
            transfers.sort_by_key(|&(t, x)| (t, x.address, x.write));
            let ordered: Vec<cool_rtl::vhdl::BusTransfer> =
                transfers.into_iter().map(|(_, x)| x).collect();
            let name = target.resource_name(res).to_string();
            vhdl.push((
                format!("dpctl_{name}.vhd"),
                cool_rtl::vhdl::emit_datapath_controller(&name, &ordered, target.bus.width_bits),
            ));
        }
        vhdl.push((
            format!("{}_top.vhd", graph.name()),
            cool_rtl::vhdl::emit_toplevel(&netlist, graph.name()),
        ));
        for (name, unit) in &vhdl {
            cool_rtl::vhdl::check_well_formed(unit)
                .map_err(|e| FlowError::Consistency(format!("{name}: {e}")))?;
        }

        // Xilinx implementation stand-in: anneal a CLB placement per
        // device. The system controller shares the first FPGA with its
        // blocks, every other device hosts its blocks plus a datapath
        // controller. Each device runs a deterministic multi-start anneal
        // whose chains fan out across workers without affecting the
        // result.
        let mut problems: Vec<(Resource, cool_rtl::place::PlacementProblem, u64)> = Vec::new();
        for h in 0..target.hw.len() {
            let block_clbs: Vec<u32> = hw_nodes
                .iter()
                .zip(hls_designs)
                .filter(|(&n, _)| mapping.resource(n) == Resource::Hardware(h))
                .map(|(_, d)| d.area_clbs)
                .collect();
            if block_clbs.is_empty() && h > 0 {
                continue;
            }
            let blocks_total: u32 = block_clbs.iter().sum();
            let wanted_ctrl = if h == 0 {
                cool_hls::area::fsm_clbs(
                    controller.stg().state_count(),
                    graph.function_nodes().len(),
                )
            } else {
                8 // datapath controller
            };
            let grid = (14u16, 14u16); // XC4005 CLB array
            let capacity = u32::from(grid.0) * u32::from(grid.1);
            let ctrl_clbs = wanted_ctrl
                .min(capacity.saturating_sub(blocks_total))
                .max(1);
            let problem = cool_rtl::place::PlacementProblem::for_device(
                &block_clbs,
                ctrl_clbs,
                grid.0,
                grid.1,
            );
            if problem.fits() {
                problems.push((Resource::Hardware(h), problem, 0x5eed + h as u64));
            }
        }
        let placements: Vec<(Resource, Placement)> = problems
            .iter()
            .map(|(res, problem, seed)| {
                (
                    *res,
                    cool_rtl::place::anneal_multistart(
                        problem,
                        cx.options.placement_effort,
                        *seed,
                        cx.options.jobs,
                    ),
                )
            })
            .collect();

        cx.controller = Some(controller);
        cx.encoding = Some(encoding);
        cx.netlist = Some(netlist);
        cx.vhdl = Some(vhdl);
        cx.placements = Some(placements);
        if let Some(delta) = rtl_delta {
            cx.node_deltas.push(("rtl", delta));
        }
        Ok(())
    }

    /// Encoding-search and placement effort knobs plus the full target
    /// (device inventory, resource names, bus width all shape the
    /// netlist and VHDL); the artifact inputs arrive through the
    /// declared read slots.
    fn cache_key(&self, cx: &FlowContext<'_>) -> Option<u128> {
        let mut h = ContentHasher::new();
        h.write_u32(cx.options.encoding_effort);
        h.write_u32(cx.options.placement_effort);
        cx.target.content_hash(&mut h);
        Some(h.finish())
    }

    fn reads(&self) -> &'static [ArtifactSlot] {
        &[
            ArtifactSlot::Partition,
            ArtifactSlot::Schedule,
            ArtifactSlot::StgMinimized,
            ArtifactSlot::MemoryMap,
            ArtifactSlot::HwNodes,
            ArtifactSlot::HlsDesigns,
        ]
    }

    fn writes(&self) -> &'static [ArtifactSlot] {
        &[
            ArtifactSlot::Controller,
            ArtifactSlot::Encoding,
            ArtifactSlot::Netlist,
            ArtifactSlot::Vhdl,
            ArtifactSlot::Placements,
        ]
    }
}

/// `codegen` — C program generation for every software partition.
pub struct CodegenStage;

impl Stage for CodegenStage {
    fn name(&self) -> &'static str {
        "codegen"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<(), FlowError> {
        let mapping = &cx.partition()?.mapping;
        let c_programs =
            cool_codegen::emit_programs(cx.graph, mapping, cx.schedule()?, cx.memory_map()?);
        for p in &c_programs {
            cool_codegen::check_c_structure(&p.source)
                .map_err(|e| FlowError::Consistency(format!("{}: {e}", p.file_name)))?;
        }
        cx.c_programs = Some(c_programs);
        Ok(())
    }

    /// Reads declared artifact slots only (the graph is in the key seed).
    fn cache_key(&self, _cx: &FlowContext<'_>) -> Option<u128> {
        Some(0)
    }

    fn reads(&self) -> &'static [ArtifactSlot] {
        &[
            ArtifactSlot::Partition,
            ArtifactSlot::Schedule,
            ArtifactSlot::MemoryMap,
        ]
    }

    fn writes(&self) -> &'static [ArtifactSlot] {
        &[ArtifactSlot::CPrograms]
    }
}

/// `sim-prep` — validate that the produced artifact set is complete and
/// wires up into a simulator, so `FlowArtifacts::simulate` cannot fail on
/// missing pieces later.
pub struct SimPrepStage;

impl Stage for SimPrepStage {
    fn name(&self) -> &'static str {
        "sim-prep"
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<(), FlowError> {
        let sim = cool_sim::Simulator::new(
            cx.graph,
            cx.mapping()?,
            cx.schedule()?,
            cx.memory_map()?,
            cx.cost()?,
            cx.options.scheme,
        );
        let _ = sim;
        // Every remaining artifact slot the simulator does not touch —
        // the full set `FlowArtifacts::from_context` will demand, so a
        // custom engine that skipped a producer fails here, inside a
        // named stage, rather than after the run.
        cx.stg_minimized()?;
        cx.controller()?;
        cx.netlist()?;
        cx.hw_nodes()?;
        cx.hls_designs()?;
        if cx.stg.is_none() {
            return Err(FlowError::MissingArtifact("STG"));
        }
        if cx.minimize_stats.is_none() {
            return Err(FlowError::MissingArtifact("minimization stats"));
        }
        if cx.encoding.is_none() {
            return Err(FlowError::MissingArtifact("state encoding"));
        }
        if cx.placements.is_none() {
            return Err(FlowError::MissingArtifact("placements"));
        }
        if cx.vhdl.is_none() {
            return Err(FlowError::MissingArtifact("VHDL units"));
        }
        if cx.c_programs.is_none() {
            return Err(FlowError::MissingArtifact("C programs"));
        }
        Ok(())
    }

    /// The communication scheme the simulator is wired with; every
    /// artifact it validates is a declared read.
    fn cache_key(&self, cx: &FlowContext<'_>) -> Option<u128> {
        let mut h = ContentHasher::new();
        cx.options.scheme.content_hash(&mut h);
        Some(h.finish())
    }

    /// Validates the complete artifact set, so it reads every slot.
    fn reads(&self) -> &'static [ArtifactSlot] {
        &ArtifactSlot::ALL
    }

    fn writes(&self) -> &'static [ArtifactSlot] {
        &[]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowOptions;
    use cool_ir::Target;
    use cool_spec::workloads;

    #[test]
    fn standard_engine_stage_order_matches_paper_flow() {
        assert_eq!(
            Engine::standard().stage_names(),
            vec![
                "spec",
                "cost",
                "partition",
                "schedule",
                "stg",
                "hls",
                "rtl",
                "codegen",
                "sim-prep"
            ]
        );
    }

    #[test]
    fn trace_covers_every_stage_in_order() {
        let g = workloads::equalizer(2);
        let target = Target::fuzzy_board();
        let options = FlowOptions::quick();
        let engine = Engine::standard();
        let mut cx = FlowContext::new(&g, &target, &options);
        let trace = engine.run(&mut cx).unwrap();
        assert_eq!(trace.stage_names(), engine.stage_names());
        assert!(trace.total() > std::time::Duration::ZERO);
    }

    #[test]
    fn misordered_engine_reports_missing_artifact() {
        let g = workloads::equalizer(2);
        let target = Target::fuzzy_board();
        let options = FlowOptions::quick();
        // Scheduling before partitioning must fail cleanly.
        let engine = Engine::new(vec![
            Box::new(SpecStage),
            Box::new(CostStage),
            Box::new(ScheduleStage),
        ]);
        let mut cx = FlowContext::new(&g, &target, &options);
        let err = engine.run(&mut cx).unwrap_err();
        assert!(matches!(err, FlowError::MissingArtifact(_)), "{err}");
    }
}
