//! `coold` — a resident co-synthesis daemon.
//!
//! Spawning a fresh `cool` process per flow pays the full cost of a cold
//! [`StageCache`] every time: the disk tier softens it, but the in-memory
//! tier (and the node tier inside it) starts empty, and concurrent
//! invocations of the *same* spec each synthesize independently.  This
//! module keeps one hot process resident instead:
//!
//! * [`Server`] listens on a local TCP socket and speaks a small framed
//!   protocol built from the canonical [`cool_ir::codec`] wire format
//!   ([`cool_ir::codec::write_frame`] / [`read_frame`]) — no new
//!   dependencies, no textual re-parsing of artifacts.
//! * One [`StageCache`] (optionally disk-backed) is shared by every
//!   connection, so a client's flow reuses stage deltas any earlier
//!   client produced.
//! * Identical in-flight requests are **coalesced**: when N clients ask
//!   for the same spec/target/options while a synthesis is running, one
//!   leader runs the flow, encodes the response bytes once, and every
//!   waiter receives those exact bytes.  A thundering herd of the same
//!   spec costs one synthesis.
//!
//! Coalescing is keyed on *content*: the [`ContentHash`] of the parsed
//! graph, the target, and the options — so two textually different specs
//! that parse to the same graph share a flight, and knobs that cannot
//! change artifact bytes (`jobs`, simplex pricing) do not split flights.
//! The wire codecs, by contrast, carry **every** knob verbatim: a served
//! request must run with exactly the options the client sent.
//!
//! Protocol: each request is one frame holding a [`Request`]; each reply
//! is one frame holding a [`Response`].  A connection may pipeline any
//! number of request/response pairs; a clean client close (EOF between
//! frames) ends the connection.  Malformed frames or undecodable requests
//! earn a best-effort [`Response::Error`] and a dropped connection — they
//! never reach the flow engine, so they cannot poison the cache.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use cool_ir::codec::{
    from_bytes, read_frame, to_bytes, write_frame, Codec, CodecError, Decoder, Encoder,
};
use cool_ir::hash::{ContentHash, ContentHasher};
use cool_ir::Target;
use cool_partition::Optimality;

use crate::cache::StageCache;
use crate::session::FlowSession;
use crate::timing::{CacheOutcome, FlowTrace};
use crate::FlowOptions;

/// Default listen address for `cool serve` (2665 spells COOL on a phone
/// keypad).  Loopback only: the protocol has no authentication.
pub const DEFAULT_ADDR: &str = "127.0.0.1:2665";

/// Default idle read timeout applied to every accepted connection: a
/// half-open client (crashed mid-frame, network partition) would
/// otherwise hold its handler thread forever.  Generous, because a
/// remote-cache client legitimately idles between stage computations;
/// [`Server::idle_timeout`] overrides it (tests use milliseconds).
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(600);

// ---------------------------------------------------------------------------
// Wire types
// ---------------------------------------------------------------------------

/// One flow to run on the daemon: the spec *source text* plus the same
/// knobs a local [`FlowSession`] takes.  The server parses the spec, so
/// clients need nothing but the file contents.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowRequest {
    /// Specification source (the contents of a `.cool` file).
    pub spec: String,
    /// Target board.
    pub target: Target,
    /// Flow knobs, carried verbatim (including wall-clock-only ones).
    pub options: FlowOptions,
}

impl Codec for FlowRequest {
    fn encode(&self, e: &mut Encoder) {
        self.spec.encode(e);
        self.target.encode(e);
        self.options.encode(e);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<FlowRequest, CodecError> {
        Ok(FlowRequest {
            spec: String::decode(d)?,
            target: Target::decode(d)?,
            options: FlowOptions::decode(d)?,
        })
    }
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run (or join) a full flow.
    Flow(FlowRequest),
    /// Run a flow, then simulate it with the given `(input, value)`
    /// assignments (unlisted primary inputs default to 0 server-side).
    Simulate(FlowRequest, Vec<(String, i64)>),
    /// Liveness probe.
    Ping,
    /// Ask the daemon to stop accepting connections and exit its accept
    /// loop once in-flight work drains.
    Shutdown,
    /// Fetch the stage-cache entry for a key from the daemon's store, as
    /// raw entry-file bytes (the exact format [`crate::DiskStore`]
    /// writes).
    CacheGetStage(u128),
    /// Offer a stage-cache entry to the daemon's store.  The payload is
    /// one complete entry file; the daemon validates version, layout
    /// digest and checksum with the same totality as a disk read and
    /// rejects anything malformed without storing it.
    CachePutStage(u128, Vec<u8>),
    /// Fetch the node-tier entry for a key, as raw entry-file bytes.
    CacheGetNode(u128),
    /// Offer a node-tier entry to the daemon's store (validated like
    /// [`Request::CachePutStage`]).
    CachePutNode(u128, Vec<u8>),
    /// Ask for the daemon's cache counters.
    CacheStats,
}

impl Codec for Request {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Request::Flow(req) => {
                e.put_u8(0);
                req.encode(e);
            }
            Request::Simulate(req, inputs) => {
                e.put_u8(1);
                req.encode(e);
                inputs.encode(e);
            }
            Request::Ping => e.put_u8(2),
            Request::Shutdown => e.put_u8(3),
            Request::CacheGetStage(key) => {
                e.put_u8(4);
                e.put_u128(*key);
            }
            Request::CachePutStage(key, bytes) => {
                e.put_u8(5);
                e.put_u128(*key);
                bytes.encode(e);
            }
            Request::CacheGetNode(key) => {
                e.put_u8(6);
                e.put_u128(*key);
            }
            Request::CachePutNode(key, bytes) => {
                e.put_u8(7);
                e.put_u128(*key);
                bytes.encode(e);
            }
            Request::CacheStats => e.put_u8(8),
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Request, CodecError> {
        match d.take_u8()? {
            0 => Ok(Request::Flow(FlowRequest::decode(d)?)),
            1 => Ok(Request::Simulate(
                FlowRequest::decode(d)?,
                Vec::<(String, i64)>::decode(d)?,
            )),
            2 => Ok(Request::Ping),
            3 => Ok(Request::Shutdown),
            4 => Ok(Request::CacheGetStage(d.take_u128()?)),
            5 => Ok(Request::CachePutStage(
                d.take_u128()?,
                Vec::<u8>::decode(d)?,
            )),
            6 => Ok(Request::CacheGetNode(d.take_u128()?)),
            7 => Ok(Request::CachePutNode(d.take_u128()?, Vec::<u8>::decode(d)?)),
            8 => Ok(Request::CacheStats),
            tag => Err(CodecError::InvalidTag {
                type_name: "Request",
                tag,
            }),
        }
    }
}

/// Everything a flow client needs: the human report, the generated
/// sources, the engine trace, and coalescing observability.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowResponse {
    /// The textual flow report ([`crate::FlowArtifacts::report`]).
    pub report: String,
    /// Emitted VHDL units: `(file name, source)`.
    pub vhdl: Vec<(String, String)>,
    /// Generated C programs: `(file name, source)`.
    pub c_programs: Vec<(String, String)>,
    /// The shared-memory map header (`cool_memory.h`).
    pub memory_header: String,
    /// The engine timing journal of the run that produced these bytes.
    /// For a coalesced waiter this is the *leader's* trace.
    pub trace: FlowTrace,
    /// Partitioning optimality of the served result.
    pub optimality: Optimality,
    /// MILP gap, when partitioning stopped at a bound.
    pub gap: Option<f64>,
    /// Server-unique id of the flight that produced this response.
    /// Coalesced requests share it.
    pub flight: u64,
    /// Requests served by that flight at encode time (leader included),
    /// so a coalesced client can see it shared a synthesis.
    pub joined: u64,
}

impl FlowResponse {
    /// Stages the serving flight actually executed (cache misses).  A
    /// fully warm repeat request reports zero.
    #[must_use]
    pub fn stages_computed(&self) -> usize {
        self.trace
            .records()
            .iter()
            .filter(|r| matches!(r.cache, CacheOutcome::Miss | CacheOutcome::Uncached))
            .count()
    }
}

impl Codec for FlowResponse {
    fn encode(&self, e: &mut Encoder) {
        self.report.encode(e);
        self.vhdl.encode(e);
        self.c_programs.encode(e);
        self.memory_header.encode(e);
        self.trace.encode(e);
        self.optimality.encode(e);
        self.gap.encode(e);
        e.put_u64(self.flight);
        e.put_u64(self.joined);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<FlowResponse, CodecError> {
        Ok(FlowResponse {
            report: String::decode(d)?,
            vhdl: Vec::<(String, String)>::decode(d)?,
            c_programs: Vec::<(String, String)>::decode(d)?,
            memory_header: String::decode(d)?,
            trace: FlowTrace::decode(d)?,
            optimality: Optimality::decode(d)?,
            gap: Option::<f64>::decode(d)?,
            flight: d.take_u64()?,
            joined: d.take_u64()?,
        })
    }
}

/// Simulation results over the wire (a subset of `cool_sim::SimResult`
/// that the CLI prints).
#[derive(Debug, Clone, PartialEq)]
pub struct SimResponse {
    /// Final values of the primary outputs.
    pub outputs: Vec<(String, i64)>,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Bus transfers observed.
    pub bus_transfers: u64,
    /// Cycles the bus was busy.
    pub bus_busy_cycles: u64,
}

impl Codec for SimResponse {
    fn encode(&self, e: &mut Encoder) {
        self.outputs.encode(e);
        e.put_u64(self.cycles);
        e.put_u64(self.bus_transfers);
        e.put_u64(self.bus_busy_cycles);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<SimResponse, CodecError> {
        Ok(SimResponse {
            outputs: Vec::<(String, i64)>::decode(d)?,
            cycles: d.take_u64()?,
            bus_transfers: d.take_u64()?,
            bus_busy_cycles: d.take_u64()?,
        })
    }
}

/// The daemon's cache counters, as served to `cool cache stats
/// --connect`: the fleet store's entry census plus how much remote
/// get/put traffic it has absorbed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStatsReply {
    /// Stage entries resident in the daemon's memory tier.
    pub entries: u64,
    /// Node entries resident in the daemon's memory tier.
    pub node_entries: u64,
    /// Remote `CacheGet*` requests answered with an entry.
    pub serve_hits: u64,
    /// Remote `CacheGet*` requests answered empty.
    pub serve_misses: u64,
    /// Remote `CachePut*` requests accepted and stored.
    pub puts_accepted: u64,
    /// Remote `CachePut*` requests rejected (corrupt, version-skewed or
    /// truncated entry bytes) — never stored.
    pub puts_rejected: u64,
    /// The daemon cache's own human-readable summary
    /// ([`crate::CacheStats`] rendering, covering every tier it has).
    pub summary: String,
}

impl Codec for CacheStatsReply {
    fn encode(&self, e: &mut Encoder) {
        e.put_u64(self.entries);
        e.put_u64(self.node_entries);
        e.put_u64(self.serve_hits);
        e.put_u64(self.serve_misses);
        e.put_u64(self.puts_accepted);
        e.put_u64(self.puts_rejected);
        self.summary.encode(e);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<CacheStatsReply, CodecError> {
        Ok(CacheStatsReply {
            entries: d.take_u64()?,
            node_entries: d.take_u64()?,
            serve_hits: d.take_u64()?,
            serve_misses: d.take_u64()?,
            puts_accepted: d.take_u64()?,
            puts_rejected: d.take_u64()?,
            summary: String::decode(d)?,
        })
    }
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A completed (or joined) flow.
    Flow(Box<FlowResponse>),
    /// A completed simulation.
    Sim(SimResponse),
    /// Reply to [`Request::Ping`].
    Pong,
    /// Acknowledgement of [`Request::Shutdown`].
    ShuttingDown,
    /// Anything that went wrong server-side, stringified
    /// ([`crate::FlowError`], spec parse errors, malformed requests).
    Error(String),
    /// Reply to [`Request::CacheGetStage`] / [`Request::CacheGetNode`]:
    /// the raw entry-file bytes, or `None` on a store miss.
    CacheEntry(Option<Vec<u8>>),
    /// Reply to an accepted [`Request::CachePutStage`] /
    /// [`Request::CachePutNode`]; `true` when the entry was new to the
    /// daemon's store, `false` when it already had it.
    CachePutDone(bool),
    /// Reply to [`Request::CacheStats`].
    CacheStatsReply(CacheStatsReply),
}

impl Codec for Response {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Response::Flow(r) => {
                e.put_u8(0);
                r.encode(e);
            }
            Response::Sim(r) => {
                e.put_u8(1);
                r.encode(e);
            }
            Response::Pong => e.put_u8(2),
            Response::ShuttingDown => e.put_u8(3),
            Response::Error(msg) => {
                e.put_u8(4);
                msg.encode(e);
            }
            Response::CacheEntry(bytes) => {
                e.put_u8(5);
                bytes.encode(e);
            }
            Response::CachePutDone(fresh) => {
                e.put_u8(6);
                e.put_bool(*fresh);
            }
            Response::CacheStatsReply(stats) => {
                e.put_u8(7);
                stats.encode(e);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Response, CodecError> {
        match d.take_u8()? {
            0 => Ok(Response::Flow(Box::new(FlowResponse::decode(d)?))),
            1 => Ok(Response::Sim(SimResponse::decode(d)?)),
            2 => Ok(Response::Pong),
            3 => Ok(Response::ShuttingDown),
            4 => Ok(Response::Error(String::decode(d)?)),
            5 => Ok(Response::CacheEntry(Option::<Vec<u8>>::decode(d)?)),
            6 => Ok(Response::CachePutDone(d.take_bool()?)),
            7 => Ok(Response::CacheStatsReply(CacheStatsReply::decode(d)?)),
            tag => Err(CodecError::InvalidTag {
                type_name: "Response",
                tag,
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// What can go wrong talking to (or running) the daemon.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// Socket-level failure.
    Io(io::Error),
    /// A frame arrived but its payload would not decode.
    Codec(CodecError),
    /// The server replied with [`Response::Error`].
    Server(String),
    /// The server replied with a well-formed but unexpected variant.
    Protocol(&'static str),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Codec(e) => write!(f, "codec error: {e}"),
            ServeError::Server(msg) => write!(f, "server error: {msg}"),
            ServeError::Protocol(what) => write!(f, "protocol error: unexpected {what}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

impl From<CodecError> for ServeError {
    fn from(e: CodecError) -> ServeError {
        ServeError::Codec(e)
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// One coalesced synthesis: the leader publishes the encoded response
/// bytes into `payload`; waiters block on `ready`.
#[derive(Debug)]
struct Flight {
    payload: Mutex<Option<Arc<Vec<u8>>>>,
    ready: Condvar,
    /// Requests attached to this flight (leader included).
    joined: AtomicU64,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            payload: Mutex::new(None),
            ready: Condvar::new(),
            joined: AtomicU64::new(1),
        }
    }
}

#[derive(Debug)]
struct ServerState {
    cache: StageCache,
    addr: SocketAddr,
    /// In-flight flows by content key.  Entries are removed once the
    /// leader publishes, so late arrivals start a fresh (warm) flight.
    flights: Mutex<HashMap<u128, Arc<Flight>>>,
    /// Monotonic flight id source.
    flights_started: AtomicU64,
    /// Flights that executed at least one stage — i.e. real synthesis
    /// work.  A fully cache-served flight does not count.
    syntheses: AtomicU64,
    /// Remote cache-get requests answered with an entry.
    cache_serve_hits: AtomicU64,
    /// Remote cache-get requests answered empty.
    cache_serve_misses: AtomicU64,
    /// Remote cache-put requests validated and stored.
    cache_puts_accepted: AtomicU64,
    /// Remote cache-put requests rejected as malformed (never stored).
    cache_puts_rejected: AtomicU64,
    shutting_down: AtomicBool,
}

/// A handle onto a running [`Server`]: observability + shutdown, safe to
/// clone into other threads (the CLI's signal path, tests).
#[derive(Debug, Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The address the server is listening on (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Flights that executed at least one stage since startup.
    #[must_use]
    pub fn syntheses(&self) -> u64 {
        self.state.syntheses.load(Ordering::Relaxed)
    }

    /// Ask the accept loop to exit.  Idempotent; wakes the listener with
    /// a throwaway local connection so [`Server::run`] returns promptly.
    pub fn shutdown(&self) {
        self.state.shutting_down.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.state.addr);
    }
}

/// The resident daemon: a TCP accept loop over one shared [`StageCache`].
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    idle_timeout: Duration,
}

impl Server {
    /// Bind to `addr` (e.g. [`DEFAULT_ADDR`], or `127.0.0.1:0` for an
    /// ephemeral test port) sharing `cache` across all future clients.
    pub fn bind<A: ToSocketAddrs>(addr: A, cache: StageCache) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                cache,
                addr,
                flights: Mutex::new(HashMap::new()),
                flights_started: AtomicU64::new(0),
                syntheses: AtomicU64::new(0),
                cache_serve_hits: AtomicU64::new(0),
                cache_serve_misses: AtomicU64::new(0),
                cache_puts_accepted: AtomicU64::new(0),
                cache_puts_rejected: AtomicU64::new(0),
                shutting_down: AtomicBool::new(false),
            }),
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
        })
    }

    /// Override the idle read timeout applied to accepted connections
    /// (default [`DEFAULT_IDLE_TIMEOUT`]).  A connection that sends no
    /// frame for this long is dropped silently, freeing its handler
    /// thread; `None` disables the timeout.
    #[must_use]
    pub fn idle_timeout(mut self, timeout: Option<Duration>) -> Server {
        self.idle_timeout = timeout.unwrap_or(Duration::ZERO);
        self
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// A cloneable observability/shutdown handle.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Accept connections until [`ServerHandle::shutdown`] (or a
    /// [`Request::Shutdown`] frame) is seen.  One thread per connection;
    /// in-flight requests on open connections finish naturally, and each
    /// surviving connection is severed at its next frame boundary.  Every
    /// accepted socket gets the idle read timeout, so a half-open client
    /// cannot hold its handler thread forever.
    pub fn run(self) -> io::Result<()> {
        let timeout = (self.idle_timeout > Duration::ZERO).then_some(self.idle_timeout);
        for conn in self.listener.incoming() {
            if self.state.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let _ = stream.set_read_timeout(timeout);
            let state = Arc::clone(&self.state);
            thread::spawn(move || handle_connection(&state, stream));
        }
        Ok(())
    }
}

/// Frame loop for one client.  Clean EOF between frames ends the
/// connection; an idle-timeout expiry drops it silently (the half-open
/// client is gone — nobody is reading error replies); anything malformed
/// earns a best-effort error reply and a drop, *before* any engine or
/// cache interaction.
fn handle_connection(state: &Arc<ServerState>, stream: TcpStream) {
    let mut stream = stream;
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => return,
            // The idle read timeout fired (Unix reports WouldBlock,
            // Windows TimedOut): a clean idle drop, not a protocol
            // violation.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return;
            }
            Err(_) => {
                let bytes = to_bytes(&Response::Error("malformed frame".to_string()));
                let _ = write_frame(&mut stream, &bytes);
                return;
            }
        };
        // A daemon being shut down severs surviving connections at the
        // next frame boundary (in-flight requests already finished):
        // pooled clients see the drop immediately and fail over to their
        // local tiers instead of talking to a half-dead server.
        if state.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let reply: Arc<Vec<u8>> = match from_bytes::<Request>(&payload) {
            // An unknown-but-well-framed request *kind* (a newer client
            // speaking the same frame version) is a per-request error,
            // not a protocol violation: answer it and keep the
            // connection — and the shared cache it may be warming —
            // alive for the requests this server does understand.
            Err(CodecError::InvalidTag {
                type_name: "Request",
                tag,
            }) => {
                let bytes = to_bytes(&Response::Error(format!(
                    "unsupported request kind (tag {tag}); this server understands \
                     flow/simulate/ping/shutdown/cache-get/cache-put/cache-stats"
                )));
                if write_frame(&mut stream, &bytes).is_err() {
                    return;
                }
                continue;
            }
            Err(e) => {
                let bytes = to_bytes(&Response::Error(format!("malformed request: {e}")));
                let _ = write_frame(&mut stream, &bytes);
                return;
            }
            Ok(Request::Ping) => Arc::new(to_bytes(&Response::Pong)),
            Ok(Request::Shutdown) => {
                let bytes = to_bytes(&Response::ShuttingDown);
                let _ = write_frame(&mut stream, &bytes);
                ServerHandle {
                    state: Arc::clone(state),
                }
                .shutdown();
                return;
            }
            Ok(Request::Flow(req)) => serve_flow(state, &req),
            Ok(Request::Simulate(req, inputs)) => Arc::new(serve_simulate(state, &req, &inputs)),
            Ok(Request::CacheGetStage(key)) => Arc::new(serve_cache_get_stage(state, key)),
            Ok(Request::CachePutStage(key, bytes)) => {
                Arc::new(serve_cache_put_stage(state, key, &bytes))
            }
            Ok(Request::CacheGetNode(key)) => Arc::new(serve_cache_get_node(state, key)),
            Ok(Request::CachePutNode(key, bytes)) => {
                Arc::new(serve_cache_put_node(state, key, &bytes))
            }
            Ok(Request::CacheStats) => Arc::new(serve_cache_stats(state)),
        };
        if write_frame(&mut stream, &reply).is_err() {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Remote-cache service: raw entry bytes in, raw entry bytes out
// ---------------------------------------------------------------------------

/// Serve a stage entry from the daemon's cache as raw entry-file bytes.
/// A hit re-encodes through the canonical entry codec, so the bytes a
/// client receives are exactly what a local `DiskStore` write would have
/// produced — the client re-validates and re-materializes them into its
/// own disk tier unchanged.
fn serve_cache_get_stage(state: &ServerState, key: u128) -> Vec<u8> {
    match state.cache.lookup(key) {
        Some(hit) => {
            state.cache_serve_hits.fetch_add(1, Ordering::Relaxed);
            let bytes = crate::disk::encode_entry_with_version(
                &hit.delta,
                &hit.writes,
                hit.saved,
                crate::disk::FORMAT_VERSION,
            );
            to_bytes(&Response::CacheEntry(Some(bytes)))
        }
        None => {
            state.cache_serve_misses.fetch_add(1, Ordering::Relaxed);
            to_bytes(&Response::CacheEntry(None))
        }
    }
}

/// Validate and store an offered stage entry.  The validation is the
/// same totality as a `DiskStore` read — magic, version, layout digest,
/// checksum, codec decode — so a corrupt or version-skewed put is
/// rejected with a clean [`Response::Error`], never stored, and the
/// connection stays alive.
fn serve_cache_put_stage(state: &ServerState, key: u128, bytes: &[u8]) -> Vec<u8> {
    match crate::disk::decode_stage_entry(bytes) {
        Some((delta, writes, cost)) => {
            state.cache_puts_accepted.fetch_add(1, Ordering::Relaxed);
            let fresh = state.cache.insert_remote(key, delta, writes, cost);
            to_bytes(&Response::CachePutDone(fresh))
        }
        None => {
            state.cache_puts_rejected.fetch_add(1, Ordering::Relaxed);
            to_bytes(&Response::Error(
                "rejected cache put: entry bytes failed validation (corrupt, truncated \
                 or foreign format version)"
                    .to_string(),
            ))
        }
    }
}

/// Serve a node-tier entry as raw entry-file bytes.
fn serve_cache_get_node(state: &ServerState, key: u128) -> Vec<u8> {
    match state.cache.lookup_node(key) {
        Some(hit) => {
            state.cache_serve_hits.fetch_add(1, Ordering::Relaxed);
            let bytes = crate::disk::encode_node_entry_with_version(
                &hit.artifact,
                crate::disk::FORMAT_VERSION,
            );
            to_bytes(&Response::CacheEntry(Some(bytes)))
        }
        None => {
            state.cache_serve_misses.fetch_add(1, Ordering::Relaxed);
            to_bytes(&Response::CacheEntry(None))
        }
    }
}

/// Validate and store an offered node-tier entry (validated like
/// [`serve_cache_put_stage`]).
fn serve_cache_put_node(state: &ServerState, key: u128, bytes: &[u8]) -> Vec<u8> {
    match crate::disk::decode_node_entry(bytes) {
        Some(artifact) => {
            state.cache_puts_accepted.fetch_add(1, Ordering::Relaxed);
            let fresh = state.cache.insert_node_remote(key, artifact);
            to_bytes(&Response::CachePutDone(fresh))
        }
        None => {
            state.cache_puts_rejected.fetch_add(1, Ordering::Relaxed);
            to_bytes(&Response::Error(
                "rejected cache put: entry bytes failed validation (corrupt, truncated \
                 or foreign format version)"
                    .to_string(),
            ))
        }
    }
}

/// The daemon's cache counters.
fn serve_cache_stats(state: &ServerState) -> Vec<u8> {
    let stats = state.cache.stats();
    to_bytes(&Response::CacheStatsReply(CacheStatsReply {
        entries: stats.entries as u64,
        node_entries: stats.node_entries as u64,
        serve_hits: state.cache_serve_hits.load(Ordering::Relaxed),
        serve_misses: state.cache_serve_misses.load(Ordering::Relaxed),
        puts_accepted: state.cache_puts_accepted.load(Ordering::Relaxed),
        puts_rejected: state.cache_puts_rejected.load(Ordering::Relaxed),
        summary: stats.summary(),
    }))
}

/// Content key for coalescing: what the *artifacts* depend on.  Uses
/// [`ContentHash`] (not the wire encoding), so `jobs`/pricing changes and
/// spec reformattings share a flight — they cannot change output bytes.
fn flight_key(graph: &cool_ir::PartitioningGraph, target: &Target, options: &FlowOptions) -> u128 {
    let mut h = ContentHasher::new();
    graph.content_hash(&mut h);
    target.content_hash(&mut h);
    options.content_hash(&mut h);
    h.finish()
}

/// Run (or join) a flow; always returns encoded [`Response`] bytes.  The
/// leader encodes once; every waiter shares that allocation, so coalesced
/// responses are byte-identical by construction.
fn serve_flow(state: &Arc<ServerState>, req: &FlowRequest) -> Arc<Vec<u8>> {
    let graph = match cool_spec::parse(&req.spec) {
        Ok(graph) => graph,
        Err(e) => return Arc::new(to_bytes(&Response::Error(format!("spec error: {e}")))),
    };
    let key = flight_key(&graph, &req.target, &req.options);

    let (flight, leader) = {
        let mut flights = state.flights.lock().unwrap();
        match flights.get(&key) {
            Some(flight) => {
                flight.joined.fetch_add(1, Ordering::Relaxed);
                (Arc::clone(flight), false)
            }
            None => {
                let flight = Arc::new(Flight::new());
                flights.insert(key, Arc::clone(&flight));
                (Arc::clone(&flight), true)
            }
        }
    };

    if leader {
        let id = state.flights_started.fetch_add(1, Ordering::Relaxed);
        let bytes = Arc::new(run_flight(state, &graph, req, id, &flight));
        *flight.payload.lock().unwrap() = Some(Arc::clone(&bytes));
        flight.ready.notify_all();
        state.flights.lock().unwrap().remove(&key);
        bytes
    } else {
        let mut slot = flight.payload.lock().unwrap();
        while slot.is_none() {
            slot = flight.ready.wait(slot).unwrap();
        }
        Arc::clone(slot.as_ref().unwrap())
    }
}

/// The leader's synthesis: one [`FlowSession`] over the shared cache.
fn run_flight(
    state: &ServerState,
    graph: &cool_ir::PartitioningGraph,
    req: &FlowRequest,
    id: u64,
    flight: &Flight,
) -> Vec<u8> {
    let result = FlowSession::new(graph)
        .target(req.target.clone())
        .options(req.options.clone())
        .cache(state.cache.clone())
        .run();
    let response = match result {
        Ok(art) => {
            if art.trace.cache_misses() > 0 {
                state.syntheses.fetch_add(1, Ordering::Relaxed);
            }
            Response::Flow(Box::new(FlowResponse {
                report: art.report(),
                vhdl: art.vhdl.clone(),
                c_programs: art
                    .c_programs
                    .iter()
                    .map(|p| (p.file_name.clone(), p.source.clone()))
                    .collect(),
                memory_header: cool_codegen::emit_memory_header(graph, &art.memory_map),
                trace: art.trace.clone(),
                optimality: art.partition.optimality,
                gap: art.partition.gap,
                flight: id,
                joined: flight.joined.load(Ordering::Relaxed),
            }))
        }
        Err(e) => Response::Error(e.to_string()),
    };
    to_bytes(&response)
}

/// Flow + simulate.  Simulation results depend on the input vector, so
/// these are not coalesced; the flow underneath still hits the shared
/// cache (and any flight another client is running populates it).
fn serve_simulate(state: &ServerState, req: &FlowRequest, inputs: &[(String, i64)]) -> Vec<u8> {
    let response = serve_simulate_inner(state, req, inputs).unwrap_or_else(Response::Error);
    to_bytes(&response)
}

fn serve_simulate_inner(
    state: &ServerState,
    req: &FlowRequest,
    inputs: &[(String, i64)],
) -> Result<Response, String> {
    let graph = cool_spec::parse(&req.spec).map_err(|e| format!("spec error: {e}"))?;
    let art = FlowSession::new(&graph)
        .target(req.target.clone())
        .options(req.options.clone())
        .cache(state.cache.clone())
        .run()
        .map_err(|e| e.to_string())?;
    let mut map: BTreeMap<String, i64> = inputs.iter().cloned().collect();
    for id in graph.primary_inputs() {
        let name = graph
            .node(id)
            .map_err(|e| e.to_string())?
            .name()
            .to_string();
        map.entry(name).or_insert(0);
    }
    let sim = art.simulate(&map).map_err(|e| e.to_string())?;
    Ok(Response::Sim(SimResponse {
        outputs: sim.outputs.into_iter().collect(),
        cycles: sim.cycles,
        bus_transfers: sim.bus_transfers as u64,
        bus_busy_cycles: sim.bus_busy_cycles,
    }))
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A blocking client for one daemon connection.  Requests pipeline over
/// the single stream; drop the client (or let it fall out of scope) to
/// close cleanly.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a running daemon.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Wrap an already-connected stream (lets callers dial with their
    /// own connect timeout via [`TcpStream::connect_timeout`]).
    #[must_use]
    pub fn from_stream(stream: TcpStream) -> Client {
        Client { stream }
    }

    /// Bound every read and write on the connection (`None` removes the
    /// bound). [`crate::remote::RemoteStore`] sets this so a hung daemon
    /// degrades a flow to local-only instead of wedging it.
    pub fn set_io_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Send one request frame and decode the reply frame.
    pub fn request(&mut self, request: &Request) -> Result<Response, ServeError> {
        write_frame(&mut self.stream, &to_bytes(request))?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            ServeError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        Ok(from_bytes::<Response>(&payload)?)
    }

    /// Run (or join) a flow on the daemon.
    pub fn flow(&mut self, request: FlowRequest) -> Result<FlowResponse, ServeError> {
        match self.request(&Request::Flow(request))? {
            Response::Flow(r) => Ok(*r),
            Response::Error(msg) => Err(ServeError::Server(msg)),
            _ => Err(ServeError::Protocol("reply to Flow")),
        }
    }

    /// Run a flow and simulate it with the given input assignments.
    pub fn simulate(
        &mut self,
        request: FlowRequest,
        inputs: Vec<(String, i64)>,
    ) -> Result<SimResponse, ServeError> {
        match self.request(&Request::Simulate(request, inputs))? {
            Response::Sim(r) => Ok(r),
            Response::Error(msg) => Err(ServeError::Server(msg)),
            _ => Err(ServeError::Protocol("reply to Simulate")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error(msg) => Err(ServeError::Server(msg)),
            _ => Err(ServeError::Protocol("reply to Ping")),
        }
    }

    /// Ask the daemon to shut down.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error(msg) => Err(ServeError::Server(msg)),
            _ => Err(ServeError::Protocol("reply to Shutdown")),
        }
    }

    /// Fetch a stage entry's raw bytes from the daemon's store.
    pub fn cache_get_stage(&mut self, key: u128) -> Result<Option<Vec<u8>>, ServeError> {
        match self.request(&Request::CacheGetStage(key))? {
            Response::CacheEntry(bytes) => Ok(bytes),
            Response::Error(msg) => Err(ServeError::Server(msg)),
            _ => Err(ServeError::Protocol("reply to CacheGetStage")),
        }
    }

    /// Offer a stage entry to the daemon's store; `Ok(true)` when the
    /// daemon stored it fresh.
    pub fn cache_put_stage(&mut self, key: u128, bytes: Vec<u8>) -> Result<bool, ServeError> {
        match self.request(&Request::CachePutStage(key, bytes))? {
            Response::CachePutDone(fresh) => Ok(fresh),
            Response::Error(msg) => Err(ServeError::Server(msg)),
            _ => Err(ServeError::Protocol("reply to CachePutStage")),
        }
    }

    /// Fetch a node-tier entry's raw bytes from the daemon's store.
    pub fn cache_get_node(&mut self, key: u128) -> Result<Option<Vec<u8>>, ServeError> {
        match self.request(&Request::CacheGetNode(key))? {
            Response::CacheEntry(bytes) => Ok(bytes),
            Response::Error(msg) => Err(ServeError::Server(msg)),
            _ => Err(ServeError::Protocol("reply to CacheGetNode")),
        }
    }

    /// Offer a node-tier entry to the daemon's store.
    pub fn cache_put_node(&mut self, key: u128, bytes: Vec<u8>) -> Result<bool, ServeError> {
        match self.request(&Request::CachePutNode(key, bytes))? {
            Response::CachePutDone(fresh) => Ok(fresh),
            Response::Error(msg) => Err(ServeError::Server(msg)),
            _ => Err(ServeError::Protocol("reply to CachePutNode")),
        }
    }

    /// The daemon's cache counters.
    pub fn cache_stats(&mut self) -> Result<CacheStatsReply, ServeError> {
        match self.request(&Request::CacheStats)? {
            Response::CacheStatsReply(stats) => Ok(stats),
            Response::Error(msg) => Err(ServeError::Server(msg)),
            _ => Err(ServeError::Protocol("reply to CacheStats")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowOptions;

    fn tiny_request() -> FlowRequest {
        FlowRequest {
            spec: "design tiny { out y = a + b; }".to_string(),
            target: Target::fuzzy_board(),
            options: FlowOptions::quick(),
        }
    }

    #[test]
    fn request_and_response_roundtrip() {
        let reqs = [
            Request::Flow(tiny_request()),
            Request::Simulate(tiny_request(), vec![("a".to_string(), 3)]),
            Request::Ping,
            Request::Shutdown,
            Request::CacheGetStage(0xfeed_beef),
            Request::CachePutStage(0xfeed_beef, vec![1, 2, 3]),
            Request::CacheGetNode(7),
            Request::CachePutNode(7, vec![0xff; 4]),
            Request::CacheStats,
        ];
        for req in &reqs {
            let bytes = to_bytes(req);
            assert_eq!(&from_bytes::<Request>(&bytes).unwrap(), req);
        }
        let resps = [
            Response::Pong,
            Response::ShuttingDown,
            Response::Error("nope".to_string()),
            Response::Sim(SimResponse {
                outputs: vec![("x".to_string(), 7)],
                cycles: 12,
                bus_transfers: 2,
                bus_busy_cycles: 4,
            }),
            Response::CacheEntry(None),
            Response::CacheEntry(Some(vec![9, 8, 7])),
            Response::CachePutDone(true),
            Response::CacheStatsReply(CacheStatsReply {
                entries: 3,
                node_entries: 4,
                serve_hits: 5,
                serve_misses: 6,
                puts_accepted: 7,
                puts_rejected: 8,
                summary: "stage cache: …".to_string(),
            }),
        ];
        for resp in &resps {
            let bytes = to_bytes(resp);
            assert_eq!(&from_bytes::<Response>(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn foreign_tags_are_rejected() {
        assert!(matches!(
            from_bytes::<Request>(&[9]),
            Err(CodecError::InvalidTag {
                type_name: "Request",
                tag: 9
            })
        ));
        assert!(matches!(
            from_bytes::<Response>(&[9]),
            Err(CodecError::InvalidTag {
                type_name: "Response",
                tag: 9
            })
        ));
    }
}
