//! Per-stage wall-clock accounting.
//!
//! The engine times every stage individually and records the result as a
//! [`FlowTrace`] — one [`StageRecord`] per executed stage, in execution
//! order. [`StageTimings`] is the paper-shaped six-bucket summary derived
//! from a trace (the paper's Figure 1 stages), kept because the paper's
//! headline timing claim — hardware synthesis takes > 90 % of design
//! time — is stated over those buckets.

use std::time::Duration;

use cool_ir::codec::{Codec, CodecError, Decoder, Encoder};

/// How the stage cache treated one stage execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CacheOutcome {
    /// No cache was consulted (engine without a cache, or the key chain
    /// was broken by an uncacheable stage earlier in the run).
    #[default]
    Uncached,
    /// The stage ran but deposited nothing because every slot it declares
    /// writing was already filled — a pre-seeded pass-through (e.g. the
    /// `cost` stage of a context seeded via `FlowSession::with_cost` or a
    /// `run_family` retargeted board). This is how sweeps *prove* that
    /// shared work was reused: a seeded stage performed no estimation.
    Seeded,
    /// The cache was consulted, missed, and the fresh result was stored.
    Miss,
    /// The stage was skipped; its artifacts were restored from the
    /// in-memory cache tier.
    Hit {
        /// Wall-clock the original execution took — the time saved.
        saved: Duration,
    },
    /// The stage was skipped; its artifacts were deserialized from the
    /// persistent disk tier (a warm start from a previous process).
    DiskHit {
        /// Wall-clock the original execution took — the time saved.
        saved: Duration,
    },
    /// The stage was skipped; its artifacts were fetched from the remote
    /// fleet store (a `coold` daemon) and re-materialized locally — a
    /// warm start from another machine.
    RemoteHit {
        /// Wall-clock the original execution took — the time saved.
        saved: Duration,
    },
}

/// Node-level cache activity of one stage execution: how many per-node
/// artifacts the stage reused from the node cache tier versus computed
/// fresh. Only stages that consult the node tier (`hls`, `stg`, `rtl`)
/// report one; a stage-level cache hit skips the stage entirely and
/// reports none.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeDelta {
    /// Node artifacts served from the node cache (memory + disk).
    pub reused: usize,
    /// The subset of `reused` served from the disk tier.
    pub reused_disk: usize,
    /// Node artifacts computed fresh this run (the dirty set).
    pub computed: usize,
    /// Names of the nodes computed fresh, in input order — what a warm
    /// edit actually re-synthesized.
    pub computed_names: Vec<String>,
}

impl NodeDelta {
    /// Total node artifacts this stage touched.
    #[must_use]
    pub fn total(&self) -> usize {
        self.reused + self.computed
    }
}

/// Wall-clock time of one executed stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRecord {
    /// Engine stage name (`"hls"`, `"partition"`, …).
    pub name: &'static str,
    /// Wall-clock duration of the stage's `run` (on a cache hit: of the
    /// lookup + artifact restore).
    pub duration: Duration,
    /// Cache outcome for this execution.
    pub cache: CacheOutcome,
    /// Node-level cache activity, for stages that consult the node tier.
    pub nodes: Option<NodeDelta>,
}

/// The timing journal of one engine run: every stage, in order, plus
/// any result-quality warnings the engine attached (e.g. a
/// node-limit-truncated MILP partition).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowTrace {
    records: Vec<StageRecord>,
    warnings: Vec<String>,
}

impl FlowTrace {
    /// An empty trace (stages append as they run).
    #[must_use]
    pub fn new() -> FlowTrace {
        FlowTrace::default()
    }

    /// Append one stage's record (uncached execution).
    pub fn push(&mut self, name: &'static str, duration: Duration) {
        self.push_outcome(name, duration, CacheOutcome::Uncached);
    }

    /// Append one stage's record with its cache outcome.
    pub fn push_outcome(&mut self, name: &'static str, duration: Duration, cache: CacheOutcome) {
        self.push_record(name, duration, cache, None);
    }

    /// Append one stage's record with its cache outcome and node-level
    /// cache activity.
    pub fn push_record(
        &mut self,
        name: &'static str,
        duration: Duration,
        cache: CacheOutcome,
        nodes: Option<NodeDelta>,
    ) {
        self.records.push(StageRecord {
            name,
            duration,
            cache,
            nodes,
        });
    }

    /// Attach a result-quality warning (shown by `to_table` and the CLI).
    pub fn push_warning(&mut self, warning: impl Into<String>) {
        self.warnings.push(warning.into());
    }

    /// Result-quality warnings attached by the engine, in order.
    #[must_use]
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Stages restored from the cache in this run (memory, disk or
    /// remote tier).
    #[must_use]
    pub fn cache_hits(&self) -> usize {
        self.records
            .iter()
            .filter(|r| {
                matches!(
                    r.cache,
                    CacheOutcome::Hit { .. }
                        | CacheOutcome::DiskHit { .. }
                        | CacheOutcome::RemoteHit { .. }
                )
            })
            .count()
    }

    /// Stages that ran as pre-seeded pass-throughs in this run (every
    /// declared write slot was already filled, so the stage deposited
    /// nothing — e.g. a `cost` stage over a shared, retargeted model).
    #[must_use]
    pub fn seeded_stages(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.cache == CacheOutcome::Seeded)
            .count()
    }

    /// Stages restored from the persistent disk tier in this run.
    #[must_use]
    pub fn disk_hits(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.cache, CacheOutcome::DiskHit { .. }))
            .count()
    }

    /// Stages restored from the remote fleet store in this run.
    #[must_use]
    pub fn remote_hits(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.cache, CacheOutcome::RemoteHit { .. }))
            .count()
    }

    /// Stages that executed and populated the cache in this run.
    #[must_use]
    pub fn cache_misses(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.cache == CacheOutcome::Miss)
            .count()
    }

    /// Wall-clock the cache saved this run: the original execution time
    /// of every hit stage, minus nothing (restore time is already in
    /// [`StageRecord::duration`]).
    #[must_use]
    pub fn cache_saved(&self) -> Duration {
        self.records
            .iter()
            .map(|r| match r.cache {
                CacheOutcome::Hit { saved }
                | CacheOutcome::DiskHit { saved }
                | CacheOutcome::RemoteHit { saved } => saved,
                _ => Duration::ZERO,
            })
            .sum()
    }

    /// Node artifacts reused from the node cache tier across all stages
    /// (memory + disk).
    #[must_use]
    pub fn node_reused(&self) -> usize {
        self.node_deltas().map(|d| d.reused).sum()
    }

    /// Node artifacts reused from the node cache's disk tier.
    #[must_use]
    pub fn node_disk_reused(&self) -> usize {
        self.node_deltas().map(|d| d.reused_disk).sum()
    }

    /// Node artifacts computed fresh across all stages — a warm edit's
    /// dirty set. For the `hls` stage specifically this counts full
    /// re-syntheses, which is what the single-node-edit tests assert on.
    #[must_use]
    pub fn node_computed(&self) -> usize {
        self.node_deltas().map(|d| d.computed).sum()
    }

    /// Node-level activity of the named stage, if it reported any.
    #[must_use]
    pub fn node_delta_of(&self, name: &str) -> Option<&NodeDelta> {
        self.records
            .iter()
            .find(|r| r.name == name)
            .and_then(|r| r.nodes.as_ref())
    }

    fn node_deltas(&self) -> impl Iterator<Item = &NodeDelta> {
        self.records.iter().filter_map(|r| r.nodes.as_ref())
    }

    /// All records, in execution order.
    #[must_use]
    pub fn records(&self) -> &[StageRecord] {
        &self.records
    }

    /// Stage names in execution order.
    #[must_use]
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.records.iter().map(|r| r.name).collect()
    }

    /// Duration of the named stage (zero if it did not run).
    #[must_use]
    pub fn duration_of(&self, name: &str) -> Duration {
        self.records
            .iter()
            .filter(|r| r.name == name)
            .map(|r| r.duration)
            .sum()
    }

    /// Total wall-clock time across all stages.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.records.iter().map(|r| r.duration).sum()
    }

    /// One row per executed stage, for `cool flow --trace` and reports.
    /// Cache hits are annotated with the wall-clock they saved.
    #[must_use]
    pub fn to_table(&self) -> String {
        let table = crate::TextTable::new(vec![
            crate::Col::left(12, ""),
            crate::Col::right(10, " ms"),
            crate::Col::right(5, " %"),
        ]);
        let total = self.total().as_secs_f64().max(1e-12);
        let mut s = String::new();
        for r in &self.records {
            let nodes = match &r.nodes {
                Some(d) if d.total() > 0 => format!(
                    "  [nodes: {} reused ({} disk) / {} fresh]",
                    d.reused, d.reused_disk, d.computed
                ),
                _ => String::new(),
            };
            let cache = match r.cache {
                CacheOutcome::Hit { saved } => {
                    format!("  [cache hit, saved {:.3} ms]", saved.as_secs_f64() * 1e3)
                }
                CacheOutcome::DiskHit { saved } => {
                    format!("  [disk hit, saved {:.3} ms]", saved.as_secs_f64() * 1e3)
                }
                CacheOutcome::RemoteHit { saved } => {
                    format!("  [remote hit, saved {:.3} ms]", saved.as_secs_f64() * 1e3)
                }
                CacheOutcome::Seeded => "  [seeded pass-through]".to_string(),
                _ => String::new(),
            };
            s.push_str(&table.row(
                &[
                    r.name.to_string(),
                    format!("{:.3}", r.duration.as_secs_f64() * 1e3),
                    format!("{:.1}", 100.0 * r.duration.as_secs_f64() / total),
                ],
                &format!("{cache}{nodes}"),
            ));
        }
        s.push_str(&table.row(
            &[
                "total".to_string(),
                format!("{:.3}", self.total().as_secs_f64() * 1e3),
            ],
            "",
        ));
        if self.cache_hits() + self.cache_misses() > 0 {
            let remote = match self.remote_hits() {
                0 => String::new(),
                n => format!(", {n} remote"),
            };
            s.push_str(&format!(
                "stage cache: {} hit(s) ({} from disk{remote}) / {} miss(es), {:.3} ms saved\n",
                self.cache_hits(),
                self.disk_hits(),
                self.cache_misses(),
                self.cache_saved().as_secs_f64() * 1e3
            ));
        }
        if self.node_reused() + self.node_computed() > 0 {
            s.push_str(&format!(
                "node cache:  {} reused ({} from disk) / {} computed fresh\n",
                self.node_reused(),
                self.node_disk_reused(),
                self.node_computed()
            ));
        }
        for w in &self.warnings {
            s.push_str(&format!("warning: {w}\n"));
        }
        s
    }
}

/// [`StageRecord::name`] is `&'static str` — stage names come from
/// [`crate::stage::Stage::name`] implementations compiled into the
/// binary — so the wire decoder has to map the received string back onto
/// a static one. The standard engine's stages are the only names that
/// travel (the daemon serves standard flows); anything else is malformed
/// input.
fn static_stage_name(name: &str) -> Option<&'static str> {
    [
        "spec",
        "cost",
        "partition",
        "schedule",
        "stg",
        "hls",
        "rtl",
        "codegen",
        "sim-prep",
    ]
    .into_iter()
    .find(|&known| known == name)
}

impl Codec for CacheOutcome {
    fn encode(&self, e: &mut Encoder) {
        match self {
            CacheOutcome::Uncached => e.put_u8(0),
            CacheOutcome::Seeded => e.put_u8(1),
            CacheOutcome::Miss => e.put_u8(2),
            CacheOutcome::Hit { saved } => {
                e.put_u8(3);
                saved.encode(e);
            }
            CacheOutcome::DiskHit { saved } => {
                e.put_u8(4);
                saved.encode(e);
            }
            CacheOutcome::RemoteHit { saved } => {
                e.put_u8(5);
                saved.encode(e);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.take_u8()? {
            0 => Ok(CacheOutcome::Uncached),
            1 => Ok(CacheOutcome::Seeded),
            2 => Ok(CacheOutcome::Miss),
            3 => Ok(CacheOutcome::Hit {
                saved: Duration::decode(d)?,
            }),
            4 => Ok(CacheOutcome::DiskHit {
                saved: Duration::decode(d)?,
            }),
            5 => Ok(CacheOutcome::RemoteHit {
                saved: Duration::decode(d)?,
            }),
            tag => Err(CodecError::InvalidTag {
                type_name: "CacheOutcome",
                tag,
            }),
        }
    }
}

impl Codec for NodeDelta {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(self.reused);
        e.put_usize(self.reused_disk);
        e.put_usize(self.computed);
        self.computed_names.encode(e);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(NodeDelta {
            reused: d.take_usize()?,
            reused_disk: d.take_usize()?,
            computed: d.take_usize()?,
            computed_names: Vec::decode(d)?,
        })
    }
}

impl Codec for StageRecord {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(self.name);
        self.duration.encode(e);
        self.cache.encode(e);
        self.nodes.encode(e);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let name = d.take_str()?;
        let name = static_stage_name(&name).ok_or(CodecError::InvalidTag {
            type_name: "StageRecord stage name",
            tag: u8::MAX,
        })?;
        Ok(StageRecord {
            name,
            duration: Duration::decode(d)?,
            cache: CacheOutcome::decode(d)?,
            nodes: Option::decode(d)?,
        })
    }
}

impl Codec for FlowTrace {
    fn encode(&self, e: &mut Encoder) {
        self.records.encode(e);
        self.warnings.encode(e);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(FlowTrace {
            records: Vec::decode(d)?,
            warnings: Vec::decode(d)?,
        })
    }
}

/// Wall-clock time per paper flow stage (the six buckets of Figure 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Cost estimation (software timing + quick HLS estimates), plus the
    /// spec-validation stage (negligible).
    pub estimation: Duration,
    /// Hardware/software partitioning.
    pub partitioning: Duration,
    /// Static scheduling.
    pub scheduling: Duration,
    /// STG generation + minimization + memory allocation.
    pub cosynthesis: Duration,
    /// Hardware synthesis: full-effort HLS per hardware node plus RTL
    /// (controller synthesis, encoding search, netlist, VHDL, placement).
    pub hardware_synthesis: Duration,
    /// C code generation, plus simulation preparation (negligible).
    pub software_synthesis: Duration,
}

impl StageTimings {
    /// Derive the six-bucket summary from an engine trace. Engine stage
    /// names map onto the paper buckets as follows: `spec` and `cost` →
    /// estimation, `partition` → partitioning, `schedule` → scheduling,
    /// `stg` → co-synthesis, `hls` and `rtl` → hardware synthesis,
    /// `codegen` and `sim-prep` → software synthesis. Unknown stage names
    /// (from custom engines) are ignored.
    #[must_use]
    pub fn from_trace(trace: &FlowTrace) -> StageTimings {
        let mut t = StageTimings::default();
        for r in trace.records() {
            match r.name {
                "spec" | "cost" => t.estimation += r.duration,
                "partition" => t.partitioning += r.duration,
                "schedule" => t.scheduling += r.duration,
                "stg" => t.cosynthesis += r.duration,
                "hls" | "rtl" => t.hardware_synthesis += r.duration,
                "codegen" | "sim-prep" => t.software_synthesis += r.duration,
                _ => {}
            }
        }
        t
    }

    /// Total flow time.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.estimation
            + self.partitioning
            + self.scheduling
            + self.cosynthesis
            + self.hardware_synthesis
            + self.software_synthesis
    }

    /// Fraction of total time spent in hardware synthesis (the paper
    /// reports > 0.9 on its workloads).
    #[must_use]
    pub fn hardware_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.hardware_synthesis.as_secs_f64() / total
        }
    }

    /// One row per stage, for reports.
    #[must_use]
    pub fn to_table(&self) -> String {
        let row = |name: &str, d: Duration| -> String {
            let total = self.total().as_secs_f64().max(1e-12);
            format!(
                "{name:<20} {:>10.3} ms {:>5.1} %\n",
                d.as_secs_f64() * 1e3,
                100.0 * d.as_secs_f64() / total
            )
        };
        let mut s = String::new();
        s.push_str(&row("estimation", self.estimation));
        s.push_str(&row("partitioning", self.partitioning));
        s.push_str(&row("scheduling", self.scheduling));
        s.push_str(&row("co-synthesis", self.cosynthesis));
        s.push_str(&row("hardware synthesis", self.hardware_synthesis));
        s.push_str(&row("software synthesis", self.software_synthesis));
        s.push_str(&format!(
            "total                {:>10.3} ms\n",
            self.total().as_secs_f64() * 1e3
        ));
        s
    }
}

impl From<&FlowTrace> for StageTimings {
    fn from(trace: &FlowTrace) -> StageTimings {
        StageTimings::from_trace(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn trace_accumulates_in_order() {
        let mut t = FlowTrace::new();
        t.push("cost", ms(1));
        t.push("hls", ms(90));
        t.push("rtl", ms(5));
        assert_eq!(t.stage_names(), vec!["cost", "hls", "rtl"]);
        assert_eq!(t.total(), ms(96));
        assert_eq!(t.duration_of("hls"), ms(90));
        assert_eq!(t.duration_of("nope"), Duration::ZERO);
    }

    #[test]
    fn buckets_map_stage_names() {
        let mut t = FlowTrace::new();
        t.push("spec", ms(1));
        t.push("cost", ms(2));
        t.push("partition", ms(3));
        t.push("schedule", ms(4));
        t.push("stg", ms(5));
        t.push("hls", ms(80));
        t.push("rtl", ms(10));
        t.push("codegen", ms(6));
        t.push("sim-prep", ms(1));
        let s = StageTimings::from_trace(&t);
        assert_eq!(s.estimation, ms(3));
        assert_eq!(s.partitioning, ms(3));
        assert_eq!(s.scheduling, ms(4));
        assert_eq!(s.cosynthesis, ms(5));
        assert_eq!(s.hardware_synthesis, ms(90));
        assert_eq!(s.software_synthesis, ms(7));
        assert_eq!(s.total(), t.total());
    }

    #[test]
    fn tables_render_every_row() {
        let mut t = FlowTrace::new();
        t.push("hls", ms(9));
        let table = t.to_table();
        assert!(table.contains("hls"));
        assert!(table.contains("total"));
        let s = StageTimings::from_trace(&t);
        assert!(s.to_table().contains("hardware synthesis"));
    }

    #[test]
    fn trace_codec_roundtrips_and_rejects_foreign_names() {
        let mut t = FlowTrace::new();
        t.push_outcome("spec", ms(1), CacheOutcome::Seeded);
        t.push_outcome("cost", ms(2), CacheOutcome::Miss);
        t.push_outcome("partition", ms(3), CacheOutcome::Hit { saved: ms(30) });
        t.push_record(
            "hls",
            ms(4),
            CacheOutcome::DiskHit { saved: ms(40) },
            Some(NodeDelta {
                reused: 2,
                reused_disk: 1,
                computed: 1,
                computed_names: vec!["h1".to_string()],
            }),
        );
        t.push_outcome("rtl", ms(5), CacheOutcome::RemoteHit { saved: ms(50) });
        t.push_warning("partition truncated");
        let bytes = cool_ir::codec::to_bytes(&t);
        let back: FlowTrace = cool_ir::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, t);
        assert_eq!(cool_ir::codec::to_bytes(&back), bytes, "canonical");

        // A stage name outside the standard engine is malformed input,
        // not a leaked allocation of a fake 'static str.
        let mut e = Encoder::new();
        e.put_usize(1);
        e.put_str("lint");
        Duration::ZERO.encode(&mut e);
        CacheOutcome::Uncached.encode(&mut e);
        Option::<NodeDelta>::None.encode(&mut e);
        e.put_usize(0);
        assert!(matches!(
            cool_ir::codec::from_bytes::<FlowTrace>(&e.into_bytes()),
            Err(CodecError::InvalidTag { .. })
        ));
    }

    #[test]
    fn node_deltas_aggregate_and_render() {
        let mut t = FlowTrace::new();
        t.push("cost", ms(1));
        t.push_record(
            "hls",
            ms(5),
            CacheOutcome::Miss,
            Some(NodeDelta {
                reused: 3,
                reused_disk: 2,
                computed: 1,
                computed_names: vec!["h4".to_string()],
            }),
        );
        t.push_record(
            "stg",
            ms(1),
            CacheOutcome::Miss,
            Some(NodeDelta {
                reused: 4,
                reused_disk: 0,
                computed: 0,
                computed_names: Vec::new(),
            }),
        );
        assert_eq!(t.node_reused(), 7);
        assert_eq!(t.node_disk_reused(), 2);
        assert_eq!(t.node_computed(), 1);
        assert_eq!(t.node_delta_of("hls").unwrap().computed_names, ["h4"]);
        assert!(t.node_delta_of("cost").is_none());
        let table = t.to_table();
        assert!(
            table.contains("[nodes: 3 reused (2 disk) / 1 fresh]"),
            "{table}"
        );
        assert!(table.contains("node cache:  7 reused (2 from disk) / 1 computed fresh"));
    }
}
