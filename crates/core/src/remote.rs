//! The remote fleet tier of the [`crate::StageCache`]: a reconnecting,
//! non-failing client for the cache verbs of the `coold` protocol.
//!
//! A [`RemoteStore`] turns one `coold` daemon into a shared
//! content-addressed store for a fleet of sweep workers: gets and puts
//! carry the exact versioned/checksummed entry bytes the
//! [`crate::disk::DiskStore`] format defines, so both ends validate
//! payloads with the same totality and a remote hit re-materializes to a
//! byte-identical local `.cce` entry.
//!
//! Every operation is **non-failing by design**: an unreachable or hung
//! daemon makes the operation report "nothing found" / "nothing stored"
//! and the flow degrades to local-only. The store warns on stderr once
//! per outage streak (like `cool watch`'s read-error handling) and stays
//! silent until the daemon recovers and fails again. All I/O is bounded
//! by [`RemoteStore::DEFAULT_IO_TIMEOUT`] so a half-dead peer cannot
//! wedge a sweep worker.

use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::server::{Client, ServeError};

/// Counters a [`RemoteStore`] accumulates, merged into
/// [`crate::CacheStats`] by [`crate::StageCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteCounters {
    /// Gets that returned an entry.
    pub hits: u64,
    /// Gets that reached the daemon and found nothing.
    pub misses: u64,
    /// Puts the daemon acknowledged.
    pub puts: u64,
    /// Operations dropped because the daemon was unreachable.
    pub errors: u64,
    /// Wall-clock spent on round-trips (gets and puts combined).
    pub roundtrip: Duration,
}

/// A handle on one `coold` daemon acting as a fleet-wide cache shard.
///
/// The connection is lazy and pooled: the first operation dials the
/// daemon, later operations reuse the stream, and any I/O error drops it
/// so the next operation redials. Eviction on the far side is owned by
/// the daemon (its byte-size cap + LRU); this client never deletes.
#[derive(Debug)]
pub struct RemoteStore {
    addr: String,
    conn: Mutex<Option<Client>>,
    /// `Some(message)` while an outage streak is in progress — the warn
    /// already happened; reset to `None` by the next success.
    outage: Mutex<Option<String>>,
    hits: AtomicU64,
    misses: AtomicU64,
    puts: AtomicU64,
    errors: AtomicU64,
    roundtrip_nanos: AtomicU64,
}

impl RemoteStore {
    /// Bound on connecting to the daemon.
    pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(3);

    /// Bound on each read/write once connected. Generous next to a LAN
    /// round-trip but far below a wedged flow.
    pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(10);

    /// A store pointed at `addr` (e.g. `127.0.0.1:7878`). Does not dial —
    /// the first operation does, so constructing a store can never fail.
    #[must_use]
    pub fn new(addr: impl Into<String>) -> RemoteStore {
        RemoteStore {
            addr: addr.into(),
            conn: Mutex::new(None),
            outage: Mutex::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            roundtrip_nanos: AtomicU64::new(0),
        }
    }

    /// The daemon address this store dials.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Fetch a stage entry's raw bytes. `None` on miss *or* on any
    /// network failure (the flow must not distinguish them).
    #[must_use]
    pub fn get_stage(&self, key: u128) -> Option<Vec<u8>> {
        self.get(key, "get", |client, key| client.cache_get_stage(key))
    }

    /// Fetch a node-tier entry's raw bytes (same degradation contract as
    /// [`RemoteStore::get_stage`]).
    #[must_use]
    pub fn get_node(&self, key: u128) -> Option<Vec<u8>> {
        self.get(key, "node get", |client, key| client.cache_get_node(key))
    }

    /// Offer a stage entry to the daemon. Best-effort: a failure is
    /// counted and warned about, never surfaced.
    pub fn put_stage(&self, key: u128, bytes: Vec<u8>) {
        self.put(key, bytes, "put", |client, key, bytes| {
            client.cache_put_stage(key, bytes)
        });
    }

    /// Offer a node-tier entry to the daemon (same contract as
    /// [`RemoteStore::put_stage`]).
    pub fn put_node(&self, key: u128, bytes: Vec<u8>) {
        self.put(key, bytes, "node put", |client, key, bytes| {
            client.cache_put_node(key, bytes)
        });
    }

    /// Snapshot of the accumulated counters.
    #[must_use]
    pub fn counters(&self) -> RemoteCounters {
        RemoteCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            roundtrip: Duration::from_nanos(self.roundtrip_nanos.load(Ordering::Relaxed)),
        }
    }

    fn get(
        &self,
        key: u128,
        op: &str,
        call: impl Fn(&mut Client, u128) -> Result<Option<Vec<u8>>, ServeError>,
    ) -> Option<Vec<u8>> {
        match self.roundtrip(op, |client| call(client, key)) {
            Some(Some(bytes)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(bytes)
            }
            Some(None) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => None,
        }
    }

    fn put(
        &self,
        key: u128,
        bytes: Vec<u8>,
        op: &str,
        call: impl Fn(&mut Client, u128, Vec<u8>) -> Result<bool, ServeError>,
    ) {
        if self
            .roundtrip(op, |client| call(client, key, bytes))
            .is_some()
        {
            self.puts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Run `call` against the pooled connection (dialing if needed),
    /// timing the round-trip. Any failure drops the connection, counts an
    /// error, warns once per outage streak and yields `None`.
    fn roundtrip<T>(
        &self,
        op: &str,
        call: impl FnOnce(&mut Client) -> Result<T, ServeError>,
    ) -> Option<T> {
        let start = Instant::now();
        let result = {
            let mut conn = self.conn.lock().expect("remote store poisoned");
            if conn.is_none() {
                match self.dial() {
                    Ok(client) => *conn = Some(client),
                    Err(e) => {
                        drop(conn);
                        self.note_error(op, &e.to_string());
                        self.roundtrip_nanos
                            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        return None;
                    }
                }
            }
            let client = conn.as_mut().expect("dialed above");
            let result = call(client);
            if result.is_err() {
                // Drop the stream: the framing may be desynchronized, and
                // a dead daemon should be redialed, not retried.
                *conn = None;
            }
            result
        };
        self.roundtrip_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        match result {
            Ok(value) => {
                *self.outage.lock().expect("remote store poisoned") = None;
                Some(value)
            }
            Err(e) => {
                self.note_error(op, &e.to_string());
                None
            }
        }
    }

    fn dial(&self) -> std::io::Result<Client> {
        let addr = self
            .addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "no address"))?;
        let stream = TcpStream::connect_timeout(&addr, RemoteStore::DEFAULT_CONNECT_TIMEOUT)?;
        let client = Client::from_stream(stream);
        client.set_io_timeout(Some(RemoteStore::DEFAULT_IO_TIMEOUT))?;
        Ok(client)
    }

    /// Count the error and warn on stderr once per outage streak.
    fn note_error(&self, op: &str, message: &str) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        let mut outage = self.outage.lock().expect("remote store poisoned");
        if outage.is_none() {
            eprintln!(
                "warning: remote cache at {} unavailable ({op}: {message}); \
                 continuing local-only until it recovers",
                self.addr,
            );
        }
        *outage = Some(message.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreachable_daemon_degrades_to_none_and_counts_errors() {
        // Reserved port 9 on localhost refuses or times out immediately on
        // typical CI hosts; either way the op must degrade, not panic.
        let store = RemoteStore::new("127.0.0.1:9");
        assert!(store.get_stage(1).is_none());
        store.put_stage(2, vec![1, 2, 3]);
        let c = store.counters();
        assert_eq!((c.hits, c.misses, c.puts), (0, 0, 0));
        assert_eq!(c.errors, 2);
    }

    #[test]
    fn counters_start_zero_and_addr_is_kept() {
        let store = RemoteStore::new("example.invalid:1");
        assert_eq!(store.addr(), "example.invalid:1");
        assert_eq!(store.counters(), RemoteCounters::default());
    }
}
