//! Fixed-width ASCII table rendering, shared by every textual report of
//! the crate ([`FlowTrace::to_table`](crate::FlowTrace::to_table), the
//! [`FamilyArtifacts`](crate::FamilyArtifacts) family report, the
//! [`ParetoFront`](crate::ParetoFront) sweep report).
//!
//! The model is deliberately small: a table is a list of [`Col`]umn
//! specifications — width, alignment, and a *unit* string glued directly
//! to the cell (`" ms"`, `" %"`, a separator) — and [`TextTable::row`]
//! renders one line at a time, columns joined by single spaces, with a
//! freeform tail appended after the last provided cell. A row may
//! provide fewer cells than the table has columns (summary rows), and
//! callers keep full control over number formatting, so the rendered
//! bytes are exactly what the previous hand-rolled `format!` strings
//! produced.

/// Cell alignment within a fixed-width column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right.
    Left,
    /// Pad on the left.
    Right,
}

/// One column of a [`TextTable`]: minimum width, alignment, and the
/// literal unit/separator text glued to the cell (before the single
/// space that joins it to the next column).
#[derive(Debug, Clone, Copy)]
pub struct Col {
    /// Minimum cell width (longer cells render unclipped).
    pub width: usize,
    /// Cell alignment.
    pub align: Align,
    /// Literal text appended directly to the padded cell.
    pub unit: &'static str,
}

impl Col {
    /// A left-aligned column.
    #[must_use]
    pub fn left(width: usize, unit: &'static str) -> Col {
        Col {
            width,
            align: Align::Left,
            unit,
        }
    }

    /// A right-aligned column.
    #[must_use]
    pub fn right(width: usize, unit: &'static str) -> Col {
        Col {
            width,
            align: Align::Right,
            unit,
        }
    }
}

/// A column layout that renders rows one at a time.
#[derive(Debug, Clone)]
pub struct TextTable {
    cols: Vec<Col>,
}

impl TextTable {
    /// A table with the given column layout.
    #[must_use]
    pub fn new(cols: Vec<Col>) -> TextTable {
        TextTable { cols }
    }

    /// Render one row: the cells padded to their columns and joined by
    /// single spaces, each followed by its column's unit text, then
    /// `tail` verbatim, then a newline. Providing fewer cells than
    /// columns renders a short (summary) row; providing more panics.
    ///
    /// # Panics
    ///
    /// Panics when `cells` is longer than the column layout.
    #[must_use]
    pub fn row(&self, cells: &[String], tail: &str) -> String {
        assert!(
            cells.len() <= self.cols.len(),
            "row has {} cell(s) but the table has {} column(s)",
            cells.len(),
            self.cols.len()
        );
        let mut s = String::new();
        for (i, (cell, col)) in cells.iter().zip(&self.cols).enumerate() {
            if i > 0 {
                s.push(' ');
            }
            match col.align {
                Align::Left => s.push_str(&format!("{cell:<width$}", width = col.width)),
                Align::Right => s.push_str(&format!("{cell:>width$}", width = col.width)),
            }
            s.push_str(col.unit);
        }
        s.push_str(tail);
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_hand_rolled_format_strings() {
        // The FlowTrace stage-row layout.
        let t = TextTable::new(vec![
            Col::left(12, ""),
            Col::right(10, " ms"),
            Col::right(5, " %"),
        ]);
        let rendered = t.row(
            &["hls".to_string(), "9.000".to_string(), "93.8".to_string()],
            "  [seeded pass-through]",
        );
        let reference = format!(
            "{:<12} {:>10.3} ms {:>5.1} %{}\n",
            "hls", 9.0f64, 93.75f64, "  [seeded pass-through]"
        );
        assert_eq!(rendered, reference);
    }

    #[test]
    fn short_rows_stop_after_the_last_cell() {
        let t = TextTable::new(vec![
            Col::left(12, ""),
            Col::right(10, " ms"),
            Col::right(5, " %"),
        ]);
        assert_eq!(
            t.row(&["total".to_string(), "96.000".to_string()], ""),
            format!("total        {:>10.3} ms\n", 96.0f64)
        );
    }

    #[test]
    #[should_panic(expected = "row has 2 cell(s)")]
    fn too_many_cells_panic() {
        let t = TextTable::new(vec![Col::left(4, "")]);
        let _ = t.row(&["a".to_string(), "b".to_string()], "");
    }
}
