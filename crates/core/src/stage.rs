//! The stage abstraction of the flow engine.
//!
//! A [`Stage`] is one named, individually timed, individually testable
//! unit of the COOL design flow (spec → cost → partition → schedule →
//! stg → hls → rtl → codegen → sim-prep). Stages communicate only
//! through the typed [`FlowContext`]: each stage reads the artifacts its
//! producers left there and deposits its own. The
//! [`Engine`](crate::engine::Engine) owns ordering and timing.

use cool_codegen::CProgram;
use cool_cost::CostModel;
use cool_hls::HlsDesign;
use cool_ir::hash::{ContentHash, ContentHasher};
use cool_ir::{Mapping, NodeId, PartitioningGraph, Resource, Target};
use cool_partition::PartitionResult;
use cool_rtl::encoding::StateEncoding;
use cool_rtl::place::Placement;
use cool_rtl::{Netlist, SystemController};
use cool_schedule::StaticSchedule;
use cool_stg::{MemoryMap, MinimizeStats, Stg};

use crate::cache::ArtifactSlot;
use crate::{FlowError, FlowOptions};

/// One named unit of the design flow.
///
/// Implementations must be deterministic for equal context contents
/// (including `options.jobs`, which may change wall-clock but never
/// artifacts) — the engine's determinism tests rely on it.
pub trait Stage {
    /// Stable stage name, used for timing records and trace tables.
    fn name(&self) -> &'static str;

    /// Execute the stage: read producer artifacts from `cx`, deposit this
    /// stage's artifacts into `cx`.
    ///
    /// # Errors
    ///
    /// Any stage failure, wrapped in [`FlowError`]; reading an artifact
    /// whose producer has not run yields
    /// [`FlowError::MissingArtifact`].
    fn run(&self, cx: &mut FlowContext<'_>) -> Result<(), FlowError>;

    /// Content digest of every input this stage reads *beyond* the graph
    /// and the artifact slots declared in [`Stage::reads`] (both already
    /// covered by the engine's dependency-DAG key): the target fields and
    /// option knobs that influence this stage's output. Returning `Some`
    /// makes the stage cacheable by the
    /// [`StageCache`](crate::cache::StageCache); returning `None` opts
    /// this stage out. Downstream stages stay cacheable either way —
    /// their keys cover the *content* of the artifacts they read, not
    /// the provenance.
    ///
    /// The default digests the full target and every artifact-relevant
    /// [`FlowOptions`] field (`jobs` excluded — it never changes
    /// artifacts). That is sound for a *field-less* stage honouring the
    /// determinism contract; a stage that carries its own configuration
    /// MUST override this and digest those fields too, or two
    /// differently-configured instances will share cache keys. The
    /// standard stages override it with the precise input set they
    /// read, which is what lets sweep candidates that differ only in,
    /// say, FPGA area budgets still share their `spec` prefix.
    ///
    /// Cacheable stages must only *fill empty* context slots; a stage
    /// that mutates artifacts in place must return `None`.
    fn cache_key(&self, cx: &FlowContext<'_>) -> Option<u128> {
        let mut h = ContentHasher::new();
        cx.target.content_hash(&mut h);
        cx.options.content_hash(&mut h);
        Some(h.finish())
    }

    /// The artifact slots this stage reads. The engine folds the content
    /// digest of exactly these slots into the stage's cache key, which is
    /// what turns the key structure into a dependency DAG: a change that
    /// re-runs `hls` does not invalidate `stg`, because `stg` does not
    /// read anything `hls` writes.
    ///
    /// The default — every slot — is sound for any stage (it can only
    /// over-invalidate). Overriding with a *subset* is a promise: the
    /// stage's `run` must not observe any slot outside the returned
    /// list, or stale cache hits become possible. Inputs outside the
    /// slot system (graph, target, options) are covered by the engine's
    /// key seed and by [`Stage::cache_key`].
    fn reads(&self) -> &'static [ArtifactSlot] {
        &ArtifactSlot::ALL
    }

    /// The artifact slots this stage may fill. Purely a safety
    /// declaration: after a miss the engine checks the slots actually
    /// deposited against this list and refuses to cache the execution on
    /// a mismatch (an undeclared write means the declarations — possibly
    /// including `reads` — are wrong, and a wrong entry must never be
    /// served). The default — every slot — accepts anything.
    fn writes(&self) -> &'static [ArtifactSlot] {
        &ArtifactSlot::ALL
    }
}

/// The typed blackboard the stages communicate through.
///
/// Inputs (`graph`, `target`, `options`) are borrowed for the whole run;
/// every artifact slot starts empty and is filled by exactly one standard
/// stage. The `artifact()`/accessor methods return
/// [`FlowError::MissingArtifact`] when a consumer outruns its producer,
/// which turns mis-ordered custom engines into a diagnosable error
/// instead of a panic.
#[derive(Debug)]
pub struct FlowContext<'a> {
    /// The input specification.
    pub graph: &'a PartitioningGraph,
    /// The target board.
    pub target: &'a Target,
    /// All flow knobs.
    pub options: &'a FlowOptions,

    /// Cost model (produced by `cost`, or pre-seeded for sweeps).
    pub cost: Option<CostModel>,
    /// Partitioning outcome (produced by `partition`).
    pub partition: Option<PartitionResult>,
    /// Static schedule (produced by `schedule`).
    pub schedule: Option<StaticSchedule>,
    /// Raw STG (produced by `stg`).
    pub stg: Option<Stg>,
    /// Minimized STG (produced by `stg`).
    pub stg_minimized: Option<Stg>,
    /// Minimization statistics (produced by `stg`).
    pub minimize_stats: Option<MinimizeStats>,
    /// Communication memory map (produced by `stg`).
    pub memory_map: Option<MemoryMap>,
    /// Hardware-mapped function nodes in graph order (produced by `hls`).
    pub hw_nodes: Option<Vec<NodeId>>,
    /// Full-effort HLS designs, parallel to `hw_nodes` (produced by
    /// `hls`).
    pub hls_designs: Option<Vec<HlsDesign>>,
    /// Synthesized system controller (produced by `rtl`).
    pub controller: Option<SystemController>,
    /// Optimized controller state encoding (produced by `rtl`).
    pub encoding: Option<StateEncoding>,
    /// Generated netlist (produced by `rtl`).
    pub netlist: Option<Netlist>,
    /// Emitted VHDL units `(file name, source)` (produced by `rtl`).
    pub vhdl: Option<Vec<(String, String)>>,
    /// CLB placements per FPGA hosting logic (produced by `rtl`).
    pub placements: Option<Vec<(Resource, Placement)>>,
    /// Generated C programs (produced by `codegen`).
    pub c_programs: Option<Vec<CProgram>>,

    /// The node-level cache tier, injected by the engine when a
    /// [`StageCache`](crate::cache::StageCache) is attached. Stages that
    /// work per node (`hls`, `stg`, `rtl`) consult it to reuse clean
    /// nodes' artifacts; `None` means "compute everything fresh".
    pub node_cache: Option<crate::cache::StageCache>,
    /// Node-level cache activity deposited by stages as they run, as
    /// `(stage name, delta)`; the engine drains these into the matching
    /// [`StageRecord`](crate::timing::StageRecord)s.
    pub node_deltas: Vec<(&'static str, crate::timing::NodeDelta)>,
}

impl<'a> FlowContext<'a> {
    /// An empty context over the given inputs.
    #[must_use]
    pub fn new(
        graph: &'a PartitioningGraph,
        target: &'a Target,
        options: &'a FlowOptions,
    ) -> FlowContext<'a> {
        FlowContext {
            graph,
            target,
            options,
            cost: None,
            partition: None,
            schedule: None,
            stg: None,
            stg_minimized: None,
            minimize_stats: None,
            memory_map: None,
            hw_nodes: None,
            hls_designs: None,
            controller: None,
            encoding: None,
            netlist: None,
            vhdl: None,
            placements: None,
            c_programs: None,
            node_cache: None,
            node_deltas: Vec::new(),
        }
    }

    /// An empty context pre-seeded with a cost model, so the `cost` stage
    /// becomes a no-op. This is the sharing seam for sweeps that evaluate
    /// many partitions of one graph: estimation runs once, not once per
    /// candidate.
    #[must_use]
    pub fn with_cost(
        graph: &'a PartitioningGraph,
        target: &'a Target,
        options: &'a FlowOptions,
        cost: CostModel,
    ) -> FlowContext<'a> {
        let mut cx = FlowContext::new(graph, target, options);
        cx.cost = Some(cost);
        cx
    }

    fn artifact<'s, T>(slot: &'s Option<T>, what: &'static str) -> Result<&'s T, FlowError> {
        slot.as_ref().ok_or(FlowError::MissingArtifact(what))
    }

    /// The cost model, or [`FlowError::MissingArtifact`].
    pub fn cost(&self) -> Result<&CostModel, FlowError> {
        Self::artifact(&self.cost, "cost model")
    }

    /// The partitioning outcome, or [`FlowError::MissingArtifact`].
    pub fn partition(&self) -> Result<&PartitionResult, FlowError> {
        Self::artifact(&self.partition, "partition result")
    }

    /// The node→resource mapping, or [`FlowError::MissingArtifact`].
    pub fn mapping(&self) -> Result<&Mapping, FlowError> {
        Ok(&self.partition()?.mapping)
    }

    /// The static schedule, or [`FlowError::MissingArtifact`].
    pub fn schedule(&self) -> Result<&StaticSchedule, FlowError> {
        Self::artifact(&self.schedule, "static schedule")
    }

    /// The minimized STG, or [`FlowError::MissingArtifact`].
    pub fn stg_minimized(&self) -> Result<&Stg, FlowError> {
        Self::artifact(&self.stg_minimized, "minimized STG")
    }

    /// The memory map, or [`FlowError::MissingArtifact`].
    pub fn memory_map(&self) -> Result<&MemoryMap, FlowError> {
        Self::artifact(&self.memory_map, "memory map")
    }

    /// Hardware-mapped function nodes, or [`FlowError::MissingArtifact`].
    pub fn hw_nodes(&self) -> Result<&[NodeId], FlowError> {
        Self::artifact(&self.hw_nodes, "hardware node list").map(Vec::as_slice)
    }

    /// The HLS designs, or [`FlowError::MissingArtifact`].
    pub fn hls_designs(&self) -> Result<&[HlsDesign], FlowError> {
        Self::artifact(&self.hls_designs, "HLS designs").map(Vec::as_slice)
    }

    /// The system controller, or [`FlowError::MissingArtifact`].
    pub fn controller(&self) -> Result<&SystemController, FlowError> {
        Self::artifact(&self.controller, "system controller")
    }

    /// The netlist, or [`FlowError::MissingArtifact`].
    pub fn netlist(&self) -> Result<&Netlist, FlowError> {
        Self::artifact(&self.netlist, "netlist")
    }
}
