//! The persistent tier of the stage cache: one file per cached stage
//! execution in a `.cool-cache/` directory.
//!
//! # Layout
//!
//! Every entry lives at `<dir>/<key>.cce` where `<key>` is the stage's
//! 128-bit content key in lower-case hex (32 characters). The file is:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"COOLCCH\0"
//! 8       4     format version (u32 LE, currently 2)
//! 12      16    slot-layout digest (u128 LE): FNV-1a 128 over the
//!               ArtifactSlot names in index order, so a reordered or
//!               renamed slot set reads as a mismatch even without a
//!               manual version bump
//! 28      8     payload length in bytes (u64 LE)
//! 36      n     payload (cool_ir::codec encoding, see below)
//! 36+n    16    FNV-1a 128 checksum of the payload (u128 LE)
//! ```
//!
//! The payload starts with a one-byte **entry kind**:
//!
//! * kind `0` — a stage execution: `(cost_nanos: u64, writes:
//!   Vec<(ArtifactSlot, u128)>, delta: ArtifactDelta)` with the
//!   canonical [`cool_ir::codec`] encoding — the original execution's
//!   wall-clock (what a hit "saves"), the content digests of the slots
//!   the delta fills (so the engine can extend its slot-digest table
//!   without re-hashing), and the artifacts themselves.
//! * kind `1` — a per-node artifact ([`crate::cache::NodeArtifact`]):
//!   one HLS design, VHDL unit or STG fragment, cached one level below
//!   stages so a spec edit only recomputes the dirty nodes.
//!
//! Stage and node entries share the directory and file format but live
//! in disjoint key namespaces (DAG stage keys vs `cool-node-key/…`
//! digests), so a kind can never legitimately appear under the other
//! accessor's key; if it does ([`DiskStore::load`] /
//! [`DiskStore::load_node`] finding the other kind) the read degrades
//! to a miss and the entry is left alone.
//!
//! # Robustness
//!
//! Writes go to a unique temporary file in the same directory followed by
//! an atomic rename, so readers never observe a half-written entry and
//! concurrent writers of the same key degrade to last-writer-wins (safe:
//! stage determinism makes both payloads identical). Reads validate
//! magic, version, length and checksum and decode through the
//! bounds-checked codec; *any* failure — truncation, bit flips, a future
//! format version, junk files — is treated as a miss and the offending
//! entry is evicted from the directory. Corruption can therefore cost
//! recomputation, never wrong artifacts and never a panic — the battery
//! in `tests/disk_cache.rs` drives truncated, bit-flipped and
//! version-bumped entries through a full flow to prove it.
//!
//! # Size cap
//!
//! A store is bounded to a byte budget ([`DEFAULT_MAX_BYTES`], override
//! via [`DiskStore::open_with_cap`] / `--cache-max-bytes`): whenever
//! the entry files exceed the cap — checked at open and after every
//! insert, against a running byte estimate so inserts do not rescan the
//! directory; because the estimate only sees this handle's writes, it is
//! re-measured against the directory every few inserts so processes
//! sharing a cache (a `cool serve` daemon plus ad-hoc CLI runs) still
//! enforce the cap against each other's growth — the
//! least-recently-used entries are evicted first (LRU
//! by mtime; every hit refreshes its entry's mtime, and ties break on
//! the file name so coarse timestamps stay deterministic). A long-lived
//! shared `.cool-cache/` can therefore no longer grow without bound.
//! Evictions are counted ([`DiskStore::size_evictions`]) and surface in
//! the stage-cache summaries; `cool cache stats` reports over-cap state
//! read-only ([`DiskStore::would_evict`]).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use cool_ir::codec::{from_bytes, Encoder};
use cool_ir::ContentHasher;

use crate::cache::{ArtifactDelta, ArtifactSlot, NodeArtifact, StageKey};

/// Entry file magic.
const MAGIC: [u8; 8] = *b"COOLCCH\0";
/// On-disk format version. Bump on ANY encoding change — including a
/// change to a single artifact type's `Codec` impl in another crate:
/// the slot-layout digest in the header only catches changes to the
/// slot *set*, not to the per-type byte encodings, so a shape-compatible
/// field reorder without a bump here would decode stale entries into
/// wrong values. Old entries then read as version mismatches and are
/// evicted, exactly like corruption.
///
/// v2: `PartitionResult` gained the `optimality` field.
/// v3: `PartitionResult` gained the `gap` field (truncated-solve
/// optimality gap).
/// v4: the payload gained a leading entry-kind byte, and node-level
/// entries ([`crate::cache::NodeArtifact`]) joined the format.
pub const FORMAT_VERSION: u32 = 4;
/// Entry-kind byte of a stage execution.
const KIND_STAGE: u8 = 0;
/// Entry-kind byte of a per-node artifact.
const KIND_NODE: u8 = 1;
/// Entry file extension.
const EXT: &str = "cce";
/// Fixed header size: magic + version + layout digest + payload length.
const HEADER: usize = 8 + 4 + 16 + 8;
/// Trailing checksum size.
const CHECKSUM: usize = 16;

/// Monotonic discriminator for temporary file names, so concurrent
/// writers in one process never collide.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// How many inserts may ride on the running byte estimate before it is
/// re-measured against the directory. The estimate only tracks *this
/// process's* inserts and evictions; when several processes share a
/// `.cool-cache/` (daemon + CLI, or the two-process CI smoke) each one
/// under-counts the others' writes and its cap check can stay below
/// `max_bytes` while the directory grows without bound. A periodic
/// rescan bounds that drift to at most `HINT_SYNC_INTERVAL` foreign-ish
/// inserts' worth per writer without putting a directory walk on every
/// insert.
const HINT_SYNC_INTERVAL: u64 = 16;

/// What [`DiskStore::load`] found for a key.
#[derive(Debug)]
pub enum Load {
    /// A valid entry.
    Hit {
        /// The artifacts to restore (boxed: a delta is large next to the
        /// other variants).
        delta: Box<ArtifactDelta>,
        /// Digests of the slots the delta fills.
        writes: Vec<(ArtifactSlot, u128)>,
        /// Wall-clock the original execution took.
        cost: Duration,
    },
    /// No entry for this key.
    Miss,
    /// An entry existed but failed validation (corrupt, truncated, or a
    /// different format version) and was evicted from the directory.
    Evicted,
}

/// What [`DiskStore::load_node`] found for a node key.
#[derive(Debug)]
pub enum NodeLoad {
    /// A valid node-level entry.
    Hit(NodeArtifact),
    /// No entry for this key (or a stage entry, which a node accessor
    /// treats as a miss without evicting — see the module docs).
    Miss,
    /// An entry existed but failed validation and was evicted.
    Evicted,
}

/// Read-only census of a store's entry files by kind, as reported by
/// [`DiskStore::kind_counts`] for `cool cache stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounts {
    /// Valid stage-execution entries.
    pub stage: usize,
    /// Valid node-level entries.
    pub node: usize,
    /// Entries that fail validation (corrupt, truncated, foreign
    /// version, unknown kind). These are *counted*, never evicted — the
    /// census must stay read-only; the next keyed access evicts them.
    pub invalid: usize,
}

/// Default byte-size cap for a store: generous for real flows but a
/// hard stop against the unbounded growth a long-lived shared cache
/// directory would otherwise exhibit.
pub const DEFAULT_MAX_BYTES: u64 = 512 * 1024 * 1024;

/// A directory of serialized stage executions, bounded to a byte-size
/// cap: whenever the entry files exceed `max_bytes` (checked when the
/// store opens and after every insert), the least-recently-*used*
/// entries — LRU by file mtime, which [`DiskStore::load`] refreshes on
/// every hit, oldest first — are evicted until the directory fits.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    max_bytes: u64,
    size_evictions: AtomicU64,
    /// Running estimate of the entry bytes on disk, seeded by one scan
    /// at open and maintained on insert/evict, so the per-insert cap
    /// check is an atomic comparison instead of a directory scan. Drifts
    /// when other processes share the directory; every full enforcement
    /// pass re-syncs it to the measured total, and every
    /// [`HINT_SYNC_INTERVAL`]-th insert re-measures even without a cap
    /// breach so cross-process under-counting cannot defer enforcement
    /// forever.
    bytes_hint: AtomicU64,
    /// Inserts since the estimate was last re-measured (see
    /// [`HINT_SYNC_INTERVAL`]).
    inserts_since_sync: AtomicU64,
}

impl DiskStore {
    /// Open (creating if absent) a store at `dir` with the
    /// [`DEFAULT_MAX_BYTES`] size cap.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<DiskStore> {
        DiskStore::open_with_cap(dir, DEFAULT_MAX_BYTES)
    }

    /// Open (creating if absent) a store capped to `max_bytes` of entry
    /// files (`0` = unbounded). An over-cap directory is trimmed
    /// immediately, so stale caches from before a smaller cap — or from
    /// another tool's runs — shrink on first contact.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the directory cannot be created.
    pub fn open_with_cap(dir: impl AsRef<Path>, max_bytes: u64) -> io::Result<DiskStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let store = DiskStore {
            dir,
            max_bytes,
            size_evictions: AtomicU64::new(0),
            bytes_hint: AtomicU64::new(0),
            inserts_since_sync: AtomicU64::new(0),
        };
        store
            .bytes_hint
            .store(store.total_bytes(), Ordering::Relaxed);
        store.enforce_cap(None);
        Ok(store)
    }

    /// The store's directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The byte-size cap (`0` = unbounded).
    #[must_use]
    pub fn max_bytes(&self) -> u64 {
        self.max_bytes
    }

    /// Entries evicted by this store instance to honour the size cap.
    #[must_use]
    pub fn size_evictions(&self) -> u64 {
        self.size_evictions.load(Ordering::Relaxed)
    }

    /// Evict oldest-mtime entries until the directory fits `max_bytes`,
    /// never touching `protect` (the entry just written: evicting the
    /// newest insert to keep stale ones would invert the LRU intent).
    /// The full directory scan only happens when the running byte
    /// estimate says the cap may be exceeded. I/O failures degrade to
    /// "cap not enforced this round" — the cap is hygiene, not
    /// correctness.
    fn enforce_cap(&self, protect: Option<&Path>) {
        if self.max_bytes == 0 || self.bytes_hint.load(Ordering::Relaxed) <= self.max_bytes {
            return;
        }
        let (measured, plan) = self.eviction_plan();
        self.resync_hint(measured);
        let mut total = measured;
        for (len, path) in plan {
            if total <= self.max_bytes {
                break;
            }
            if Some(path.as_path()) == protect {
                continue;
            }
            if fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                self.bytes_hint.fetch_sub(len, Ordering::Relaxed);
                self.size_evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Fold the measured entry-byte total into the running estimate as a
    /// *delta*, never a blind store: a store would erase the `fetch_add`
    /// of a worker inserting concurrently (the store is Arc-shared
    /// across sweep threads). A racing correction can still leave the
    /// hint off by a few entries — harmless: over-estimates trigger a
    /// re-scan that corrects, under-estimates defer enforcement to a
    /// later insert or the next periodic re-sync.
    fn resync_hint(&self, measured: u64) {
        let hint = self.bytes_hint.load(Ordering::Relaxed);
        if measured >= hint {
            self.bytes_hint
                .fetch_add(measured - hint, Ordering::Relaxed);
        } else {
            self.bytes_hint
                .fetch_sub(hint - measured, Ordering::Relaxed);
        }
    }

    /// The single source of the cap policy, shared by `enforce_cap`
    /// (which deletes victims) and [`DiskStore::would_evict`] (which
    /// only counts them): the measured entry-byte total plus every
    /// entry as `(len, path)` in eviction order — oldest mtime first,
    /// path as the tie-break so equal-mtime bursts (coarse filesystem
    /// timestamps) still order deterministically.
    fn eviction_plan(&self) -> (u64, Vec<(u64, PathBuf)>) {
        let mut entries: Vec<(std::time::SystemTime, u64, PathBuf)> = self
            .entry_files()
            .filter_map(|p| {
                let meta = fs::metadata(&p).ok()?;
                Some((meta.modified().ok()?, meta.len(), p))
            })
            .collect();
        let total = entries.iter().map(|&(_, len, _)| len).sum();
        entries.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.2.cmp(&b.2)));
        (
            total,
            entries.into_iter().map(|(_, len, p)| (len, p)).collect(),
        )
    }

    /// How many entries the given cap would evict right now (`0` =
    /// unbounded cap). Read-only: `cool cache stats` uses this to report
    /// over-cap state without mutating the directory. Counts over the
    /// same `eviction_plan` order `enforce_cap` deletes in.
    #[must_use]
    pub fn would_evict(&self, max_bytes: u64) -> usize {
        if max_bytes == 0 {
            return 0;
        }
        let (measured, plan) = self.eviction_plan();
        let mut total = measured;
        let mut victims = 0;
        for (len, _) in plan {
            if total <= max_bytes {
                break;
            }
            total = total.saturating_sub(len);
            victims += 1;
        }
        victims
    }

    fn entry_path(&self, key: StageKey) -> PathBuf {
        self.dir.join(format!("{key:032x}.{EXT}"))
    }

    /// Serialize one stage execution under `key`. Returns `Ok(false)`
    /// without touching the filesystem when the entry already exists
    /// (stage determinism makes rewrites pointless).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing or renaming the entry; callers
    /// may treat them as "disk tier unavailable" and continue.
    pub fn store(
        &self,
        key: StageKey,
        delta: &ArtifactDelta,
        writes: &[(ArtifactSlot, u128)],
        cost: Duration,
    ) -> io::Result<bool> {
        let file = encode_entry_with_version(delta, writes, cost, FORMAT_VERSION);
        self.write_entry(key, &file)
    }

    /// Serialize one per-node artifact under its (namespaced) node key.
    /// Returns `Ok(false)` without touching the filesystem when the
    /// entry already exists.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing or renaming the entry; callers
    /// may treat them as "disk tier unavailable" and continue.
    pub fn store_node(&self, key: StageKey, artifact: &NodeArtifact) -> io::Result<bool> {
        let file = encode_node_entry_with_version(artifact, FORMAT_VERSION);
        self.write_entry(key, &file)
    }

    /// Atomically (tmp + rename) write an encoded entry file, skipping
    /// keys that already have one — shared by [`DiskStore::store`] and
    /// [`DiskStore::store_node`].
    fn write_entry(&self, key: StageKey, file: &[u8]) -> io::Result<bool> {
        let path = self.entry_path(key);
        if path.exists() {
            return Ok(false);
        }
        let tmp = self.dir.join(format!(
            ".{key:032x}.{}.{}.tmp",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let len = file.len() as u64;
        fs::write(&tmp, file)?;
        match fs::rename(&tmp, &path) {
            Ok(()) => {
                self.bytes_hint.fetch_add(len, Ordering::Relaxed);
                // Every Nth insert, re-measure the directory before the
                // cap check: the estimate only sees this handle's
                // writes, so a daemon and a CLI sharing the directory
                // would otherwise each stay "under cap" forever while
                // jointly blowing past it (regression test
                // `shared_directory_cap_survives_a_second_writer`).
                if self.max_bytes != 0
                    && self.inserts_since_sync.fetch_add(1, Ordering::Relaxed) + 1
                        >= HINT_SYNC_INTERVAL
                {
                    self.inserts_since_sync.store(0, Ordering::Relaxed);
                    self.resync_hint(self.total_bytes());
                }
                self.enforce_cap(Some(&path));
                Ok(true)
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Read and validate the entry for `key`. Anything that is not a
    /// byte-perfect current-version entry is a miss; invalid entries are
    /// additionally evicted from the directory ([`Load::Evicted`]).
    #[must_use]
    pub fn load(&self, key: StageKey) -> Load {
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Load::Miss,
            // Unreadable (permissions, I/O error): an unreadable entry
            // is worthless as cache content and — because `store` skips
            // existing paths — would otherwise pin its key to a
            // permanent miss. Try to evict so the recompute can rewrite
            // it; if removal fails too (e.g. a foreign-owned file we
            // cannot touch anyway), degrade to a plain miss.
            Err(_) => {
                return if fs::remove_file(&path).is_ok() {
                    Load::Evicted
                } else {
                    Load::Miss
                };
            }
        };
        match split_entry(&bytes) {
            Some((KIND_STAGE, body)) => match decode_stage_body(body) {
                Some((delta, writes, cost)) => {
                    Self::touch(&path);
                    Load::Hit {
                        delta: Box::new(delta),
                        writes,
                        cost,
                    }
                }
                None => {
                    let _ = fs::remove_file(&path);
                    Load::Evicted
                }
            },
            // A valid entry of the other kind: a key-namespace violation
            // that cannot arise from our own writers. Leave it alone and
            // miss, rather than evicting someone's valid entry.
            Some((KIND_NODE, _)) => Load::Miss,
            _ => {
                let _ = fs::remove_file(&path);
                Load::Evicted
            }
        }
    }

    /// Read and validate the node-level entry for `key`. Junk degrades
    /// to a miss (the node is recomputed), never a panic; invalid
    /// entries are evicted so the recompute can rewrite them.
    #[must_use]
    pub fn load_node(&self, key: StageKey) -> NodeLoad {
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return NodeLoad::Miss,
            Err(_) => {
                return if fs::remove_file(&path).is_ok() {
                    NodeLoad::Evicted
                } else {
                    NodeLoad::Miss
                };
            }
        };
        match split_entry(&bytes) {
            Some((KIND_NODE, body)) => match from_bytes::<NodeArtifact>(body) {
                Ok(artifact) => {
                    Self::touch(&path);
                    NodeLoad::Hit(artifact)
                }
                Err(_) => {
                    let _ = fs::remove_file(&path);
                    NodeLoad::Evicted
                }
            },
            Some((KIND_STAGE, _)) => NodeLoad::Miss,
            _ => {
                let _ = fs::remove_file(&path);
                NodeLoad::Evicted
            }
        }
    }

    /// LRU recency: refresh an entry's mtime on every hit, so the size
    /// cap evicts genuinely cold entries instead of the oldest-written
    /// (and hottest-hit) ones. Best effort; a read-only directory just
    /// degrades to eviction by write age.
    fn touch(path: &Path) {
        if let Ok(f) = fs::File::options().write(true).open(path) {
            let _ = f.set_modified(std::time::SystemTime::now());
        }
    }

    /// Count the store's entry files by kind, read-only: nothing is
    /// evicted, no mtime is refreshed — `cool cache stats` must be able
    /// to report a directory (including its junk) without mutating it.
    #[must_use]
    pub fn kind_counts(&self) -> KindCounts {
        let mut counts = KindCounts::default();
        for path in self.entry_files() {
            let Ok(bytes) = fs::read(&path) else {
                counts.invalid += 1;
                continue;
            };
            match split_entry(&bytes) {
                Some((KIND_STAGE, body)) if decode_stage_body(body).is_some() => counts.stage += 1,
                Some((KIND_NODE, body)) if from_bytes::<NodeArtifact>(body).is_ok() => {
                    counts.node += 1;
                }
                _ => counts.invalid += 1,
            }
        }
        counts
    }

    /// Remove every entry file, plus any `.tmp` leftovers from writers
    /// that crashed between write and rename. Returns how many entry
    /// files were removed (tmp leftovers are not counted). Unrelated
    /// files are left alone.
    ///
    /// # Errors
    ///
    /// Propagates directory-listing errors; individual remove failures
    /// are skipped.
    pub fn clear(&self) -> io::Result<usize> {
        let mut removed = 0;
        for entry in fs::read_dir(&self.dir)? {
            let Ok(entry) = entry else { continue };
            let path = entry.path();
            match path.extension().and_then(|e| e.to_str()) {
                Some(EXT) if fs::remove_file(&path).is_ok() => removed += 1,
                Some("tmp") => {
                    let _ = fs::remove_file(&path);
                }
                _ => {}
            }
        }
        self.bytes_hint.store(self.total_bytes(), Ordering::Relaxed);
        Ok(removed)
    }

    /// Number of entry files currently in the directory.
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.entry_files().count()
    }

    /// Total size in bytes of all entry files.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.entry_files()
            .filter_map(|p| fs::metadata(p).ok())
            .map(|m| m.len())
            .sum()
    }

    fn entry_files(&self) -> impl Iterator<Item = PathBuf> {
        fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(EXT) && p.is_file())
    }
}

fn checksum(payload: &[u8]) -> u128 {
    let mut h = ContentHasher::new();
    h.write(payload);
    h.finish()
}

/// Digest of the artifact-slot layout the payload encoding depends on:
/// the slot names in index order. Folded into every entry header so
/// that changing the slot set — the one edit the `for_each_slot!` macro
/// invites — invalidates old entries mechanically even when the
/// [`FORMAT_VERSION`] bump was forgotten. It does NOT cover the
/// per-type byte encodings; a `Codec` impl change still requires the
/// version bump (see [`FORMAT_VERSION`]).
fn layout_digest() -> u128 {
    let mut h = ContentHasher::new();
    for slot in ArtifactSlot::ALL {
        h.write_str(slot.name());
    }
    h.finish()
}

/// The decoded contents of one stage entry's payload body: the artifact
/// delta, the digests of the slots it fills, and the original
/// execution's wall-clock cost.
pub type DecodedEntry = (ArtifactDelta, Vec<(ArtifactSlot, u128)>, Duration);

/// Validate one entry file's envelope — magic, version, layout digest,
/// length, checksum — and split the payload into `(kind, body)`. `None`
/// on any malformation.
fn split_entry(bytes: &[u8]) -> Option<(u8, &[u8])> {
    if bytes.len() < HEADER + CHECKSUM || bytes[..8] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().ok()?);
    if version != FORMAT_VERSION {
        return None;
    }
    let layout = u128::from_le_bytes(bytes[12..28].try_into().ok()?);
    if layout != layout_digest() {
        return None;
    }
    let payload_len = u64::from_le_bytes(bytes[28..36].try_into().ok()?);
    let payload_len = usize::try_from(payload_len).ok()?;
    if bytes.len() != HEADER + payload_len + CHECKSUM {
        return None;
    }
    let payload = &bytes[HEADER..HEADER + payload_len];
    let stored = u128::from_le_bytes(bytes[HEADER + payload_len..].try_into().ok()?);
    if checksum(payload) != stored {
        return None;
    }
    let (&kind, body) = payload.split_first()?;
    Some((kind, body))
}

/// Decode a stage entry's payload body. `None` on any malformation.
fn decode_stage_body(body: &[u8]) -> Option<DecodedEntry> {
    let (cost_nanos, writes, delta): (u64, Vec<(ArtifactSlot, u128)>, ArtifactDelta) =
        from_bytes(body).ok()?;
    Some((delta, writes, Duration::from_nanos(cost_nanos)))
}

/// Validate and decode one complete *stage* entry file — the exact bytes
/// [`DiskStore::store`] writes and the remote-cache protocol carries —
/// with the same totality as [`DiskStore::load`]: magic, version, layout
/// digest, length, checksum, entry kind and body must all validate.
/// `None` on any malformation (including a valid entry of the node
/// kind).
#[must_use]
pub fn decode_stage_entry(bytes: &[u8]) -> Option<DecodedEntry> {
    match split_entry(bytes) {
        Some((KIND_STAGE, body)) => decode_stage_body(body),
        _ => None,
    }
}

/// Validate and decode one complete *node* entry file, with the same
/// totality as [`DiskStore::load_node`]. `None` on any malformation
/// (including a valid entry of the stage kind).
#[must_use]
pub fn decode_node_entry(bytes: &[u8]) -> Option<NodeArtifact> {
    match split_entry(bytes) {
        Some((KIND_NODE, body)) => from_bytes::<NodeArtifact>(body).ok(),
        _ => None,
    }
}

/// Wrap a kind-tagged payload body into a complete entry file.
fn encode_file(kind: u8, body: &[u8], version: u32) -> Vec<u8> {
    let payload_len = body.len() + 1;
    let mut file = Vec::with_capacity(HEADER + payload_len + CHECKSUM);
    file.extend_from_slice(&MAGIC);
    file.extend_from_slice(&version.to_le_bytes());
    file.extend_from_slice(&layout_digest().to_le_bytes());
    file.extend_from_slice(&(payload_len as u64).to_le_bytes());
    file.push(kind);
    file.extend_from_slice(body);
    let payload_start = file.len() - payload_len;
    let sum = checksum(&file[payload_start..]);
    file.extend_from_slice(&sum.to_le_bytes());
    file
}

/// Encode one complete stage entry file. [`DiskStore::store`] writes
/// these with [`FORMAT_VERSION`]; tests pass other versions to fabricate
/// version-bumped files in the otherwise-identical layout.
#[must_use]
pub fn encode_entry_with_version(
    delta: &ArtifactDelta,
    writes: &[(ArtifactSlot, u128)],
    cost: Duration,
    version: u32,
) -> Vec<u8> {
    let mut body = Encoder::new();
    body.put_u64(u64::try_from(cost.as_nanos()).unwrap_or(u64::MAX));
    body.put(&writes.to_vec());
    body.put(delta);
    encode_file(KIND_STAGE, &body.into_bytes(), version)
}

/// Encode one complete node-level entry file; the test battery uses
/// non-current `version`s to fabricate stale node entries.
#[must_use]
pub fn encode_node_entry_with_version(artifact: &NodeArtifact, version: u32) -> Vec<u8> {
    encode_file(KIND_NODE, &cool_ir::codec::to_bytes(artifact), version)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cool-disk-test-{tag}-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_load_roundtrip_and_skip_existing() {
        let dir = temp_dir("roundtrip");
        let store = DiskStore::open(&dir).unwrap();
        let writes = vec![(ArtifactSlot::Cost, 42u128)];
        let cost = Duration::from_micros(123);
        assert!(store
            .store(7, &ArtifactDelta::default(), &writes, cost)
            .unwrap());
        assert!(
            !store
                .store(7, &ArtifactDelta::default(), &writes, cost)
                .unwrap(),
            "existing entries are not rewritten"
        );
        match store.load(7) {
            Load::Hit {
                delta,
                writes: w,
                cost: c,
            } => {
                assert_eq!(delta.slot_count(), 0);
                assert_eq!(w, writes);
                assert_eq!(c, cost);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert!(matches!(store.load(8), Load::Miss));
        assert_eq!(store.entry_count(), 1);
        assert!(store.total_bytes() > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_mismatched_entries_are_evicted() {
        let dir = temp_dir("corrupt");
        let store = DiskStore::open(&dir).unwrap();
        let cost = Duration::from_micros(5);
        store
            .store(1, &ArtifactDelta::default(), &[], cost)
            .unwrap();
        // Bit-flip inside the payload.
        let path = store.entry_path(1);
        let mut bytes = fs::read(&path).unwrap();
        let mid = HEADER + 1;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(store.load(1), Load::Evicted));
        assert!(matches!(store.load(1), Load::Miss), "eviction removed it");

        // Version bump.
        let future =
            encode_entry_with_version(&ArtifactDelta::default(), &[], cost, FORMAT_VERSION + 1);
        fs::write(store.entry_path(2), &future).unwrap();
        assert!(matches!(store.load(2), Load::Evicted));

        // Layout mismatch: a flipped byte in the header's layout digest
        // must read as a different slot layout and evict.
        store
            .store(5, &ArtifactDelta::default(), &[], cost)
            .unwrap();
        let path = store.entry_path(5);
        let mut bytes = fs::read(&path).unwrap();
        bytes[14] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(store.load(5), Load::Evicted));

        // Truncation.
        store
            .store(3, &ArtifactDelta::default(), &[], cost)
            .unwrap();
        let path = store.entry_path(3);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(store.load(3), Load::Evicted));

        // Empty file.
        fs::write(store.entry_path(4), b"").unwrap();
        assert!(matches!(store.load(4), Load::Evicted));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn size_cap_evicts_oldest_entries_first() {
        let dir = temp_dir("cap");
        // Unbounded store to seed entries with distinct mtimes.
        let seed = DiskStore::open_with_cap(&dir, 0).unwrap();
        let writes = vec![(ArtifactSlot::Cost, 7u128); 8]; // pad the payload
        for key in 1u128..=4 {
            seed.store(key, &ArtifactDelta::default(), &writes, Duration::ZERO)
                .unwrap();
            // Distinct mtimes even on coarse-timestamp filesystems.
            std::thread::sleep(Duration::from_millis(15));
        }
        let entry_bytes = fs::metadata(seed.entry_path(1)).unwrap().len();
        assert_eq!(seed.size_evictions(), 0, "cap 0 means unbounded");

        // Reopen with room for two entries: the two oldest must go.
        let capped = DiskStore::open_with_cap(&dir, entry_bytes * 2).unwrap();
        assert_eq!(capped.size_evictions(), 2);
        assert_eq!(capped.entry_count(), 2);
        assert!(matches!(capped.load(1), Load::Miss), "oldest evicted");
        assert!(
            matches!(capped.load(2), Load::Miss),
            "second-oldest evicted"
        );
        assert!(matches!(capped.load(3), Load::Hit { .. }));
        assert!(matches!(capped.load(4), Load::Hit { .. }));

        // Inserting over the cap evicts the oldest survivor, never the
        // entry just written.
        std::thread::sleep(Duration::from_millis(15));
        capped
            .store(5, &ArtifactDelta::default(), &writes, Duration::ZERO)
            .unwrap();
        assert_eq!(capped.size_evictions(), 3);
        assert!(matches!(capped.load(3), Load::Miss), "LRU victim");
        assert!(matches!(capped.load(4), Load::Hit { .. }));
        assert!(
            matches!(capped.load(5), Load::Hit { .. }),
            "fresh insert survives"
        );
        assert!(capped.total_bytes() <= entry_bytes * 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_directory_cap_survives_a_second_writer() {
        // Two handles on one directory — the daemon-plus-CLI shape. The
        // capped handle's running byte estimate never sees the other
        // handle's inserts; before the periodic re-sync its cap check
        // would stay "under budget" forever while the directory grew
        // without bound.
        let dir = temp_dir("shared-cap");
        let writes = vec![(ArtifactSlot::Cost, 7u128); 8]; // pad the payload
        let capped = DiskStore::open_with_cap(&dir, 1).unwrap();
        capped
            .store(1, &ArtifactDelta::default(), &writes, Duration::ZERO)
            .unwrap();
        let entry_bytes = fs::metadata(capped.entry_path(1)).unwrap().len();

        // A second, unbounded handle floods the directory far past the
        // capped handle's budget (re-opened with room for ~4 entries so
        // the flood is unambiguously over cap).
        let capped = DiskStore::open_with_cap(&dir, entry_bytes * 4).unwrap();
        let other = DiskStore::open_with_cap(&dir, 0).unwrap();
        for key in 100u128..140 {
            other
                .store(key, &ArtifactDelta::default(), &writes, Duration::ZERO)
                .unwrap();
        }
        assert!(other.total_bytes() > entry_bytes * 10);
        std::thread::sleep(Duration::from_millis(15));

        // Fewer inserts than the flood, but enough to cross the re-sync
        // interval: the capped handle must notice the foreign bytes and
        // trim the shared directory back under its budget.
        for key in 1u128..=HINT_SYNC_INTERVAL as u128 {
            capped
                .store(key, &ArtifactDelta::default(), &writes, Duration::ZERO)
                .unwrap();
        }
        assert!(
            capped.total_bytes() <= entry_bytes * 4,
            "periodic re-sync must enforce the cap against foreign inserts \
             ({} bytes on disk, cap {})",
            capped.total_bytes(),
            entry_bytes * 4
        );
        assert!(capped.size_evictions() > 0, "the trim actually ran");
        assert!(
            matches!(capped.load(HINT_SYNC_INTERVAL as u128), Load::Hit { .. }),
            "the freshest insert survives the trim"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiny_cap_still_keeps_the_fresh_insert() {
        // A cap smaller than one entry cannot evict the entry it just
        // wrote (that would make the cache permanently useless); it
        // evicts everything else instead.
        let dir = temp_dir("tiny-cap");
        let store = DiskStore::open_with_cap(&dir, 1).unwrap();
        store
            .store(1, &ArtifactDelta::default(), &[], Duration::ZERO)
            .unwrap();
        assert!(matches!(store.load(1), Load::Hit { .. }));
        std::thread::sleep(Duration::from_millis(15));
        store
            .store(2, &ArtifactDelta::default(), &[], Duration::ZERO)
            .unwrap();
        assert!(matches!(store.load(1), Load::Miss));
        assert!(matches!(store.load(2), Load::Hit { .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    fn sample_artifact() -> NodeArtifact {
        NodeArtifact::Hls(cool_hls::HlsDesign {
            name: String::new(),
            latency_cycles: 7,
            area_clbs: 42,
            fu_instances: (1, 0, 2),
            register_count: 3,
            mux_count: 4,
            fsm_states: 8,
            operation_count: 5,
        })
    }

    #[test]
    fn node_entries_roundtrip_and_keep_their_kind() {
        let dir = temp_dir("node-roundtrip");
        let store = DiskStore::open(&dir).unwrap();
        let artifact = sample_artifact();
        assert!(store.store_node(11, &artifact).unwrap());
        assert!(!store.store_node(11, &artifact).unwrap(), "no rewrite");
        match store.load_node(11) {
            NodeLoad::Hit(back) => assert_eq!(back, artifact),
            other => panic!("expected node hit, got {other:?}"),
        }
        assert!(matches!(store.load_node(12), NodeLoad::Miss));
        // The stage accessor must treat the (valid) node entry as a
        // miss without evicting it, and vice versa.
        assert!(matches!(store.load(11), Load::Miss));
        match store.load_node(11) {
            NodeLoad::Hit(_) => {}
            other => panic!("stage accessor must not evict node entries: {other:?}"),
        }
        store
            .store(13, &ArtifactDelta::default(), &[], Duration::ZERO)
            .unwrap();
        assert!(matches!(store.load_node(13), NodeLoad::Miss));
        assert!(matches!(store.load(13), Load::Hit { .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn junk_node_entries_degrade_to_misses() {
        let dir = temp_dir("node-junk");
        let store = DiskStore::open(&dir).unwrap();
        // Truncated node entry.
        let good = encode_node_entry_with_version(&sample_artifact(), FORMAT_VERSION);
        fs::write(store.entry_path(21), &good[..good.len() / 2]).unwrap();
        assert!(matches!(store.load_node(21), NodeLoad::Evicted));
        assert!(matches!(store.load_node(21), NodeLoad::Miss));
        // Stale-version node entry.
        let old = encode_node_entry_with_version(&sample_artifact(), FORMAT_VERSION - 1);
        fs::write(store.entry_path(22), &old).unwrap();
        assert!(matches!(store.load_node(22), NodeLoad::Evicted));
        // Bit flip inside the body.
        let mut bytes = encode_node_entry_with_version(&sample_artifact(), FORMAT_VERSION);
        let mid = HEADER + 3;
        bytes[mid] ^= 0x20;
        fs::write(store.entry_path(23), &bytes).unwrap();
        assert!(matches!(store.load_node(23), NodeLoad::Evicted));
        // Unknown entry kind.
        let alien = encode_file(9, b"payload from the future", FORMAT_VERSION);
        fs::write(store.entry_path(24), &alien).unwrap();
        assert!(matches!(store.load_node(24), NodeLoad::Evicted));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn kind_counts_census_is_read_only() {
        let dir = temp_dir("kind-counts");
        let store = DiskStore::open(&dir).unwrap();
        store
            .store(1, &ArtifactDelta::default(), &[], Duration::ZERO)
            .unwrap();
        store.store_node(2, &sample_artifact()).unwrap();
        store.store_node(3, &sample_artifact()).unwrap();
        fs::write(store.entry_path(4), b"garbage").unwrap();
        let counts = store.kind_counts();
        assert_eq!(
            counts,
            KindCounts {
                stage: 1,
                node: 2,
                invalid: 1
            }
        );
        // Read-only: the census must leave everything in place,
        // including the junk.
        assert_eq!(store.entry_count(), 4);
        assert_eq!(store.kind_counts(), counts);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_removes_only_entries() {
        let dir = temp_dir("clear");
        let store = DiskStore::open(&dir).unwrap();
        store
            .store(1, &ArtifactDelta::default(), &[], Duration::ZERO)
            .unwrap();
        store
            .store(2, &ArtifactDelta::default(), &[], Duration::ZERO)
            .unwrap();
        fs::write(dir.join("README.txt"), "not an entry").unwrap();
        fs::write(dir.join(".deadbeef.1234.0.tmp"), "crashed writer leftover").unwrap();
        assert_eq!(store.clear().unwrap(), 2);
        assert_eq!(store.entry_count(), 0);
        assert!(dir.join("README.txt").exists());
        assert!(
            !dir.join(".deadbeef.1234.0.tmp").exists(),
            "clear sweeps tmp leftovers"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
