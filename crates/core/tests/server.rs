//! The `coold` daemon battery.
//!
//! Four contracts:
//!
//! * **Coalescing** — N concurrent clients asking for the same
//!   spec/target/options cost exactly one synthesis; every one of them
//!   receives byte-identical artifacts.
//! * **Independence** — distinct specs in flight at once do not share a
//!   flight and each synthesizes.
//! * **Byte identity** — a served flow equals a standalone
//!   [`FlowSession::run`] byte for byte (VHDL, C, memory header,
//!   report), warm or cold.
//! * **Robustness** — malformed frames and undecodable requests are
//!   rejected before they reach the engine, and the shared cache keeps
//!   serving correct bytes afterwards.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use cool_core::cache::ArtifactDelta;
use cool_core::disk::{encode_entry_with_version, encode_node_entry_with_version, FORMAT_VERSION};
use cool_core::server::{Client, FlowRequest, Request, Response, ServeError, Server, ServerHandle};
use cool_core::{FlowArtifacts, FlowOptions, FlowResponse, FlowSession, NodeArtifact, StageCache};
use cool_ir::codec::{read_frame, to_bytes, write_frame};
use cool_ir::Target;
use cool_spec::{print_spec, workloads};

/// Bind a daemon on an ephemeral port, run it on a background thread,
/// and hand back its observability handle plus the join handle.
fn spawn_server(cache: StageCache) -> (ServerHandle, thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", cache).expect("bind");
    let handle = server.handle();
    let join = thread::spawn(move || server.run().expect("accept loop"));
    (handle, join)
}

fn request_for(spec: &str) -> FlowRequest {
    FlowRequest {
        spec: spec.to_string(),
        target: Target::fuzzy_board(),
        options: FlowOptions::quick(),
    }
}

/// The standalone run a served response must match byte for byte.
fn local_run(spec: &str) -> FlowArtifacts {
    let graph = cool_spec::parse(spec).expect("spec parses");
    FlowSession::new(&graph)
        .target(Target::fuzzy_board())
        .options(FlowOptions::quick())
        .run()
        .expect("local flow")
}

fn assert_matches_local(resp: &FlowResponse, art: &FlowArtifacts) {
    assert_eq!(resp.vhdl, art.vhdl, "served VHDL differs from local run");
    let local_c: Vec<(String, String)> = art
        .c_programs
        .iter()
        .map(|p| (p.file_name.clone(), p.source.clone()))
        .collect();
    assert_eq!(resp.c_programs, local_c, "served C differs from local run");
    assert_eq!(
        resp.memory_header,
        cool_codegen::emit_memory_header(&art.graph, &art.memory_map),
        "served memory header differs from local run"
    );
    // The report's trailing timing table is wall-clock; everything
    // before it is a pure function of the artifacts.
    let deterministic = |report: &str| {
        report
            .split("timing breakdown:")
            .next()
            .unwrap()
            .to_string()
    };
    assert_eq!(
        deterministic(&resp.report),
        deterministic(&art.report()),
        "served report differs"
    );
    assert_eq!(resp.optimality, art.partition.optimality);
    assert_eq!(resp.gap, art.partition.gap);
}

#[test]
fn concurrent_identical_requests_synthesize_once() {
    let (handle, join) = spawn_server(StageCache::default());
    let spec = print_spec(&workloads::equalizer(2));

    const CLIENTS: usize = 4;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let addr = handle.addr();
    let responses: Vec<FlowResponse> = (0..CLIENTS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let spec = spec.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                barrier.wait();
                client.flow(request_for(&spec)).expect("served flow")
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();

    // The herd cost exactly one synthesis, however the requests landed.
    assert_eq!(handle.syntheses(), 1, "identical requests must coalesce");

    // Every response carries the same bytes, and they match a local run.
    let art = local_run(&spec);
    for resp in &responses {
        assert_matches_local(resp, &art);
    }

    // Coalescing is visible in the responses: requests that shared a
    // flight got the *same* response (same flight id, same joined count,
    // same trace), and the flight that did the work computed stages.
    let computing: Vec<&FlowResponse> = responses
        .iter()
        .filter(|r| r.stages_computed() > 0)
        .collect();
    assert!(
        !computing.is_empty(),
        "some flight must have computed the stages"
    );
    let leader_flight = computing[0].flight;
    for resp in &computing {
        assert_eq!(
            resp.flight, leader_flight,
            "only one flight may have computed stages"
        );
    }
    let on_leader_flight = responses
        .iter()
        .filter(|r| r.flight == leader_flight)
        .count() as u64;
    assert!(
        computing[0].joined >= on_leader_flight,
        "the flight's joined count ({}) must cover every request it served ({})",
        computing[0].joined,
        on_leader_flight,
    );

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn distinct_specs_synthesize_independently() {
    let (handle, join) = spawn_server(StageCache::default());
    let spec_a = print_spec(&workloads::equalizer(2));
    let spec_b = print_spec(&workloads::fir(4));

    let addr = handle.addr();
    let threads: Vec<_> = [spec_a.clone(), spec_b.clone()]
        .into_iter()
        .map(|spec| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.flow(request_for(&spec)).expect("served flow")
            })
        })
        .collect();
    let responses: Vec<FlowResponse> = threads
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();

    assert_eq!(handle.syntheses(), 2, "different specs must not coalesce");
    assert_matches_local(&responses[0], &local_run(&spec_a));
    assert_matches_local(&responses[1], &local_run(&spec_b));
    assert_ne!(
        responses[0].vhdl, responses[1].vhdl,
        "the two designs are genuinely different"
    );

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn warm_repeat_requests_compute_zero_stages() {
    let (handle, join) = spawn_server(StageCache::default());
    let spec = print_spec(&workloads::equalizer(2));

    let mut client = Client::connect(handle.addr()).expect("connect");
    let cold = client.flow(request_for(&spec)).expect("cold flow");
    assert!(cold.stages_computed() > 0, "first request must synthesize");

    // Same connection (pipelined) and a fresh connection both serve the
    // repeat entirely from the hot cache.
    let warm = client.flow(request_for(&spec)).expect("warm flow");
    let mut other = Client::connect(handle.addr()).expect("connect");
    let warm2 = other.flow(request_for(&spec)).expect("warm flow");
    for resp in [&warm, &warm2] {
        assert_eq!(resp.stages_computed(), 0, "warm serve must compute nothing");
        assert_eq!(resp.vhdl, cold.vhdl);
        assert_eq!(resp.c_programs, cold.c_programs);
        assert_eq!(resp.memory_header, cold.memory_header);
    }
    assert_eq!(handle.syntheses(), 1, "warm serves are not syntheses");

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn bad_specs_and_flow_errors_come_back_as_server_errors() {
    let (handle, join) = spawn_server(StageCache::default());
    let mut client = Client::connect(handle.addr()).expect("connect");

    let err = client
        .flow(request_for("design broken { this is not a spec"))
        .expect_err("a bad spec must not serve");
    match err {
        ServeError::Server(msg) => assert!(msg.contains("spec error"), "got: {msg}"),
        other => panic!("expected a server error, got {other}"),
    }
    assert_eq!(handle.syntheses(), 0);

    // The connection survives a request-level error: the same client can
    // still ping and run a real flow.
    client.ping().expect("ping after error");
    let spec = print_spec(&workloads::equalizer(2));
    let resp = client.flow(request_for(&spec)).expect("flow after error");
    assert_matches_local(&resp, &local_run(&spec));

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn malformed_frames_are_rejected_without_poisoning_the_cache() {
    let (handle, join) = spawn_server(StageCache::default());
    let spec = print_spec(&workloads::equalizer(2));

    // Seed the cache with one good flow so poisoning would be visible.
    let mut client = Client::connect(handle.addr()).expect("connect");
    let before = client.flow(request_for(&spec)).expect("seed flow");

    // Raw garbage where a frame header belongs: the server answers with
    // an error frame (or just drops us) and closes the connection.
    let mut raw = TcpStream::connect(handle.addr()).expect("connect raw");
    raw.write_all(b"definitely not a COOLWIR frame header")
        .expect("write garbage");
    // A dropped connection (Ok(None)/Err) is also an acceptable
    // rejection; an error frame must decode and say what happened.
    if let Ok(Some(payload)) = read_frame(&mut raw) {
        match cool_ir::codec::from_bytes::<Response>(&payload) {
            Ok(Response::Error(msg)) => assert!(msg.contains("malformed"), "got: {msg}"),
            other => panic!("expected an error response, got {other:?}"),
        }
    }
    let mut rest = Vec::new();
    let _ = raw.read_to_end(&mut rest); // the server must have closed

    // A well-framed payload that decodes as a known request kind but
    // runs out of bytes (a truncated Flow body): rejected the same way.
    let mut framed = TcpStream::connect(handle.addr()).expect("connect framed");
    write_frame(&mut framed, &[0x00]).expect("write frame");
    let payload = read_frame(&mut framed)
        .expect("error reply frame")
        .expect("server replies before closing");
    match cool_ir::codec::from_bytes::<Response>(&payload).expect("reply decodes") {
        Response::Error(msg) => assert!(msg.contains("malformed request"), "got: {msg}"),
        other => panic!("expected an error response, got {other:?}"),
    }

    // A truncated frame: half a valid request, then a hangup.
    let good = to_bytes(&Request::Flow(request_for(&spec)));
    let mut truncated = TcpStream::connect(handle.addr()).expect("connect truncated");
    let mut full = Vec::new();
    write_frame(&mut full, &good).expect("encode");
    truncated
        .write_all(&full[..full.len() / 2])
        .expect("write half");
    drop(truncated);

    // None of that reached the engine or disturbed the cache: a fresh
    // client still gets the seeded bytes, fully warm.
    let mut after_client = Client::connect(handle.addr()).expect("connect");
    let after = after_client.flow(request_for(&spec)).expect("flow");
    assert_eq!(after.vhdl, before.vhdl);
    assert_eq!(after.c_programs, before.c_programs);
    assert_eq!(after.stages_computed(), 0, "cache must still be warm");
    assert_eq!(handle.syntheses(), 1, "garbage must never trigger work");

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn unknown_request_kinds_get_an_error_frame_and_the_connection_survives() {
    let (handle, join) = spawn_server(StageCache::default());
    let spec = print_spec(&workloads::equalizer(2));

    // Seed the shared cache so survival is observable.
    let mut client = Client::connect(handle.addr()).expect("connect");
    let before = client.flow(request_for(&spec)).expect("seed flow");

    // A well-framed request of an *unknown kind* — what a newer client
    // speaking the same frame version would send. The server must
    // answer with an error frame, not tear the connection down.
    let mut raw = TcpStream::connect(handle.addr()).expect("connect raw");
    write_frame(&mut raw, &[9]).expect("write unknown kind");
    let payload = read_frame(&mut raw)
        .expect("error reply frame")
        .expect("connection stays open");
    match cool_ir::codec::from_bytes::<Response>(&payload).expect("reply decodes") {
        Response::Error(msg) => assert!(
            msg.contains("unsupported request kind (tag 9)"),
            "got: {msg}"
        ),
        other => panic!("expected an error response, got {other:?}"),
    }

    // The *same* connection keeps serving: a ping...
    write_frame(&mut raw, &to_bytes(&Request::Ping)).expect("write ping");
    let payload = read_frame(&mut raw)
        .expect("pong frame")
        .expect("connection stays open");
    assert_eq!(
        cool_ir::codec::from_bytes::<Response>(&payload).expect("pong decodes"),
        Response::Pong
    );

    // ...and a flow served entirely from the surviving shared cache.
    write_frame(&mut raw, &to_bytes(&Request::Flow(request_for(&spec)))).expect("write flow");
    let payload = read_frame(&mut raw)
        .expect("flow reply frame")
        .expect("connection stays open");
    match cool_ir::codec::from_bytes::<Response>(&payload).expect("flow decodes") {
        Response::Flow(resp) => {
            assert_eq!(resp.vhdl, before.vhdl);
            assert_eq!(resp.stages_computed(), 0, "cache must still be warm");
        }
        other => panic!("expected a flow response, got {other:?}"),
    }
    assert_eq!(
        handle.syntheses(),
        1,
        "the unknown kind never reached the engine"
    );

    handle.shutdown();
    join.join().expect("server thread");
}

/// A valid stage-entry payload in the exact on-disk/wire format, with a
/// distinguishing cost so distinct entries have distinct bytes.
fn stage_entry_bytes(cost_ms: u64) -> Vec<u8> {
    encode_entry_with_version(
        &ArtifactDelta::default(),
        &[],
        Duration::from_millis(cost_ms),
        FORMAT_VERSION,
    )
}

/// Satellite regression: an idle connection no longer holds its handler
/// thread forever — the accepted socket's read timeout drops it, and the
/// daemon keeps serving fresh connections afterwards.
#[test]
fn idle_connections_are_dropped_by_the_read_timeout() {
    let server = Server::bind("127.0.0.1:0", StageCache::default())
        .expect("bind")
        .idle_timeout(Some(Duration::from_millis(150)));
    let handle = server.handle();
    let join = thread::spawn(move || server.run().expect("accept loop"));

    let mut idle = Client::connect(handle.addr()).expect("connect");
    idle.ping().expect("ping while fresh");
    thread::sleep(Duration::from_millis(600));
    assert!(
        idle.ping().is_err(),
        "the daemon must drop a connection idle past the timeout"
    );

    // The drop is clean: the daemon itself keeps accepting and serving.
    let mut fresh = Client::connect(handle.addr()).expect("reconnect");
    fresh.ping().expect("daemon alive after the idle drop");

    handle.shutdown();
    join.join().expect("server thread");
}

/// Satellite coverage: N threads race cache puts/gets of identical and
/// distinct keys against one daemon. Exactly one put of the shared key
/// is fresh (the store is single-flight under its lock), every get is
/// byte-identical to what was put, and distinct keys never collide.
#[test]
fn concurrent_cache_puts_and_gets_race_safely() {
    let (handle, join) = spawn_server(StageCache::default());
    let addr = handle.addr();

    const SHARED_KEY: u128 = 0xfeed_0001;
    const THREADS: usize = 8;
    let shared = stage_entry_bytes(7);
    let barrier = Arc::new(Barrier::new(THREADS));
    let fresh_flags: Vec<bool> = (0..THREADS)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            let shared = shared.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                barrier.wait();
                // Everyone races the shared key, then puts a key of its
                // own, then reads both back.
                let fresh_shared = client
                    .cache_put_stage(SHARED_KEY, shared.clone())
                    .expect("shared put");
                let own_key = 0x1000 + i as u128;
                let own = stage_entry_bytes(100 + i as u64);
                assert!(
                    client
                        .cache_put_stage(own_key, own.clone())
                        .expect("own put"),
                    "a distinct key is always fresh"
                );
                assert_eq!(
                    client.cache_get_stage(SHARED_KEY).expect("shared get"),
                    Some(shared.clone()),
                    "shared entry must read back byte-identical"
                );
                assert_eq!(
                    client.cache_get_stage(own_key).expect("own get"),
                    Some(own),
                    "own entry must read back byte-identical"
                );
                fresh_shared
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();

    assert_eq!(
        fresh_flags.iter().filter(|f| **f).count(),
        1,
        "exactly one racer's put of the shared key may be fresh"
    );

    // Node-tier entries travel the same way.
    let mut client = Client::connect(addr).expect("connect");
    let node = encode_node_entry_with_version(
        &NodeArtifact::Vhdl("entity probe is end;".to_string()),
        FORMAT_VERSION,
    );
    assert!(client.cache_put_node(42, node.clone()).expect("node put"));
    assert_eq!(
        client.cache_get_node(42).expect("node get"),
        Some(node),
        "node entry must read back byte-identical"
    );
    assert_eq!(client.cache_get_node(43).expect("node miss"), None);

    let stats = client.cache_stats().expect("stats");
    assert_eq!(stats.puts_rejected, 0);
    assert!(
        stats.puts_accepted >= THREADS as u64 + 2,
        "all valid puts accepted: {stats:?}"
    );

    handle.shutdown();
    join.join().expect("server thread");
}

/// Corrupt or version-skewed puts are rejected with a clean error —
/// validated with the same totality as a `DiskStore` read — and never
/// land in the store; the connection survives the rejection.
#[test]
fn corrupt_and_version_skewed_puts_are_rejected_and_never_stored() {
    let (handle, join) = spawn_server(StageCache::default());
    let mut client = Client::connect(handle.addr()).expect("connect");

    // A bit flip breaks the entry checksum.
    let mut corrupt = stage_entry_bytes(9);
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0xff;
    match client.cache_put_stage(0xdead, corrupt) {
        Err(ServeError::Server(msg)) => {
            assert!(msg.contains("rejected cache put"), "got: {msg}")
        }
        other => panic!("corrupt put must be rejected, got {other:?}"),
    }

    // A foreign format version is rejected even with a valid checksum.
    let skewed = encode_entry_with_version(
        &ArtifactDelta::default(),
        &[],
        Duration::from_millis(9),
        FORMAT_VERSION + 1,
    );
    match client.cache_put_stage(0xbeef, skewed) {
        Err(ServeError::Server(msg)) => {
            assert!(msg.contains("rejected cache put"), "got: {msg}")
        }
        other => panic!("version-skewed put must be rejected, got {other:?}"),
    }

    // Truncated node bytes are rejected the same way.
    let node = encode_node_entry_with_version(
        &NodeArtifact::Vhdl("entity x is end;".to_string()),
        FORMAT_VERSION,
    );
    match client.cache_put_node(0xcafe, node[..node.len() / 2].to_vec()) {
        Err(ServeError::Server(msg)) => {
            assert!(msg.contains("rejected cache put"), "got: {msg}")
        }
        other => panic!("truncated node put must be rejected, got {other:?}"),
    }

    // Nothing landed, the connection survived, and the daemon counted
    // the rejections.
    assert_eq!(client.cache_get_stage(0xdead).expect("get"), None);
    assert_eq!(client.cache_get_stage(0xbeef).expect("get"), None);
    assert_eq!(client.cache_get_node(0xcafe).expect("get"), None);
    let stats = client.cache_stats().expect("stats on the same connection");
    assert_eq!(stats.puts_rejected, 3, "{stats:?}");
    assert_eq!(stats.puts_accepted, 0, "{stats:?}");
    assert_eq!(stats.entries, 0, "a rejected put must never be stored");
    assert_eq!(stats.node_entries, 0, "a rejected put must never be stored");

    // And a good put still works afterwards.
    assert!(client
        .cache_put_stage(0xfeed, stage_entry_bytes(3))
        .expect("valid put after rejections"));

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn shutdown_request_stops_the_accept_loop() {
    let (handle, join) = spawn_server(StageCache::default());
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.ping().expect("ping");
    client.shutdown().expect("shutdown handshake");
    join.join().expect("accept loop exits");
}
