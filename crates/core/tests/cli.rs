//! CLI-level tests of the `cool` binary: `cool check` must reject
//! malformed specifications with a diagnostic and a failing exit code —
//! never a panic — and accept well-formed ones; `cool watch` must re-run
//! on edits and honour `--max-runs`; the `--expect-node-*` flags must
//! turn the warm-edit reuse contract into exit codes.

use std::io::Write;
use std::process::Command;
use std::time::{Duration, Instant};

fn cool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cool"))
}

fn write_spec(dir: &std::path::Path, name: &str, content: &str) -> std::path::PathBuf {
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

/// Replace a watched spec atomically (write + rename) so the polling
/// watcher can never observe a half-written file.
fn replace_spec(path: &std::path::Path, content: &str) {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, content).unwrap();
    std::fs::rename(&tmp, path).unwrap();
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cool-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn check_accepts_well_formed_spec() {
    let dir = temp_dir("ok");
    let spec = write_spec(
        &dir,
        "adder.cool",
        "design adder; input a : 16; input b : 16; node s = add; output y : 16;\n\
         connect a -> s.0; connect b -> s.1; connect s -> y;\n",
    );
    let out = cool().arg("check").arg(&spec).output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ok: design `adder`"), "{stdout}");
}

#[test]
fn check_rejects_malformed_specs_without_panicking() {
    let dir = temp_dir("bad");
    let cases: &[(&str, &str, &str)] = &[
        (
            "negative_width.cool",
            "design d; input a : -16;",
            "bit width",
        ),
        (
            "bad_char.cool",
            "design d; input a @ 16;",
            "unexpected character",
        ),
        (
            "unknown_node.cool",
            "design d; input a : 8; connect a -> nosuch;",
            "unknown node",
        ),
        (
            "unknown_behavior.cool",
            "design d; node f = frobnicate;",
            "unknown behaviour",
        ),
        ("truncated.cool", "design", "expected"),
        (
            "bad_arity.cool",
            "design d; node f = expr(-1) { in0 };",
            "arity",
        ),
        (
            "invalid_graph.cool",
            "design d; node f = neg;",
            "invalid graph",
        ),
    ];
    for (name, content, needle) in cases {
        let spec = write_spec(&dir, name, content);
        let out = cool().arg("check").arg(&spec).output().unwrap();
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            !out.status.success(),
            "`{name}` was accepted; stderr: {stderr}"
        );
        assert!(
            stderr.to_lowercase().contains(&needle.to_lowercase()),
            "`{name}`: diagnostic lacks `{needle}`: {stderr}"
        );
        assert!(!stderr.contains("panicked"), "`{name}` panicked: {stderr}");
    }
}

#[test]
fn check_reports_missing_file() {
    let out = cool()
        .arg("check")
        .arg("/nonexistent/x.cool")
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn flow_jobs_flag_is_validated() {
    let dir = temp_dir("jobs");
    let spec = write_spec(
        &dir,
        "adder.cool",
        "design adder; input a : 16; input b : 16; node s = add; output y : 16;\n\
         connect a -> s.0; connect b -> s.1; connect s -> y;\n",
    );
    let out = cool()
        .arg("flow")
        .arg(&spec)
        .args(["--quick", "--jobs", "banana"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs"));
}

#[test]
fn flow_warns_on_node_limit_truncated_milp() {
    // The branching instance of tests/optimality.rs, rendered back to
    // specification text: MILP at comm weight 0.1 needs 23 B&B nodes, so
    // a 12-node budget truncates with an incumbent. The CLI must
    // succeed AND warn — on stderr and in the --trace table — instead
    // of silently presenting the incumbent as the optimum.
    let dir = temp_dir("truncated");
    let g = cool_spec::workloads::random_dag(cool_spec::workloads::RandomDagConfig {
        nodes: 8,
        seed: 7,
        ..Default::default()
    });
    let spec = write_spec(&dir, "dag.cool", &cool_spec::print_spec(&g));
    let out_dir = dir.join("out");
    let out = cool()
        .arg("flow")
        .arg(&spec)
        .args([
            "--quick",
            "--partitioner",
            "milp",
            "--milp-comm-weight",
            "0.1",
            "--milp-max-nodes",
            "12",
            "--trace",
            "--out",
        ])
        .arg(&out_dir)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr: {stderr}");
    assert!(
        stderr.contains("not proven optimal"),
        "stderr must carry the truncation warning: {stderr}"
    );
    assert!(
        stdout.contains("warning:") && stdout.contains("node limit"),
        "--trace output must include the truncation warning:\n{stdout}"
    );
    assert!(
        stdout.contains("node-limit truncated"),
        "the report must label the partition:\n{stdout}"
    );

    // A completed solve over the same spec stays quiet.
    let out = cool()
        .arg("flow")
        .arg(&spec)
        .args([
            "--quick",
            "--partitioner",
            "milp",
            "--milp-comm-weight",
            "0.1",
            "--trace",
            "--out",
        ])
        .arg(&out_dir)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr: {stderr}");
    assert!(!stderr.contains("not proven optimal"), "{stderr}");
    assert!(!stdout.contains("warning:"), "{stdout}");
}

#[test]
fn flow_trace_prints_stage_table() {
    let dir = temp_dir("trace");
    let spec = write_spec(
        &dir,
        "adder.cool",
        "design adder; input a : 16; input b : 16; node s = add; output y : 16;\n\
         connect a -> s.0; connect b -> s.1; connect s -> y;\n",
    );
    let out_dir = dir.join("out");
    let out = cool()
        .arg("flow")
        .arg(&spec)
        .args(["--quick", "--jobs", "2", "--trace", "--out"])
        .arg(&out_dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for stage in [
        "spec",
        "cost",
        "partition",
        "schedule",
        "stg",
        "hls",
        "rtl",
        "codegen",
    ] {
        assert!(stdout.contains(stage), "trace lacks `{stage}`:\n{stdout}");
    }
    assert!(stdout.contains("engine trace (2 worker(s))"), "{stdout}");
}

/// Shared flags for the incremental-synthesis CLI tests: a raised board
/// budget (the incremental workload's nodes do not fit two XC4005s) and
/// a pinned all-hardware mapping so nothing stochastic moves a node
/// between invocations.
const DETERMINISTIC: &[&str] = &["--quick", "--target", "fuzzy@100000", "--pin", "*=hw0"];

#[test]
fn expectation_flags_gate_the_warm_edit_contract() {
    let dir = temp_dir("expect");
    let cache_dir = dir.join("cache");
    let out_dir = dir.join("out");
    let base = cool_spec::workloads::incremental(4, 19);
    let edited = cool_spec::workloads::incremental(4, 23);
    let spec = write_spec(&dir, "incr.cool", &cool_spec::print_spec(&base));

    // Process 1: cold populate of the shared cache directory.
    let out = cool()
        .arg("flow")
        .arg(&spec)
        .args(DETERMINISTIC)
        .args(["--cache-dir"])
        .arg(&cache_dir)
        .args(["--out"])
        .arg(&out_dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "cold run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Process 2: warm edit. Every stage key misses (graph digest moved),
    // so the expectations can only be met by the node tier: at least one
    // artifact served from disk, at most one node through fresh HLS.
    write_spec(&dir, "incr.cool", &cool_spec::print_spec(&edited));
    let out = cool()
        .arg("flow")
        .arg(&spec)
        .args(DETERMINISTIC)
        .args(["--cache-dir"])
        .arg(&cache_dir)
        .args(["--out"])
        .arg(&out_dir)
        .args([
            "--expect-node-disk-hits",
            "3",
            "--expect-node-synth-max",
            "1",
            "--trace",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "warm edit violated the node-reuse contract\nstdout: {stdout}\nstderr: {stderr}"
    );

    // Process 3: the same edited spec again now hits at *stage* level, so
    // the node tier is never consulted — an absurd disk-hit expectation
    // must fail with a diagnostic, not a panic.
    let out = cool()
        .arg("flow")
        .arg(&spec)
        .args(DETERMINISTIC)
        .args(["--cache-dir"])
        .arg(&cache_dir)
        .args(["--out"])
        .arg(&out_dir)
        .args(["--expect-node-disk-hits", "1000"])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "expectation should have failed");
    assert!(
        stderr.contains("expected at least 1000 node-level disk hit(s)"),
        "{stderr}"
    );
    assert!(!stderr.contains("panicked"), "{stderr}");

    // `cool cache stats` decodes the mixed-kind directory.
    let out = cool()
        .args(["cache", "stats", "--cache-dir"])
        .arg(&cache_dir)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("stage entries") && stdout.contains("node entries"),
        "stats must break entries down by kind:\n{stdout}"
    );
    assert!(stdout.contains("0 invalid"), "{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pin_flag_is_validated() {
    let dir = temp_dir("pins");
    let spec = write_spec(
        &dir,
        "adder.cool",
        "design adder; input a : 16; input b : 16; node s = add; output y : 16;\n\
         connect a -> s.0; connect b -> s.1; connect s -> y;\n",
    );
    for (pin, needle) in [
        ("nosuch=hw0", "no node named `nosuch`"),
        ("s=gpu0", "hw<i> or sw<i>"),
        ("s", "NODE=RES"),
    ] {
        let out = cool()
            .arg("flow")
            .arg(&spec)
            .args(["--quick", "--pin", pin])
            .output()
            .unwrap();
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(!out.status.success(), "`--pin {pin}` was accepted");
        assert!(stderr.contains(needle), "`--pin {pin}`: {stderr}");
    }
}

#[test]
fn watch_reruns_on_edit_and_stops_at_max_runs() {
    let dir = temp_dir("watch");
    let base = cool_spec::workloads::incremental(2, 19);
    let edited = cool_spec::workloads::incremental(2, 23);
    let spec = write_spec(&dir, "incr.cool", &cool_spec::print_spec(&base));

    let mut child = cool()
        .arg("watch")
        .arg(&spec)
        .args(DETERMINISTIC)
        .args(["--poll-ms", "25", "--max-runs", "2"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();

    // Stream the watcher's stdout from a thread so waiting for a line
    // can time out instead of blocking the test forever.
    let stdout = child.stdout.take().unwrap();
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    std::thread::spawn(move || {
        use std::io::BufRead;
        for line in std::io::BufReader::new(stdout)
            .lines()
            .map_while(Result::ok)
        {
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut seen = Vec::new();
    let wait_for = |needle: &str, seen: &mut Vec<String>| loop {
        let left = deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(left) {
            Ok(line) => {
                seen.push(line);
                if seen.last().unwrap().contains(needle) {
                    break;
                }
            }
            Err(_) => panic!(
                "timed out waiting for `{needle}`; saw:\n{}",
                seen.join("\n")
            ),
        }
    };

    // Run #1 fires immediately on the initial file.
    wait_for("run #1: ok", &mut seen);
    // The edit triggers run #2 against the same in-process cache; with
    // --max-runs 2 the loop then exits cleanly.
    replace_spec(&spec, &cool_spec::print_spec(&edited));
    wait_for("run #2: ok", &mut seen);
    wait_for("stopping", &mut seen);

    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = child.try_wait().unwrap() {
            break status;
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            panic!(
                "watcher did not exit after --max-runs; saw:\n{}",
                seen.join("\n")
            );
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(status.success(), "watcher exited with {status}");
    // The warm run reused node artifacts rather than re-synthesizing the
    // whole graph: the run #2 summary line carries non-zero reuse.
    let run2 = seen.iter().find(|l| l.contains("run #2: ok")).unwrap();
    assert!(
        !run2.contains(" 0 node artifact(s) reused"),
        "run #2 should have reused node artifacts: {run2}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watch_survives_a_broken_edit() {
    let dir = temp_dir("watch-bad");
    let good = "design adder; input a : 16; input b : 16; node s = add; output y : 16;\n\
                connect a -> s.0; connect b -> s.1; connect s -> y;\n";
    let spec = write_spec(&dir, "adder.cool", good);

    let mut child = cool()
        .arg("watch")
        .arg(&spec)
        .args(["--quick", "--poll-ms", "25", "--max-runs", "3"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let stdout = child.stdout.take().unwrap();
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    std::thread::spawn(move || {
        use std::io::BufRead;
        for line in std::io::BufReader::new(stdout)
            .lines()
            .map_while(Result::ok)
        {
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut seen = Vec::new();
    let wait_for = |needle: &str, seen: &mut Vec<String>| loop {
        let left = deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(left) {
            Ok(line) => {
                seen.push(line);
                if seen.last().unwrap().contains(needle) {
                    break;
                }
            }
            Err(_) => panic!(
                "timed out waiting for `{needle}`; saw:\n{}",
                seen.join("\n")
            ),
        }
    };

    wait_for("run #1: ok", &mut seen);
    // A half-saved spec parses bad; the loop must report and keep going.
    replace_spec(&spec, "design adder; input a :");
    wait_for("still watching", &mut seen);
    // The next good save recovers.
    replace_spec(&spec, good);
    wait_for("run #3: ok", &mut seen);

    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            assert!(status.success(), "watcher exited with {status}");
            break;
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            panic!("watcher did not exit; saw:\n{}", seen.join("\n"));
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flow_milp_max_pivots_flag_is_parsed_and_enforced() {
    // A starved per-LP pivot budget must surface the solver's truthful
    // PivotLimit diagnostic through the CLI (not a panic, not a silent
    // fallback), and a malformed value must name the flag.
    let dir = temp_dir("max-pivots");
    let g = cool_spec::workloads::random_dag(cool_spec::workloads::RandomDagConfig {
        nodes: 8,
        seed: 7,
        ..Default::default()
    });
    let spec = write_spec(&dir, "dag.cool", &cool_spec::print_spec(&g));
    let out = cool()
        .arg("flow")
        .arg(&spec)
        .args(["--quick", "--partitioner", "milp", "--milp-max-pivots", "2"])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "starved pivots must fail the flow");
    assert!(
        stderr.contains("pivot limit"),
        "diagnostic must name the pivot limit: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "panicked: {stderr}");

    let out = cool()
        .arg("flow")
        .arg(&spec)
        .args(["--quick", "--milp-max-pivots", "banana"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--milp-max-pivots"));
}

#[test]
fn flow_milp_pricing_flag_selects_rule_and_keeps_artifacts_identical() {
    // `--milp-pricing` is an artifact-invariant knob: both rules must
    // complete the flow and emit byte-identical artifacts (the pricing
    // rule changes the simplex path, never the completed Solution). A
    // bogus rule must be rejected with the expected-values diagnostic.
    let dir = temp_dir("pricing");
    let g = cool_spec::workloads::random_dag(cool_spec::workloads::RandomDagConfig {
        nodes: 8,
        seed: 7,
        ..Default::default()
    });
    let spec = write_spec(&dir, "dag.cool", &cool_spec::print_spec(&g));
    let mut artifacts = Vec::new();
    for rule in ["steepest", "bland"] {
        let out_dir = dir.join(format!("out-{rule}"));
        let out = cool()
            .arg("flow")
            .arg(&spec)
            .args([
                "--quick",
                "--partitioner",
                "milp",
                "--milp-pricing",
                rule,
                "--out",
            ])
            .arg(&out_dir)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{rule}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(&out_dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).unwrap(),
                )
            })
            .collect();
        files.sort();
        assert!(!files.is_empty(), "{rule}: no artifacts written");
        artifacts.push(files);
    }
    assert_eq!(
        artifacts[0], artifacts[1],
        "pricing rules must produce byte-identical artifacts"
    );

    let out = cool()
        .arg("flow")
        .arg(&spec)
        .args(["--quick", "--milp-pricing", "fancy"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown pricing rule") && stderr.contains("steepest|bland"),
        "{stderr}"
    );
}

#[test]
fn watch_reports_an_unreadable_spec_and_keeps_polling() {
    // Satellite contract: a read failure (deleted file, mid-rename
    // window) is treated exactly like a parse failure — reported once,
    // watched through. The loop must survive the file vanishing
    // entirely and pick up the atomic-rename replacement that follows.
    let dir = temp_dir("watch-unreadable");
    let base = cool_spec::workloads::incremental(2, 19);
    let edited = cool_spec::workloads::incremental(2, 23);
    let spec = write_spec(&dir, "incr.cool", &cool_spec::print_spec(&base));

    let mut child = cool()
        .arg("watch")
        .arg(&spec)
        .args(DETERMINISTIC)
        .args(["--poll-ms", "25", "--max-runs", "2"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let stdout = child.stdout.take().unwrap();
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    std::thread::spawn(move || {
        use std::io::BufRead;
        for line in std::io::BufReader::new(stdout)
            .lines()
            .map_while(Result::ok)
        {
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut seen = Vec::new();
    let wait_for = |needle: &str, seen: &mut Vec<String>| loop {
        let left = deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(left) {
            Ok(line) => {
                seen.push(line);
                if seen.last().unwrap().contains(needle) {
                    break;
                }
            }
            Err(_) => panic!(
                "timed out waiting for `{needle}`; saw:\n{}",
                seen.join("\n")
            ),
        }
    };

    wait_for("run #1: ok", &mut seen);
    // Delete the spec out from under the watcher: it must say so and
    // keep polling rather than dying or staying silent.
    std::fs::remove_file(&spec).unwrap();
    wait_for("cannot read", &mut seen);
    assert!(
        seen.last().unwrap().contains("still watching"),
        "the read-failure report must promise to keep polling: {}",
        seen.last().unwrap()
    );
    // An atomic-rename replacement (the save style editors use) is the
    // recovery path: the next poll sees new bytes and run #2 fires.
    replace_spec(&spec, &cool_spec::print_spec(&edited));
    wait_for("run #2: ok", &mut seen);
    wait_for("stopping", &mut seen);

    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            assert!(status.success(), "watcher exited with {status}");
            break;
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            panic!("watcher did not exit; saw:\n{}", seen.join("\n"));
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    // One report per error streak, not one per poll tick.
    let reports = seen.iter().filter(|l| l.contains("cannot read")).count();
    assert_eq!(
        reports,
        1,
        "expected exactly one read-failure report; saw:\n{}",
        seen.join("\n")
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_connect_round_trip_is_warm_on_the_second_client() {
    // End-to-end through the CLI: `cool serve` on an ephemeral port,
    // then two `cool flow --connect` clients for the same spec. The
    // first synthesizes; the second must be served entirely from the
    // daemon's hot cache (`0 stage(s) computed`) with identical files.
    let dir = temp_dir("serve");
    let g = cool_spec::workloads::incremental(2, 19);
    let spec = write_spec(&dir, "incr.cool", &cool_spec::print_spec(&g));

    let mut daemon = cool()
        .arg("serve")
        .args(["--addr", "127.0.0.1:0"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let stdout = daemon.stdout.take().unwrap();
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    std::thread::spawn(move || {
        use std::io::BufRead;
        for line in std::io::BufReader::new(stdout)
            .lines()
            .map_while(Result::ok)
        {
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    let banner = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("serve banner");
    let addr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner: {banner}"))
        .to_string();

    let run_client = |out_dir: &std::path::Path| {
        let out = cool()
            .arg("flow")
            .arg(&spec)
            .args(DETERMINISTIC)
            .args(["--connect", &addr, "--out"])
            .arg(out_dir)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "client failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let first = run_client(&dir.join("out1"));
    assert!(
        first.contains("served by coold"),
        "first client output: {first}"
    );
    assert!(
        !first.contains(" 0 stage(s) computed"),
        "the cold request must synthesize: {first}"
    );
    let second = run_client(&dir.join("out2"));
    assert!(
        second.contains(", 0 stage(s) computed"),
        "the repeat request must be fully warm: {second}"
    );

    // Both clients wrote byte-identical files.
    let read_all = |out_dir: &std::path::Path| {
        let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(out_dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).unwrap(),
                )
            })
            .collect();
        files.sort();
        files
    };
    let a = read_all(&dir.join("out1"));
    assert!(!a.is_empty(), "no files written");
    assert_eq!(a, read_all(&dir.join("out2")), "served bytes must agree");

    let _ = daemon.kill();
    let _ = daemon.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
