//! CLI-level tests of the `cool` binary: `cool check` must reject
//! malformed specifications with a diagnostic and a failing exit code —
//! never a panic — and accept well-formed ones.

use std::io::Write;
use std::process::Command;

fn cool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cool"))
}

fn write_spec(dir: &std::path::Path, name: &str, content: &str) -> std::path::PathBuf {
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cool-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn check_accepts_well_formed_spec() {
    let dir = temp_dir("ok");
    let spec = write_spec(
        &dir,
        "adder.cool",
        "design adder; input a : 16; input b : 16; node s = add; output y : 16;\n\
         connect a -> s.0; connect b -> s.1; connect s -> y;\n",
    );
    let out = cool().arg("check").arg(&spec).output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ok: design `adder`"), "{stdout}");
}

#[test]
fn check_rejects_malformed_specs_without_panicking() {
    let dir = temp_dir("bad");
    let cases: &[(&str, &str, &str)] = &[
        (
            "negative_width.cool",
            "design d; input a : -16;",
            "bit width",
        ),
        (
            "bad_char.cool",
            "design d; input a @ 16;",
            "unexpected character",
        ),
        (
            "unknown_node.cool",
            "design d; input a : 8; connect a -> nosuch;",
            "unknown node",
        ),
        (
            "unknown_behavior.cool",
            "design d; node f = frobnicate;",
            "unknown behaviour",
        ),
        ("truncated.cool", "design", "expected"),
        (
            "bad_arity.cool",
            "design d; node f = expr(-1) { in0 };",
            "arity",
        ),
        (
            "invalid_graph.cool",
            "design d; node f = neg;",
            "invalid graph",
        ),
    ];
    for (name, content, needle) in cases {
        let spec = write_spec(&dir, name, content);
        let out = cool().arg("check").arg(&spec).output().unwrap();
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            !out.status.success(),
            "`{name}` was accepted; stderr: {stderr}"
        );
        assert!(
            stderr.to_lowercase().contains(&needle.to_lowercase()),
            "`{name}`: diagnostic lacks `{needle}`: {stderr}"
        );
        assert!(!stderr.contains("panicked"), "`{name}` panicked: {stderr}");
    }
}

#[test]
fn check_reports_missing_file() {
    let out = cool()
        .arg("check")
        .arg("/nonexistent/x.cool")
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn flow_jobs_flag_is_validated() {
    let dir = temp_dir("jobs");
    let spec = write_spec(
        &dir,
        "adder.cool",
        "design adder; input a : 16; input b : 16; node s = add; output y : 16;\n\
         connect a -> s.0; connect b -> s.1; connect s -> y;\n",
    );
    let out = cool()
        .arg("flow")
        .arg(&spec)
        .args(["--quick", "--jobs", "banana"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs"));
}

#[test]
fn flow_warns_on_node_limit_truncated_milp() {
    // The branching instance of tests/optimality.rs, rendered back to
    // specification text: MILP at comm weight 0.1 needs 23 B&B nodes, so
    // a 12-node budget truncates with an incumbent. The CLI must
    // succeed AND warn — on stderr and in the --trace table — instead
    // of silently presenting the incumbent as the optimum.
    let dir = temp_dir("truncated");
    let g = cool_spec::workloads::random_dag(cool_spec::workloads::RandomDagConfig {
        nodes: 8,
        seed: 7,
        ..Default::default()
    });
    let spec = write_spec(&dir, "dag.cool", &cool_spec::print_spec(&g));
    let out_dir = dir.join("out");
    let out = cool()
        .arg("flow")
        .arg(&spec)
        .args([
            "--quick",
            "--partitioner",
            "milp",
            "--milp-comm-weight",
            "0.1",
            "--milp-max-nodes",
            "12",
            "--trace",
            "--out",
        ])
        .arg(&out_dir)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr: {stderr}");
    assert!(
        stderr.contains("not proven optimal"),
        "stderr must carry the truncation warning: {stderr}"
    );
    assert!(
        stdout.contains("warning:") && stdout.contains("node limit"),
        "--trace output must include the truncation warning:\n{stdout}"
    );
    assert!(
        stdout.contains("node-limit truncated"),
        "the report must label the partition:\n{stdout}"
    );

    // A completed solve over the same spec stays quiet.
    let out = cool()
        .arg("flow")
        .arg(&spec)
        .args([
            "--quick",
            "--partitioner",
            "milp",
            "--milp-comm-weight",
            "0.1",
            "--trace",
            "--out",
        ])
        .arg(&out_dir)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr: {stderr}");
    assert!(!stderr.contains("not proven optimal"), "{stderr}");
    assert!(!stdout.contains("warning:"), "{stdout}");
}

#[test]
fn flow_trace_prints_stage_table() {
    let dir = temp_dir("trace");
    let spec = write_spec(
        &dir,
        "adder.cool",
        "design adder; input a : 16; input b : 16; node s = add; output y : 16;\n\
         connect a -> s.0; connect b -> s.1; connect s -> y;\n",
    );
    let out_dir = dir.join("out");
    let out = cool()
        .arg("flow")
        .arg(&spec)
        .args(["--quick", "--jobs", "2", "--trace", "--out"])
        .arg(&out_dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for stage in [
        "spec",
        "cost",
        "partition",
        "schedule",
        "stg",
        "hls",
        "rtl",
        "codegen",
    ] {
        assert!(stdout.contains(stage), "trace lacks `{stage}`:\n{stdout}");
    }
    assert!(stdout.contains("engine trace (2 worker(s))"), "{stdout}");
}
