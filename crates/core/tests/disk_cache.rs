//! The persistent-cache determinism battery.
//!
//! A cache that survives processes is only trustworthy if byte-identity
//! is enforced mechanically, so these tests drive the full standard flow
//! through the disk tier under every failure mode the store promises to
//! absorb: fresh-engine warm starts (the in-process model of a second
//! CLI invocation or CI job), truncated/bit-flipped/version-bumped
//! entries, junk directory contents, and the dependency-DAG key
//! invalidation semantics (an `hls`-only option change must leave `stg`
//! valid; a partitioner change must invalidate everything from
//! `partition` down while the spec/cost prefix survives).

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use cool_core::{CacheOutcome, FlowArtifacts, FlowOptions, FlowSession, Partitioner, StageCache};
use cool_ir::hash::digest;
use cool_ir::Target;
use cool_partition::GaOptions;
use cool_spec::workloads;

fn run_flow_cached(
    g: &cool_ir::PartitioningGraph,
    target: &Target,
    options: &FlowOptions,
    cache: &StageCache,
) -> Result<FlowArtifacts, cool_core::FlowError> {
    FlowSession::new(g)
        .target(target.clone())
        .options(options.clone())
        .cache(cache.clone())
        .run()
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique, empty temp directory per call (std-only; no tempfile crate).
fn temp_cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cool-disk-cache-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A 128-bit content fingerprint over every artifact family of a run —
/// byte-identity in one value, via the same `ContentHash` impls the
/// engine keys stages with.
fn artifact_fingerprint(art: &FlowArtifacts) -> Vec<u128> {
    vec![
        digest(&art.cost),
        digest(&art.partition),
        digest(&art.schedule),
        digest(&art.stg),
        digest(&art.stg_minimized),
        digest(&art.minimize_stats),
        digest(&art.memory_map),
        digest(&art.hls_designs),
        digest(&art.controller),
        digest(&art.encoding),
        digest(&art.placements),
        digest(&art.netlist),
        digest(&art.vhdl),
        digest(&art.c_programs),
    ]
}

fn equalizer8_options(jobs: usize) -> FlowOptions {
    FlowOptions {
        partitioner: Partitioner::Genetic(GaOptions {
            population: 8,
            generations: 4,
            threads: 1,
            ..GaOptions::default()
        }),
        ..FlowOptions::quick()
    }
    .with_jobs(jobs)
}

/// The tentpole invariant: a fresh cache instance (fresh engine, fresh
/// memory tier — the in-process model of a fresh process) over the same
/// cache directory reproduces a cold run byte-identically, restoring
/// every one of the nine standard stages from disk, at `jobs` 1 and 4.
#[test]
fn warm_start_from_disk_is_byte_identical_at_jobs_1_and_4() {
    let g = workloads::equalizer(8);
    let target = Target::fuzzy_board();
    let dir = temp_cache_dir("warm");

    let cold_cache = StageCache::persistent(64, &dir).unwrap();
    let cold = run_flow_cached(&g, &target, &equalizer8_options(1), &cold_cache).unwrap();
    assert_eq!(cold.trace.cache_hits(), 0);
    assert_eq!(cold.trace.cache_misses(), 9);
    assert_eq!(
        cold_cache.stats().disk_writes,
        9,
        "write-through populated disk"
    );

    for jobs in [1usize, 4] {
        // A fresh `StageCache` has an empty memory tier, so every hit
        // below must come off disk — deserialization included.
        let warm_cache = StageCache::persistent(64, &dir).unwrap();
        let warm = run_flow_cached(&g, &target, &equalizer8_options(jobs), &warm_cache).unwrap();
        assert_eq!(
            warm.trace.disk_hits(),
            9,
            "jobs={jobs}: every cacheable stage must hit the disk tier:\n{}",
            warm.trace.to_table()
        );
        assert_eq!(
            artifact_fingerprint(&cold),
            artifact_fingerprint(&warm),
            "jobs={jobs}: warm-start artifacts must be byte-identical to the cold run"
        );
        assert_eq!(cold.vhdl, warm.vhdl);
        assert_eq!(cold.c_programs, warm.c_programs);
        assert_eq!(cold.partition.mapping, warm.partition.mapping);
        let stats = warm_cache.stats();
        assert_eq!(stats.disk_hits, 9, "{}", stats.summary());
        assert_eq!(stats.misses, 0, "{}", stats.summary());
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Truncation, bit flips and version bumps on individual entries must
/// degrade those entries to misses (recompute + rewrite) without error
/// and without a single artifact changing.
#[test]
fn corrupted_entries_degrade_to_miss_without_artifact_drift() {
    let g = workloads::equalizer(4);
    let target = Target::fuzzy_board();
    let options = FlowOptions::quick();
    let dir = temp_cache_dir("corrupt");

    let cold_cache = StageCache::persistent(64, &dir).unwrap();
    let cold = run_flow_cached(&g, &target, &options, &cold_cache).unwrap();
    let all: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("cce"))
        .collect();
    // Node-level entries share the directory; corrupt *stage* entries
    // (payload kind byte 0, at the end of the 36-byte header) so the
    // stage-level hit/miss/eviction accounting below stays exact. Junk
    // *node* entries are covered by the disk-store unit tests.
    let mut entries: Vec<PathBuf> = all
        .iter()
        .filter(|p| fs::read(p).is_ok_and(|b| b.get(36) == Some(&0)))
        .cloned()
        .collect();
    entries.sort();
    assert_eq!(entries.len(), 9);
    assert!(
        all.len() > entries.len(),
        "the cold run must have written node-level entries too"
    );

    // Truncate the first entry, bit-flip the second, version-bump the
    // third (byte offsets 8..12 hold the format version).
    let bytes = fs::read(&entries[0]).unwrap();
    fs::write(&entries[0], &bytes[..bytes.len() / 3]).unwrap();
    let mut bytes = fs::read(&entries[1]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    fs::write(&entries[1], &bytes).unwrap();
    let mut bytes = fs::read(&entries[2]).unwrap();
    bytes[8] = bytes[8].wrapping_add(1);
    fs::write(&entries[2], &bytes).unwrap();

    let warm_cache = StageCache::persistent(64, &dir).unwrap();
    let warm = run_flow_cached(&g, &target, &options, &warm_cache).unwrap();
    assert_eq!(
        artifact_fingerprint(&cold),
        artifact_fingerprint(&warm),
        "corruption must never change an artifact"
    );
    let stats = warm_cache.stats();
    assert_eq!(stats.disk_hits, 6, "{}", stats.summary());
    assert_eq!(stats.misses, 3, "{}", stats.summary());
    assert_eq!(
        stats.disk_evictions,
        3,
        "each corrupt entry is evicted: {}",
        stats.summary()
    );
    // The recomputed stages were written back: the store is healthy
    // again, and a third fresh cache sees all nine entries.
    let heal_cache = StageCache::persistent(64, &dir).unwrap();
    let healed = run_flow_cached(&g, &target, &options, &heal_cache).unwrap();
    assert_eq!(healed.trace.disk_hits(), 9, "{}", healed.trace.to_table());
    let _ = fs::remove_dir_all(&dir);
}

/// Junk in the cache directory — garbage entry files, empty files,
/// subdirectories with the entry extension, unrelated files — must never
/// panic or disturb the flow, and a file in place of the directory is a
/// clean error.
#[test]
fn malformed_cache_dir_contents_never_panic() {
    let g = workloads::equalizer(2);
    let target = Target::fuzzy_board();
    let options = FlowOptions::quick();
    let dir = temp_cache_dir("junk");
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join("junk.cce"), b"not a cache entry at all").unwrap();
    fs::write(dir.join("empty.cce"), b"").unwrap();
    fs::write(dir.join("short.cce"), b"CO").unwrap();
    fs::write(dir.join("README.txt"), b"hands off").unwrap();
    fs::create_dir_all(dir.join("subdir.cce")).unwrap();
    // A junk file squatting on a real key: evicted as corrupt, entry
    // recomputed and rewritten over it.
    let cache = StageCache::persistent(64, &dir).unwrap();
    let first = run_flow_cached(&g, &target, &options, &cache).unwrap();
    assert_eq!(first.trace.cache_misses(), 9);
    let fresh = StageCache::persistent(64, &dir).unwrap();
    let warm = run_flow_cached(&g, &target, &options, &fresh).unwrap();
    assert_eq!(warm.trace.disk_hits(), 9, "{}", warm.trace.to_table());
    assert_eq!(artifact_fingerprint(&first), artifact_fingerprint(&warm));
    assert!(dir.join("README.txt").exists(), "non-entries untouched");

    // Opening a store on a path occupied by a file fails, not panics.
    let file_path = dir.join("README.txt");
    assert!(StageCache::persistent(64, &file_path).is_err());
    let _ = fs::remove_dir_all(&dir);
}

/// Per-stage cache outcomes of one run, as `(name, hit)` pairs.
fn outcomes(art: &FlowArtifacts) -> Vec<(&'static str, bool)> {
    art.trace
        .records()
        .iter()
        .map(|r| {
            (
                r.name,
                matches!(
                    r.cache,
                    CacheOutcome::Hit { .. } | CacheOutcome::DiskHit { .. }
                ),
            )
        })
        .collect()
}

/// The DAG-key acceptance criterion: mutating *only* the HLS options
/// leaves `stg` and everything upstream valid; `hls` re-runs, and so do
/// exactly the stages whose read artifacts change (`rtl`, `sim-prep`) —
/// while `codegen`, which reads nothing `hls` writes, still hits even
/// though it sits downstream in execution order. A linear key chain
/// cannot express that last part; the dependency DAG can.
#[test]
fn hls_only_option_change_preserves_stg_and_upstream() {
    let g = workloads::equalizer(4);
    let target = Target::fuzzy_board();
    let base = FlowOptions::quick();
    let mut hls_changed = FlowOptions::quick();
    hls_changed.hls.bits = 8; // narrower datapath: different designs
    let cache = StageCache::default();
    run_flow_cached(&g, &target, &base, &cache).unwrap();
    let second = run_flow_cached(&g, &target, &hls_changed, &cache).unwrap();
    assert_eq!(
        outcomes(&second),
        vec![
            ("spec", true),
            ("cost", true),
            ("partition", true),
            ("schedule", true),
            ("stg", true),
            ("hls", false),
            ("rtl", false),
            ("codegen", true),
            ("sim-prep", false),
        ],
        "{}",
        second.trace.to_table()
    );
}

/// The mirror case: a partitioner-option change invalidates `partition`
/// itself — and *only* the downstream stages whose read artifacts
/// actually change. Here the GA's elitism makes generations 4 and 6
/// converge on the same champion colouring (asserted below), so the
/// downstream stages hit: their keys cover the partition's *content*
/// (mapping/makespan/optimality — work_units is deliberately outside
/// the digest, it varies with solver scheduling), not its provenance.
/// Content-visible option changes invalidating downstream is covered by
/// `option_changes_miss_only_downstream_stages` in tests/cache.rs.
#[test]
fn partitioner_option_change_reruns_partition_only_while_content_holds() {
    let g = workloads::equalizer(4);
    let target = Target::fuzzy_board();
    let base = equalizer8_options(1);
    let mut ga_changed = base.clone();
    ga_changed.partitioner = Partitioner::Genetic(GaOptions {
        population: 8,
        generations: 6,
        threads: 1,
        ..GaOptions::default()
    });
    let cache = StageCache::default();
    let first = run_flow_cached(&g, &target, &base, &cache).unwrap();
    let second = run_flow_cached(&g, &target, &ga_changed, &cache).unwrap();
    assert_eq!(
        first.partition.mapping, second.partition.mapping,
        "elitism keeps the champion across the extra generations \
         (if this ever changes, the downstream-hit assertions below \
         must flip to misses)"
    );
    assert!(
        second
            .trace
            .records()
            .iter()
            .any(|r| r.name == "partition" && r.cache == CacheOutcome::Miss),
        "partition must re-run on a partitioner-option change:\n{}",
        second.trace.to_table()
    );
    let hits: Vec<&str> = outcomes(&second)
        .into_iter()
        .filter(|&(_, hit)| hit)
        .map(|(name, _)| name)
        .collect();
    assert_eq!(
        hits,
        vec!["spec", "cost", "schedule", "stg", "hls", "rtl", "codegen", "sim-prep"],
        "unchanged partition content must keep downstream cached:\n{}",
        second.trace.to_table()
    );
}

/// The DAG keys hold through the disk tier too: the `hls`-only change
/// scenario with each run in a "fresh process" (fresh cache instance
/// over one directory) restores the preserved stages from disk.
#[test]
fn dag_invalidation_holds_across_processes() {
    let g = workloads::equalizer(4);
    let target = Target::fuzzy_board();
    let base = FlowOptions::quick();
    let mut hls_changed = FlowOptions::quick();
    hls_changed.hls.bits = 8;
    let dir = temp_cache_dir("dag");
    let cache = StageCache::persistent(64, &dir).unwrap();
    run_flow_cached(&g, &target, &base, &cache).unwrap();
    let fresh = StageCache::persistent(64, &dir).unwrap();
    let second = run_flow_cached(&g, &target, &hls_changed, &fresh).unwrap();
    assert_eq!(
        second.trace.disk_hits(),
        6,
        "spec/cost/partition/schedule/stg/codegen restore from disk:\n{}",
        second.trace.to_table()
    );
    assert_eq!(
        second.trace.cache_misses(),
        3,
        "{}",
        second.trace.to_table()
    );
    let _ = fs::remove_dir_all(&dir);
}
