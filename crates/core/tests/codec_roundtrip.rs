//! Seeded codec property tests over *real* artifacts.
//!
//! The disk tier is only sound if the binary codec is canonical: for
//! every artifact type `encode(decode(encode(x))) == encode(x)`, and
//! content digests survive the roundtrip (`digest(decode(encode(x))) ==
//! digest(x)`) — otherwise a value restored from disk could key future
//! stages differently from the freshly computed value it must be
//! indistinguishable from. Rather than hand-rolling generators per type,
//! the property loops run the actual flow engine over seeded random
//! workloads (reusing `cool_ir::rng`) and check every artifact the
//! context accumulates, plus decoder totality under seeded mutations of
//! the encoded bytes.

use cool_core::cache::{ArtifactDelta, ArtifactFlags};
use cool_core::{Engine, FlowContext, FlowOptions, Partitioner};
use cool_ir::codec::{from_bytes, to_bytes, Codec};
use cool_ir::hash::{digest, ContentHash};
use cool_ir::rng::StdRng;
use cool_ir::Target;
use cool_partition::GaOptions;
use cool_spec::workloads;

/// The codec property for one value: decode(encode(x)) re-encodes to the
/// identical bytes, and the content digest is stable across the trip.
fn check<T: Codec + ContentHash>(what: &str, value: &T) {
    let bytes = to_bytes(value);
    let back: T = from_bytes(&bytes)
        .unwrap_or_else(|e| panic!("{what}: decoding our own encoding failed: {e}"));
    assert_eq!(
        to_bytes(&back),
        bytes,
        "{what}: encode∘decode must be the identity on encodings"
    );
    assert_eq!(
        digest(&back),
        digest(value),
        "{what}: content digest must survive the codec roundtrip"
    );
}

fn run_context_checks(cx: &FlowContext<'_>) {
    check("cost model", cx.cost.as_ref().unwrap());
    check("partition result", cx.partition.as_ref().unwrap());
    check("static schedule", cx.schedule.as_ref().unwrap());
    check("raw STG", cx.stg.as_ref().unwrap());
    check("minimized STG", cx.stg_minimized.as_ref().unwrap());
    check("minimize stats", cx.minimize_stats.as_ref().unwrap());
    check("memory map", cx.memory_map.as_ref().unwrap());
    check("hw nodes", cx.hw_nodes.as_ref().unwrap());
    check("hls designs", cx.hls_designs.as_ref().unwrap());
    check("system controller", cx.controller.as_ref().unwrap());
    check("state encoding", cx.encoding.as_ref().unwrap());
    check("netlist", cx.netlist.as_ref().unwrap());
    check("vhdl units", cx.vhdl.as_ref().unwrap());
    check("placements", cx.placements.as_ref().unwrap());
    check("c programs", cx.c_programs.as_ref().unwrap());
}

#[test]
fn every_artifact_type_roundtrips_on_seeded_random_flows() {
    let target = Target::fuzzy_board();
    let mut rng = StdRng::seed_from_u64(0xC0DEC);
    for case in 0..4u64 {
        let graph = match case {
            0 => workloads::equalizer(3),
            1 => workloads::fuzzy_controller(),
            2 => workloads::fir(6),
            _ => workloads::random_dag(workloads::RandomDagConfig {
                nodes: 8 + rng.random_range(0..8),
                seed: rng.next_u64(),
                ..Default::default()
            }),
        };
        let options = FlowOptions {
            partitioner: Partitioner::Genetic(GaOptions {
                population: 6 + rng.random_range(0..4),
                generations: 3,
                threads: 1,
                seed: rng.next_u64(),
                ..GaOptions::default()
            }),
            packed_memory: rng.random_range(0..2) == 1,
            ..FlowOptions::quick()
        };
        let mut cx = FlowContext::new(&graph, &target, &options);
        Engine::standard().run(&mut cx).unwrap();
        run_context_checks(&cx);

        // The composite the disk tier actually serializes.
        let delta = ArtifactDelta::capture(&cx, ArtifactFlags::default());
        let bytes = to_bytes(&delta);
        let back: ArtifactDelta = from_bytes(&bytes).unwrap();
        assert_eq!(to_bytes(&back), bytes, "full delta fixpoint");
        assert_eq!(back.slot_count(), delta.slot_count());
    }
}

#[test]
fn decoder_is_total_under_seeded_mutations() {
    // Whatever bytes a broken disk hands the codec, decoding terminates
    // with Ok or Err — never a panic, never an unbounded allocation. The
    // checksum layer above normally filters these; this is the
    // defense-in-depth check on the codec itself.
    let graph = workloads::equalizer(2);
    let target = Target::fuzzy_board();
    let options = FlowOptions::quick();
    let mut cx = FlowContext::new(&graph, &target, &options);
    Engine::standard().run(&mut cx).unwrap();
    let pristine = to_bytes(&ArtifactDelta::capture(&cx, ArtifactFlags::default()));

    let mut rng = StdRng::seed_from_u64(0xBAD_B17E5);
    for _ in 0..200 {
        let mut bytes = pristine.clone();
        match rng.random_range(0..3) {
            0 => {
                // Flip one bit.
                let i = rng.random_range(0..bytes.len());
                bytes[i] ^= 1 << rng.random_range(0..8);
            }
            1 => {
                // Truncate.
                bytes.truncate(rng.random_range(0..bytes.len()));
            }
            _ => {
                // Splice garbage into the middle.
                let i = rng.random_range(0..bytes.len());
                bytes[i] = rng.next_u64() as u8;
                bytes.push(rng.next_u64() as u8);
            }
        }
        // Any outcome but a panic is acceptable; a successful decode must
        // still re-encode without panicking.
        if let Ok(delta) = from_bytes::<ArtifactDelta>(&bytes) {
            let _ = to_bytes(&delta);
        }
    }
    // The unmutated bytes still decode, so the loop above exercised the
    // real encoding, not a stale fixture.
    assert!(from_bytes::<ArtifactDelta>(&pristine).is_ok());
}
