//! Optimality reporting through the flow: a node-limit-truncated MILP
//! partition must be observably non-optimal — `PartitionResult` carries
//! `Optimality::LimitReached`, the engine attaches a trace warning (also
//! when the partition is restored from the stage cache), and the report
//! labels it — while completed solves stay warning-free. Plus the
//! `FlowOptions::jobs → MilpOptions::jobs` seam: the flow's artifacts
//! must be byte-identical whether the MILP branch & bound ran serial or
//! parallel.

use cool_core::{FlowArtifacts, FlowOptions, FlowSession, Partitioner, StageCache};
use cool_ir::{Objective, Target};
use cool_partition::{MilpOptions, Optimality};
use cool_spec::workloads::{random_dag, RandomDagConfig};

fn run_flow(
    g: &cool_ir::PartitioningGraph,
    target: &Target,
    options: &FlowOptions,
) -> Result<FlowArtifacts, cool_core::FlowError> {
    FlowSession::new(g)
        .target(target.clone())
        .options(options.clone())
        .run()
}

fn run_flow_cached(
    g: &cool_ir::PartitioningGraph,
    target: &Target,
    options: &FlowOptions,
    cache: &StageCache,
) -> Result<FlowArtifacts, cool_core::FlowError> {
    FlowSession::new(g)
        .target(target.clone())
        .options(options.clone())
        .cache(cache.clone())
        .run()
}

/// An 8-node random DAG whose MILP root relaxation is fractional under a
/// low communication weight, so branch & bound genuinely branches: 23
/// nodes to optimality at `jobs = 1`, first incumbent by node 7 — which
/// makes `max_nodes = 12` a truncation point that reliably leaves an
/// incumbent behind.
fn branching_graph() -> cool_ir::PartitioningGraph {
    random_dag(RandomDagConfig {
        nodes: 8,
        seed: 7,
        ..Default::default()
    })
}

fn milp_flow(max_nodes: usize, jobs: usize) -> FlowOptions {
    FlowOptions {
        partitioner: Partitioner::Milp(MilpOptions {
            objective: Objective::blend(1.0, 0.1, 0.05),
            max_nodes,
            ..Default::default()
        }),
        jobs,
        ..FlowOptions::quick()
    }
}

#[test]
fn truncated_milp_partition_is_observably_non_optimal() {
    let g = branching_graph();
    let art = run_flow(&g, &Target::fuzzy_board(), &milp_flow(12, 1)).unwrap();
    assert_eq!(art.partition.optimality, Optimality::LimitReached);
    assert_eq!(
        art.trace.warnings().len(),
        1,
        "engine must attach exactly one truncation warning"
    );
    assert!(
        art.trace.warnings()[0].contains("NOT proven optimal"),
        "{}",
        art.trace.warnings()[0]
    );
    assert!(
        art.trace.to_table().contains("warning:"),
        "`cool flow --trace` prints the trace table, so the warning must be in it:\n{}",
        art.trace.to_table()
    );
    assert!(
        art.report().contains("node-limit truncated"),
        "report must label the partition:\n{}",
        art.report()
    );
}

#[test]
fn completed_milp_partition_is_optimal_and_warning_free() {
    let g = branching_graph();
    let art = run_flow(&g, &Target::fuzzy_board(), &milp_flow(50_000, 1)).unwrap();
    assert_eq!(art.partition.optimality, Optimality::Optimal);
    assert!(art.trace.warnings().is_empty());
    assert!(!art.trace.to_table().contains("warning:"));
    assert!(art.report().contains("optimal"));
}

#[test]
fn truncated_partition_is_never_cached_and_still_warns_warm() {
    // A node-limit-truncated partition is not a deterministic function
    // of its inputs under `jobs > 1` (and `jobs` is outside the cache
    // keys), so the engine must refuse to cache it: the warm run hits
    // the deterministic prefix but recomputes the partition — and still
    // warns.
    let g = branching_graph();
    let target = Target::fuzzy_board();
    let options = milp_flow(12, 1);
    let cache = StageCache::default();
    let cold = run_flow_cached(&g, &target, &options, &cache).unwrap();
    assert_eq!(cold.partition.optimality, Optimality::LimitReached);
    let warm = run_flow_cached(&g, &target, &options, &cache).unwrap();
    assert!(
        warm.trace.cache_hits() > 0,
        "the deterministic prefix must hit:\n{}",
        warm.trace.to_table()
    );
    assert!(
        warm.trace
            .records()
            .iter()
            .any(|r| r.name == "partition" && r.cache == cool_core::CacheOutcome::Miss),
        "a truncated partition must be recomputed, not restored:\n{}",
        warm.trace.to_table()
    );
    assert_eq!(
        warm.partition.optimality,
        Optimality::LimitReached,
        "optimality must survive the warm run"
    );
    assert_eq!(
        warm.trace.warnings(),
        cold.trace.warnings(),
        "a warm truncated run warns exactly like a cold one"
    );
}

#[test]
fn genetic_flow_reports_heuristic_without_warnings() {
    let g = cool_spec::workloads::equalizer(2);
    let art = run_flow(&g, &Target::fuzzy_board(), &FlowOptions::quick()).unwrap();
    assert_eq!(art.partition.optimality, Optimality::Heuristic);
    assert!(art.trace.warnings().is_empty());
}

#[test]
fn flow_jobs_thread_into_parallel_milp_byte_identically() {
    // `FlowOptions::jobs` reaches the MILP branch & bound; the
    // deterministic merge keeps every artifact byte-identical.
    let g = branching_graph();
    let target = Target::fuzzy_board();
    let serial = run_flow(&g, &target, &milp_flow(50_000, 1)).unwrap();
    for jobs in [2usize, 4] {
        let par = run_flow(&g, &target, &milp_flow(50_000, jobs)).unwrap();
        assert_eq!(
            par.partition.mapping, serial.partition.mapping,
            "jobs={jobs}"
        );
        assert_eq!(par.partition.makespan, serial.partition.makespan);
        assert_eq!(par.partition.optimality, serial.partition.optimality);
        assert_eq!(par.vhdl, serial.vhdl, "jobs={jobs}: VHDL must not change");
        let c_serial: Vec<&str> = serial
            .c_programs
            .iter()
            .map(|p| p.source.as_str())
            .collect();
        let c_par: Vec<&str> = par.c_programs.iter().map(|p| p.source.as_str()).collect();
        assert_eq!(c_par, c_serial, "jobs={jobs}: C must not change");
    }
}

#[test]
fn heuristic_partition_never_claims_optimal() {
    // A clustered solve forfeits node-level optimality even when the
    // reduced MILP completes: the claim must be Heuristic, not Optimal.
    let g = random_dag(RandomDagConfig {
        nodes: 40,
        seed: 3,
        ..Default::default()
    });
    let cost = cool_cost::CostModel::new(&g, &Target::fuzzy_board());
    let completed = cool_partition::heuristic::partition(
        &g,
        &cost,
        &cool_partition::HeuristicOptions {
            max_clusters: 8,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(completed.optimality, Optimality::Heuristic);

    // The truncated reduced solve keeps the stronger LimitReached claim:
    // drive the same branching instance the MILP tests use through the
    // heuristic's small-graph delegation path with a tiny node budget.
    let g = branching_graph();
    let cost = cool_cost::CostModel::new(&g, &Target::fuzzy_board());
    let truncated = cool_partition::heuristic::partition(
        &g,
        &cost,
        &cool_partition::HeuristicOptions {
            milp: MilpOptions {
                objective: Objective::blend(1.0, 0.1, 0.05),
                max_nodes: 12,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(truncated.optimality, Optimality::LimitReached);
    assert_eq!(truncated.algorithm, cool_partition::Algorithm::Heuristic);
}
