//! The distributed-cache determinism battery.
//!
//! A fleet store is only trustworthy under the same invariant as the
//! disk tier: restoring an entry must be byte-identical to recomputing
//! it, at any job count, on any machine. These tests drive the full
//! standard flow through the remote tier's three promises:
//!
//! * **Cross-machine warm start** — a worker with an empty local cache
//!   restores every cacheable stage from the daemon and produces
//!   artifacts byte-identical to a local cold run, at `jobs` 1 and 4.
//! * **Disk healing** — a remote hit re-materializes the entry into the
//!   local disk tier, so the *next* process on that machine warm-starts
//!   without the network.
//! * **Graceful degradation** — a dead or dying daemon turns the remote
//!   tier off (with error accounting), never the flow into a failure,
//!   and never changes a produced byte.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use cool_core::{
    FlowArtifacts, FlowOptions, FlowSession, Partitioner, RemoteStore, Server, ServerHandle,
    StageCache,
};
use cool_ir::hash::digest;
use cool_ir::Target;
use cool_partition::GaOptions;
use cool_spec::workloads;

/// Bind a daemon holding one in-memory fleet store on an ephemeral port.
fn spawn_daemon() -> (ServerHandle, thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", StageCache::default()).expect("bind");
    let handle = server.handle();
    let join = thread::spawn(move || server.run().expect("accept loop"));
    (handle, join)
}

fn run_flow_cached(
    g: &cool_ir::PartitioningGraph,
    target: &Target,
    options: &FlowOptions,
    cache: &StageCache,
) -> Result<FlowArtifacts, cool_core::FlowError> {
    FlowSession::new(g)
        .target(target.clone())
        .options(options.clone())
        .cache(cache.clone())
        .run()
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique, empty temp directory per call (std-only; no tempfile crate).
fn temp_cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cool-remote-cache-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A 128-bit content fingerprint over every artifact family of a run.
fn artifact_fingerprint(art: &FlowArtifacts) -> Vec<u128> {
    vec![
        digest(&art.cost),
        digest(&art.partition),
        digest(&art.schedule),
        digest(&art.stg),
        digest(&art.stg_minimized),
        digest(&art.minimize_stats),
        digest(&art.memory_map),
        digest(&art.hls_designs),
        digest(&art.controller),
        digest(&art.encoding),
        digest(&art.placements),
        digest(&art.netlist),
        digest(&art.vhdl),
        digest(&art.c_programs),
    ]
}

fn equalizer8_options(jobs: usize) -> FlowOptions {
    FlowOptions {
        partitioner: Partitioner::Genetic(GaOptions {
            population: 8,
            generations: 4,
            threads: 1,
            ..GaOptions::default()
        }),
        ..FlowOptions::quick()
    }
    .with_jobs(jobs)
}

/// The acceptance criterion: a flow warm-started *purely* from the
/// remote tier (empty memory, empty disk) is byte-identical to a local
/// cold run at `jobs` 1 and 4 — and the remote hits heal the local disk
/// tier so a third, offline process warm-starts from disk.
#[test]
fn warm_start_from_remote_is_byte_identical_at_jobs_1_and_4() {
    let g = workloads::equalizer(8);
    let target = Target::fuzzy_board();
    let (handle, join) = spawn_daemon();
    let addr = handle.addr().to_string();

    // The reference: an entirely local, uncached cold run.
    let cold = FlowSession::new(&g)
        .target(target.clone())
        .options(equalizer8_options(1))
        .run()
        .expect("local cold run");

    // Worker A computes everything and writes through to the fleet
    // store — it has no disk tier at all, so the daemon is the only
    // place its work survives.
    let a_cache = StageCache::new(64).with_remote(Arc::new(RemoteStore::new(addr.clone())));
    let a = run_flow_cached(&g, &target, &equalizer8_options(1), &a_cache).expect("worker A");
    assert_eq!(a.trace.cache_misses(), 9, "{}", a.trace.to_table());
    assert_eq!(artifact_fingerprint(&cold), artifact_fingerprint(&a));
    let a_stats = a_cache.stats();
    assert!(
        a_stats.remote_puts >= 9,
        "every computed stage writes through: {}",
        a_stats.summary()
    );
    assert_eq!(a_stats.remote_errors, 0, "{}", a_stats.summary());

    for jobs in [1usize, 4] {
        // Worker B models the second machine: fresh memory tier, fresh
        // *empty* cache directory, only the daemon in common.
        let dir = temp_cache_dir(&format!("warm-j{jobs}"));
        let b_cache = StageCache::persistent(64, &dir)
            .expect("open cache dir")
            .with_remote(Arc::new(RemoteStore::new(addr.clone())));
        let b =
            run_flow_cached(&g, &target, &equalizer8_options(jobs), &b_cache).expect("worker B");
        assert_eq!(
            b.trace.remote_hits(),
            9,
            "jobs={jobs}: every cacheable stage must hit the fleet store:\n{}",
            b.trace.to_table()
        );
        assert_eq!(b.trace.cache_misses(), 0, "{}", b.trace.to_table());
        assert_eq!(
            artifact_fingerprint(&cold),
            artifact_fingerprint(&b),
            "jobs={jobs}: remote warm start must be byte-identical to the local cold run"
        );
        assert_eq!(cold.vhdl, b.vhdl);
        assert_eq!(cold.c_programs, b.c_programs);
        assert_eq!(cold.partition.mapping, b.partition.mapping);
        let stats = b_cache.stats();
        assert_eq!(stats.remote_hits, 9, "{}", stats.summary());
        assert_eq!(
            stats.disk_writes,
            9,
            "remote hits must heal the local disk tier: {}",
            stats.summary()
        );

        // Worker C: same machine as B, daemon not consulted (no remote
        // tier) — the healed disk tier alone warm-starts it.
        let c_cache = StageCache::persistent(64, &dir).expect("reopen cache dir");
        let c =
            run_flow_cached(&g, &target, &equalizer8_options(jobs), &c_cache).expect("worker C");
        assert_eq!(
            c.trace.disk_hits(),
            9,
            "jobs={jobs}: the healed disk tier must serve everything:\n{}",
            c.trace.to_table()
        );
        assert_eq!(artifact_fingerprint(&cold), artifact_fingerprint(&c));
        let _ = fs::remove_dir_all(&dir);
    }

    handle.shutdown();
    join.join().expect("server thread");
}

/// A daemon that dies mid-sweep (between flows sharing one long-lived
/// cache) degrades the remote tier to local-only: the next flow computes
/// locally, produces byte-identical artifacts, counts the outage — and
/// never fails.
#[test]
fn daemon_death_mid_sweep_degrades_without_changing_bytes() {
    let g = workloads::equalizer(4);
    let options = FlowOptions::quick();
    let t_full = Target::fuzzy_board();
    let mut t_capped = Target::fuzzy_board();
    for hw in &mut t_capped.hw {
        hw.clb_capacity = 96;
    }

    // Local references for both sweep points.
    let ref_full = FlowSession::new(&g)
        .target(t_full.clone())
        .options(options.clone())
        .run()
        .expect("local reference (full)");
    let ref_capped = FlowSession::new(&g)
        .target(t_capped.clone())
        .options(options.clone())
        .run()
        .expect("local reference (capped)");

    let (handle, join) = spawn_daemon();
    let addr = handle.addr().to_string();

    // Populate the fleet store, then start the "sweep": one long-lived
    // cache, one flow per board.
    let seed_cache = StageCache::new(64).with_remote(Arc::new(RemoteStore::new(addr.clone())));
    run_flow_cached(&g, &t_full, &options, &seed_cache).expect("seed flow");

    let sweep_cache = StageCache::new(64).with_remote(Arc::new(RemoteStore::new(addr)));
    let first = run_flow_cached(&g, &t_full, &options, &sweep_cache).expect("sweep point 1");
    assert!(
        first.trace.remote_hits() > 0,
        "the first sweep point must warm-start from the daemon:\n{}",
        first.trace.to_table()
    );
    assert_eq!(
        artifact_fingerprint(&ref_full),
        artifact_fingerprint(&first)
    );

    // The daemon dies between sweep points.
    handle.shutdown();
    join.join().expect("server thread");

    let second = run_flow_cached(&g, &t_capped, &options, &sweep_cache)
        .expect("a dead daemon must never fail the flow");
    assert_eq!(
        artifact_fingerprint(&ref_capped),
        artifact_fingerprint(&second),
        "degraded-to-local artifacts must be byte-identical to the local reference"
    );
    let stats = sweep_cache.stats();
    assert!(
        stats.remote_errors > 0,
        "the outage must be visible in the counters: {}",
        stats.summary()
    );
}

/// A daemon that was never reachable behaves the same: local-only from
/// the first lookup, correct bytes, errors counted, no failure.
#[test]
fn unreachable_daemon_degrades_to_local_only() {
    let g = workloads::equalizer(2);
    let target = Target::fuzzy_board();
    let options = FlowOptions::quick();

    let reference = FlowSession::new(&g)
        .target(target.clone())
        .options(options.clone())
        .run()
        .expect("local reference");

    // Bind-then-drop guarantees a port nobody is listening on.
    let addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind probe");
        listener.local_addr().expect("probe addr").to_string()
    };
    let cache = StageCache::new(64).with_remote(Arc::new(RemoteStore::new(addr)));
    let run = run_flow_cached(&g, &target, &options, &cache).expect("flow degrades, not fails");
    assert_eq!(run.trace.cache_misses(), 9, "{}", run.trace.to_table());
    assert_eq!(artifact_fingerprint(&reference), artifact_fingerprint(&run));
    let stats = cache.stats();
    assert_eq!(stats.remote_hits, 0, "{}", stats.summary());
    assert!(stats.remote_errors > 0, "{}", stats.summary());
    assert!(
        stats.summary().contains("remote tier:"),
        "remote traffic must surface in the summary: {}",
        stats.summary()
    );
}
