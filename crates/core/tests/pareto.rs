//! The `FlowSession::pareto` epsilon-constraint sweep contracts.
//!
//! * **Determinism** — a sweep is byte-identical (report and CSV) at
//!   `jobs = 1` and `jobs = 4`: points run on scoped workers but land
//!   in input (budget) order, and each point solves intra-point serial
//!   whenever the fan-out is the parallel axis.
//! * **Single estimation** — the cost model is estimated exactly once
//!   in the spec→cost prefix; every point's own `cost` stage appears
//!   as [`CacheOutcome::Seeded`], never as an execution.
//! * **Warm re-runs** — a second sweep over the same shared
//!   [`StageCache`] computes 0 stages and reproduces the same bytes.
//! * **Dominance** — `non_dominated()` is exactly the weak-dominance
//!   filter over (makespan, total CLBs), duplicates kept.
//! * **Truncation honesty** — node-limit-truncated MILP points carry
//!   `Some(gap)` and the report/CSV say so.

use cool_core::{CacheOutcome, FlowError, FlowOptions, FlowSession, Partitioner, StageCache};
use cool_ir::{BudgetConstraint, Objective, Target};
use cool_partition::MilpOptions;
use cool_spec::workloads::{self, random_dag, RandomDagConfig};

fn budgets(clbs: &[u32]) -> Vec<BudgetConstraint> {
    clbs.iter().copied().map(BudgetConstraint::new).collect()
}

fn sweep(
    g: &cool_ir::PartitioningGraph,
    options: &FlowOptions,
    jobs: usize,
    cache: Option<&StageCache>,
    clbs: &[u32],
) -> cool_core::ParetoFront {
    let mut session = FlowSession::new(g)
        .target(Target::fuzzy_board())
        .options(options.clone())
        .jobs(jobs);
    if let Some(cache) = cache {
        session = session.cache(cache.clone());
    }
    session.pareto(budgets(clbs)).unwrap()
}

// ---------------------------------------------------------------------
// Validation.

#[test]
fn empty_budgets_and_multiple_targets_are_session_errors() {
    let g = workloads::equalizer(2);
    match FlowSession::new(&g)
        .target(Target::fuzzy_board())
        .options(FlowOptions::quick())
        .pareto([])
    {
        Err(FlowError::Session(why)) => assert!(why.contains("no budgets"), "{why}"),
        other => panic!("expected Session error, got {other:?}"),
    }
    match FlowSession::new(&g)
        .targets([Target::fuzzy_board(), Target::fuzzy_board()])
        .options(FlowOptions::quick())
        .pareto(budgets(&[32]))
    {
        Err(FlowError::Session(why)) => {
            assert!(why.contains("one base board"), "{why}");
        }
        other => panic!("expected Session error, got {other:?}"),
    }
    match FlowSession::new(&g)
        .options(FlowOptions::quick())
        .pareto(budgets(&[32]))
    {
        Err(FlowError::Session(why)) => assert!(why.contains("no target"), "{why}"),
        other => panic!("expected Session error, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Determinism and single estimation.

#[test]
fn sweep_is_byte_identical_at_jobs_1_and_4() {
    let g = workloads::equalizer(4);
    let options = FlowOptions::quick();
    let clbs = [8, 32, 96, 196];
    let serial = sweep(&g, &options, 1, None, &clbs);
    let parallel = sweep(&g, &options, 4, None, &clbs);
    assert_eq!(serial.report(), parallel.report());
    assert_eq!(serial.to_csv(), parallel.to_csv());
    // Input order: point i carries budget i.
    for (point, &budget) in serial.points().iter().zip(&clbs) {
        assert_eq!(point.budget.max_clbs_per_fpga, budget);
    }
}

#[test]
fn cost_is_estimated_once_and_every_point_is_seeded() {
    let g = workloads::equalizer(4);
    let front = sweep(&g, &FlowOptions::quick(), 4, None, &[16, 64, 196]);
    assert_eq!(front.len(), 3);
    assert_eq!(front.cost_estimations(), 1);
    assert!(
        front
            .estimation_trace()
            .records()
            .iter()
            .any(|r| r.name == "cost"),
        "the estimation prefix must have run cost:\n{}",
        front.estimation_trace().to_table()
    );
    for point in front.points() {
        assert!(
            point
                .trace()
                .records()
                .iter()
                .any(|r| r.name == "cost" && r.cache == CacheOutcome::Seeded),
            "every point must see the retargeted model as seeded:\n{}",
            point.trace().to_table()
        );
    }
    let report = front.report();
    assert!(
        report.contains("estimated 1 time(s) for 3 point(s)"),
        "{report}"
    );
}

#[test]
fn warm_rerun_over_a_shared_cache_computes_zero_stages() {
    let g = workloads::equalizer(4);
    let options = FlowOptions::quick();
    let cache = StageCache::default();
    let clbs = [16, 64, 196];
    let cold = sweep(&g, &options, 2, Some(&cache), &clbs);
    assert!(cold.computed_stages() > 0, "a cold sweep must compute");
    let warm = sweep(&g, &options, 2, Some(&cache), &clbs);
    assert_eq!(
        warm.computed_stages(),
        0,
        "a warm re-run must restore everything:\n{}",
        warm.report()
    );
    assert_eq!(warm.to_csv(), cold.to_csv());
    assert!(
        warm.report().contains("0 stage(s) computed"),
        "{}",
        warm.report()
    );
}

// ---------------------------------------------------------------------
// Dominance.

#[test]
fn non_dominated_is_exactly_the_weak_dominance_filter() {
    let g = workloads::fir(12);
    let front = sweep(&g, &FlowOptions::quick(), 2, None, &[4, 8, 16, 48, 96, 196]);
    assert!(!front.non_dominated().is_empty(), "a front is never empty");
    let metrics: Vec<(u64, u32)> = front
        .points()
        .iter()
        .map(|p| (p.makespan(), p.total_clbs()))
        .collect();
    for (i, point) in front.points().iter().enumerate() {
        let (m, a) = metrics[i];
        let dominated = metrics
            .iter()
            .enumerate()
            .any(|(j, &(mj, aj))| j != i && mj <= m && aj <= a && (mj < m || aj < a));
        assert_eq!(
            point.dominated,
            dominated,
            "point {i} ({m} cycles, {a} CLBs) has the wrong dominance flag:\n{}",
            front.report()
        );
    }
    // The report's front column agrees with the flags.
    let report = front.report();
    for point in front.non_dominated() {
        assert!(!point.dominated);
        assert!(report.contains('*'), "{report}");
    }
}

// ---------------------------------------------------------------------
// Truncation honesty.

/// The branching 8-node DAG from the optimality battery: under a low
/// communication weight its MILP root relaxation is fractional, and
/// `max_nodes = 12` truncates the branch & bound with an incumbent.
#[test]
fn truncated_points_carry_their_gap() {
    let g = random_dag(RandomDagConfig {
        nodes: 8,
        seed: 7,
        ..Default::default()
    });
    let options = FlowOptions {
        partitioner: Partitioner::Milp(MilpOptions {
            objective: Objective::blend(1.0, 0.1, 0.05),
            max_nodes: 12,
            ..Default::default()
        }),
        ..FlowOptions::quick()
    };
    // Budget 196 reproduces the stock fuzzy board, where max_nodes = 12
    // reliably truncates; looser budgets ride along.
    let front = sweep(&g, &options, 1, None, &[196]);
    assert_eq!(front.truncated_points(), 1, "{}", front.report());
    let point = &front.points()[0];
    assert!(point.is_truncated());
    let gap = point.gap().expect("a truncated point must carry its gap");
    assert!(gap >= 0.0, "gap {gap} must be a sane ratio");
    let report = front.report();
    assert!(report.contains("node-limit truncated"), "{report}");
    assert!(report.contains("warning:"), "{report}");
    let csv = front.to_csv();
    let row = csv.lines().nth(1).unwrap();
    assert!(
        row.contains(&format!("{gap:.6}")),
        "the CSV gap column must quantify the truncation: {row}"
    );
}

#[test]
fn objective_override_is_reflected_in_the_front_label() {
    let g = workloads::equalizer(2);
    let options = FlowOptions::quick().with_objective(Objective::Area);
    let front = sweep(&g, &options, 1, None, &[32, 96]);
    assert_eq!(front.objective(), "area");
    assert!(
        front.report().contains("objective area"),
        "{}",
        front.report()
    );
}
