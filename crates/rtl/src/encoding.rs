//! FSM state-encoding optimization.
//!
//! Logic synthesis of the communicating controllers (Oscar + Synopsys in
//! the paper) spends most of its time searching implementation spaces.
//! This module reproduces the state-assignment part: given the system
//! controller's STG, it searches binary state encodings that minimize the
//! total Hamming distance across transitions — the classical proxy for
//! next-state logic size. The search effort is configurable and is what
//! makes hardware synthesis dominate end-to-end flow time, as the paper
//! reports (> 90 %).

use cool_stg::Stg;

/// A state assignment: one binary code per state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateEncoding {
    /// Code per state, indexed like the STG's states.
    pub codes: Vec<u32>,
    /// Bits per code.
    pub bits: u32,
    /// Total Hamming distance over all transitions (lower = cheaper
    /// next-state logic).
    pub cost: u64,
    /// Number of candidate encodings examined.
    pub candidates_tried: usize,
}

/// Cost of an assignment: sum of Hamming distances across transitions.
#[must_use]
pub fn encoding_cost(stg: &Stg, codes: &[u32]) -> u64 {
    stg.transitions()
        .iter()
        .map(|t| u64::from((codes[t.from.index()] ^ codes[t.to.index()]).count_ones()))
        .sum()
}

/// Search a good binary encoding for the STG's states.
///
/// Deterministic: `effort` is split across up to [`ENCODING_STREAMS`]
/// independent seeded search streams; each stream explores random swap
/// mutations plus a greedy pairwise-improvement pass per candidate,
/// keeping the cheapest (ties broken by stream index). `effort = 0`
/// returns the identity encoding.
#[must_use]
pub fn optimize_encoding(stg: &Stg, effort: u32) -> StateEncoding {
    optimize_encoding_jobs(stg, effort, 1)
}

/// Number of independent search streams [`optimize_encoding_jobs`]
/// splits its effort across. Fixed (never derived from the jobs knob) so
/// that the result is identical for every worker count.
pub const ENCODING_STREAMS: u32 = 8;

/// Like [`optimize_encoding`], but running the independent search
/// streams on `jobs` scoped worker threads (`0` = all cores).
///
/// Stream count and seeds depend only on `effort`, so the returned
/// encoding is identical for every `jobs` value; only wall-clock
/// changes.
#[must_use]
pub fn optimize_encoding_jobs(stg: &Stg, effort: u32, jobs: usize) -> StateEncoding {
    let n = stg.state_count();
    let bits = if n <= 1 {
        1
    } else {
        usize::BITS - (n - 1).leading_zeros()
    };
    let streams = ENCODING_STREAMS.min(effort.max(1));
    let base = effort / streams;
    let rem = effort % streams;
    let runs: Vec<(u32, u64)> = (0..streams)
        .map(|k| {
            let stream_effort = base + u32::from(k < rem);
            // SplitMix64 over the stream index; stream 0 keeps the
            // historical constant so low-effort searches stay comparable.
            let mut z = 0x9e37_79b9_7f4a_7c15u64
                .wrapping_add(u64::from(k).wrapping_mul(0xbf58_476d_1ce4_e5b9));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (
                stream_effort,
                if k == 0 {
                    0x9e37_79b9_7f4a_7c15
                } else {
                    z ^ (z >> 31)
                },
            )
        })
        .collect();

    let results: Vec<StreamResult> =
        cool_ir::par::par_map(&runs, jobs, |&(e, s)| search_stream(stg, e, s));

    let tried: usize = results.iter().map(|(_, _, t)| t).sum::<usize>() - (results.len() - 1);
    let (codes, cost, _) = results
        .into_iter()
        .enumerate()
        .min_by_key(|(k, (_, cost, _))| (*cost, *k))
        .map(|(_, r)| r)
        .expect("at least one stream");
    StateEncoding {
        codes,
        bits,
        cost,
        candidates_tried: tried,
    }
}

/// Result of one search stream: `(codes, cost, candidates tried)`.
type StreamResult = (Vec<u32>, u64, usize);

/// One sequential search stream: `effort × states` random swap mutations
/// of the stream's best, each followed by a greedy adjacent-swap pass.
fn search_stream(stg: &Stg, effort: u32, seed: u64) -> StreamResult {
    let n = stg.state_count();
    let identity: Vec<u32> = (0..n as u32).collect();
    let mut best = identity.clone();
    let mut best_cost = encoding_cost(stg, &best);
    let mut tried = 1usize;

    let mut rng_state = seed | 1;
    let mut next = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };

    let rounds = effort as usize * n;
    let mut candidate = identity;
    for _ in 0..rounds {
        // Random swap mutation of the current best.
        candidate.copy_from_slice(&best);
        let i = (next() % n.max(1) as u64) as usize;
        let j = (next() % n.max(1) as u64) as usize;
        candidate.swap(i, j);
        // Greedy improvement: try swapping each adjacent pair once.
        let mut cost = encoding_cost(stg, &candidate);
        for k in 0..n.saturating_sub(1) {
            candidate.swap(k, k + 1);
            let c2 = encoding_cost(stg, &candidate);
            if c2 < cost {
                cost = c2;
            } else {
                candidate.swap(k, k + 1);
            }
            tried += 1;
        }
        if cost < best_cost {
            best_cost = cost;
            best.copy_from_slice(&candidate);
        }
        tried += 1;
    }
    (best, best_cost, tried)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_cost::{CommScheme, CostModel};
    use cool_ir::{Mapping, Resource, Target};
    use cool_spec::workloads;

    fn stg() -> Stg {
        let g = workloads::equalizer(4);
        let target = Target::fuzzy_board();
        let cost = CostModel::new(&g, &target);
        let mapping = Mapping::uniform(g.node_count(), Resource::Software(0));
        let sched = cool_schedule::schedule(&g, &mapping, &cost, CommScheme::MemoryMapped).unwrap();
        let (min, _) = cool_stg::minimize(&cool_stg::generate(&g, &mapping, &sched));
        min
    }

    #[test]
    fn codes_are_a_permutation() {
        let s = stg();
        let enc = optimize_encoding(&s, 4);
        let mut codes = enc.codes.clone();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), s.state_count(), "codes must be unique");
    }

    #[test]
    fn more_effort_never_hurts() {
        let s = stg();
        let low = optimize_encoding(&s, 1);
        let high = optimize_encoding(&s, 8);
        assert!(high.cost <= low.cost);
        assert!(high.candidates_tried > low.candidates_tried);
    }

    #[test]
    fn cost_matches_manual_computation() {
        let s = stg();
        let enc = optimize_encoding(&s, 2);
        assert_eq!(enc.cost, encoding_cost(&s, &enc.codes));
    }

    #[test]
    fn deterministic() {
        let s = stg();
        assert_eq!(optimize_encoding(&s, 3), optimize_encoding(&s, 3));
    }

    #[test]
    fn zero_effort_is_identity() {
        let s = stg();
        let enc = optimize_encoding(&s, 0);
        assert_eq!(enc.codes, (0..s.state_count() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_invariant() {
        let s = stg();
        let serial = optimize_encoding_jobs(&s, 24, 1);
        for jobs in [2usize, 4, 0] {
            assert_eq!(optimize_encoding_jobs(&s, 24, jobs), serial, "jobs={jobs}");
        }
        // And the single-threaded entry point is the jobs=1 result.
        assert_eq!(optimize_encoding(&s, 24), serial);
    }
}
