//! FSM state-encoding optimization.
//!
//! Logic synthesis of the communicating controllers (Oscar + Synopsys in
//! the paper) spends most of its time searching implementation spaces.
//! This module reproduces the state-assignment part: given the system
//! controller's STG, it searches binary state encodings that minimize the
//! total Hamming distance across transitions — the classical proxy for
//! next-state logic size. The search effort is configurable and is what
//! makes hardware synthesis dominate end-to-end flow time, as the paper
//! reports (> 90 %).

use cool_stg::Stg;

/// A state assignment: one binary code per state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateEncoding {
    /// Code per state, indexed like the STG's states.
    pub codes: Vec<u32>,
    /// Bits per code.
    pub bits: u32,
    /// Total Hamming distance over all transitions (lower = cheaper
    /// next-state logic).
    pub cost: u64,
    /// Number of candidate encodings examined.
    pub candidates_tried: usize,
}

/// Cost of an assignment: sum of Hamming distances across transitions.
#[must_use]
pub fn encoding_cost(stg: &Stg, codes: &[u32]) -> u64 {
    stg.transitions()
        .iter()
        .map(|t| u64::from((codes[t.from.index()] ^ codes[t.to.index()]).count_ones()))
        .sum()
}

/// Search a good binary encoding for the STG's states.
///
/// Deterministic: a seeded xorshift explores `effort × states` random
/// permutations plus a greedy pairwise-improvement pass per candidate,
/// keeping the cheapest. `effort = 0` returns the identity encoding.
#[must_use]
pub fn optimize_encoding(stg: &Stg, effort: u32) -> StateEncoding {
    let n = stg.state_count();
    let bits = if n <= 1 { 1 } else { (usize::BITS - (n - 1).leading_zeros()) as u32 };
    let identity: Vec<u32> = (0..n as u32).collect();
    let mut best = identity.clone();
    let mut best_cost = encoding_cost(stg, &best);
    let mut tried = 1usize;

    let mut rng_state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };

    let rounds = effort as usize * n;
    let mut candidate = identity;
    for _ in 0..rounds {
        // Random swap mutation of the current best.
        candidate.copy_from_slice(&best);
        let i = (next() % n as u64) as usize;
        let j = (next() % n as u64) as usize;
        candidate.swap(i, j);
        // Greedy improvement: try swapping each adjacent pair once.
        let mut cost = encoding_cost(stg, &candidate);
        for k in 0..n.saturating_sub(1) {
            candidate.swap(k, k + 1);
            let c2 = encoding_cost(stg, &candidate);
            if c2 < cost {
                cost = c2;
            } else {
                candidate.swap(k, k + 1);
            }
            tried += 1;
        }
        if cost < best_cost {
            best_cost = cost;
            best.copy_from_slice(&candidate);
        }
        tried += 1;
    }
    StateEncoding { codes: best, bits, cost: best_cost, candidates_tried: tried }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_cost::{CommScheme, CostModel};
    use cool_ir::{Mapping, Resource, Target};
    use cool_spec::workloads;

    fn stg() -> Stg {
        let g = workloads::equalizer(4);
        let target = Target::fuzzy_board();
        let cost = CostModel::new(&g, &target);
        let mapping = Mapping::uniform(g.node_count(), Resource::Software(0));
        let sched =
            cool_schedule::schedule(&g, &mapping, &cost, CommScheme::MemoryMapped).unwrap();
        let (min, _) = cool_stg::minimize(&cool_stg::generate(&g, &mapping, &sched));
        min
    }

    #[test]
    fn codes_are_a_permutation() {
        let s = stg();
        let enc = optimize_encoding(&s, 4);
        let mut codes = enc.codes.clone();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), s.state_count(), "codes must be unique");
    }

    #[test]
    fn more_effort_never_hurts() {
        let s = stg();
        let low = optimize_encoding(&s, 1);
        let high = optimize_encoding(&s, 8);
        assert!(high.cost <= low.cost);
        assert!(high.candidates_tried > low.candidates_tried);
    }

    #[test]
    fn cost_matches_manual_computation() {
        let s = stg();
        let enc = optimize_encoding(&s, 2);
        assert_eq!(enc.cost, encoding_cost(&s, &enc.codes));
    }

    #[test]
    fn deterministic() {
        let s = stg();
        assert_eq!(optimize_encoding(&s, 3), optimize_encoding(&s, 3));
    }

    #[test]
    fn zero_effort_is_identity() {
        let s = stg();
        let enc = optimize_encoding(&s, 0);
        assert_eq!(enc.codes, (0..s.state_count() as u32).collect::<Vec<_>>());
    }
}
