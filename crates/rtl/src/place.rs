//! CLB placement for the XC4000-class FPGAs — the place-and-route
//! stand-in.
//!
//! The paper's flow ends with Xilinx implementation of the synthesized
//! VHDL on two XC4005 devices, and that back-end work is what made
//! "hardware synthesis consume more than 90 % of the design time". This
//! module reproduces the placement half: cells (one per CLB of every
//! hardware block and controller) are placed on the device's CLB grid by
//! simulated annealing minimizing total half-perimeter wirelength (HPWL).
//! Routing is approximated by the final HPWL (a standard proxy).

use std::fmt;

/// A placement problem: `cells` CLBs connected by `nets`, each net a list
/// of cell indices, on a `width × height` CLB grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementProblem {
    /// Number of cells (CLBs) to place.
    pub cells: usize,
    /// Nets as cell-index lists (2+ pins each).
    pub nets: Vec<Vec<usize>>,
    /// Grid width in CLB sites (14 for the XC4005).
    pub width: u16,
    /// Grid height in CLB sites (14 for the XC4005).
    pub height: u16,
}

impl PlacementProblem {
    /// Build the placement problem for one FPGA of a synthesized design:
    /// each hardware block contributes its CLB count as a chained cluster,
    /// and one star net ties every block's first CLB to the datapath
    /// controller cluster.
    ///
    /// `block_clbs` lists the CLB count of each hardware block on this
    /// device; `controller_clbs` is the datapath controller's size.
    #[must_use]
    pub fn for_device(
        block_clbs: &[u32],
        controller_clbs: u32,
        width: u16,
        height: u16,
    ) -> PlacementProblem {
        let mut nets: Vec<Vec<usize>> = Vec::new();
        let mut first_cell_of_block = Vec::new();
        let mut next = 0usize;
        for &clbs in block_clbs {
            let n = clbs.max(1) as usize;
            first_cell_of_block.push(next);
            // Chain net per block: datapath CLBs are locally connected.
            for i in 0..n.saturating_sub(1) {
                nets.push(vec![next + i, next + i + 1]);
            }
            next += n;
        }
        let ctrl_start = next;
        let ctrl = controller_clbs.max(1) as usize;
        for i in 0..ctrl.saturating_sub(1) {
            nets.push(vec![ctrl_start + i, ctrl_start + i + 1]);
        }
        next += ctrl;
        // Star: controller drives every block (start/done handshakes).
        for &f in &first_cell_of_block {
            nets.push(vec![ctrl_start, f]);
        }
        PlacementProblem {
            cells: next,
            nets,
            width,
            height,
        }
    }

    /// `true` if the problem fits the grid.
    #[must_use]
    pub fn fits(&self) -> bool {
        self.cells <= usize::from(self.width) * usize::from(self.height)
    }
}

/// The result of annealing a [`PlacementProblem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Site of each cell as `(x, y)`.
    pub positions: Vec<(u16, u16)>,
    /// Final total half-perimeter wirelength.
    pub wirelength: u64,
    /// Initial (pre-annealing) wirelength, for the improvement report.
    pub initial_wirelength: u64,
    /// Annealing moves attempted.
    pub moves: usize,
}

impl Placement {
    /// Fractional wirelength improvement over the initial placement.
    #[must_use]
    pub fn improvement(&self) -> f64 {
        if self.initial_wirelength == 0 {
            return 0.0;
        }
        1.0 - self.wirelength as f64 / self.initial_wirelength as f64
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "placement: {} cells, HPWL {} (from {}, {:.0} % better), {} moves",
            self.positions.len(),
            self.wirelength,
            self.initial_wirelength,
            self.improvement() * 100.0,
            self.moves
        )
    }
}

/// Total HPWL of an assignment.
#[must_use]
pub fn wirelength(problem: &PlacementProblem, positions: &[(u16, u16)]) -> u64 {
    problem
        .nets
        .iter()
        .map(|net| {
            let (mut xmin, mut xmax, mut ymin, mut ymax) = (u16::MAX, 0u16, u16::MAX, 0u16);
            for &c in net {
                let (x, y) = positions[c];
                xmin = xmin.min(x);
                xmax = xmax.max(x);
                ymin = ymin.min(y);
                ymax = ymax.max(y);
            }
            u64::from(xmax - xmin) + u64::from(ymax - ymin)
        })
        .sum()
}

/// Place by simulated annealing. `effort` scales the move budget
/// (`effort × cells × 32` moves); deterministic for equal inputs.
///
/// # Panics
///
/// Panics if the problem does not fit the grid.
#[must_use]
pub fn anneal(problem: &PlacementProblem, effort: u32, seed: u64) -> Placement {
    assert!(
        problem.fits(),
        "{} cells exceed the {}x{} grid",
        problem.cells,
        problem.width,
        problem.height
    );
    let sites = usize::from(problem.width) * usize::from(problem.height);
    // site_of_cell / cell_of_site bookkeeping; initial placement row-major.
    let mut pos: Vec<usize> = (0..problem.cells).collect();
    let mut occupant: Vec<Option<usize>> = (0..sites)
        .map(|s| if s < problem.cells { Some(s) } else { None })
        .collect();
    let coord = |site: usize| -> (u16, u16) {
        (
            (site % usize::from(problem.width)) as u16,
            (site / usize::from(problem.width)) as u16,
        )
    };
    let positions = |pos: &[usize]| -> Vec<(u16, u16)> { pos.iter().map(|&s| coord(s)).collect() };

    let initial_wl = wirelength(problem, &positions(&pos));
    let mut current = initial_wl as i64;

    let mut rng = seed | 1;
    let mut next_u64 = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };

    // Nets per cell for incremental-ish evaluation (recompute affected nets).
    let mut nets_of_cell: Vec<Vec<usize>> = vec![Vec::new(); problem.cells];
    for (ni, net) in problem.nets.iter().enumerate() {
        for &c in net {
            nets_of_cell[c].push(ni);
        }
    }
    let net_wl = |net: &[usize], pos: &[usize]| -> i64 {
        let (mut xmin, mut xmax, mut ymin, mut ymax) = (u16::MAX, 0u16, u16::MAX, 0u16);
        for &c in net {
            let (x, y) = coord(pos[c]);
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
        i64::from(xmax - xmin) + i64::from(ymax - ymin)
    };

    let moves = effort as usize * problem.cells * 32;
    let mut temperature = (problem.width + problem.height) as f64;
    let cooling = if moves > 0 {
        (0.005f64 / temperature).powf(1.0 / moves as f64)
    } else {
        1.0
    };

    for _ in 0..moves {
        let cell = (next_u64() % problem.cells as u64) as usize;
        let target_site = (next_u64() % sites as u64) as usize;
        let old_site = pos[cell];
        if target_site == old_site {
            temperature *= cooling;
            continue;
        }
        let other = occupant[target_site];
        // Delta: recompute nets touching `cell` (and `other` if swapping).
        let mut affected: Vec<usize> = nets_of_cell[cell].clone();
        if let Some(o) = other {
            affected.extend_from_slice(&nets_of_cell[o]);
        }
        affected.sort_unstable();
        affected.dedup();
        let before: i64 = affected
            .iter()
            .map(|&ni| net_wl(&problem.nets[ni], &pos))
            .sum();
        // Apply move.
        pos[cell] = target_site;
        if let Some(o) = other {
            pos[o] = old_site;
        }
        let after: i64 = affected
            .iter()
            .map(|&ni| net_wl(&problem.nets[ni], &pos))
            .sum();
        let delta = after - before;
        let accept = delta <= 0 || {
            let p = (-(delta as f64) / temperature.max(1e-9)).exp();
            (next_u64() % 1_000_000) as f64 / 1_000_000.0 < p
        };
        if accept {
            occupant[old_site] = other;
            occupant[target_site] = Some(cell);
            current += delta;
        } else {
            // Revert.
            pos[cell] = old_site;
            if let Some(o) = other {
                pos[o] = target_site;
            }
        }
        temperature *= cooling;
    }

    let final_positions = positions(&pos);
    debug_assert_eq!(current as u64, wirelength(problem, &final_positions));
    Placement {
        positions: final_positions,
        wirelength: current as u64,
        initial_wirelength: initial_wl,
        moves,
    }
}

/// Number of independent chains [`anneal_multistart`] splits its move
/// budget across. Fixed (never derived from the jobs knob) so that the
/// result is identical for every worker count.
pub const MULTISTART_CHAINS: u32 = 8;

/// Deterministic multi-start annealing: split `effort` across up to
/// [`MULTISTART_CHAINS`] independent seeded chains, keep the best final
/// placement (ties broken by chain index).
///
/// A single annealing chain is a sequential Markov process and cannot be
/// parallelized without changing its trajectory; independent restarts
/// can. The chain count and per-chain seeds depend only on `effort` and
/// `seed`, so the returned placement is byte-identical for every `jobs`
/// value — `jobs` (`0` = all cores) only spreads the chains across
/// scoped worker threads. The total move budget matches a single
/// [`anneal`] call of the same `effort`.
///
/// # Panics
///
/// Panics if the problem does not fit the grid.
#[must_use]
pub fn anneal_multistart(
    problem: &PlacementProblem,
    effort: u32,
    seed: u64,
    jobs: usize,
) -> Placement {
    let chains = MULTISTART_CHAINS.min(effort.max(1));
    let base = effort / chains;
    let rem = effort % chains;
    let runs: Vec<(u32, u64)> = (0..chains)
        .map(|k| {
            let chain_effort = base + u32::from(k < rem);
            // SplitMix64 over (seed, k): decorrelates chains cheaply.
            let mut z = seed
                .wrapping_add(u64::from(k).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (chain_effort, z ^ (z >> 31))
        })
        .collect();

    let results: Vec<Placement> =
        cool_ir::par::par_map(&runs, jobs, |&(e, s)| anneal(problem, e, s));

    let total_moves: usize = results.iter().map(|p| p.moves).sum();
    let mut best = results
        .into_iter()
        .enumerate()
        .min_by_key(|(k, p)| (p.wirelength, *k))
        .map(|(_, p)| p)
        .expect("at least one chain");
    best.moves = total_moves;
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multistart_is_jobs_invariant() {
        let cells = 60;
        let p = PlacementProblem {
            cells,
            nets: (1..cells).map(|i| vec![0, i]).collect(),
            width: 14,
            height: 14,
        };
        let serial = anneal_multistart(&p, 32, 42, 1);
        for jobs in [2usize, 4, 0] {
            let par = anneal_multistart(&p, 32, 42, jobs);
            assert_eq!(par.positions, serial.positions, "jobs={jobs}");
            assert_eq!(par.wirelength, serial.wirelength, "jobs={jobs}");
            assert_eq!(par.moves, serial.moves, "jobs={jobs}");
        }
        assert!(serial.wirelength <= serial.initial_wirelength);
    }

    #[test]
    fn multistart_move_budget_matches_single_anneal() {
        let cells = 30;
        let p = PlacementProblem {
            cells,
            nets: (1..cells).map(|i| vec![0, i]).collect(),
            width: 14,
            height: 14,
        };
        let single = anneal(&p, 16, 7);
        let multi = anneal_multistart(&p, 16, 7, 1);
        assert_eq!(multi.moves, single.moves);
    }

    fn chain_problem(cells: usize) -> PlacementProblem {
        PlacementProblem {
            cells,
            nets: (0..cells - 1).map(|i| vec![i, i + 1]).collect(),
            width: 14,
            height: 14,
        }
    }

    #[test]
    fn annealing_improves_scattered_chain() {
        // A chain scattered row-major already has decent locality; scramble
        // via a star problem instead: all cells tied to cell 0.
        let cells = 60;
        let p = PlacementProblem {
            cells,
            nets: (1..cells).map(|i| vec![0, i]).collect(),
            width: 14,
            height: 14,
        };
        let placed = anneal(&p, 8, 42);
        assert!(
            placed.wirelength <= placed.initial_wirelength,
            "{} > {}",
            placed.wirelength,
            placed.initial_wirelength
        );
    }

    #[test]
    fn placement_is_a_permutation_of_sites() {
        let p = chain_problem(50);
        let placed = anneal(&p, 4, 1);
        let mut seen = std::collections::BTreeSet::new();
        for &(x, y) in &placed.positions {
            assert!(x < p.width && y < p.height);
            assert!(seen.insert((x, y)), "two cells on one site");
        }
    }

    #[test]
    fn deterministic() {
        let p = chain_problem(30);
        assert_eq!(anneal(&p, 4, 9), anneal(&p, 4, 9));
    }

    #[test]
    fn wirelength_matches_positions() {
        let p = chain_problem(10);
        let placed = anneal(&p, 2, 3);
        assert_eq!(placed.wirelength, wirelength(&p, &placed.positions));
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn overfull_grid_rejected() {
        let p = PlacementProblem {
            cells: 300,
            nets: vec![],
            width: 14,
            height: 14,
        };
        let _ = anneal(&p, 1, 0);
    }

    #[test]
    fn for_device_builds_star_and_chains() {
        let p = PlacementProblem::for_device(&[5, 3], 4, 14, 14);
        assert_eq!(p.cells, 12);
        // Chains: 4 + 2 + 3 edges, star: 2 edges.
        assert_eq!(p.nets.len(), 4 + 2 + 3 + 2);
        assert!(p.fits());
    }

    #[test]
    fn more_effort_does_not_worsen_result() {
        let cells = 80;
        let p = PlacementProblem {
            cells,
            nets: (1..cells).map(|i| vec![i / 2, i]).collect(),
            width: 14,
            height: 14,
        };
        let low = anneal(&p, 1, 7);
        let high = anneal(&p, 16, 7);
        assert!(
            high.wirelength <= low.wirelength + low.wirelength / 4,
            "high-effort placement much worse: {} vs {}",
            high.wirelength,
            low.wirelength
        );
    }
}
