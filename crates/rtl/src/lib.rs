//! Communicating-controller synthesis and netlist generation.
//!
//! "To implement a complete hardware/software system, additional parts are
//! required: the system controller, steering the complete system according
//! to the computed schedule, data path controllers to support hardware
//! sharing, an I/O controller to communicate with the environment and bus
//! arbiters to prevent conflicts. These additional pieces will be
//! implemented in hardware […]. COOL generates VHDL specifications for all
//! these additional pieces and a net-list wiring all them." (paper §2,
//! Figure 4.)
//!
//! This crate builds exactly those artefacts:
//!
//! * [`SystemController`] — a Moore FSM derived from the (minimized) STG;
//! * [`build_netlist`] — the component/net inventory of Figure 4;
//! * [`vhdl`] — VHDL-1993 emission for every generated component, with a
//!   light well-formedness checker used by the tests;
//! * [`encoding`] — FSM state-assignment search, the logic-synthesis step
//!   whose runtime dominates the flow as in the paper's measurements.

pub mod encoding;
pub mod place;
pub mod vhdl;

use std::fmt;

use cool_ir::codec::{Codec, CodecError, Decoder, Encoder};
use cool_ir::hash::{ContentHash, ContentHasher};
use cool_ir::{Mapping, NodeId, PartitioningGraph, Resource, Target};
use cool_stg::{StateId, Stg};

/// The synthesized system controller: the minimized STG interpreted as a
/// Moore machine. Inputs are the environment start signal and per-node
/// done/ready flags; outputs are per-node start signals plus the global
/// done flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemController {
    stg: Stg,
    nodes: Vec<NodeId>,
}

impl SystemController {
    /// Build the controller from a (preferably minimized) STG.
    #[must_use]
    pub fn from_stg(stg: Stg, g: &PartitioningGraph) -> SystemController {
        SystemController {
            stg,
            nodes: g.function_nodes(),
        }
    }

    /// The controller's state machine.
    #[must_use]
    pub fn stg(&self) -> &Stg {
        &self.stg
    }

    /// Function nodes steered by this controller (start/done port pairs).
    #[must_use]
    pub fn steered_nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of flip-flops a one-hot encoding needs.
    #[must_use]
    pub fn one_hot_ffs(&self) -> usize {
        self.stg.state_count()
    }

    /// Number of flip-flops a binary encoding needs.
    #[must_use]
    pub fn binary_ffs(&self) -> usize {
        let n = self.stg.state_count();
        if n <= 1 {
            1
        } else {
            (usize::BITS - (n - 1).leading_zeros()) as usize
        }
    }

    /// Start signals asserted in `state`.
    #[must_use]
    pub fn outputs_in(&self, state: StateId) -> Vec<NodeId> {
        self.stg.states()[state.index()]
            .kind
            .started_node()
            .into_iter()
            .collect()
    }
}

/// Kinds of netlist components (the boxes of Figure 4).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ComponentKind {
    /// The synthesized system controller.
    SystemController,
    /// A per-hardware-resource datapath controller (hardware sharing).
    DatapathController(Resource),
    /// The I/O controller talking to the environment.
    IoController,
    /// The bus arbiter.
    BusArbiter,
    /// A processor running generated C code.
    Processor(usize),
    /// One synthesized hardware function block (ASIC/FPGA datapath).
    HwBlock(NodeId),
    /// The shared memory.
    Memory,
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComponentKind::SystemController => f.write_str("system_controller"),
            ComponentKind::DatapathController(r) => write!(f, "datapath_controller[{r}]"),
            ComponentKind::IoController => f.write_str("io_controller"),
            ComponentKind::BusArbiter => f.write_str("bus_arbiter"),
            ComponentKind::Processor(i) => write!(f, "processor{i}"),
            ComponentKind::HwBlock(n) => write!(f, "hw_block[{n}]"),
            ComponentKind::Memory => f.write_str("memory"),
        }
    }
}

/// Signal direction of a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortDir {
    /// Input port.
    In,
    /// Output port.
    Out,
    /// Bidirectional (bus data lines).
    InOut,
}

/// A named, typed port of a component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name, unique within the component.
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// Width in bits.
    pub bits: u16,
}

/// One instantiated component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// Instance name, unique within the netlist.
    pub name: String,
    /// What the component is.
    pub kind: ComponentKind,
    /// Its ports.
    pub ports: Vec<Port>,
}

/// A net connecting `(component, port)` endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Net name.
    pub name: String,
    /// Width in bits.
    pub bits: u16,
    /// Connected endpoints as `(component index, port index)`.
    pub endpoints: Vec<(usize, usize)>,
}

/// The generated netlist (Figure 4).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Netlist {
    /// Components in instantiation order.
    pub components: Vec<Component>,
    /// Nets in creation order.
    pub nets: Vec<Net>,
}

impl Netlist {
    /// Count components of a given kind predicate.
    #[must_use]
    pub fn count_kind(&self, pred: impl Fn(&ComponentKind) -> bool) -> usize {
        self.components.iter().filter(|c| pred(&c.kind)).count()
    }

    /// Find a component index by instance name.
    #[must_use]
    pub fn component_by_name(&self, name: &str) -> Option<usize> {
        self.components.iter().position(|c| c.name == name)
    }

    /// Verify structural invariants: endpoint indices valid, net widths
    /// match port widths, port names unique per component.
    ///
    /// # Errors
    ///
    /// `Err(description)` naming the first violation.
    pub fn verify(&self) -> Result<(), String> {
        for c in &self.components {
            let mut names: Vec<&str> = c.ports.iter().map(|p| p.name.as_str()).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            if names.len() != before {
                return Err(format!("component {} has duplicate port names", c.name));
            }
        }
        for n in &self.nets {
            if n.endpoints.is_empty() {
                return Err(format!("net {} is dangling", n.name));
            }
            for &(ci, pi) in &n.endpoints {
                let c = self
                    .components
                    .get(ci)
                    .ok_or_else(|| format!("net {} references missing component {ci}", n.name))?;
                let p = c.ports.get(pi).ok_or_else(|| {
                    format!("net {} references missing port {pi} of {}", n.name, c.name)
                })?;
                if p.bits != n.bits {
                    return Err(format!(
                        "net {} ({} bits) connected to port {}.{} ({} bits)",
                        n.name, n.bits, c.name, p.name, p.bits
                    ));
                }
            }
        }
        Ok(())
    }

    /// Figure-4-style inventory text.
    #[must_use]
    pub fn to_inventory(&self) -> String {
        let mut s = format!(
            "netlist: {} components, {} nets\n",
            self.components.len(),
            self.nets.len()
        );
        for c in &self.components {
            s.push_str(&format!("  {:<24} {} port(s)\n", c.name, c.ports.len()));
        }
        s
    }
}

impl ContentHash for SystemController {
    fn content_hash(&self, h: &mut ContentHasher) {
        self.stg.content_hash(h);
        self.nodes.content_hash(h);
    }
}

impl ContentHash for PortDir {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_u8(match self {
            PortDir::In => 0,
            PortDir::Out => 1,
            PortDir::InOut => 2,
        });
    }
}

impl ContentHash for Port {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_str(&self.name);
        self.dir.content_hash(h);
        h.write_u16(self.bits);
    }
}

impl ContentHash for ComponentKind {
    fn content_hash(&self, h: &mut ContentHasher) {
        match self {
            ComponentKind::SystemController => h.write_u8(0),
            ComponentKind::DatapathController(r) => {
                h.write_u8(1);
                r.content_hash(h);
            }
            ComponentKind::IoController => h.write_u8(2),
            ComponentKind::BusArbiter => h.write_u8(3),
            ComponentKind::Processor(i) => {
                h.write_u8(4);
                h.write_usize(*i);
            }
            ComponentKind::HwBlock(n) => {
                h.write_u8(5);
                n.content_hash(h);
            }
            ComponentKind::Memory => h.write_u8(6),
        }
    }
}

impl ContentHash for Component {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_str(&self.name);
        self.kind.content_hash(h);
        self.ports.content_hash(h);
    }
}

impl ContentHash for Net {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_str(&self.name);
        h.write_u16(self.bits);
        self.endpoints.content_hash(h);
    }
}

impl ContentHash for Netlist {
    fn content_hash(&self, h: &mut ContentHasher) {
        self.components.content_hash(h);
        self.nets.content_hash(h);
    }
}

impl ContentHash for encoding::StateEncoding {
    fn content_hash(&self, h: &mut ContentHasher) {
        self.codes.content_hash(h);
        h.write_u32(self.bits);
        h.write_u64(self.cost);
        h.write_usize(self.candidates_tried);
    }
}

impl ContentHash for place::Placement {
    fn content_hash(&self, h: &mut ContentHasher) {
        self.positions.content_hash(h);
        h.write_u64(self.wirelength);
        h.write_u64(self.initial_wirelength);
        h.write_usize(self.moves);
    }
}

impl Codec for SystemController {
    fn encode(&self, e: &mut Encoder) {
        self.stg.encode(e);
        self.nodes.encode(e);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(SystemController {
            stg: Stg::decode(d)?,
            nodes: Vec::decode(d)?,
        })
    }
}

impl Codec for PortDir {
    fn encode(&self, e: &mut Encoder) {
        e.put_u8(match self {
            PortDir::In => 0,
            PortDir::Out => 1,
            PortDir::InOut => 2,
        });
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.take_u8()? {
            0 => Ok(PortDir::In),
            1 => Ok(PortDir::Out),
            2 => Ok(PortDir::InOut),
            tag => Err(CodecError::InvalidTag {
                type_name: "PortDir",
                tag,
            }),
        }
    }
}

impl Codec for Port {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(&self.name);
        self.dir.encode(e);
        e.put_u16(self.bits);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Port {
            name: d.take_str()?,
            dir: PortDir::decode(d)?,
            bits: d.take_u16()?,
        })
    }
}

impl Codec for ComponentKind {
    fn encode(&self, e: &mut Encoder) {
        match self {
            ComponentKind::SystemController => e.put_u8(0),
            ComponentKind::DatapathController(r) => {
                e.put_u8(1);
                r.encode(e);
            }
            ComponentKind::IoController => e.put_u8(2),
            ComponentKind::BusArbiter => e.put_u8(3),
            ComponentKind::Processor(i) => {
                e.put_u8(4);
                e.put_usize(*i);
            }
            ComponentKind::HwBlock(n) => {
                e.put_u8(5);
                n.encode(e);
            }
            ComponentKind::Memory => e.put_u8(6),
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.take_u8()? {
            0 => Ok(ComponentKind::SystemController),
            1 => Ok(ComponentKind::DatapathController(Resource::decode(d)?)),
            2 => Ok(ComponentKind::IoController),
            3 => Ok(ComponentKind::BusArbiter),
            4 => Ok(ComponentKind::Processor(d.take_usize()?)),
            5 => Ok(ComponentKind::HwBlock(NodeId::decode(d)?)),
            6 => Ok(ComponentKind::Memory),
            tag => Err(CodecError::InvalidTag {
                type_name: "ComponentKind",
                tag,
            }),
        }
    }
}

impl Codec for Component {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(&self.name);
        self.kind.encode(e);
        self.ports.encode(e);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Component {
            name: d.take_str()?,
            kind: ComponentKind::decode(d)?,
            ports: Vec::decode(d)?,
        })
    }
}

impl Codec for Net {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(&self.name);
        e.put_u16(self.bits);
        self.endpoints.encode(e);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Net {
            name: d.take_str()?,
            bits: d.take_u16()?,
            endpoints: Vec::decode(d)?,
        })
    }
}

impl Codec for Netlist {
    fn encode(&self, e: &mut Encoder) {
        self.components.encode(e);
        self.nets.encode(e);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Netlist {
            components: Vec::decode(d)?,
            nets: Vec::decode(d)?,
        })
    }
}

impl Codec for encoding::StateEncoding {
    fn encode(&self, e: &mut Encoder) {
        self.codes.encode(e);
        e.put_u32(self.bits);
        e.put_u64(self.cost);
        e.put_usize(self.candidates_tried);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(encoding::StateEncoding {
            codes: Vec::decode(d)?,
            bits: d.take_u32()?,
            cost: d.take_u64()?,
            candidates_tried: d.take_usize()?,
        })
    }
}

impl Codec for place::Placement {
    fn encode(&self, e: &mut Encoder) {
        self.positions.encode(e);
        e.put_u64(self.wirelength);
        e.put_u64(self.initial_wirelength);
        e.put_usize(self.moves);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(place::Placement {
            positions: Vec::decode(d)?,
            wirelength: d.take_u64()?,
            initial_wirelength: d.take_u64()?,
            moves: d.take_usize()?,
        })
    }
}

fn bit() -> u16 {
    1
}

/// Build the Figure-4 netlist for a partitioned design.
///
/// Instantiates the system controller, one datapath controller per
/// hardware resource in use, the I/O controller, the bus arbiter, every
/// processor, one hardware block per hardware-mapped node, and the shared
/// memory — then wires start/done pairs, bus request/grant pairs and the
/// shared address/data bus.
#[must_use]
pub fn build_netlist(g: &PartitioningGraph, mapping: &Mapping, target: &Target) -> Netlist {
    let mut nl = Netlist::default();
    let data_bits = target.bus.width_bits;

    // --- Components. ---
    let hw_nodes: Vec<NodeId> = g
        .function_nodes()
        .into_iter()
        .filter(|&n| mapping.resource(n).is_hardware())
        .collect();
    let hw_resources: Vec<Resource> = {
        let mut v: Vec<Resource> = hw_nodes.iter().map(|&n| mapping.resource(n)).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let used_processors: Vec<usize> = {
        let mut v: Vec<usize> = g
            .function_nodes()
            .iter()
            .filter_map(|&n| match mapping.resource(n) {
                Resource::Software(p) => Some(p),
                Resource::Hardware(_) => None,
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };

    let functions = g.function_nodes();
    let mut sysctl_ports = vec![
        Port {
            name: "clk".into(),
            dir: PortDir::In,
            bits: bit(),
        },
        Port {
            name: "reset".into(),
            dir: PortDir::In,
            bits: bit(),
        },
        Port {
            name: "sys_start".into(),
            dir: PortDir::In,
            bits: bit(),
        },
        Port {
            name: "sys_done".into(),
            dir: PortDir::Out,
            bits: bit(),
        },
    ];
    for &n in &functions {
        sysctl_ports.push(Port {
            name: format!("start_{}", n.index()),
            dir: PortDir::Out,
            bits: bit(),
        });
        sysctl_ports.push(Port {
            name: format!("done_{}", n.index()),
            dir: PortDir::In,
            bits: bit(),
        });
    }
    let sysctl = nl.components.len();
    nl.components.push(Component {
        name: "sysctl0".into(),
        kind: ComponentKind::SystemController,
        ports: sysctl_ports,
    });

    // Bus masters in arbitration priority order: processors, hw datapath
    // controllers, io controller.
    let mut masters: Vec<usize> = Vec::new();

    for &p in &used_processors {
        let idx = nl.components.len();
        nl.components.push(Component {
            name: target.processors[p].name.clone(),
            kind: ComponentKind::Processor(p),
            ports: vec![
                Port {
                    name: "clk".into(),
                    dir: PortDir::In,
                    bits: bit(),
                },
                Port {
                    name: "bus_req".into(),
                    dir: PortDir::Out,
                    bits: bit(),
                },
                Port {
                    name: "bus_gnt".into(),
                    dir: PortDir::In,
                    bits: bit(),
                },
                Port {
                    name: "data".into(),
                    dir: PortDir::InOut,
                    bits: data_bits,
                },
                Port {
                    name: "addr".into(),
                    dir: PortDir::Out,
                    bits: 16,
                },
            ],
        });
        masters.push(idx);
    }

    for &r in &hw_resources {
        let idx = nl.components.len();
        nl.components.push(Component {
            name: format!("dpctl_{}", target.resource_name(r)),
            kind: ComponentKind::DatapathController(r),
            ports: vec![
                Port {
                    name: "clk".into(),
                    dir: PortDir::In,
                    bits: bit(),
                },
                Port {
                    name: "bus_req".into(),
                    dir: PortDir::Out,
                    bits: bit(),
                },
                Port {
                    name: "bus_gnt".into(),
                    dir: PortDir::In,
                    bits: bit(),
                },
                Port {
                    name: "data".into(),
                    dir: PortDir::InOut,
                    bits: data_bits,
                },
                Port {
                    name: "addr".into(),
                    dir: PortDir::Out,
                    bits: 16,
                },
            ],
        });
        masters.push(idx);
    }

    let ioctl = nl.components.len();
    nl.components.push(Component {
        name: "ioctl0".into(),
        kind: ComponentKind::IoController,
        ports: vec![
            Port {
                name: "clk".into(),
                dir: PortDir::In,
                bits: bit(),
            },
            Port {
                name: "bus_req".into(),
                dir: PortDir::Out,
                bits: bit(),
            },
            Port {
                name: "bus_gnt".into(),
                dir: PortDir::In,
                bits: bit(),
            },
            Port {
                name: "data".into(),
                dir: PortDir::InOut,
                bits: data_bits,
            },
            Port {
                name: "addr".into(),
                dir: PortDir::Out,
                bits: 16,
            },
            Port {
                name: "env_in".into(),
                dir: PortDir::In,
                bits: data_bits,
            },
            Port {
                name: "env_out".into(),
                dir: PortDir::Out,
                bits: data_bits,
            },
        ],
    });
    masters.push(ioctl);

    let mut arb_ports = vec![Port {
        name: "clk".into(),
        dir: PortDir::In,
        bits: bit(),
    }];
    for (i, _) in masters.iter().enumerate() {
        arb_ports.push(Port {
            name: format!("req{i}"),
            dir: PortDir::In,
            bits: bit(),
        });
        arb_ports.push(Port {
            name: format!("gnt{i}"),
            dir: PortDir::Out,
            bits: bit(),
        });
    }
    let arbiter = nl.components.len();
    nl.components.push(Component {
        name: "arbiter0".into(),
        kind: ComponentKind::BusArbiter,
        ports: arb_ports,
    });

    for &n in &hw_nodes {
        let node = g.node(n).expect("hw node exists");
        let mut ports = vec![
            Port {
                name: "clk".into(),
                dir: PortDir::In,
                bits: bit(),
            },
            Port {
                name: "start".into(),
                dir: PortDir::In,
                bits: bit(),
            },
            Port {
                name: "done".into(),
                dir: PortDir::Out,
                bits: bit(),
            },
        ];
        for i in 0..node.behavior().inputs() {
            ports.push(Port {
                name: format!("op{i}"),
                dir: PortDir::In,
                bits: data_bits,
            });
        }
        for o in 0..node.behavior().outputs() {
            ports.push(Port {
                name: format!("res{o}"),
                dir: PortDir::Out,
                bits: data_bits,
            });
        }
        nl.components.push(Component {
            name: format!("hw_{}", node.name()),
            kind: ComponentKind::HwBlock(n),
            ports,
        });
    }

    let memory = nl.components.len();
    nl.components.push(Component {
        name: target.memory.name.clone(),
        kind: ComponentKind::Memory,
        ports: vec![
            Port {
                name: "clk".into(),
                dir: PortDir::In,
                bits: bit(),
            },
            Port {
                name: "data".into(),
                dir: PortDir::InOut,
                bits: data_bits,
            },
            Port {
                name: "addr".into(),
                dir: PortDir::In,
                bits: 16,
            },
            Port {
                name: "we".into(),
                dir: PortDir::In,
                bits: bit(),
            },
        ],
    });

    // --- Nets. ---
    let port_index = |nl: &Netlist, c: usize, name: &str| -> usize {
        nl.components[c]
            .ports
            .iter()
            .position(|p| p.name == name)
            .unwrap_or_else(|| panic!("port {name} on {}", nl.components[c].name))
    };

    // Clock to everything with a clk port.
    let mut clk_eps = Vec::new();
    for (ci, c) in nl.components.iter().enumerate() {
        if let Some(pi) = c.ports.iter().position(|p| p.name == "clk") {
            clk_eps.push((ci, pi));
        }
    }
    nl.nets.push(Net {
        name: "clk".into(),
        bits: bit(),
        endpoints: clk_eps,
    });

    // start/done pairs between system controller and the executing side.
    for &n in &functions {
        let s_pi = port_index(&nl, sysctl, &format!("start_{}", n.index()));
        let d_pi = port_index(&nl, sysctl, &format!("done_{}", n.index()));
        let mut s_eps = vec![(sysctl, s_pi)];
        let mut d_eps = vec![(sysctl, d_pi)];
        if let Some(hb) = nl
            .components
            .iter()
            .position(|c| c.kind == ComponentKind::HwBlock(n))
        {
            s_eps.push((hb, port_index(&nl, hb, "start")));
            d_eps.push((hb, port_index(&nl, hb, "done")));
        }
        // Software nodes handshake through the processor's memory-mapped
        // status registers; the net still exists logically but has the
        // processor as endpoint: skipped (covered by the bus) to keep the
        // netlist free of fake pins.
        nl.nets.push(Net {
            name: format!("start_{}", n.index()),
            bits: bit(),
            endpoints: s_eps,
        });
        nl.nets.push(Net {
            name: format!("done_{}", n.index()),
            bits: bit(),
            endpoints: d_eps,
        });
    }

    // Bus request/grant per master.
    for (i, &m) in masters.iter().enumerate() {
        nl.nets.push(Net {
            name: format!("req{i}"),
            bits: bit(),
            endpoints: vec![
                (m, port_index(&nl, m, "bus_req")),
                (arbiter, port_index(&nl, arbiter, &format!("req{i}"))),
            ],
        });
        nl.nets.push(Net {
            name: format!("gnt{i}"),
            bits: bit(),
            endpoints: vec![
                (m, port_index(&nl, m, "bus_gnt")),
                (arbiter, port_index(&nl, arbiter, &format!("gnt{i}"))),
            ],
        });
    }

    // Shared data and address buses: all masters + memory.
    let mut data_eps: Vec<(usize, usize)> = masters
        .iter()
        .map(|&m| (m, port_index(&nl, m, "data")))
        .collect();
    data_eps.push((memory, port_index(&nl, memory, "data")));
    nl.nets.push(Net {
        name: "bus_data".into(),
        bits: data_bits,
        endpoints: data_eps,
    });
    let mut addr_eps: Vec<(usize, usize)> = masters
        .iter()
        .map(|&m| (m, port_index(&nl, m, "addr")))
        .collect();
    addr_eps.push((memory, port_index(&nl, memory, "addr")));
    nl.nets.push(Net {
        name: "bus_addr".into(),
        bits: 16,
        endpoints: addr_eps,
    });

    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_cost::{CommScheme, CostModel};
    use cool_spec::workloads;
    use cool_stg::StateKind;

    fn mixed_design() -> (PartitioningGraph, Mapping, Target, Stg) {
        let g = workloads::equalizer(4);
        let target = Target::fuzzy_board();
        let cost = CostModel::new(&g, &target);
        let mut mapping = Mapping::uniform(g.node_count(), Resource::Software(0));
        for (i, n) in g.function_nodes().into_iter().enumerate() {
            if i % 2 == 0 {
                mapping.assign(n, Resource::Hardware(i % 2));
            }
        }
        let sched = cool_schedule::schedule(&g, &mapping, &cost, CommScheme::MemoryMapped).unwrap();
        let stg = cool_stg::generate(&g, &mapping, &sched);
        (g, mapping, target, stg)
    }

    #[test]
    fn netlist_contains_paper_components() {
        let (g, mapping, target, _) = mixed_design();
        let nl = build_netlist(&g, &mapping, &target);
        nl.verify().unwrap();
        assert_eq!(nl.count_kind(|k| *k == ComponentKind::SystemController), 1);
        assert_eq!(nl.count_kind(|k| *k == ComponentKind::IoController), 1);
        assert_eq!(nl.count_kind(|k| *k == ComponentKind::BusArbiter), 1);
        assert_eq!(nl.count_kind(|k| *k == ComponentKind::Memory), 1);
        assert!(nl.count_kind(|k| matches!(k, ComponentKind::DatapathController(_))) >= 1);
        assert!(nl.count_kind(|k| matches!(k, ComponentKind::HwBlock(_))) >= 1);
        assert_eq!(
            nl.count_kind(|k| matches!(k, ComponentKind::Processor(_))),
            1
        );
    }

    #[test]
    fn hw_blocks_match_hw_nodes() {
        let (g, mapping, target, _) = mixed_design();
        let nl = build_netlist(&g, &mapping, &target);
        let hw_nodes = g
            .function_nodes()
            .into_iter()
            .filter(|&n| mapping.resource(n).is_hardware())
            .count();
        assert_eq!(
            nl.count_kind(|k| matches!(k, ComponentKind::HwBlock(_))),
            hw_nodes
        );
    }

    #[test]
    fn all_software_design_has_no_hw_blocks() {
        let g = workloads::equalizer(4);
        let target = Target::fuzzy_board();
        let mapping = Mapping::uniform(g.node_count(), Resource::Software(0));
        let nl = build_netlist(&g, &mapping, &target);
        nl.verify().unwrap();
        assert_eq!(nl.count_kind(|k| matches!(k, ComponentKind::HwBlock(_))), 0);
        assert_eq!(
            nl.count_kind(|k| matches!(k, ComponentKind::DatapathController(_))),
            0
        );
    }

    #[test]
    fn controller_encodings() {
        let (g, _, _, stg) = mixed_design();
        let (min, _) = cool_stg::minimize(&stg);
        let ctrl = SystemController::from_stg(min, &g);
        assert!(ctrl.binary_ffs() <= ctrl.one_hot_ffs());
        assert!(ctrl.binary_ffs() >= 1);
        assert_eq!(ctrl.steered_nodes().len(), g.function_nodes().len());
    }

    #[test]
    fn controller_outputs_only_in_exec_states() {
        let (g, _, _, stg) = mixed_design();
        let ctrl = SystemController::from_stg(stg, &g);
        for (i, s) in ctrl.stg().states().iter().enumerate() {
            let outs = ctrl.outputs_in(StateId::from_index(i));
            match s.kind {
                StateKind::Exec(n) => assert_eq!(outs, vec![n]),
                _ => assert!(outs.is_empty()),
            }
        }
    }

    #[test]
    fn inventory_lists_components() {
        let (g, mapping, target, _) = mixed_design();
        let nl = build_netlist(&g, &mapping, &target);
        let inv = nl.to_inventory();
        assert!(inv.contains("sysctl0"));
        assert!(inv.contains("arbiter0"));
        assert!(inv.contains("ioctl0"));
    }

    #[test]
    fn verify_catches_width_mismatch() {
        let (g, mapping, target, _) = mixed_design();
        let mut nl = build_netlist(&g, &mapping, &target);
        nl.nets[0].bits = 7; // clk net corrupted
        assert!(nl.verify().is_err());
    }
}
