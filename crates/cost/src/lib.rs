//! Cost models for COOL partitioning and scheduling.
//!
//! The MILP formulation of COOL's partitioner (paper reference \[4\]) needs,
//! for every node of the partitioning graph:
//!
//! * **software execution time** on each processor (instruction-timing
//!   tables per [`cool_ir::TimingClass`]),
//! * **hardware latency and area** (one quick Oscar/HLS estimate per node,
//!   see [`cool_hls::estimate`]),
//! * **communication time** per edge whose endpoints end up on different
//!   processing units (bus words, wait states, I/O access overhead).
//!
//! [`CostModel::new`] precomputes all of these once per graph; the
//! partitioners and the scheduler then query it in O(1).
//!
//! # Example
//!
//! ```
//! use cool_cost::CostModel;
//! use cool_ir::Target;
//! use cool_spec::workloads;
//!
//! let g = workloads::fuzzy_controller();
//! let target = Target::fuzzy_board();
//! let cost = CostModel::new(&g, &target);
//! let node = g.node_by_name("defuzz").unwrap();
//! // Division is far cheaper in dedicated hardware than on the DSP.
//! assert!(cost.hw_latency_cycles(node) < cost.sw_cycles(node, 0));
//! ```

use cool_hls::{HlsDesign, HlsOptions};
use cool_ir::codec::{Codec, CodecError, Decoder, Encoder};
use cool_ir::hash::{ContentHash, ContentHasher};
use cool_ir::{Edge, NodeId, NodeKind, PartitioningGraph, Resource, Target};

/// How a cut data transfer is physically implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CommScheme {
    /// Producer writes a shared-memory cell over the bus; consumer reads
    /// it back (the paper's memory-mapped I/O path). Two bus transactions
    /// per word plus memory wait states.
    #[default]
    MemoryMapped,
    /// Dedicated point-to-point wiring inserted by co-synthesis (the
    /// paper's "direct communication"): one transfer, no memory waits.
    Direct,
}

/// Precomputed per-node and per-edge costs for one graph on one target.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// `sw[node][processor]` = software cycles.
    sw: Vec<Vec<u64>>,
    /// One HLS estimate per node (None for primary I/O nodes).
    hw: Vec<Option<HlsDesign>>,
    target: Target,
}

impl CostModel {
    /// Build the model with default HLS options (16-bit datapath).
    #[must_use]
    pub fn new(g: &PartitioningGraph, target: &Target) -> CostModel {
        CostModel::with_hls_options(g, target, &HlsOptions::default())
    }

    /// Build the model with explicit HLS options.
    #[must_use]
    pub fn with_hls_options(g: &PartitioningGraph, target: &Target, hls: &HlsOptions) -> CostModel {
        let mut sw = Vec::with_capacity(g.node_count());
        let mut hw = Vec::with_capacity(g.node_count());
        for (_, node) in g.nodes() {
            match node.kind() {
                NodeKind::Function => {
                    let per_proc: Vec<u64> = target
                        .processors
                        .iter()
                        .map(|p| {
                            let mut cycles = p.timing.node_overhead_cycles();
                            node.behavior().for_each_op(|op| {
                                cycles += p.timing.op_cycles(op);
                            });
                            cycles
                        })
                        .collect();
                    sw.push(per_proc);
                    hw.push(Some(cool_hls::estimate(node.name(), node.behavior(), hls)));
                }
                NodeKind::Input | NodeKind::Output => {
                    sw.push(vec![0; target.processors.len()]);
                    hw.push(None);
                }
            }
        }
        CostModel {
            sw,
            hw,
            target: target.clone(),
        }
    }

    /// Rebind the model to a target that differs only in resource
    /// *budgets* (CLB capacities, memory size) — the expensive per-node
    /// HLS estimates and instruction timings are reused instead of being
    /// recomputed.
    ///
    /// This is the sharing seam for partition sweeps: `res2` re-runs the
    /// flow over many FPGA area budgets, and per-node costs do not depend
    /// on capacity.
    ///
    /// # Panics
    ///
    /// Panics if `target` changes the processor or hardware-resource
    /// inventory (count or clocks) — such a change invalidates the cached
    /// estimates, so a fresh [`CostModel::new`] is required.
    #[must_use]
    pub fn retarget(&self, target: &Target) -> CostModel {
        assert_eq!(
            self.target.processors.len(),
            target.processors.len(),
            "retarget must not change the processor inventory"
        );
        assert_eq!(
            self.target.hw.len(),
            target.hw.len(),
            "retarget must not change the hardware-resource inventory"
        );
        for (old, new) in self.target.processors.iter().zip(&target.processors) {
            assert!(
                (old.clock_mhz - new.clock_mhz).abs() < f64::EPSILON,
                "retarget must not change processor clocks"
            );
            assert_eq!(
                old.timing, new.timing,
                "retarget must not change processor timing classes (the per-node \
                 software estimates are charged from the timing table)"
            );
        }
        for (old, new) in self.target.hw.iter().zip(&target.hw) {
            assert!(
                (old.clock_mhz - new.clock_mhz).abs() < f64::EPSILON,
                "retarget must not change hardware clocks"
            );
        }
        CostModel {
            sw: self.sw.clone(),
            hw: self.hw.clone(),
            target: target.clone(),
        }
    }

    /// Software execution cycles of `node` on processor `proc`.
    ///
    /// Primary I/O nodes cost zero (they are serviced by the I/O
    /// controller).
    ///
    /// # Panics
    ///
    /// Panics if `node` or `proc` is out of range for the modelled graph
    /// and target.
    #[must_use]
    pub fn sw_cycles(&self, node: NodeId, proc: usize) -> u64 {
        self.sw[node.index()][proc]
    }

    /// Hardware latency of `node` in hardware clock cycles (0 for I/O
    /// nodes).
    #[must_use]
    pub fn hw_latency_cycles(&self, node: NodeId) -> u64 {
        self.hw[node.index()]
            .as_ref()
            .map_or(0, |d| d.latency_cycles)
    }

    /// Hardware area of `node` in CLBs (0 for I/O nodes).
    #[must_use]
    pub fn hw_area_clbs(&self, node: NodeId) -> u32 {
        self.hw[node.index()].as_ref().map_or(0, |d| d.area_clbs)
    }

    /// The full HLS estimate for `node`, if it is a function node.
    #[must_use]
    pub fn hls_design(&self, node: NodeId) -> Option<&HlsDesign> {
        self.hw[node.index()].as_ref()
    }

    /// Execution cycles of `node` on `resource`, in *system* clock cycles.
    ///
    /// Processor and FPGA clocks are converted to the target's system
    /// clock so that schedule lengths are comparable across resources.
    #[must_use]
    pub fn exec_cycles(&self, node: NodeId, resource: Resource) -> u64 {
        match resource {
            Resource::Software(p) => {
                let cycles = self.sw_cycles(node, p);
                scale_cycles(
                    cycles,
                    self.target.processors[p].clock_mhz,
                    self.target.system_clock_mhz,
                )
            }
            Resource::Hardware(h) => {
                let cycles = self.hw_latency_cycles(node);
                scale_cycles(
                    cycles,
                    self.target.hw[h].clock_mhz,
                    self.target.system_clock_mhz,
                )
            }
        }
    }

    /// Communication cycles for transferring one value over `edge` between
    /// different processing units, in system clock cycles.
    #[must_use]
    pub fn comm_cycles(&self, edge: &Edge, scheme: CommScheme) -> u64 {
        let words = u64::from(edge.words(self.target.bus.width_bits));
        let bus = u64::from(self.target.bus.cycles_per_word);
        match scheme {
            CommScheme::MemoryMapped => {
                let waits = u64::from(self.target.memory.read_wait)
                    + u64::from(self.target.memory.write_wait);
                // Producer write + consumer read, each word over the bus.
                words * (2 * bus + waits) + 2
            }
            CommScheme::Direct => words * bus,
        }
    }

    /// Time in microseconds for `cycles` system clock cycles.
    #[must_use]
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / self.target.system_clock_mhz
    }

    /// The modelled target.
    #[must_use]
    pub fn target(&self) -> &Target {
        &self.target
    }

    /// Total CLB area if `nodes` were all mapped to one hardware resource.
    #[must_use]
    pub fn total_area(&self, nodes: &[NodeId]) -> u32 {
        nodes.iter().map(|&n| self.hw_area_clbs(n)).sum()
    }

    /// Lower bound on makespan: critical path with per-node best-case
    /// execution (min over all resources), ignoring communication.
    ///
    /// # Errors
    ///
    /// Propagates [`cool_ir::IrError::Cycle`] for malformed graphs.
    pub fn makespan_lower_bound(&self, g: &PartitioningGraph) -> Result<u64, cool_ir::IrError> {
        let resources = self.target.resources();
        cool_ir::topo::longest_path(g, |n| {
            resources
                .iter()
                .map(|&r| self.exec_cycles(n, r))
                .min()
                .unwrap_or(0)
        })
    }
}

impl ContentHash for CommScheme {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_u8(match self {
            CommScheme::MemoryMapped => 0,
            CommScheme::Direct => 1,
        });
    }
}

impl ContentHash for CostModel {
    /// Hashes everything a consumer can observe: the per-processor timing
    /// tables, every per-node HLS estimate, and the embedded target
    /// (including resource budgets, which the partitioners read through
    /// [`CostModel::target`]).
    fn content_hash(&self, h: &mut ContentHasher) {
        self.sw.content_hash(h);
        self.hw.content_hash(h);
        self.target.content_hash(h);
    }
}

impl Codec for CommScheme {
    fn encode(&self, e: &mut Encoder) {
        e.put_u8(match self {
            CommScheme::MemoryMapped => 0,
            CommScheme::Direct => 1,
        });
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.take_u8()? {
            0 => Ok(CommScheme::MemoryMapped),
            1 => Ok(CommScheme::Direct),
            tag => Err(CodecError::InvalidTag {
                type_name: "CommScheme",
                tag,
            }),
        }
    }
}

impl Codec for CostModel {
    fn encode(&self, e: &mut Encoder) {
        self.sw.encode(e);
        self.hw.encode(e);
        self.target.encode(e);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(CostModel {
            sw: Vec::decode(d)?,
            hw: Vec::decode(d)?,
            target: Target::decode(d)?,
        })
    }
}

fn scale_cycles(cycles: u64, from_mhz: f64, to_mhz: f64) -> u64 {
    if from_mhz <= 0.0 || to_mhz <= 0.0 {
        return cycles;
    }
    ((cycles as f64) * to_mhz / from_mhz).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_ir::{Behavior, Op};

    fn small_graph() -> PartitioningGraph {
        let mut g = PartitioningGraph::new("g");
        let a = g.add_input("a", 16);
        let m = g.add_function("mac", Behavior::mac()).unwrap();
        let d = g.add_function("div", Behavior::binary(Op::Div)).unwrap();
        let y = g.add_output("y", 16);
        g.connect(a, 0, m, 0, 16).unwrap();
        g.connect(a, 0, m, 1, 16).unwrap();
        g.connect(a, 0, m, 2, 16).unwrap();
        g.connect(m, 0, d, 0, 32).unwrap();
        g.connect(a, 0, d, 1, 16).unwrap();
        g.connect(d, 0, y, 0, 16).unwrap();
        g
    }

    #[test]
    fn io_nodes_are_free() {
        let g = small_graph();
        let cost = CostModel::new(&g, &Target::fuzzy_board());
        let a = g.node_by_name("a").unwrap();
        assert_eq!(cost.sw_cycles(a, 0), 0);
        assert_eq!(cost.hw_area_clbs(a), 0);
    }

    #[test]
    fn division_prefers_hardware_on_dsp() {
        let g = small_graph();
        let cost = CostModel::new(&g, &Target::fuzzy_board());
        let d = g.node_by_name("div").unwrap();
        assert!(cost.hw_latency_cycles(d) < cost.sw_cycles(d, 0));
    }

    #[test]
    fn comm_memory_mapped_dearer_than_direct() {
        let g = small_graph();
        let cost = CostModel::new(&g, &Target::fuzzy_board());
        let (_, e) = g.edges().next().unwrap();
        assert!(
            cost.comm_cycles(e, CommScheme::MemoryMapped) > cost.comm_cycles(e, CommScheme::Direct)
        );
    }

    #[test]
    fn wide_edges_cost_more() {
        let g = small_graph();
        let cost = CostModel::new(&g, &Target::fuzzy_board());
        let narrow = g.edges().find(|(_, e)| e.bits == 16).unwrap().1;
        let wide = g.edges().find(|(_, e)| e.bits == 32).unwrap().1;
        assert!(
            cost.comm_cycles(wide, CommScheme::MemoryMapped)
                > cost.comm_cycles(narrow, CommScheme::MemoryMapped)
        );
    }

    #[test]
    fn exec_cycles_covers_all_resources() {
        let g = small_graph();
        let t = Target::fuzzy_board();
        let cost = CostModel::new(&g, &t);
        let m = g.node_by_name("mac").unwrap();
        for r in t.resources() {
            assert!(cost.exec_cycles(m, r) > 0, "resource {r}");
        }
    }

    #[test]
    fn makespan_bound_positive() {
        let g = small_graph();
        let cost = CostModel::new(&g, &Target::fuzzy_board());
        assert!(cost.makespan_lower_bound(&g).unwrap() > 0);
    }

    #[test]
    fn cycles_to_us_uses_system_clock() {
        let g = small_graph();
        let cost = CostModel::new(&g, &Target::fuzzy_board());
        assert!((cost.cycles_to_us(16) - 1.0).abs() < 1e-9); // 16 MHz system clock
    }

    #[test]
    fn retarget_keeps_estimates_and_swaps_budgets() {
        let g = small_graph();
        let mut target = Target::fuzzy_board();
        let cost = CostModel::new(&g, &target);
        target.hw[0].clb_capacity = 48;
        target.hw[1].clb_capacity = 48;
        let rebound = cost.retarget(&target);
        assert_eq!(rebound.target().hw[0].clb_capacity, 48);
        for n in g.function_nodes() {
            assert_eq!(rebound.hw_area_clbs(n), cost.hw_area_clbs(n));
            assert_eq!(rebound.hw_latency_cycles(n), cost.hw_latency_cycles(n));
            assert_eq!(rebound.sw_cycles(n, 0), cost.sw_cycles(n, 0));
        }
    }

    #[test]
    #[should_panic(expected = "processor inventory")]
    fn retarget_rejects_inventory_changes() {
        let g = small_graph();
        let target = Target::fuzzy_board();
        let cost = CostModel::new(&g, &target);
        let mut bigger = target.clone();
        bigger.processors.push(bigger.processors[0].clone());
        let _ = cost.retarget(&bigger);
    }

    #[test]
    fn total_area_sums_function_nodes() {
        let g = small_graph();
        let cost = CostModel::new(&g, &Target::fuzzy_board());
        let nodes: Vec<NodeId> = g.function_nodes();
        let total = cost.total_area(&nodes);
        assert_eq!(
            total,
            nodes.iter().map(|&n| cost.hw_area_clbs(n)).sum::<u32>()
        );
        assert!(total > 0);
    }
}
