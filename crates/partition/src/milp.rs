//! Exact MILP partitioning (after Niemann & Marwedel, DAES 1997).
//!
//! Decision variables `x[n][r] ∈ {0,1}` assign function node `n` to
//! resource `r`; continuous indicators `y[e] ∈ [0,1]` capture whether edge
//! `e` is *cut* (its endpoints sit on different resources), linearized as
//! `y_e ≥ x[u][r] − x[v][r]` for every resource `r`. Primary I/O nodes are
//! fixed on the first processor (they are serviced by the synthesized I/O
//! controller). Per-FPGA CLB capacities bound the hardware side.
//!
//! The objective is the classical weighted proxy
//! `Σ time·exec + Σ comm·cut + Σ area·hw`: exact makespan would require
//! scheduling variables, which the original formulation also approximates.
//! The returned mapping is re-evaluated with the real list scheduler.

use cool_cost::{CommScheme, CostModel};
use cool_ilp::{Cmp, Problem, SolveOptions, VarId};
use cool_ir::{NodeKind, Objective, PartitioningGraph, Resource};

use crate::{Algorithm, PartitionError, PartitionResult};

/// Objective and limits for the MILP partitioner.
#[derive(Debug, Clone, PartialEq)]
pub struct MilpOptions {
    /// What to minimize. Resolves to the `(time, comm, area)` weight
    /// triple of the proxy objective via [`Objective::weights`]; the
    /// default [`Objective::Makespan`] reproduces the historical
    /// weights `(1.0, 1.0, 0.05)` exactly.
    pub objective: Objective,
    /// Branch & bound node limit.
    pub max_nodes: usize,
    /// Simplex pivot budget per LP relaxation. Under the default
    /// steepest-edge pricing even degenerate low-comm-weight instances
    /// stay far from this; exhausting the budget surfaces as a truthful
    /// [`cool_ilp::IlpError::PivotLimit`] (never a spurious `Unbounded`).
    pub max_pivots: usize,
    /// Simplex entering-column rule. Artifact-invariant: a completed
    /// solve's colouring is identical across rules (only pivot counts
    /// and wall-clock differ), so — like `jobs` — the knob is excluded
    /// from the options content hash.
    pub pricing: cool_ilp::PricingRule,
    /// Communication scheme assumed for edge costs.
    pub scheme: CommScheme,
    /// Worker threads for the branch & bound search (`1` = serial, `0` =
    /// all cores). The engine threads `FlowOptions::jobs` through here.
    /// Never changes the returned colouring of a *completed* solve, only
    /// wall-clock; a node-limit-truncated incumbent can depend on worker
    /// scheduling (and says so via `Optimality::LimitReached`).
    pub jobs: usize,
}

impl Default for MilpOptions {
    fn default() -> MilpOptions {
        MilpOptions {
            objective: Objective::Makespan,
            max_nodes: 50_000,
            max_pivots: cool_ilp::simplex::DEFAULT_MAX_PIVOTS,
            pricing: cool_ilp::PricingRule::SteepestEdge,
            scheme: CommScheme::MemoryMapped,
            jobs: 1,
        }
    }
}

/// The quantified optimality gap a truncated solve carries, `None` for
/// completed ones (the gap is 0 by proof, and reports should not print a
/// vacuous "within 0 %").
pub(crate) fn truncation_gap(sol: &cool_ilp::Solution) -> Option<f64> {
    (sol.status == cool_ilp::Status::LimitReached).then(|| sol.optimality_gap())
}

/// Partition `g` by solving the MILP exactly.
///
/// # Errors
///
/// [`PartitionError::Infeasible`] when no assignment satisfies the CLB
/// budgets, [`PartitionError::Ilp`] for solver limits.
pub fn partition(
    g: &PartitioningGraph,
    cost: &CostModel,
    options: &MilpOptions,
) -> Result<PartitionResult, PartitionError> {
    let target = cost.target();
    let resources = target.resources();
    let r_count = resources.len();
    let functions = g.function_nodes();
    let (time_weight, comm_weight, area_weight) = options.objective.weights();

    let mut p = Problem::minimize();
    // x[n][r] for function nodes only; dense index into `functions`.
    let mut x: Vec<Vec<VarId>> = Vec::with_capacity(functions.len());
    for &n in &functions {
        let mut row = Vec::with_capacity(r_count);
        for &r in &resources {
            let exec = cost.exec_cycles(n, r) as f64;
            let area = match r {
                Resource::Hardware(_) => cost.hw_area_clbs(n) as f64,
                Resource::Software(_) => 0.0,
            };
            row.push(p.add_binary(time_weight * exec + area_weight * area));
        }
        // Exactly one resource per node.
        let terms: Vec<(VarId, f64)> = row.iter().map(|&v| (v, 1.0)).collect();
        p.add_constraint(&terms, Cmp::Eq, 1.0);
        x.push(row);
    }

    // CLB capacity per hardware resource.
    for (h, hw) in target.hw.iter().enumerate() {
        let r_index = resources
            .iter()
            .position(|&r| r == Resource::Hardware(h))
            .expect("hardware resource enumerated");
        let terms: Vec<(VarId, f64)> = functions
            .iter()
            .enumerate()
            .map(|(fi, &n)| (x[fi][r_index], f64::from(cost.hw_area_clbs(n))))
            .collect();
        p.add_constraint(&terms, Cmp::Le, f64::from(hw.clb_capacity));
    }

    // Cut indicators. I/O nodes are fixed on Software(0) == resources[0].
    let fun_index = |n: cool_ir::NodeId| functions.iter().position(|&f| f == n);
    for (_, e) in g.edges() {
        let u = fun_index(e.src);
        let v = fun_index(e.dst);
        let comm = comm_weight * cost.comm_cycles(e, options.scheme) as f64;
        if comm == 0.0 {
            continue;
        }
        let y = p.add_continuous(0.0, 1.0, comm);
        match (u, v) {
            (Some(ui), Some(vi)) => {
                for (&xu, &xv) in x[ui].iter().zip(&x[vi]).take(r_count) {
                    p.add_constraint(&[(y, 1.0), (xu, -1.0), (xv, 1.0)], Cmp::Ge, 0.0);
                    p.add_constraint(&[(y, 1.0), (xv, -1.0), (xu, 1.0)], Cmp::Ge, 0.0);
                }
            }
            (Some(ui), None) => {
                // Consumer fixed on resources[0]: cut iff u not on r0.
                p.add_constraint(&[(y, 1.0), (x[ui][0], 1.0)], Cmp::Ge, 1.0);
            }
            (None, Some(vi)) => {
                p.add_constraint(&[(y, 1.0), (x[vi][0], 1.0)], Cmp::Ge, 1.0);
            }
            (None, None) => {
                // Both I/O: same resource, never cut.
            }
        }
    }

    let sol = p.solve(&SolveOptions {
        max_nodes: options.max_nodes,
        max_pivots: options.max_pivots,
        int_tol: 1e-6,
        jobs: options.jobs,
        pricing: options.pricing,
        ..SolveOptions::default()
    })?;

    // Extract mapping.
    let mut mapping = crate::all_software(g);
    for (fi, &n) in functions.iter().enumerate() {
        let ri = (0..r_count)
            .find(|&ri| sol.int_value(x[fi][ri]) == 1)
            .ok_or_else(|| {
                PartitionError::Infeasible(format!("MILP produced no assignment for {n}"))
            })?;
        mapping.assign(n, resources[ri]);
    }
    for (id, node) in g.nodes() {
        if node.kind() != NodeKind::Function {
            mapping.assign(id, Resource::Software(0));
        }
    }

    // Canonical unit labels: interchangeable hardware units (same CLB
    // budget, same per-node execution cost) make every colouring one
    // representative of a label-permutation orbit, and which
    // representative the B&B lands on depends on the LP pivot path —
    // i.e. on the pricing rule. Relabelling each orbit in
    // first-hosted-node order is cost-neutral (identical units) and
    // collapses the orbit to one canonical mapping, so steepest-edge
    // and Bland runs emit byte-identical artifacts. A post-pass is
    // deliberate: model-level symmetry rows make the LPs pathologically
    // degenerate.
    let n_hw = target.hw.len();
    let mut orbit_of: Vec<usize> = (0..n_hw).collect();
    for h in 1..n_hw {
        orbit_of[h] = (0..h)
            .find(|&o| {
                orbit_of[o] == o
                    && target.hw[o].clb_capacity == target.hw[h].clb_capacity
                    && functions.iter().all(|&n| {
                        cost.exec_cycles(n, Resource::Hardware(o))
                            == cost.exec_cycles(n, Resource::Hardware(h))
                    })
            })
            .unwrap_or(h);
    }
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_hw];
    for h in 0..n_hw {
        members[orbit_of[h]].push(h);
    }
    let mut relabel: Vec<Option<usize>> = vec![None; n_hw];
    let mut cursor = vec![0usize; n_hw];
    for &n in &functions {
        if let Resource::Hardware(h) = mapping.resource(n) {
            let root = orbit_of[h];
            let new = *relabel[h].get_or_insert_with(|| {
                let label = members[root][cursor[root]];
                cursor[root] += 1;
                label
            });
            if new != h {
                mapping.assign(n, Resource::Hardware(new));
            }
        }
    }

    let (makespan, hw_area) = crate::evaluate(g, &mapping, cost, options.scheme)?;
    Ok(PartitionResult {
        mapping,
        algorithm: Algorithm::Milp,
        // A node-limit-truncated incumbent is NOT the MILP optimum; the
        // claim must travel with the result rather than being dropped
        // here (which is exactly what used to happen).
        optimality: sol.status.into(),
        gap: truncation_gap(&sol),
        makespan,
        hw_area,
        work_units: sol.nodes_explored,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_ir::Target;
    use cool_spec::workloads;

    #[test]
    fn partitions_small_equalizer() {
        let g = workloads::equalizer(2);
        let cost = CostModel::new(&g, &Target::fuzzy_board());
        let res = partition(&g, &cost, &MilpOptions::default()).unwrap();
        assert!(res.makespan > 0);
        // Feasible: respects both FPGA budgets.
        for (used, hw) in res.hw_area.iter().zip(&cost.target().hw) {
            assert!(*used <= hw.clb_capacity);
        }
    }

    #[test]
    fn beats_or_matches_all_software() {
        let g = workloads::equalizer(2);
        let cost = CostModel::new(&g, &Target::fuzzy_board());
        let res = partition(&g, &cost, &MilpOptions::default()).unwrap();
        let all_sw = crate::all_software(&g);
        let (sw_makespan, _) =
            crate::evaluate(&g, &all_sw, &cost, CommScheme::MemoryMapped).unwrap();
        // The proxy objective does not guarantee makespan dominance, but on
        // this tiny DSP-friendly design it must not be absurdly worse.
        assert!(
            res.makespan <= sw_makespan * 2,
            "{} vs {sw_makespan}",
            res.makespan
        );
    }

    #[test]
    fn respects_tight_area_budget() {
        let g = workloads::equalizer(2);
        let mut target = Target::fuzzy_board();
        target.hw[0].clb_capacity = 1; // nothing fits
        target.hw[1].clb_capacity = 1;
        let cost = CostModel::new(&g, &target);
        let res = partition(&g, &cost, &MilpOptions::default()).unwrap();
        assert_eq!(res.hardware_nodes(&g), 0, "nothing can fit 1 CLB");
    }

    #[test]
    fn pivot_exhaustion_reports_pivot_limit_on_large_graph() {
        // Regression, part 1: a degenerate low-comm-weight MILP past 20
        // graph nodes used to surface a pivot-limit exhaustion as
        // `Unbounded` (a partitioning MILP is never unbounded — every
        // variable is a bounded binary or a [0,1] cut indicator). With a
        // starved pivot budget the error must be the truthful
        // `PivotLimit`.
        let g = workloads::random_dag(cool_spec::workloads::RandomDagConfig {
            nodes: 24,
            seed: 11,
            ..Default::default()
        });
        let cost = CostModel::new(&g, &Target::fuzzy_board());
        let starved = MilpOptions {
            objective: Objective::blend(1.0, 0.01, 0.05),
            max_pivots: 10,
            ..Default::default()
        };
        let err = partition(&g, &cost, &starved).unwrap_err();
        assert!(
            matches!(
                err,
                crate::PartitionError::Ilp(cool_ilp::IlpError::PivotLimit)
            ),
            "starved pivots must report PivotLimit, got: {err}"
        );
    }

    #[test]
    fn degenerate_instance_solves_to_optimality_under_default_budgets() {
        // Regression, part 2 (tightened from "reports PivotLimit
        // honestly"): with steepest-edge pricing a >20-node degenerate
        // low-comm-weight instance no longer walks Bland's rule toward
        // the 100k budget — it must solve to *proven optimality* under
        // the unmodified default budgets. Forcing Bland's rule must
        // reach the same colouring (only the search path differs), which
        // is what lets the pricing knob stay out of the content hash.
        // The instance is the committed CI smoke spec
        // (`examples/specs/degenerate21.cool`); it is the calibrated
        // fast point of the degenerate family the PR-5 test drew from —
        // the family's harder members take minutes even post-rework
        // (tree size, not pivots), which a unit test cannot afford.
        let g = workloads::random_dag(cool_spec::workloads::RandomDagConfig {
            nodes: 21,
            seed: 75,
            ..Default::default()
        });
        let cost = CostModel::new(&g, &Target::fuzzy_board());
        let defaults = MilpOptions {
            objective: Objective::blend(1.0, 0.05, 0.05),
            ..Default::default()
        };
        let res = partition(&g, &cost, &defaults).unwrap();
        assert_eq!(
            res.optimality,
            crate::Optimality::Optimal,
            "degenerate 21-node instance must solve to proven optimality"
        );
        let bland = MilpOptions {
            pricing: cool_ilp::PricingRule::Bland,
            ..defaults
        };
        let bland_res = partition(&g, &cost, &bland).unwrap();
        assert_eq!(bland_res.optimality, crate::Optimality::Optimal);
        assert_eq!(
            bland_res.mapping, res.mapping,
            "completed solves must agree across pricing rules"
        );
        assert_eq!(bland_res.makespan, res.makespan);
    }

    #[test]
    fn truncated_solve_quantifies_its_gap() {
        // A truncated exact solve carries the frontier's best remaining
        // bound out as a relative gap, and the label says "within x %".
        let g = workloads::random_dag(cool_spec::workloads::RandomDagConfig {
            nodes: 8,
            seed: 7,
            ..Default::default()
        });
        let cost = CostModel::new(&g, &Target::fuzzy_board());
        let truncated = MilpOptions {
            objective: Objective::blend(1.0, 0.1, 0.05),
            max_nodes: 12,
            ..Default::default()
        };
        let res = partition(&g, &cost, &truncated).unwrap();
        assert_eq!(res.optimality, crate::Optimality::LimitReached);
        let gap = res.gap.expect("truncated solves carry a gap");
        assert!(gap >= 0.0, "gap {gap}");
        assert!(
            res.optimality_label().contains("within"),
            "{}",
            res.optimality_label()
        );
        // A completed solve carries no gap and a plain label.
        let complete = partition(&g, &cost, &MilpOptions::default()).unwrap();
        assert_eq!(complete.gap, None);
        assert_eq!(complete.optimality_label(), "optimal");
    }

    #[test]
    fn comm_weight_discourages_cuts() {
        let g = workloads::equalizer(2);
        let cost = CostModel::new(&g, &Target::fuzzy_board());
        let heavy = MilpOptions {
            objective: Objective::blend(1.0, 1000.0, 0.05),
            ..Default::default()
        };
        let res = partition(&g, &cost, &heavy).unwrap();
        // With overwhelming comm penalty everything lands on one resource.
        let cut = res.mapping.cut_edges(&g).len();
        assert_eq!(cut, 0, "expected an uncut partition, got {cut} cut edges");
    }
}
