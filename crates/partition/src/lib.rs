//! Hardware/software partitioning — the three algorithms of COOL.
//!
//! The paper couples partitioning with co-synthesis; partitioning itself is
//! "either based on mixed integer linear programming (MILP), a combination
//! of MILP and a heuristic, or on genetic algorithms". This crate
//! implements all three on the same cost model:
//!
//! * [`milp`] — the exact formulation (after reference \[4\]): binary
//!   assignment variables, per-FPGA CLB capacity constraints, linearized
//!   cut indicators for communication cost, solved by [`cool_ilp`];
//! * [`heuristic`] — MILP + heuristic: communication-guided clustering
//!   shrinks the graph until the exact solver is cheap, then the cluster
//!   solution is expanded;
//! * [`genetic`] — a genetic algorithm whose fitness is the *actual* list
//!   scheduler makespan (plus area-violation penalties), with
//!   scoped-thread-parallel population evaluation.
//!
//! All partitioners return a [`PartitionResult`] containing the coloured
//! graph ([`cool_ir::Mapping`]) and solver statistics, and all guarantee
//! area-feasible mappings (or report infeasibility).

pub mod genetic;
pub mod heuristic;
pub mod milp;

use std::fmt;

use cool_cost::{CommScheme, CostModel};
use cool_ir::codec::{Codec, CodecError, Decoder, Encoder};
use cool_ir::hash::{ContentHash, ContentHasher};
use cool_ir::{Mapping, NodeKind, PartitioningGraph, Resource};

pub use genetic::GaOptions;
pub use heuristic::HeuristicOptions;
pub use milp::MilpOptions;

// Re-exported so CLI/engine layers can name the pricing rule without a
// direct `cool_ilp` dependency.
pub use cool_ilp::PricingRule;

impl ContentHash for MilpOptions {
    /// `jobs` and `pricing` are deliberately excluded — both are
    /// artifact-invariant. `jobs`: the parallel branch & bound's
    /// deterministic merge makes a *completed* solve identical for
    /// every worker count. `pricing`: the entering-column rule changes
    /// the pivot *path*, but tie-preserving pruning plus the
    /// total-order incumbent merge return the same colouring from any
    /// path that runs to completion. Either knob changes wall-clock
    /// only — and the engine never caches the one exception,
    /// limit-truncated results.
    fn content_hash(&self, h: &mut ContentHasher) {
        self.objective.content_hash(h);
        h.write_usize(self.max_nodes);
        h.write_usize(self.max_pivots);
        self.scheme.content_hash(h);
    }
}

impl ContentHash for HeuristicOptions {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_usize(self.max_clusters);
        self.milp.content_hash(h);
    }
}

impl ContentHash for GaOptions {
    /// `threads` is deliberately excluded: population evaluation is
    /// order-preserving, so the worker count changes wall-clock only,
    /// never the returned colouring.
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_usize(self.population);
        h.write_usize(self.generations);
        h.write_usize(self.tournament);
        match self.mutation_rate {
            None => h.write_u8(0),
            Some(r) => {
                h.write_u8(1);
                h.write_f64(r);
            }
        }
        h.write_u64(self.seed);
        self.scheme.content_hash(h);
        self.objective.content_hash(h);
        h.write_u64(self.area_penalty);
    }
}

/// Errors common to all partitioners.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PartitionError {
    /// No area-feasible assignment exists (e.g. a node larger than every
    /// FPGA and no processor allowed).
    Infeasible(String),
    /// The underlying MILP solver failed.
    Ilp(cool_ilp::IlpError),
    /// The graph/mapping combination is structurally invalid.
    Ir(cool_ir::IrError),
    /// Scheduling the candidate failed.
    Schedule(cool_schedule::ScheduleError),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::Infeasible(why) => write!(f, "partitioning infeasible: {why}"),
            PartitionError::Ilp(e) => write!(f, "MILP solver failed: {e}"),
            PartitionError::Ir(e) => write!(f, "invalid input: {e}"),
            PartitionError::Schedule(e) => write!(f, "candidate scheduling failed: {e}"),
        }
    }
}

impl std::error::Error for PartitionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PartitionError::Ilp(e) => Some(e),
            PartitionError::Ir(e) => Some(e),
            PartitionError::Schedule(e) => Some(e),
            PartitionError::Infeasible(_) => None,
        }
    }
}

impl From<cool_ilp::IlpError> for PartitionError {
    fn from(e: cool_ilp::IlpError) -> PartitionError {
        match e {
            cool_ilp::IlpError::Infeasible => {
                PartitionError::Infeasible("MILP proved no feasible assignment".to_string())
            }
            other => PartitionError::Ilp(other),
        }
    }
}

impl From<cool_ir::IrError> for PartitionError {
    fn from(e: cool_ir::IrError) -> PartitionError {
        PartitionError::Ir(e)
    }
}

impl From<cool_schedule::ScheduleError> for PartitionError {
    fn from(e: cool_schedule::ScheduleError) -> PartitionError {
        PartitionError::Schedule(e)
    }
}

/// Which algorithm produced a result (for reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Exact MILP.
    Milp,
    /// Clustering + MILP.
    Heuristic,
    /// Genetic algorithm.
    Genetic,
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Algorithm::Milp => "milp",
            Algorithm::Heuristic => "milp+heuristic",
            Algorithm::Genetic => "genetic",
        })
    }
}

/// What a partitioner can claim about its result's optimality.
///
/// The paper's selling point is *exact* partitioning via MILP — but a
/// branch & bound truncated by its node limit returns an incumbent that
/// is merely feasible. That distinction must survive into the result
/// (and the flow trace, and the CLI), or a truncated solve silently
/// masquerades as the optimum exactly on the large instances where the
/// limit bites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Optimality {
    /// Proven optimal for the solver's objective (the MILP's weighted
    /// load proxy, not necessarily the schedule makespan).
    Optimal,
    /// The branch & bound node limit truncated the solve; the returned
    /// colouring is feasible but may be suboptimal.
    LimitReached,
    /// No optimality claim: genetic search, clustering heuristics and
    /// caller-fixed mappings.
    Heuristic,
}

impl fmt::Display for Optimality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Optimality::Optimal => "optimal",
            Optimality::LimitReached => "node-limit truncated",
            Optimality::Heuristic => "heuristic",
        })
    }
}

impl Codec for MilpOptions {
    /// Unlike the content hash, the wire encoding carries *every* knob
    /// (`pricing` and `jobs` included): a served request must run with
    /// exactly the options the client asked for, wall-clock-only or not.
    /// `pricing` travels as a raw tag byte because [`PricingRule`] lives
    /// in `cool_ilp`, which does not depend on the codec.
    fn encode(&self, e: &mut Encoder) {
        self.objective.encode(e);
        e.put_usize(self.max_nodes);
        e.put_usize(self.max_pivots);
        e.put_u8(match self.pricing {
            PricingRule::SteepestEdge => 0,
            PricingRule::Bland => 1,
        });
        self.scheme.encode(e);
        e.put_usize(self.jobs);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(MilpOptions {
            objective: cool_ir::Objective::decode(d)?,
            max_nodes: d.take_usize()?,
            max_pivots: d.take_usize()?,
            pricing: match d.take_u8()? {
                0 => PricingRule::SteepestEdge,
                1 => PricingRule::Bland,
                tag => {
                    return Err(CodecError::InvalidTag {
                        type_name: "PricingRule",
                        tag,
                    })
                }
            },
            scheme: CommScheme::decode(d)?,
            jobs: d.take_usize()?,
        })
    }
}

impl Codec for HeuristicOptions {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(self.max_clusters);
        self.milp.encode(e);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(HeuristicOptions {
            max_clusters: d.take_usize()?,
            milp: MilpOptions::decode(d)?,
        })
    }
}

impl Codec for GaOptions {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(self.population);
        e.put_usize(self.generations);
        e.put_usize(self.tournament);
        self.mutation_rate.encode(e);
        e.put_u64(self.seed);
        self.scheme.encode(e);
        self.objective.encode(e);
        e.put_u64(self.area_penalty);
        e.put_usize(self.threads);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(GaOptions {
            population: d.take_usize()?,
            generations: d.take_usize()?,
            tournament: d.take_usize()?,
            mutation_rate: Option::decode(d)?,
            seed: d.take_u64()?,
            scheme: CommScheme::decode(d)?,
            objective: cool_ir::Objective::decode(d)?,
            area_penalty: d.take_u64()?,
            threads: d.take_usize()?,
        })
    }
}

impl From<cool_ilp::Status> for Optimality {
    /// Map a solver status onto the claim it supports. `Infeasible` and
    /// `Unbounded` never reach a `PartitionResult` (they surface as
    /// errors), so they conservatively map to `Heuristic`.
    fn from(status: cool_ilp::Status) -> Optimality {
        match status {
            cool_ilp::Status::Optimal => Optimality::Optimal,
            cool_ilp::Status::LimitReached => Optimality::LimitReached,
            cool_ilp::Status::Infeasible | cool_ilp::Status::Unbounded => Optimality::Heuristic,
        }
    }
}

impl ContentHash for Optimality {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_u8(match self {
            Optimality::Optimal => 0,
            Optimality::LimitReached => 1,
            Optimality::Heuristic => 2,
        });
    }
}

impl Codec for Optimality {
    fn encode(&self, e: &mut Encoder) {
        e.put_u8(match self {
            Optimality::Optimal => 0,
            Optimality::LimitReached => 1,
            Optimality::Heuristic => 2,
        });
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.take_u8()? {
            0 => Ok(Optimality::Optimal),
            1 => Ok(Optimality::LimitReached),
            2 => Ok(Optimality::Heuristic),
            tag => Err(CodecError::InvalidTag {
                type_name: "Optimality",
                tag,
            }),
        }
    }
}

/// The outcome of one partitioning run.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionResult {
    /// The node colouring.
    pub mapping: Mapping,
    /// Which algorithm produced it.
    pub algorithm: Algorithm,
    /// What the algorithm can claim about the colouring's optimality
    /// (for MILP variants: whether branch & bound proved its objective
    /// optimal or was truncated by the node limit).
    pub optimality: Optimality,
    /// Relative optimality gap of a node-limit-truncated MILP solve: the
    /// best remaining LP bound of the abandoned branch & bound frontier
    /// says the incumbent's solver objective is within `gap × 100` % of
    /// the true optimum. `Some` exactly when `optimality` is
    /// [`Optimality::LimitReached`]; `None` for completed solves (gap 0
    /// by proof) and for the heuristic/fixed paths (no bound exists).
    pub gap: Option<f64>,
    /// Makespan of the colouring under the list scheduler, system cycles.
    pub makespan: u64,
    /// CLB usage per hardware resource.
    pub hw_area: Vec<u32>,
    /// Solver work: B&B nodes for MILP variants, generations×population
    /// for the GA.
    pub work_units: usize,
}

impl PartitionResult {
    /// Human-readable optimality claim, with the quantified gap when a
    /// truncated solve carried one out of the frontier: `"optimal"`,
    /// `"node-limit truncated, within 3.2 %"`, `"heuristic"`. This is
    /// what reports and warnings print.
    #[must_use]
    pub fn optimality_label(&self) -> String {
        match (self.optimality, self.gap) {
            (Optimality::LimitReached, Some(gap)) => {
                format!("{}, within {:.1} %", self.optimality, gap * 100.0)
            }
            (o, _) => o.to_string(),
        }
    }

    /// Nodes mapped to hardware (function nodes only).
    #[must_use]
    pub fn hardware_nodes(&self, g: &PartitioningGraph) -> usize {
        self.mapping.hardware_node_count(g)
    }

    /// Nodes mapped to software (function nodes only).
    #[must_use]
    pub fn software_nodes(&self, g: &PartitioningGraph) -> usize {
        self.mapping.software_node_count(g)
    }
}

impl ContentHash for Algorithm {
    fn content_hash(&self, h: &mut ContentHasher) {
        h.write_u8(match self {
            Algorithm::Milp => 0,
            Algorithm::Heuristic => 1,
            Algorithm::Genetic => 2,
        });
    }
}

impl ContentHash for PartitionResult {
    /// `work_units` and `gap` are deliberately excluded: at `jobs > 1`
    /// the number of branch & bound nodes explored — and, for truncated
    /// solves, the best bound left on the abandoned frontier — vary with
    /// worker scheduling even when the colouring does not, and this
    /// digest feeds the engine's slot-digest table — and through it every
    /// downstream stage's cache key. Including them would make
    /// byte-identical runs miss each other's cache entries. (Both still
    /// travel in the [`Codec`] encoding; they are data, just not
    /// identity.)
    fn content_hash(&self, h: &mut ContentHasher) {
        self.mapping.content_hash(h);
        self.algorithm.content_hash(h);
        self.optimality.content_hash(h);
        h.write_u64(self.makespan);
        self.hw_area.content_hash(h);
    }
}

impl Codec for Algorithm {
    fn encode(&self, e: &mut Encoder) {
        e.put_u8(match self {
            Algorithm::Milp => 0,
            Algorithm::Heuristic => 1,
            Algorithm::Genetic => 2,
        });
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.take_u8()? {
            0 => Ok(Algorithm::Milp),
            1 => Ok(Algorithm::Heuristic),
            2 => Ok(Algorithm::Genetic),
            tag => Err(CodecError::InvalidTag {
                type_name: "Algorithm",
                tag,
            }),
        }
    }
}

impl Codec for PartitionResult {
    fn encode(&self, e: &mut Encoder) {
        self.mapping.encode(e);
        self.algorithm.encode(e);
        self.optimality.encode(e);
        self.gap.encode(e);
        e.put_u64(self.makespan);
        self.hw_area.encode(e);
        e.put_usize(self.work_units);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(PartitionResult {
            mapping: Mapping::decode(d)?,
            algorithm: Algorithm::decode(d)?,
            optimality: Optimality::decode(d)?,
            gap: Option::decode(d)?,
            makespan: d.take_u64()?,
            hw_area: Vec::decode(d)?,
            work_units: d.take_usize()?,
        })
    }
}

/// Evaluate a candidate mapping: makespan via the real list scheduler and
/// CLB usage per hardware resource.
///
/// # Errors
///
/// Propagates scheduling errors; returns `Infeasible` if an FPGA budget is
/// exceeded.
pub fn evaluate(
    g: &PartitioningGraph,
    mapping: &Mapping,
    cost: &CostModel,
    scheme: CommScheme,
) -> Result<(u64, Vec<u32>), PartitionError> {
    let hw_area = area_usage(g, mapping, cost);
    for (i, (&used, hw)) in hw_area.iter().zip(&cost.target().hw).enumerate() {
        if used > hw.clb_capacity {
            return Err(PartitionError::Infeasible(format!(
                "hw{i} needs {used} CLBs, capacity {}",
                hw.clb_capacity
            )));
        }
    }
    let sched = cool_schedule::schedule(g, mapping, cost, scheme)?;
    Ok((sched.makespan(), hw_area))
}

/// CLB usage per hardware resource under `mapping`.
#[must_use]
pub fn area_usage(g: &PartitioningGraph, mapping: &Mapping, cost: &CostModel) -> Vec<u32> {
    let mut usage = vec![0u32; cost.target().hw.len()];
    for (id, node) in g.nodes() {
        if node.kind() != NodeKind::Function {
            continue;
        }
        if let Resource::Hardware(h) = mapping.resource(id) {
            usage[h] += cost.hw_area_clbs(id);
        }
    }
    usage
}

/// Baseline mapping: everything on the first processor (always feasible).
#[must_use]
pub fn all_software(g: &PartitioningGraph) -> Mapping {
    Mapping::uniform(g.node_count(), Resource::Software(0))
}

/// Baseline mapping: all function nodes spread round-robin across hardware
/// resources (primary I/O stays on software by convention). May be
/// area-infeasible; check with [`evaluate`].
#[must_use]
pub fn all_hardware(g: &PartitioningGraph, hw_count: usize) -> Mapping {
    let mut m = all_software(g);
    if hw_count == 0 {
        return m;
    }
    for (i, id) in g.function_nodes().into_iter().enumerate() {
        m.assign(id, Resource::Hardware(i % hw_count));
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_ir::Target;
    use cool_spec::workloads;

    #[test]
    fn all_software_is_feasible() {
        let g = workloads::fuzzy_controller();
        let cost = CostModel::new(&g, &Target::fuzzy_board());
        let m = all_software(&g);
        let (makespan, area) = evaluate(&g, &m, &cost, CommScheme::MemoryMapped).unwrap();
        assert!(makespan > 0);
        assert_eq!(area, vec![0, 0]);
    }

    #[test]
    fn area_usage_counts_hw_nodes() {
        let g = workloads::equalizer(4);
        let cost = CostModel::new(&g, &Target::fuzzy_board());
        let m = all_hardware(&g, 2);
        let usage = area_usage(&g, &m, &cost);
        assert!(usage[0] > 0 && usage[1] > 0);
        let total: u32 = usage.iter().sum();
        assert_eq!(total, cost.total_area(&g.function_nodes()));
    }

    #[test]
    fn infeasible_area_detected() {
        // Pile every fuzzy node onto one 196-CLB FPGA: cannot fit.
        let g = workloads::fuzzy_controller();
        let cost = CostModel::new(&g, &Target::fuzzy_board());
        let mut m = all_software(&g);
        for id in g.function_nodes() {
            m.assign(id, Resource::Hardware(0));
        }
        assert!(matches!(
            evaluate(&g, &m, &cost, CommScheme::MemoryMapped),
            Err(PartitionError::Infeasible(_))
        ));
    }
}
