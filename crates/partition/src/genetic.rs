//! Genetic-algorithm partitioning.
//!
//! Chromosomes assign one resource index to every function node. Under
//! the default [`Objective::Makespan`], fitness is the *real*
//! list-scheduler makespan plus a steep penalty per CLB of area
//! violation, so the GA optimizes exactly what the paper's schedule
//! executes; the other objectives re-rank the same evaluated schedule
//! by area or cut communication volume (lexicographically, with
//! makespan breaking ties). Population evaluation is parallelized with
//! `std::thread` scoped workers.

use cool_cost::{CommScheme, CostModel};
use cool_ir::rng::StdRng;
use cool_ir::{Mapping, NodeId, Objective, PartitioningGraph, Resource};

use crate::{Algorithm, PartitionError, PartitionResult};

/// Genetic-algorithm knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct GaOptions {
    /// Individuals per generation.
    pub population: usize,
    /// Generations to evolve.
    pub generations: usize,
    /// Tournament size for selection.
    pub tournament: usize,
    /// Per-gene mutation probability (defaults to `1/genes` when `None`).
    pub mutation_rate: Option<f64>,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Communication scheme assumed by the fitness schedule.
    pub scheme: CommScheme,
    /// What fitness minimizes (see the module docs for the ranking each
    /// variant induces).
    pub objective: Objective,
    /// Penalty in cycles per CLB of FPGA over-subscription.
    pub area_penalty: u64,
    /// Worker threads for fitness evaluation (1 = sequential).
    pub threads: usize,
}

impl Default for GaOptions {
    fn default() -> GaOptions {
        GaOptions {
            population: 32,
            generations: 40,
            tournament: 3,
            mutation_rate: None,
            seed: 42,
            scheme: CommScheme::MemoryMapped,
            objective: Objective::Makespan,
            area_penalty: 50,
            threads: 4,
        }
    }
}

/// A lexicographic fitness key: smaller is fitter, the second component
/// breaks ties in the first. [`Objective::Makespan`] keeps the second
/// component at zero, so default runs rank exactly as the scalar
/// fitness always did.
type Fitness = (u64, u64);

/// Partition `g` with a genetic algorithm.
///
/// Always returns an area-feasible mapping: infeasible survivors are
/// repaired by demoting their largest hardware nodes to software.
///
/// # Errors
///
/// Propagates scheduling failures (unreachable for validated graphs).
pub fn partition(
    g: &PartitioningGraph,
    cost: &CostModel,
    options: &GaOptions,
) -> Result<PartitionResult, PartitionError> {
    let functions = g.function_nodes();
    let genes = functions.len();
    let resources = cost.target().resources();
    let r_count = resources.len();
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mutation = options.mutation_rate.unwrap_or(1.0 / genes.max(1) as f64);

    // Initial population: all-software, all-hardware-round-robin, randoms.
    let mut pop: Vec<Vec<u8>> = Vec::with_capacity(options.population);
    pop.push(vec![0u8; genes]);
    if r_count > 1 {
        pop.push((0..genes).map(|i| (1 + i % (r_count - 1)) as u8).collect());
    }
    while pop.len() < options.population.max(4) {
        pop.push(
            (0..genes)
                .map(|_| rng.random_range(0..r_count) as u8)
                .collect(),
        );
    }

    let evaluate_one = |chrom: &[u8]| -> Fitness {
        let mapping = decode(g, &functions, &resources, chrom);
        fitness(g, &mapping, cost, options)
    };

    let mut fitnesses: Vec<Fitness> = evaluate_population(&pop, options.threads, &evaluate_one);
    let mut best = best_of(&pop, &fitnesses);

    for _gen in 0..options.generations {
        let mut next: Vec<Vec<u8>> = Vec::with_capacity(pop.len());
        // Elitism: carry the champion.
        next.push(best.0.clone());
        while next.len() < pop.len() {
            let a = tournament(&pop, &fitnesses, options.tournament, &mut rng);
            let b = tournament(&pop, &fitnesses, options.tournament, &mut rng);
            let mut child: Vec<u8> = (0..genes)
                .map(|i| {
                    if rng.random_range(0..2) == 0 {
                        pop[a][i]
                    } else {
                        pop[b][i]
                    }
                })
                .collect();
            for gene in child.iter_mut() {
                if rng.random_f64() < mutation {
                    *gene = rng.random_range(0..r_count) as u8;
                }
            }
            next.push(child);
        }
        pop = next;
        fitnesses = evaluate_population(&pop, options.threads, &evaluate_one);
        let gen_best = best_of(&pop, &fitnesses);
        if gen_best.1 < best.1 {
            best = gen_best;
        }
    }

    // Decode and repair the champion to guaranteed feasibility.
    let mut mapping = decode(g, &functions, &resources, &best.0);
    repair(g, &mut mapping, cost);
    let (makespan, hw_area) = crate::evaluate(g, &mapping, cost, options.scheme)?;
    Ok(PartitionResult {
        mapping,
        algorithm: Algorithm::Genetic,
        optimality: crate::Optimality::Heuristic,
        gap: None,
        makespan,
        hw_area,
        work_units: options.population * (options.generations + 1),
    })
}

fn decode(
    g: &PartitioningGraph,
    functions: &[NodeId],
    resources: &[Resource],
    chrom: &[u8],
) -> Mapping {
    let mut m = crate::all_software(g);
    for (i, &n) in functions.iter().enumerate() {
        m.assign(n, resources[chrom[i] as usize % resources.len()]);
    }
    m
}

fn fitness(
    g: &PartitioningGraph,
    mapping: &Mapping,
    cost: &CostModel,
    options: &GaOptions,
) -> Fitness {
    let usage = crate::area_usage(g, mapping, cost);
    let violation: u64 = usage
        .iter()
        .zip(&cost.target().hw)
        .map(|(&used, hw)| u64::from(used.saturating_sub(hw.clb_capacity)))
        .sum();
    let Ok(s) = cool_schedule::schedule(g, mapping, cost, options.scheme) else {
        return (u64::MAX / 2, u64::MAX / 2);
    };
    let makespan = s.makespan();
    let penalty = violation * options.area_penalty;
    let area: u64 = usage.iter().map(|&a| u64::from(a)).sum();
    let comm = || -> u64 {
        mapping
            .cut_edges(g)
            .iter()
            .map(|(_, e)| cost.comm_cycles(e, options.scheme))
            .sum()
    };
    match options.objective {
        Objective::Makespan => (makespan + penalty, 0),
        Objective::Area => (area + penalty, makespan),
        Objective::CommVolume => (comm() + penalty, makespan),
        Objective::Blend { .. } => {
            let (tw, cw, aw) = options.objective.weights();
            let blended =
                tw * makespan as f64 + cw * comm() as f64 + aw * area as f64 + penalty as f64;
            // A finite non-negative f64's bit pattern is order-preserving
            // as a u64, so the blend ranks without losing precision.
            (blended.max(0.0).to_bits(), makespan)
        }
    }
}

fn evaluate_population(
    pop: &[Vec<u8>],
    threads: usize,
    evaluate_one: &(impl Fn(&[u8]) -> Fitness + Sync),
) -> Vec<Fitness> {
    if threads <= 1 || pop.len() < 8 {
        return pop.iter().map(|c| evaluate_one(c)).collect();
    }
    let chunk = pop.len().div_ceil(threads);
    let mut out = vec![(0u64, 0u64); pop.len()];
    std::thread::scope(|scope| {
        for (slot, chunk_items) in out.chunks_mut(chunk).zip(pop.chunks(chunk)) {
            scope.spawn(move || {
                for (o, c) in slot.iter_mut().zip(chunk_items) {
                    *o = evaluate_one(c);
                }
            });
        }
    });
    out
}

fn tournament(pop: &[Vec<u8>], fit: &[Fitness], k: usize, rng: &mut StdRng) -> usize {
    let mut best = rng.random_range(0..pop.len());
    for _ in 1..k.max(1) {
        let c = rng.random_range(0..pop.len());
        if fit[c] < fit[best] {
            best = c;
        }
    }
    best
}

fn best_of(pop: &[Vec<u8>], fit: &[Fitness]) -> (Vec<u8>, Fitness) {
    let (i, &f) = fit
        .iter()
        .enumerate()
        .min_by_key(|&(_, f)| *f)
        .expect("population is never empty");
    (pop[i].clone(), f)
}

/// Demote the largest hardware nodes to software until all CLB budgets
/// hold. Terminates because software has no area constraint.
fn repair(g: &PartitioningGraph, mapping: &mut Mapping, cost: &CostModel) {
    loop {
        let usage = crate::area_usage(g, mapping, cost);
        let over: Vec<usize> = usage
            .iter()
            .zip(&cost.target().hw)
            .enumerate()
            .filter(|(_, (&used, hw))| used > hw.clb_capacity)
            .map(|(i, _)| i)
            .collect();
        if over.is_empty() {
            return;
        }
        for h in over {
            // Largest node on the oversubscribed FPGA.
            let victim = g
                .function_nodes()
                .into_iter()
                .filter(|&n| mapping.resource(n) == Resource::Hardware(h))
                .max_by_key(|&n| cost.hw_area_clbs(n));
            if let Some(v) = victim {
                mapping.assign(v, Resource::Software(0));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_ir::Target;
    use cool_spec::workloads;

    fn quick_options() -> GaOptions {
        GaOptions {
            population: 12,
            generations: 8,
            threads: 1,
            ..Default::default()
        }
    }

    #[test]
    fn ga_is_reproducible() {
        let g = workloads::equalizer(4);
        let cost = CostModel::new(&g, &Target::fuzzy_board());
        let a = partition(&g, &cost, &quick_options()).unwrap();
        let b = partition(&g, &cost, &quick_options()).unwrap();
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn ga_beats_random_start() {
        let g = workloads::fuzzy_controller();
        let cost = CostModel::new(&g, &Target::fuzzy_board());
        let res = partition(&g, &cost, &quick_options()).unwrap();
        // Never worse than the all-software baseline it was seeded with.
        let all_sw = crate::all_software(&g);
        let (sw, _) = crate::evaluate(&g, &all_sw, &cost, CommScheme::MemoryMapped).unwrap();
        assert!(
            res.makespan <= sw,
            "GA {} vs all-software {sw}",
            res.makespan
        );
    }

    #[test]
    fn ga_respects_area() {
        let g = workloads::fuzzy_controller();
        let mut target = Target::fuzzy_board();
        target.hw[0].clb_capacity = 60;
        target.hw[1].clb_capacity = 60;
        let cost = CostModel::new(&g, &target);
        let res = partition(&g, &cost, &quick_options()).unwrap();
        for (used, hw) in res.hw_area.iter().zip(&target.hw) {
            assert!(used <= &hw.clb_capacity);
        }
    }

    #[test]
    fn parallel_and_serial_fitness_agree() {
        let g = workloads::equalizer(4);
        let cost = CostModel::new(&g, &Target::fuzzy_board());
        let serial = partition(
            &g,
            &cost,
            &GaOptions {
                threads: 1,
                ..quick_options()
            },
        )
        .unwrap();
        let parallel = partition(
            &g,
            &cost,
            &GaOptions {
                threads: 4,
                ..quick_options()
            },
        )
        .unwrap();
        assert_eq!(serial.mapping, parallel.mapping);
    }

    #[test]
    fn area_objective_drives_hardware_to_zero() {
        // Under the area objective the seeded all-software individual
        // (zero CLBs) is unbeatable, so the champion must use no
        // hardware at all — a behavioural check that the declared
        // objective actually steers selection.
        let g = workloads::equalizer(4);
        let cost = CostModel::new(&g, &Target::fuzzy_board());
        let res = partition(
            &g,
            &cost,
            &GaOptions {
                objective: Objective::Area,
                ..quick_options()
            },
        )
        .unwrap();
        assert_eq!(res.hardware_nodes(&g), 0);
        assert!(res.hw_area.iter().all(|&a| a == 0));
    }

    #[test]
    fn comm_objective_eliminates_cuts() {
        // Primary I/O is pinned to sw0, so the only zero-communication
        // mappings are fully software — the comm objective must find one.
        let g = workloads::equalizer(4);
        let cost = CostModel::new(&g, &Target::fuzzy_board());
        let res = partition(
            &g,
            &cost,
            &GaOptions {
                objective: Objective::CommVolume,
                ..quick_options()
            },
        )
        .unwrap();
        assert_eq!(res.mapping.cut_edges(&g).len(), 0);
    }

    #[test]
    fn pure_time_blend_agrees_with_makespan_preset() {
        // `blend:1,0,0` induces exactly the preset's ranking (primary =
        // makespan + penalty, all ties resolve to the same index), so
        // the two runs must select the same champion.
        let g = workloads::equalizer(4);
        let cost = CostModel::new(&g, &Target::fuzzy_board());
        let preset = partition(&g, &cost, &quick_options()).unwrap();
        let blended = partition(
            &g,
            &cost,
            &GaOptions {
                objective: Objective::blend(1.0, 0.0, 0.0),
                ..quick_options()
            },
        )
        .unwrap();
        assert_eq!(preset.mapping, blended.mapping);
        assert_eq!(preset.makespan, blended.makespan);
    }

    #[test]
    fn repair_fixes_oversubscription() {
        let g = workloads::fuzzy_controller();
        let cost = CostModel::new(&g, &Target::fuzzy_board());
        let mut m = crate::all_hardware(&g, 1); // everything on fpga0: way over
        repair(&g, &mut m, &cost);
        let usage = crate::area_usage(&g, &m, &cost);
        assert!(usage[0] <= cost.target().hw[0].clb_capacity);
    }
}
