//! MILP + heuristic partitioning: communication-guided clustering followed
//! by an exact solve on the reduced graph.
//!
//! The exact MILP is exponential in the node count; COOL's pragmatic
//! variant first merges tightly-communicating neighbours into clusters
//! (keeping each cluster small enough to remain hardware-assignable), then
//! solves the cluster-level MILP exactly, and finally expands clusters back
//! to nodes. Quality degrades gracefully with the cluster budget while
//! runtime drops dramatically — exactly the trade the benches measure.

use std::collections::BTreeMap;

use cool_cost::CostModel;
use cool_ir::{Behavior, NodeId, NodeKind, PartitioningGraph, Resource};

use crate::milp::MilpOptions;
use crate::{Algorithm, PartitionError, PartitionResult};

/// Options for the clustering heuristic.
#[derive(Debug, Clone, PartialEq)]
pub struct HeuristicOptions {
    /// Merge until at most this many clusters remain.
    pub max_clusters: usize,
    /// MILP options for the reduced solve.
    pub milp: MilpOptions,
}

impl Default for HeuristicOptions {
    fn default() -> HeuristicOptions {
        HeuristicOptions {
            max_clusters: 12,
            milp: MilpOptions::default(),
        }
    }
}

/// Partition `g` with clustering + exact MILP on the clusters.
///
/// # Errors
///
/// Same failure modes as [`crate::milp::partition`].
pub fn partition(
    g: &PartitioningGraph,
    cost: &CostModel,
    options: &HeuristicOptions,
) -> Result<PartitionResult, PartitionError> {
    let functions = g.function_nodes();
    if functions.len() <= options.max_clusters {
        // Small enough for the exact solver directly.
        let mut res = crate::milp::partition(g, cost, &options.milp)?;
        res.algorithm = Algorithm::Heuristic;
        return Ok(res);
    }

    // --- 1. Cluster: union-find over function nodes, merging the heaviest
    // communication edges first, subject to an area cap per cluster. ---
    let cap = cost
        .target()
        .hw
        .iter()
        .map(|h| h.clb_capacity)
        .max()
        .unwrap_or(u32::MAX)
        / 2; // keep clusters at half an FPGA so packing stays flexible
    let mut uf = UnionFind::new(g.node_count());
    let mut cluster_area: Vec<u32> = (0..g.node_count())
        .map(|i| cost.hw_area_clbs(NodeId::from_index(i)))
        .collect();

    let mut edges: Vec<(u64, NodeId, NodeId)> = g
        .edges()
        .filter(|(_, e)| is_function(g, e.src) && is_function(g, e.dst))
        .map(|(_, e)| (cost.comm_cycles(e, options.milp.scheme), e.src, e.dst))
        .collect();
    edges.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    let mut cluster_count = functions.len();
    for (_, u, v) in edges {
        if cluster_count <= options.max_clusters {
            break;
        }
        let (ru, rv) = (uf.find(u.index()), uf.find(v.index()));
        if ru == rv {
            continue;
        }
        if cluster_area[ru].saturating_add(cluster_area[rv]) > cap {
            continue;
        }
        let merged = uf.union(ru, rv);
        cluster_area[merged] = cluster_area[ru] + cluster_area[rv];
        cluster_count -= 1;
    }
    // If area caps blocked us above the target, merge smallest pairs of
    // clusters regardless of adjacency (still respecting the cap).
    while cluster_count > options.max_clusters {
        let mut roots: Vec<usize> = functions.iter().map(|&n| uf.find(n.index())).collect();
        roots.sort_unstable();
        roots.dedup();
        roots.sort_by_key(|&r| cluster_area[r]);
        let mut merged_any = false;
        'search: for i in 0..roots.len() {
            for j in i + 1..roots.len() {
                if cluster_area[roots[i]].saturating_add(cluster_area[roots[j]]) <= cap {
                    let m = uf.union(roots[i], roots[j]);
                    cluster_area[m] = cluster_area[roots[i]] + cluster_area[roots[j]];
                    cluster_count -= 1;
                    merged_any = true;
                    break 'search;
                }
            }
        }
        if !merged_any {
            break; // cannot merge further; solve what we have
        }
    }

    // --- 2. Build the reduced cluster graph. ---
    let mut root_to_cluster: BTreeMap<usize, usize> = BTreeMap::new();
    for &n in &functions {
        let r = uf.find(n.index());
        let next = root_to_cluster.len();
        root_to_cluster.entry(r).or_insert(next);
    }
    let k = root_to_cluster.len();
    let mut reduced = PartitioningGraph::new(format!("{}_clustered", g.name()));
    // Mirror primary I/O.
    let mut io_map: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    for (id, node) in g.nodes() {
        match node.kind() {
            NodeKind::Input => {
                io_map.insert(id, reduced.add_input(node.name(), 16));
            }
            NodeKind::Output => {
                io_map.insert(id, reduced.add_output(node.name(), 16));
            }
            NodeKind::Function => {}
        }
    }
    // One synthetic node per cluster whose behaviour is the concatenation
    // of member behaviours (costs add up; semantics are irrelevant for
    // partitioning, only for the final expansion which reuses `g`).
    let mut cluster_nodes: Vec<NodeId> = Vec::with_capacity(k);
    let mut cluster_members: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for &n in &functions {
        let c = root_to_cluster[&uf.find(n.index())];
        cluster_members[c].push(n);
    }
    for (c, members) in cluster_members.iter().enumerate() {
        // Surrogate behaviour: chain of the members' ops on one input so
        // the cost model sees the summed op inventory.
        let mut exprs = Vec::new();
        for &m in members {
            let b = g.node(m).expect("member exists").behavior();
            for e in b.output_exprs() {
                exprs.push(rebase_inputs(e));
            }
        }
        if exprs.is_empty() {
            exprs.push(cool_ir::Expr::Input(0));
        }
        let behavior = Behavior::new(1, exprs).expect("rebased expressions read input 0 only");
        let node = reduced
            .add_function(format!("cluster{c}"), behavior)
            .expect("cluster names unique");
        cluster_nodes.push(node);
    }
    // Reduced edges: cluster-to-cluster (summed as parallel edges) and
    // IO-to-cluster. Input ports on the reduced graph are synthetic, so we
    // wire everything to port 0 and rely on a permissive connect: instead
    // we rebuild connectivity as a side table for the MILP only.
    // The reduced MILP needs: per-cluster exec/area (from behaviour) and
    // inter-cluster comm weights. We keep the side table and synthesize a
    // *valid* reduced graph wiring for cost-model construction: a chain.
    let mut inter: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    let mut io_cut: BTreeMap<usize, u64> = BTreeMap::new();
    for (_, e) in g.edges() {
        let cu = cluster_of(&uf, &root_to_cluster, g, e.src);
        let cv = cluster_of(&uf, &root_to_cluster, g, e.dst);
        let w = cost.comm_cycles(e, options.milp.scheme);
        match (cu, cv) {
            (Some(a), Some(b)) if a != b => {
                *inter.entry((a.min(b), a.max(b))).or_insert(0) += w;
            }
            (Some(a), None) | (None, Some(a)) => {
                *io_cut.entry(a).or_insert(0) += w;
            }
            _ => {}
        }
    }

    // --- 3. Reduced MILP over clusters (built directly, not via the
    // reduced graph, to keep full control of the comm terms). ---
    let target = cost.target();
    let resources = target.resources();
    let r_count = resources.len();
    let (time_weight, comm_weight, area_weight) = options.milp.objective.weights();
    let mut p = cool_ilp::Problem::minimize();
    let mut x: Vec<Vec<cool_ilp::VarId>> = Vec::with_capacity(k);
    for members in cluster_members.iter().take(k) {
        let mut row = Vec::with_capacity(r_count);
        for &r in &resources {
            let exec: u64 = members.iter().map(|&n| cost.exec_cycles(n, r)).sum();
            let area: u32 = match r {
                Resource::Hardware(_) => members.iter().map(|&n| cost.hw_area_clbs(n)).sum(),
                Resource::Software(_) => 0,
            };
            row.push(p.add_binary(time_weight * exec as f64 + area_weight * f64::from(area)));
        }
        let terms: Vec<_> = row.iter().map(|&v| (v, 1.0)).collect();
        p.add_constraint(&terms, cool_ilp::Cmp::Eq, 1.0);
        x.push(row);
    }
    for (h, hw) in target.hw.iter().enumerate() {
        let ri = resources
            .iter()
            .position(|&r| r == Resource::Hardware(h))
            .expect("hw enumerated");
        let terms: Vec<_> = (0..k)
            .map(|c| {
                let area: u32 = cluster_members[c]
                    .iter()
                    .map(|&n| cost.hw_area_clbs(n))
                    .sum();
                (x[c][ri], f64::from(area))
            })
            .collect();
        p.add_constraint(&terms, cool_ilp::Cmp::Le, f64::from(hw.clb_capacity));
    }
    for (&(a, b), &w) in &inter {
        let y = p.add_continuous(0.0, 1.0, comm_weight * w as f64);
        for (&xa, &xb) in x[a].iter().zip(&x[b]).take(r_count) {
            p.add_constraint(&[(y, 1.0), (xa, -1.0), (xb, 1.0)], cool_ilp::Cmp::Ge, 0.0);
            p.add_constraint(&[(y, 1.0), (xb, -1.0), (xa, 1.0)], cool_ilp::Cmp::Ge, 0.0);
        }
    }
    for (&c, &w) in &io_cut {
        let y = p.add_continuous(0.0, 1.0, comm_weight * w as f64);
        p.add_constraint(&[(y, 1.0), (x[c][0], 1.0)], cool_ilp::Cmp::Ge, 1.0);
    }
    let sol = p.solve(&cool_ilp::SolveOptions {
        max_nodes: options.milp.max_nodes,
        max_pivots: options.milp.max_pivots,
        int_tol: 1e-6,
        jobs: options.milp.jobs,
        pricing: options.milp.pricing,
        ..cool_ilp::SolveOptions::default()
    })?;

    // --- 4. Expand clusters back to nodes. ---
    let mut mapping = crate::all_software(g);
    for c in 0..k {
        let ri = (0..r_count)
            .find(|&ri| sol.int_value(x[c][ri]) == 1)
            .ok_or_else(|| PartitionError::Infeasible(format!("cluster {c} unassigned")))?;
        for &n in &cluster_members[c] {
            mapping.assign(n, resources[ri]);
        }
    }
    let (makespan, hw_area) = crate::evaluate(g, &mapping, cost, options.milp.scheme)?;
    let _ = (reduced, cluster_nodes, io_map);
    Ok(PartitionResult {
        mapping,
        algorithm: Algorithm::Heuristic,
        // Clustering already forfeits node-level optimality, but a
        // truncated reduced solve is strictly worse than a completed
        // one — keep the stronger warning when the limit bit.
        optimality: if sol.status == cool_ilp::Status::LimitReached {
            crate::Optimality::LimitReached
        } else {
            crate::Optimality::Heuristic
        },
        // The gap quantifies the *reduced* solve only — node-level
        // optimality is already forfeited by clustering — but a bound on
        // the cluster MILP still tells the user how truncated the
        // truncation was.
        gap: crate::milp::truncation_gap(&sol),
        makespan,
        hw_area,
        work_units: sol.nodes_explored,
    })
}

fn is_function(g: &PartitioningGraph, n: NodeId) -> bool {
    g.node(n)
        .map(|x| x.kind() == NodeKind::Function)
        .unwrap_or(false)
}

fn cluster_of(
    uf: &UnionFind,
    root_to_cluster: &BTreeMap<usize, usize>,
    g: &PartitioningGraph,
    n: NodeId,
) -> Option<usize> {
    if is_function(g, n) {
        root_to_cluster.get(&uf.find_const(n.index())).copied()
    } else {
        None
    }
}

/// Rewrite every `Input(_)` leaf to `Input(0)` so member behaviours can be
/// concatenated into a single-input surrogate.
fn rebase_inputs(e: &cool_ir::Expr) -> cool_ir::Expr {
    use cool_ir::Expr;
    match e {
        Expr::Input(_) => Expr::Input(0),
        Expr::Const(c) => Expr::Const(*c),
        Expr::Apply(op, args) => Expr::Apply(*op, args.iter().map(rebase_inputs).collect()),
    }
}

#[derive(Debug)]
struct UnionFind {
    parent: Vec<std::cell::Cell<usize>>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).map(std::cell::Cell::new).collect(),
        }
    }

    fn find(&mut self, i: usize) -> usize {
        self.find_const(i)
    }

    fn find_const(&self, mut i: usize) -> usize {
        while self.parent[i].get() != i {
            let p = self.parent[i].get();
            self.parent[i].set(self.parent[p].get());
            i = self.parent[i].get();
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        self.parent[rb].set(ra);
        ra
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_cost::CommScheme;
    use cool_ir::Target;
    use cool_spec::workloads;

    #[test]
    fn small_graph_delegates_to_exact() {
        let g = workloads::equalizer(2);
        let cost = CostModel::new(&g, &Target::fuzzy_board());
        let res = partition(&g, &cost, &HeuristicOptions::default()).unwrap();
        assert_eq!(res.algorithm, Algorithm::Heuristic);
        assert!(res.makespan > 0);
    }

    #[test]
    fn fuzzy_controller_partitions_quickly() {
        let g = workloads::fuzzy_controller();
        let cost = CostModel::new(&g, &Target::fuzzy_board());
        let res = partition(&g, &cost, &HeuristicOptions::default()).unwrap();
        // Feasible area.
        for (used, hw) in res.hw_area.iter().zip(&cost.target().hw) {
            assert!(*used <= hw.clb_capacity);
        }
    }

    #[test]
    fn cluster_budget_caps_milp_size() {
        let g = workloads::random_dag(cool_spec::workloads::RandomDagConfig {
            nodes: 40,
            seed: 3,
            ..Default::default()
        });
        let cost = CostModel::new(&g, &Target::fuzzy_board());
        let opts = HeuristicOptions {
            max_clusters: 8,
            ..Default::default()
        };
        let res = partition(&g, &cost, &opts).unwrap();
        let (makespan, _) =
            crate::evaluate(&g, &res.mapping, &cost, CommScheme::MemoryMapped).unwrap();
        assert_eq!(makespan, res.makespan);
    }

    #[test]
    fn union_find_merges() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(2, 3);
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(1), uf.find(2));
        uf.union(1, 3);
        assert_eq!(uf.find(0), uf.find(2));
    }
}
