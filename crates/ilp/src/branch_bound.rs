//! Branch & bound over binary variables — parallel, with deterministic
//! best-bound merging.
//!
//! Each node solves the LP relaxation under the accumulated 0/1 fixings,
//! branches on the most fractional binary, and explores the branch
//! suggested by rounding first (which tends to find incumbents early on
//! partitioning instances). Under `SolveOptions::jobs > 1` the tree is
//! explored by scoped worker threads: each worker owns a
//! [`SimplexWorkspace`], pulls subtrees from a shared best-bound
//! frontier, runs depth-first locally, and — once its DFS stack is deep
//! enough — splits the shallowest pending subtree back onto the frontier
//! for idle workers.
//!
//! # Determinism
//!
//! For a search that runs to completion, the returned [`Solution`]
//! (objective, values, status) is identical for every `jobs` value;
//! only wall-clock and `nodes_explored` change. (A node-limit-truncated
//! search necessarily returns whatever incumbent the budget reached,
//! which under `jobs > 1` depends on worker scheduling — callers can
//! tell by `Status::LimitReached`, and the flow engine declines to
//! cache such results.) Two disciplines make the completed case true:
//!
//! * **Total-order incumbent merging.** Candidate incumbents are
//!   compared exactly: lower objective wins, and an exactly-equal
//!   objective falls through to the lexicographically smallest value
//!   vector (which on the binary variables is the lexicographically
//!   smallest assignment). Exact comparison — no tolerance — is what
//!   makes the merge a total order, so the surviving incumbent is the
//!   minimum of the candidate set, independent of publication order.
//!   (A tolerance-based tie-break is not transitive and would make the
//!   winner depend on arrival order.)
//! * **Tie-preserving pruning.** A subtree is pruned only when its LP
//!   bound is *strictly worse* than the incumbent by more than
//!   [`TIE_EPS`]. Any assignment that ties the optimum has LP bounds at
//!   most its own objective along its whole path, so its subtree is
//!   never pruned and every run — serial or parallel — examines every
//!   tied optimum. The candidate set over which the total order picks
//!   its minimum is therefore the same for every worker schedule.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::simplex::{
    solve_lp_delta, solve_lp_opts, solve_lp_warm, Fixing, LpOptions, SimplexWorkspace,
};
use crate::{IlpError, Problem, Solution, SolveOptions, Status, VarKind};

/// The basis a node hands its children for warm starts: one column
/// index per tableau row, shared (both children and possibly an
/// offloaded frontier copy reference the same parent basis).
type WarmBasis = Option<Arc<Vec<usize>>>;

/// Bound slack within which a subtree may still contain a solution that
/// ties the incumbent (floating-point noise in the LP bound is orders of
/// magnitude below this for co-design-sized instances). Subtrees are
/// pruned only when their bound exceeds `incumbent + TIE_EPS`.
const TIE_EPS: f64 = 1e-6;

/// A worker starts offering subtrees to the shared frontier once its
/// local DFS stack holds at least this many pending nodes.
const OFFLOAD_MIN_STACK: usize = 4;

/// When offloading, a worker keeps at least this many pending nodes for
/// itself (the deepest ones; the shallowest — largest — subtrees are
/// what idle workers want).
const OFFLOAD_KEEP: usize = 2;

/// One unexplored subtree: the fixings that define it and the LP
/// objective of its parent (a valid lower bound for everything below).
struct OpenSubtree {
    bound: f64,
    /// Monotonic tag: orders equal-bound subtrees oldest-first so the
    /// frontier pop is fully defined (not load-bearing for determinism —
    /// the merge discipline is — but it keeps exploration sensible).
    seq: u64,
    fixings: Vec<Fixing>,
    /// The parent's optimal basis: the subtree's root LP differs from
    /// the parent LP by one bound flip, so the dual simplex re-solves it
    /// from here in a handful of pivots. `None` falls back to a cold
    /// two-phase solve. Determinism note: the basis is a pure function
    /// of the fixing path from the root (each node's LP inputs are
    /// path-local), so warm starts never make the solve depend on
    /// worker scheduling.
    basis: WarmBasis,
}

impl PartialEq for OpenSubtree {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl Eq for OpenSubtree {}

impl PartialOrd for OpenSubtree {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OpenSubtree {
    /// Inverted so the max-heap pops the *smallest* bound (best-bound
    /// first), oldest `seq` on ties. Bounds are never NaN.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .bound
            .partial_cmp(&self.bound)
            .expect("LP bounds are finite")
            .then(other.seq.cmp(&self.seq))
    }
}

/// Frontier state guarded by one mutex: the best-bound heap plus the
/// number of workers currently expanding a popped subtree (`active`),
/// which is what distinguishes "momentarily empty" from "exhausted".
struct Frontier {
    heap: BinaryHeap<OpenSubtree>,
    active: usize,
    /// Set when the search is over: exhausted, node limit, or error.
    stop: bool,
}

/// Everything the workers share.
struct Shared<'a> {
    p: &'a Problem,
    max_nodes: usize,
    /// Per-node LP knobs. Kernel `jobs` is 1 here: inside the tree the
    /// parallelism budget is spent on concurrent *nodes*, not on row
    /// kernels (the root LP, solved before workers exist, gets the full
    /// kernel budget instead).
    lp_opts: LpOptions,
    warm_start: bool,
    int_tol: f64,
    jobs: usize,
    frontier: Mutex<Frontier>,
    /// Mirror of `frontier.heap.len()`, maintained under the frontier
    /// lock but readable without it, so `maybe_offload` can skip the
    /// lock entirely on the (common) nodes where the frontier is
    /// already stocked. Staleness only delays or skips one offload.
    frontier_len: AtomicUsize,
    work_ready: Condvar,
    /// The merged incumbent under the deterministic total order.
    best: Mutex<Option<(f64, Vec<f64>)>>,
    /// `best`'s objective as bits, for lock-free pruning reads.
    bound_bits: AtomicU64,
    nodes: AtomicUsize,
    /// Total priced pivots across every worker's LPs (diagnostic: like
    /// `nodes`, the value depends on pruning timing under `jobs > 1`).
    pivots: AtomicUsize,
    seq: AtomicU64,
    limit_hit: AtomicBool,
    stopped: AtomicBool,
    error: Mutex<Option<IlpError>>,
    /// The best (lowest) LP bound among subtrees abandoned when the
    /// search stopped early — workers drain their private DFS stacks
    /// into this on the way out, and `solve` folds in whatever is left
    /// on the shared frontier. Together they lower-bound the true
    /// optimum of everything the truncated search never visited.
    remaining_bound: Mutex<Option<f64>>,
}

impl<'a> Shared<'a> {
    fn new(p: &'a Problem, options: &SolveOptions, jobs: usize, root: OpenSubtree) -> Shared<'a> {
        let mut heap = BinaryHeap::new();
        heap.push(root);
        Shared {
            p,
            max_nodes: options.max_nodes,
            lp_opts: LpOptions {
                max_pivots: options.max_pivots,
                pricing: options.pricing,
                jobs: 1,
            },
            warm_start: options.warm_start,
            int_tol: options.int_tol,
            jobs,
            frontier_len: AtomicUsize::new(heap.len()),
            frontier: Mutex::new(Frontier {
                heap,
                active: 0,
                stop: false,
            }),
            work_ready: Condvar::new(),
            best: Mutex::new(None),
            bound_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            nodes: AtomicUsize::new(0),
            pivots: AtomicUsize::new(0),
            seq: AtomicU64::new(1),
            limit_hit: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            error: Mutex::new(None),
            remaining_bound: Mutex::new(None),
        }
    }

    /// Pop the best-bound subtree, waiting while other workers may still
    /// split work back. `None` means the search is over.
    fn acquire(&self) -> Option<OpenSubtree> {
        let mut f = self.frontier.lock().expect("frontier poisoned");
        loop {
            if f.stop {
                return None;
            }
            if let Some(sub) = f.heap.pop() {
                f.active += 1;
                self.frontier_len.store(f.heap.len(), Ordering::Relaxed);
                return Some(sub);
            }
            if f.active == 0 {
                f.stop = true;
                self.work_ready.notify_all();
                return None;
            }
            f = self.work_ready.wait(f).expect("frontier poisoned");
        }
    }

    /// Mark the previously acquired subtree fully expanded.
    fn release(&self) {
        let mut f = self.frontier.lock().expect("frontier poisoned");
        f.active -= 1;
        if f.active == 0 && f.heap.is_empty() {
            f.stop = true;
        }
        // Wake waiters either way: the search may be over, or this
        // worker may have offloaded subtrees they should pick up.
        self.work_ready.notify_all();
    }

    /// `true` once the bound proves `bound` cannot contain anything
    /// better than (or exactly tying) the incumbent.
    fn prunable(&self, bound: f64) -> bool {
        bound > f64::from_bits(self.bound_bits.load(Ordering::Relaxed)) + TIE_EPS
    }

    /// Merge a candidate incumbent under the deterministic total order:
    /// strictly lower objective first, then lexicographically smaller
    /// value vector on exact objective ties.
    ///
    /// Candidates are canonicalized first: every coordinate within
    /// `int_tol` of an integer is snapped to that exact integer and the
    /// objective is recomputed from the snapped point. An integral-LP
    /// point arrives with path-dependent float noise (±1 ulp-scale
    /// residue that differs between pricing rules and warm/cold/delta
    /// solve paths); the point it *represents* does not. Comparing exact
    /// integer points is what makes the merged incumbent — and the
    /// downstream artifacts — identical across pricing rules and job
    /// counts, not merely equal in objective.
    fn offer_incumbent(&self, values: Vec<f64>) {
        let mut values = values;
        for v in values.iter_mut() {
            let r = v.round();
            if (*v - r).abs() <= self.int_tol {
                // `round` preserves the sign of -1e-17: normalize -0.0.
                *v = if r == 0.0 { 0.0 } else { r };
            }
        }
        let objective: f64 = values.iter().zip(&self.p.costs).map(|(x, c)| x * c).sum();
        let mut best = self.best.lock().expect("incumbent poisoned");
        let better = match best.as_ref() {
            None => true,
            Some((bo, bv)) => match objective.partial_cmp(bo).expect("objectives are finite") {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => lex_smaller(&values, bv),
            },
        };
        if better {
            self.bound_bits
                .store(objective.to_bits(), Ordering::Relaxed);
            *best = Some((objective, values));
        }
    }

    /// Record the LP bound of a subtree the stopping search abandons
    /// unexplored (keeps the minimum — the tightest claim "the optimum is
    /// at least this" the frontier supports).
    fn report_remaining(&self, bound: f64) {
        let mut r = self.remaining_bound.lock().expect("remaining poisoned");
        *r = Some(r.map_or(bound, |b| b.min(bound)));
    }

    /// Stop every worker (node limit or error).
    fn stop_all(&self) {
        self.stopped.store(true, Ordering::Relaxed);
        let mut f = self.frontier.lock().expect("frontier poisoned");
        f.stop = true;
        self.work_ready.notify_all();
    }

    fn fail(&self, e: IlpError) {
        let mut err = self.error.lock().expect("error slot poisoned");
        err.get_or_insert(e);
        drop(err);
        self.stop_all();
    }
}

/// Strict lexicographic `a < b` over equal-length value vectors.
fn lex_smaller(a: &[f64], b: &[f64]) -> bool {
    for (x, y) in a.iter().zip(b) {
        match x.partial_cmp(y).expect("values are finite") {
            std::cmp::Ordering::Less => return true,
            std::cmp::Ordering::Greater => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    false
}

/// One worker: pull subtrees from the frontier, expand depth-first with
/// a private workspace, split excess stack back to the frontier.
fn worker(shared: &Shared<'_>, ws: &mut SimplexWorkspace) {
    while let Some(sub) = shared.acquire() {
        expand_subtree(shared, ws, sub);
        shared.release();
    }
    shared
        .pivots
        .fetch_add(ws.stats().pivots, Ordering::Relaxed);
}

/// Depth-first expansion of one subtree. The local stack holds
/// `(parent LP bound, fixings, parent basis)` triples; entry 0 is the
/// shallowest.
fn expand_subtree(shared: &Shared<'_>, ws: &mut SimplexWorkspace, sub: OpenSubtree) {
    let mut stack: Vec<(f64, Vec<Fixing>, WarmBasis)> = vec![(sub.bound, sub.fixings, sub.basis)];
    // Whether the node popped *next* is the near child just pushed by the
    // node solved *last* — the only case where the workspace still holds
    // the parent's final tableau and the in-place delta re-solve applies.
    // The flag is a pure function of the DFS structure (set only when a
    // node pushes children, consumed by the immediately following pop),
    // never of incumbent timing or worker scheduling: a node's solve
    // method — and therefore its exact LP result — is identical on every
    // run and at every job count.
    let mut delta_ok = false;
    while let Some((bound, fixings, basis)) = stack.pop() {
        let use_delta = std::mem::take(&mut delta_ok);
        if shared.stopped.load(Ordering::Relaxed) {
            // Abandoning this node and the pending stack: their bounds
            // are what the truncated solve's optimality gap is made of.
            shared.report_remaining(bound);
            drain_remaining(shared, &stack);
            return;
        }
        // The parent bound may have gone stale while this node waited.
        if shared.prunable(bound) {
            continue;
        }
        if shared.nodes.fetch_add(1, Ordering::Relaxed) >= shared.max_nodes {
            shared.limit_hit.store(true, Ordering::Relaxed);
            shared.stop_all();
            shared.report_remaining(bound);
            drain_remaining(shared, &stack);
            return;
        }
        // Solve the node's LP. Near children (popped straight after
        // their parent by the same worker — guaranteed: offloading takes
        // from the *bottom* of the stack and keeps OFFLOAD_KEEP ≥ 2
        // entries) re-solve the held parent tableau in place with one
        // bound delta; far children re-factorize the stored parent basis
        // and repair with dual simplex; no basis means a cold two-phase
        // solve. The warm/delta paths themselves fall back cold — on
        // deterministic triggers only — when the basis is stale.
        let solved = if shared.warm_start && use_delta && ws.delta_applicable(&fixings) {
            solve_lp_delta(shared.p, &fixings, ws, &shared.lp_opts)
        } else {
            match basis.as_deref().filter(|_| shared.warm_start) {
                Some(warm) => solve_lp_warm(shared.p, &fixings, ws, &shared.lp_opts, warm),
                None => solve_lp_opts(shared.p, &fixings, ws, &shared.lp_opts),
            }
        };
        let lp = match solved {
            Ok(lp) => lp,
            Err(IlpError::Infeasible) => continue,
            Err(e) => {
                shared.fail(e);
                return;
            }
        };
        if shared.prunable(lp.objective) {
            continue;
        }
        // Find the most fractional binary.
        let mut branch_var = usize::MAX;
        let mut branch_frac = 0.0f64;
        for (i, k) in shared.p.kinds.iter().enumerate() {
            if matches!(k, VarKind::Binary) {
                let v = lp.values[i];
                let frac = (v - v.round()).abs();
                if frac > shared.int_tol {
                    let dist_to_half = (0.5 - (v - v.floor())).abs();
                    let score = 0.5 - dist_to_half; // closer to 0.5 = higher
                    if branch_var == usize::MAX || score > branch_frac {
                        branch_var = i;
                        branch_frac = score;
                    }
                }
            }
        }
        if branch_var == usize::MAX {
            // Integer feasible: candidate incumbent.
            shared.offer_incumbent(lp.values);
            continue;
        }
        // Depth-first: push the less likely branch first so the rounded
        // branch is explored next. Both children warm-start from this
        // node's optimal basis.
        let node_basis: WarmBasis = Some(Arc::new(ws.basis().to_vec()));
        let v = lp.values[branch_var];
        let (first, second) = if v >= 0.5 { (1.0, 0.0) } else { (0.0, 1.0) };
        let mut far = fixings.clone();
        far.push((branch_var, second, second));
        stack.push((lp.objective, far, node_basis.clone()));
        let mut near = fixings;
        near.push((branch_var, first, first));
        stack.push((lp.objective, near, node_basis));
        // The workspace holds this node's final tableau and the near
        // child sits on top of the stack: the next pop may delta-solve.
        delta_ok = true;
        maybe_offload(shared, &mut stack);
    }
}

/// Report every still-pending subtree of an abandoned DFS stack, pruned
/// entries excluded (a bound already beyond the incumbent cannot widen
/// the gap — the incumbent only ever improves, so the exclusion stays
/// valid for the final incumbent too).
fn drain_remaining(shared: &Shared<'_>, stack: &[(f64, Vec<Fixing>, WarmBasis)]) {
    for &(bound, _, _) in stack {
        if !shared.prunable(bound) {
            shared.report_remaining(bound);
        }
    }
}

/// Split the shallowest pending subtrees back onto the shared frontier
/// when this worker's stack is deep and the frontier is running dry.
/// The lock-free length mirror keeps the common already-stocked case
/// off the frontier mutex (this runs once per expanded node).
fn maybe_offload(shared: &Shared<'_>, stack: &mut Vec<(f64, Vec<Fixing>, WarmBasis)>) {
    if shared.jobs <= 1
        || stack.len() < OFFLOAD_MIN_STACK
        || shared.frontier_len.load(Ordering::Relaxed) >= shared.jobs
    {
        return;
    }
    let mut f = shared.frontier.lock().expect("frontier poisoned");
    while f.heap.len() < shared.jobs && stack.len() > OFFLOAD_KEEP {
        let (bound, fixings, basis) = stack.remove(0);
        f.heap.push(OpenSubtree {
            bound,
            seq: shared.seq.fetch_add(1, Ordering::Relaxed),
            fixings,
            basis,
        });
        shared.work_ready.notify_one();
    }
    shared.frontier_len.store(f.heap.len(), Ordering::Relaxed);
}

pub(crate) fn solve(p: &Problem, options: &SolveOptions) -> Result<Solution, IlpError> {
    // A workspace for the root relaxation, reused by the serial path (and
    // by the first parallel worker): each LP rebuilds its tableau inside
    // the same buffers instead of reallocating per node.
    let mut ws = SimplexWorkspace::new();

    let jobs = match options.jobs {
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        n => n,
    };

    // Root relaxation: early Infeasible/Unbounded/PivotLimit detection,
    // and the root subtree's bound. The tree workers don't exist yet, so
    // the whole `jobs` budget goes to the row-parallel simplex kernels —
    // this is where a root-integral instance (one node, no tree) gets
    // its parallel speedup. The kernels are bit-deterministic, so the
    // root solve is identical at every job count.
    let root_opts = LpOptions {
        max_pivots: options.max_pivots,
        pricing: options.pricing,
        jobs,
    };
    let root = solve_lp_opts(p, &[], &mut ws, &root_opts)?;
    let root_basis: WarmBasis = if options.warm_start {
        Some(Arc::new(ws.basis().to_vec()))
    } else {
        None
    };

    let shared = Shared::new(
        p,
        options,
        jobs,
        OpenSubtree {
            bound: root.objective,
            seq: 0,
            fixings: Vec::new(),
            basis: root_basis,
        },
    );
    // Root dive: a deterministic rounding heuristic, run serially before
    // any worker exists. Starting from the root relaxation, repeatedly
    // fix the most fractional binary to its rounded value and re-solve
    // with the in-place delta path; if the dive bottoms out on an
    // all-integral LP, that point is a feasible incumbent — offered
    // through the same total-order merge, it seeds pruning from node one.
    // Tie-preserving pruning keeps the final Solution identical with or
    // without the seed; only `nodes_explored` (a diagnostic) shrinks.
    {
        let mut dive_fix: Vec<Fixing> = Vec::new();
        let mut lp = root;
        let n_bin = p
            .kinds
            .iter()
            .filter(|k| matches!(k, VarKind::Binary))
            .count();
        for _ in 0..=n_bin {
            let mut branch_var = usize::MAX;
            let mut branch_score = 0.0f64;
            for (i, k) in p.kinds.iter().enumerate() {
                if matches!(k, VarKind::Binary) {
                    let v = lp.values[i];
                    if (v - v.round()).abs() > options.int_tol {
                        let score = 0.5 - (0.5 - (v - v.floor())).abs();
                        if branch_var == usize::MAX || score > branch_score {
                            branch_var = i;
                            branch_score = score;
                        }
                    }
                }
            }
            if branch_var == usize::MAX {
                shared.offer_incumbent(lp.values);
                break;
            }
            let r = lp.values[branch_var].round();
            dive_fix.push((branch_var, r, r));
            match solve_lp_delta(p, &dive_fix, &mut ws, &root_opts) {
                Ok(next) => lp = next,
                // The dive is a heuristic: any failure (infeasible leaf,
                // pivot trouble) just means no early incumbent.
                Err(_) => break,
            }
        }
    }

    // Count the root solve's and dive's pivots once, here; the workspace
    // stats are reset so the serial worker (which reuses `ws`) reports
    // only its own tree pivots.
    shared
        .pivots
        .fetch_add(ws.stats().pivots, Ordering::Relaxed);
    ws.reset_stats();

    if jobs <= 1 {
        worker(&shared, &mut ws);
    } else {
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| {
                    let mut ws = SimplexWorkspace::new();
                    worker(&shared, &mut ws);
                });
            }
        });
    }

    if let Some(e) = shared.error.lock().expect("error slot poisoned").take() {
        return Err(e);
    }
    let limit_hit = shared.limit_hit.load(Ordering::Relaxed);
    // The counter over-counts by the nodes rejected after the limit
    // fired; the number actually expanded never exceeds the limit.
    let nodes = shared.nodes.load(Ordering::Relaxed).min(shared.max_nodes);
    // The subtrees nobody ever acquired are still on the frontier heap;
    // fold their bounds in with what the workers drained on the way out.
    let remaining = {
        let drained = *shared.remaining_bound.lock().expect("remaining poisoned");
        let f = shared.frontier.lock().expect("frontier poisoned");
        f.heap
            .iter()
            .map(|s| s.bound)
            .fold(drained, |acc, b| Some(acc.map_or(b, |a| a.min(b))))
    };
    let pivots = shared.pivots.load(Ordering::Relaxed);
    let best = shared.best.lock().expect("incumbent poisoned").take();
    match best {
        Some((objective, values)) => Ok(Solution {
            objective,
            values,
            status: if limit_hit {
                Status::LimitReached
            } else {
                Status::Optimal
            },
            // A completed search proved its incumbent: the bound IS the
            // objective. A truncated one is bounded by the best subtree
            // it abandoned (when nothing was abandoned — the limit fired
            // on the very last node — the incumbent is proven after all).
            best_bound: if limit_hit {
                remaining.map_or(objective, |b| b.min(objective))
            } else {
                objective
            },
            nodes_explored: nodes,
            pivots,
        }),
        None if limit_hit => Err(IlpError::NoIncumbent),
        None => Err(IlpError::Infeasible),
    }
}

#[cfg(test)]
mod tests {
    use crate::{Cmp, Problem, SolveOptions, Status};

    /// Brute-force a pure-binary problem by enumeration.
    fn brute_force(p: &Problem) -> Option<f64> {
        let n = p.var_count();
        assert!(n <= 20);
        let mut best: Option<f64> = None;
        'outer: for mask in 0u32..(1 << n) {
            let x: Vec<f64> = (0..n).map(|i| f64::from((mask >> i) & 1)).collect();
            for c in &p.constraints {
                let lhs: f64 = c.terms.iter().map(|&(v, a)| a * x[v]).sum();
                let ok = match c.cmp {
                    Cmp::Le => lhs <= c.rhs + 1e-9,
                    Cmp::Ge => lhs >= c.rhs - 1e-9,
                    Cmp::Eq => (lhs - c.rhs).abs() < 1e-9,
                };
                if !ok {
                    continue 'outer;
                }
            }
            let obj: f64 = x.iter().zip(&p.costs).map(|(v, c)| v * c).sum();
            if best.map(|b| obj < b).unwrap_or(true) {
                best = Some(obj);
            }
        }
        best
    }

    #[test]
    fn matches_brute_force_on_knapsacks() {
        // A family of deterministic small knapsacks.
        for seed in 0..10u64 {
            let mut p = Problem::minimize();
            let mut vars = Vec::new();
            let n = 8;
            for i in 0..n {
                let value = ((seed * 7 + i as u64 * 13) % 10 + 1) as f64;
                vars.push(p.add_binary(-value));
            }
            let weights: Vec<f64> = (0..n)
                .map(|i| ((seed * 5 + i as u64 * 11) % 8 + 1) as f64)
                .collect();
            let cap = weights.iter().sum::<f64>() / 2.0;
            let terms: Vec<_> = vars.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect();
            p.add_constraint(&terms, Cmp::Le, cap);
            let sol = p.solve(&SolveOptions::default()).unwrap();
            let expected = brute_force(&p).unwrap();
            assert!(
                (sol.objective - expected).abs() < 1e-6,
                "seed {seed}: got {}, expected {expected}",
                sol.objective
            );
            assert_eq!(sol.status, Status::Optimal);
        }
    }

    #[test]
    fn matches_brute_force_with_equalities() {
        for seed in 0..6u64 {
            let mut p = Problem::minimize();
            let n = 6;
            let vars: Vec<_> = (0..n)
                .map(|i| p.add_binary(((seed + i as u64 * 3) % 7) as f64 - 3.0))
                .collect();
            // Exactly 3 variables set.
            let terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
            p.add_constraint(&terms, Cmp::Eq, 3.0);
            let sol = p.solve(&SolveOptions::default()).unwrap();
            let expected = brute_force(&p).unwrap();
            assert!(
                (sol.objective - expected).abs() < 1e-6,
                "seed {seed}: got {}, expected {expected}",
                sol.objective
            );
        }
    }

    #[test]
    fn pivot_limit_is_reported_as_pivot_limit_not_unbounded() {
        // A >20-variable degenerate instance: many redundant tie-making
        // constraints force long Bland walks. With a starved pivot budget
        // the solver must say "pivot limit", never the old lie
        // "unbounded" — the remedies differ (raise budget vs fix model).
        let mut p = Problem::minimize();
        let vars: Vec<_> = (0..24)
            .map(|i| p.add_binary(-1.0 - (i % 3) as f64))
            .collect();
        for w in 1..=6u64 {
            let terms: Vec<_> = vars.iter().map(|&v| (v, w as f64)).collect();
            p.add_constraint(&terms, Cmp::Le, 12.0 * w as f64);
        }
        let starved = p.solve(&SolveOptions {
            max_pivots: 3,
            ..SolveOptions::default()
        });
        assert_eq!(
            starved.unwrap_err(),
            crate::IlpError::PivotLimit,
            "a starved pivot budget must surface as PivotLimit"
        );
        // The same model with the default budget solves fine — the limit
        // was a property of the search, not the model.
        let ok = p.solve(&SolveOptions::default()).unwrap();
        assert_eq!(ok.status, Status::Optimal);
    }

    #[test]
    fn truncated_solve_carries_best_remaining_bound() {
        // A knapsack whose root relaxation is fractional, truncated after
        // a handful of nodes: the solution must carry a usable lower
        // bound — brute-force optimum sandwiched between bound and
        // incumbent — so reports can say "within x %".
        let mut p = Problem::minimize();
        let n = 12;
        let vars: Vec<_> = (0..n)
            .map(|i| p.add_binary(-(((i * 7) % 11) as f64) - 1.5))
            .collect();
        let weights: Vec<f64> = (0..n).map(|i| ((i * 5) % 7 + 2) as f64).collect();
        let terms: Vec<_> = vars.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect();
        p.add_constraint(&terms, Cmp::Le, weights.iter().sum::<f64>() / 2.0);
        // The first node budget that leaves an incumbent behind while
        // still truncating the search (scanning keeps the test robust to
        // branching-order details).
        let truncated = (2..60)
            .find_map(|max_nodes| {
                p.solve(&SolveOptions {
                    max_nodes,
                    ..SolveOptions::default()
                })
                .ok()
                .filter(|s| s.status == Status::LimitReached)
            })
            .expect("some budget truncates with an incumbent");
        let optimum = brute_force(&p).unwrap();
        assert!(
            truncated.best_bound <= optimum + 1e-6,
            "best_bound {} must lower-bound the optimum {optimum}",
            truncated.best_bound
        );
        assert!(
            optimum <= truncated.objective + 1e-6,
            "incumbent {} must upper-bound the optimum {optimum}",
            truncated.objective
        );
        assert!(truncated.optimality_gap() >= 0.0);
        // The completed solve closes the gap entirely.
        let complete = p.solve(&SolveOptions::default()).unwrap();
        assert_eq!(complete.status, Status::Optimal);
        assert_eq!(complete.best_bound.to_bits(), complete.objective.to_bits());
        assert_eq!(complete.optimality_gap(), 0.0);
    }

    #[test]
    fn node_limit_respected() {
        let mut p = Problem::minimize();
        let n = 16;
        let vars: Vec<_> = (0..n)
            .map(|i| p.add_binary(-((i % 5) as f64) - 0.5))
            .collect();
        let terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        p.add_constraint(&terms, Cmp::Le, (n / 2) as f64);
        let sol = p.solve(&SolveOptions {
            max_nodes: 3,
            ..SolveOptions::default()
        });
        // Either found an incumbent within 3 nodes (LimitReached/Optimal) or
        // reports NoIncumbent; all are acceptable, crash is not.
        if let Ok(s) = sol {
            assert!(s.nodes_explored <= 3);
        }
    }

    #[test]
    fn mixed_integer_continuous() {
        // min -y - 10 b  s.t. y <= 4 + 6 b, y <= 8, b binary.
        // b=1: y=8, obj -18. b=0: y=4, obj -4. Optimal -18.
        let mut p = Problem::minimize();
        let y = p.add_continuous(0.0, 8.0, -1.0);
        let b = p.add_binary(-10.0);
        p.add_constraint(&[(y, 1.0), (b, -6.0)], Cmp::Le, 4.0);
        let sol = p.solve(&SolveOptions::default()).unwrap();
        assert!(
            (sol.objective + 18.0).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
        assert_eq!(sol.int_value(b), 1);
    }

    #[test]
    fn symmetric_optima_resolve_to_lexicographically_smallest() {
        // min -a - b s.t. 2a + 2b <= 3: the LP root is fractional (1.5
        // items fit), and the two integer optima (1,0) and (0,1) tie at
        // objective -1. The tie-preserving pruning explores both, and
        // the deterministic merge must keep the lexicographically
        // smallest assignment — (0,1) — for every job count. (The old
        // first-found-wins acceptance returned whichever branch the DFS
        // happened to reach first.)
        for jobs in [1usize, 2, 4] {
            let mut p = Problem::minimize();
            let a = p.add_binary(-1.0);
            let b = p.add_binary(-1.0);
            p.add_constraint(&[(a, 2.0), (b, 2.0)], Cmp::Le, 3.0);
            let sol = p
                .solve(&SolveOptions {
                    jobs,
                    ..SolveOptions::default()
                })
                .unwrap();
            assert_eq!(sol.objective, -1.0, "jobs={jobs}");
            assert_eq!(
                (sol.int_value(a), sol.int_value(b)),
                (0, 1),
                "jobs={jobs}: tie must break to the lex-smallest assignment"
            );
            assert_eq!(sol.status, Status::Optimal);
        }
    }

    #[test]
    fn wider_symmetry_is_deterministic_across_jobs() {
        // 2.5 identical items fit, so every 2-of-4 subset ties at -4 and
        // the root LP is fractional: a thicket of alternate optima. The
        // returned assignment must be bit-identical for every job count.
        let solve_at = |jobs: usize| {
            let mut p = Problem::minimize();
            let vars: Vec<_> = (0..4).map(|_| p.add_binary(-2.0)).collect();
            let terms: Vec<_> = vars.iter().map(|&v| (v, 2.0)).collect();
            p.add_constraint(&terms, Cmp::Le, 5.0);
            p.solve(&SolveOptions {
                jobs,
                ..SolveOptions::default()
            })
            .unwrap()
        };
        let serial = solve_at(1);
        assert_eq!(serial.objective, -4.0);
        assert_eq!(serial.values.iter().filter(|&&v| v > 0.5).count(), 2);
        for jobs in [2usize, 3, 4] {
            let par = solve_at(jobs);
            let serial_bits: Vec<u64> = serial.values.iter().map(|v| v.to_bits()).collect();
            let par_bits: Vec<u64> = par.values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(par_bits, serial_bits, "jobs={jobs}");
            assert_eq!(par.status, serial.status, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_matches_serial_bytes() {
        // The full Solution-relevant surface (objective bits, value
        // bits, status) must agree across job counts.
        for seed in 0..5u64 {
            let mut p = Problem::minimize();
            let n = 9;
            let vars: Vec<_> = (0..n)
                .map(|i| p.add_binary(((seed * 11 + i as u64 * 5) % 9) as f64 - 4.0))
                .collect();
            let weights: Vec<f64> = (0..n)
                .map(|i| ((seed * 3 + i as u64 * 7) % 6 + 1) as f64)
                .collect();
            let terms: Vec<_> = vars.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect();
            p.add_constraint(&terms, Cmp::Le, weights.iter().sum::<f64>() / 2.0);
            let serial = p
                .solve(&SolveOptions {
                    jobs: 1,
                    ..SolveOptions::default()
                })
                .unwrap();
            for jobs in [2usize, 4] {
                let par = p
                    .solve(&SolveOptions {
                        jobs,
                        ..SolveOptions::default()
                    })
                    .unwrap();
                assert_eq!(
                    par.objective.to_bits(),
                    serial.objective.to_bits(),
                    "seed {seed} jobs {jobs}"
                );
                let serial_bits: Vec<u64> = serial.values.iter().map(|v| v.to_bits()).collect();
                let par_bits: Vec<u64> = par.values.iter().map(|v| v.to_bits()).collect();
                assert_eq!(par_bits, serial_bits, "seed {seed} jobs {jobs}");
                assert_eq!(par.status, serial.status, "seed {seed} jobs {jobs}");
            }
        }
    }
}
