//! Branch & bound over binary variables.
//!
//! Depth-first search with best-bound pruning: each node solves the LP
//! relaxation under the accumulated 0/1 fixings, branches on the most
//! fractional binary, and explores the branch suggested by rounding first
//! (which tends to find incumbents early on partitioning instances).

use crate::simplex::{solve_lp_with, Fixing, SimplexWorkspace};
use crate::{IlpError, Problem, Solution, SolveOptions, Status, VarKind};

pub(crate) fn solve(p: &Problem, options: &SolveOptions) -> Result<Solution, IlpError> {
    // One simplex workspace serves every node of the search: each LP
    // rebuilds its tableau inside the same buffers instead of
    // reallocating per node.
    let mut ws = SimplexWorkspace::new();

    // Root relaxation.
    match solve_lp_with(p, &[], &mut ws) {
        Ok(_) => {}
        Err(IlpError::Infeasible) => return Err(IlpError::Infeasible),
        Err(IlpError::Unbounded) => return Err(IlpError::Unbounded),
        Err(e) => return Err(e),
    }

    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    let mut nodes = 0usize;
    let mut stack: Vec<Vec<Fixing>> = vec![Vec::new()];
    let mut limit_hit = false;

    while let Some(fixings) = stack.pop() {
        if nodes >= options.max_nodes {
            limit_hit = true;
            break;
        }
        nodes += 1;
        let lp = match solve_lp_with(p, &fixings, &mut ws) {
            Ok(lp) => lp,
            Err(IlpError::Infeasible) => continue,
            Err(e) => return Err(e),
        };
        // Bound: prune if it cannot beat the incumbent.
        if let Some((best, _)) = &incumbent {
            if lp.objective >= *best - 1e-9 {
                continue;
            }
        }
        // Find the most fractional binary.
        let mut branch_var = usize::MAX;
        let mut branch_frac = 0.0f64;
        for (i, k) in p.kinds.iter().enumerate() {
            if matches!(k, VarKind::Binary) {
                let v = lp.values[i];
                let frac = (v - v.round()).abs();
                if frac > options.int_tol {
                    let dist_to_half = (0.5 - (v - v.floor())).abs();
                    let score = 0.5 - dist_to_half; // closer to 0.5 = higher
                    if branch_var == usize::MAX || score > branch_frac {
                        branch_var = i;
                        branch_frac = score;
                    }
                }
            }
        }
        if branch_var == usize::MAX {
            // Integer feasible: candidate incumbent.
            let better = incumbent
                .as_ref()
                .map(|(best, _)| lp.objective < *best - 1e-9)
                .unwrap_or(true);
            if better {
                incumbent = Some((lp.objective, lp.values));
            }
            continue;
        }
        // Depth-first: push the less likely branch first so the rounded
        // branch is explored next.
        let v = lp.values[branch_var];
        let (first, second) = if v >= 0.5 { (1.0, 0.0) } else { (0.0, 1.0) };
        let mut far = fixings.clone();
        far.push((branch_var, second, second));
        stack.push(far);
        let mut near = fixings;
        near.push((branch_var, first, first));
        stack.push(near);
    }

    match incumbent {
        Some((objective, values)) => Ok(Solution {
            objective,
            values,
            status: if limit_hit {
                Status::LimitReached
            } else {
                Status::Optimal
            },
            nodes_explored: nodes,
        }),
        None if limit_hit => Err(IlpError::NoIncumbent),
        None => Err(IlpError::Infeasible),
    }
}

#[cfg(test)]
mod tests {
    use crate::{Cmp, Problem, SolveOptions, Status};

    /// Brute-force a pure-binary problem by enumeration.
    fn brute_force(p: &Problem) -> Option<f64> {
        let n = p.var_count();
        assert!(n <= 20);
        let mut best: Option<f64> = None;
        'outer: for mask in 0u32..(1 << n) {
            let x: Vec<f64> = (0..n).map(|i| f64::from((mask >> i) & 1)).collect();
            for c in &p.constraints {
                let lhs: f64 = c.terms.iter().map(|&(v, a)| a * x[v]).sum();
                let ok = match c.cmp {
                    Cmp::Le => lhs <= c.rhs + 1e-9,
                    Cmp::Ge => lhs >= c.rhs - 1e-9,
                    Cmp::Eq => (lhs - c.rhs).abs() < 1e-9,
                };
                if !ok {
                    continue 'outer;
                }
            }
            let obj: f64 = x.iter().zip(&p.costs).map(|(v, c)| v * c).sum();
            if best.map(|b| obj < b).unwrap_or(true) {
                best = Some(obj);
            }
        }
        best
    }

    #[test]
    fn matches_brute_force_on_knapsacks() {
        // A family of deterministic small knapsacks.
        for seed in 0..10u64 {
            let mut p = Problem::minimize();
            let mut vars = Vec::new();
            let n = 8;
            for i in 0..n {
                let value = ((seed * 7 + i as u64 * 13) % 10 + 1) as f64;
                vars.push(p.add_binary(-value));
            }
            let weights: Vec<f64> = (0..n)
                .map(|i| ((seed * 5 + i as u64 * 11) % 8 + 1) as f64)
                .collect();
            let cap = weights.iter().sum::<f64>() / 2.0;
            let terms: Vec<_> = vars.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect();
            p.add_constraint(&terms, Cmp::Le, cap);
            let sol = p.solve(&SolveOptions::default()).unwrap();
            let expected = brute_force(&p).unwrap();
            assert!(
                (sol.objective - expected).abs() < 1e-6,
                "seed {seed}: got {}, expected {expected}",
                sol.objective
            );
            assert_eq!(sol.status, Status::Optimal);
        }
    }

    #[test]
    fn matches_brute_force_with_equalities() {
        for seed in 0..6u64 {
            let mut p = Problem::minimize();
            let n = 6;
            let vars: Vec<_> = (0..n)
                .map(|i| p.add_binary(((seed + i as u64 * 3) % 7) as f64 - 3.0))
                .collect();
            // Exactly 3 variables set.
            let terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
            p.add_constraint(&terms, Cmp::Eq, 3.0);
            let sol = p.solve(&SolveOptions::default()).unwrap();
            let expected = brute_force(&p).unwrap();
            assert!(
                (sol.objective - expected).abs() < 1e-6,
                "seed {seed}: got {}, expected {expected}",
                sol.objective
            );
        }
    }

    #[test]
    fn node_limit_respected() {
        let mut p = Problem::minimize();
        let n = 16;
        let vars: Vec<_> = (0..n)
            .map(|i| p.add_binary(-((i % 5) as f64) - 0.5))
            .collect();
        let terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        p.add_constraint(&terms, Cmp::Le, (n / 2) as f64);
        let sol = p.solve(&SolveOptions {
            max_nodes: 3,
            int_tol: 1e-6,
        });
        // Either found an incumbent within 3 nodes (LimitReached/Optimal) or
        // reports NoIncumbent; all are acceptable, crash is not.
        if let Ok(s) = sol {
            assert!(s.nodes_explored <= 3);
        }
    }

    #[test]
    fn mixed_integer_continuous() {
        // min -y - 10 b  s.t. y <= 4 + 6 b, y <= 8, b binary.
        // b=1: y=8, obj -18. b=0: y=4, obj -4. Optimal -18.
        let mut p = Problem::minimize();
        let y = p.add_continuous(0.0, 8.0, -1.0);
        let b = p.add_binary(-10.0);
        p.add_constraint(&[(y, 1.0), (b, -6.0)], Cmp::Le, 4.0);
        let sol = p.solve(&SolveOptions::default()).unwrap();
        assert!(
            (sol.objective + 18.0).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
        assert_eq!(sol.int_value(b), 1);
    }
}
