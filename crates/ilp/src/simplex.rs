//! Two-phase dense simplex for the LP relaxation — flat tableau,
//! steepest-edge pricing, basis warm starts, row-parallel kernels.
//!
//! The tableau is one row-major `Vec<f64>` (stride-indexed) inside a
//! [`SimplexWorkspace`], so every pivot and pricing pass is a contiguous
//! slice operation instead of a `Vec<Vec<f64>>` pointer chase, and the
//! backing buffers are recycled across calls: branch & bound threads one
//! workspace through every node of its search, which removes both the
//! allocation churn *and* the cache misses of the MILP partitioners.
//!
//! Four solver paths share the build:
//!
//! * **Cold two-phase primal** ([`solve_lp_opts`]): phase 1 drives the
//!   infeasibilities out, phase 2 optimizes. The entering column is
//!   chosen by [`PricingRule::SteepestEdge`] by default —
//!   `d_j² / (1 + ‖B⁻¹A_j‖²)`, which takes orders of magnitude fewer
//!   pivots than Bland's rule on degenerate instances — with a
//!   no-objective-progress counter that falls back to Bland's rule after
//!   [`STALL_LIMIT`] stalled pivots (and re-engages steepest edge once
//!   the objective moves again), so termination stays guaranteed without
//!   paying Bland's walk everywhere. Artificial variables are *virtual*:
//!   a row that cannot start on its slack carries a "marker" basis entry
//!   instead of a stored column — phase 1 never prices the artificials
//!   (they may only leave), so their columns need not exist, which cuts
//!   the tableau width from `n + 2m + 1` to `n + m + 1`.
//! * **Warm dual** ([`solve_lp_warm`]): branch & bound re-solves a child
//!   LP from the parent's optimal basis. The parent basis stays *dual*
//!   feasible after a bound flip, so the child usually re-solves in a
//!   handful of dual pivots instead of a cold two-phase solve. Marker
//!   entries (dependent rows) are accepted and stay inert. Any numerical
//!   trouble — a singular re-factorization, an inconsistent dependent
//!   row, or a dual repair that overruns its pivot cap — falls back to
//!   the cold path, deterministically.
//! * **In-place delta re-solve** ([`solve_lp_delta`]): the immediate
//!   child on the depth-first hot path narrows exactly one bound on top
//!   of the tableau the workspace *already holds*, so the rebuild and
//!   re-factorization are skipped entirely: the RHS update is `O(m)`
//!   straight from two stored tableau columns, followed by the same
//!   capped dual repair.
//! * **Row-parallel kernels** ([`LpOptions::jobs`]): the pricing pass
//!   (reduced costs + steepest-edge norms in one traversal) and the pivot
//!   update fan rows out over scoped worker threads. Determinism is the
//!   invariant: partial sums are accumulated over **fixed chunk
//!   boundaries** ([`CHUNK`] rows) and reduced in chunk-index order for
//!   *every* job count — serial runs use the identical chunked fold — so
//!   the solve is bit-for-bit identical at jobs 1/2/4.
//!
//! The column layout is uniform and fixing-independent — `n` structurals,
//! one slack per row, the RHS — so a basis (a set of column indices)
//! stored at a parent node stays meaningful for every child rebuild.

use crate::{Cmp, IlpError, PricingRule, Problem, VarKind};

/// Result of one LP solve.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal objective of the relaxation.
    pub objective: f64,
    /// Value per original decision variable.
    pub values: Vec<f64>,
}

/// Extra bounds imposed by branch & bound: `(var, lo, hi)`.
pub(crate) type Fixing = (usize, f64, f64);

const EPS: f64 = 1e-9;

/// Reduced-cost tolerance: `d_j < -PRICE_TOL` makes a column an entering
/// candidate (primal) and `rhs_i < -PRICE_TOL` a leaving candidate (dual).
const PRICE_TOL: f64 = 1e-7;

/// Default per-LP pivot budget ([`crate::SolveOptions::max_pivots`]).
/// The steepest-edge/Bland fallback pair guarantees termination, but a
/// budget still bounds pathological instances; exhausting it surfaces as
/// [`IlpError::PivotLimit`] — a property of the search, not the model.
pub const DEFAULT_MAX_PIVOTS: usize = 100_000;

/// Consecutive pivots without objective progress before steepest-edge
/// pricing hands the entering choice to Bland's rule. Bland's rule is
/// provably cycle-free, and every strict objective improvement hands
/// control back to steepest edge, so the fallback engages only while an
/// instance is actually stalled — never permanently.
const STALL_LIMIT: usize = 256;

/// Objective must drop by more than this to count as progress for the
/// anti-cycling counter.
const PROGRESS_EPS: f64 = 1e-9;

/// Fixed row-chunk width of the parallel kernels. Partial sums are
/// always accumulated per chunk and folded in chunk-index order — at
/// every job count, serial included — so floating-point results are
/// bit-identical no matter how many workers split the rows.
const CHUNK: usize = 64;

/// Minimum tableau cells (`rows × priced columns`) before a pass is
/// worth fanning out over scoped threads: below this, spawn overhead
/// eats the win and the chunked fold runs on the calling thread.
const PAR_MIN_CELLS: usize = 1 << 18;

/// Tolerance for declaring a dependent (marker-basic) row inconsistent
/// with the current bounds, and for declaring a warm pivot singular.
const WARM_TOL: f64 = 1e-7;

/// Harris ratio-test expansion: both ratio tests first compute the
/// tightest ratio *relaxed by this tolerance*, then pivot on the
/// largest-magnitude element within the relaxed limit. Degenerate ties
/// (ratio 0) are rife in partitioning LPs, and a plain
/// min-ratio/lowest-index rule happily pivots on an elimination-noise
/// element barely above [`EPS`] — one such pivot scales the tableau by
/// ~1e8 and the solve silently returns garbage. Preferring the largest
/// pivot bounds the per-step feasibility drift by this tolerance while
/// keeping every comparison exact, so the choice stays deterministic.
const HARRIS_TOL: f64 = 1e-7;

/// One normalized constraint row of the standard-form build.
#[derive(Debug)]
struct Row {
    coeffs: Vec<f64>,
    cmp: Cmp,
    rhs: f64,
}

/// Hand out the next pooled row, zeroed to `n` coefficient columns.
/// Rows are recycled across solves: only `used` grows the pool, so a
/// warm workspace rebuilds the standard form without allocating.
fn next_row<'a>(rows: &'a mut Vec<Row>, used: &mut usize, n: usize) -> &'a mut Row {
    if *used == rows.len() {
        rows.push(Row {
            coeffs: Vec::new(),
            cmp: Cmp::Le,
            rhs: 0.0,
        });
    }
    let row = &mut rows[*used];
    *used += 1;
    row.coeffs.clear();
    row.coeffs.resize(n, 0.0);
    row.cmp = Cmp::Le;
    row.rhs = 0.0;
    row
}

/// Knobs of one LP solve (the per-call subset of
/// [`crate::SolveOptions`]).
#[derive(Debug, Clone, Copy)]
pub struct LpOptions {
    /// Pivot budget per simplex phase; exhaustion is
    /// [`IlpError::PivotLimit`].
    pub max_pivots: usize,
    /// Entering-column rule for the primal phases.
    pub pricing: PricingRule,
    /// Worker threads for the row-parallel pricing/update kernels
    /// (`1` = serial; results are bit-identical for every value).
    pub jobs: usize,
}

impl Default for LpOptions {
    fn default() -> LpOptions {
        LpOptions {
            max_pivots: DEFAULT_MAX_PIVOTS,
            pricing: PricingRule::SteepestEdge,
            jobs: 1,
        }
    }
}

/// Cumulative pivot accounting of a workspace (across all solves since
/// the last [`SimplexWorkspace::reset_stats`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct SimplexStats {
    /// Priced pivots: primal (both phases) plus dual.
    pub pivots: usize,
    /// Of `pivots`: primal pivots taken while the Bland anti-cycling
    /// fallback was engaged (always equal to the primal pivot count
    /// under [`PricingRule::Bland`]).
    pub bland_pivots: usize,
    /// Of `pivots`: dual-simplex pivots of warm/delta re-solves.
    pub dual_pivots: usize,
    /// Mechanical Gauss–Jordan pivots spent re-factorizing a warm basis
    /// or driving phase-1 markers out (not priced, not budget-counted).
    pub refactor_pivots: usize,
    /// Solves that re-factorized a caller-provided basis.
    pub warm_solves: usize,
    /// Solves that updated the held tableau in place (one bound delta).
    pub delta_solves: usize,
    /// Solves that built the cold two-phase start.
    pub cold_solves: usize,
    /// Warm/delta solves that had to restart cold (stale or singular
    /// basis, inconsistent dependent row, or dual-repair pivot cap).
    pub warm_fallbacks: usize,
}

/// Reusable scratch buffers for the LP solver.
///
/// A fresh workspace is an empty set of buffers; every solve resizes
/// them to the instance at hand and leaves the capacity behind for the
/// next call. Branch & bound gives each worker one workspace and
/// threads it through all its B&B nodes, so the per-node tableau build
/// costs no allocations after the first node.
///
/// After a successful solve the workspace additionally *holds* that
/// solve's final tableau, and remembers which `(problem shape, fixings)`
/// it belongs to: [`SimplexWorkspace::delta_applicable`] tells a caller
/// whether the next solve can run as an in-place [`solve_lp_delta`].
#[derive(Debug, Default)]
pub struct SimplexWorkspace {
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// Row buffer pool; only the first `rows_used` entries are live.
    rows: Vec<Row>,
    rows_used: usize,
    /// Flat row-major tableau: `m` rows of `width` columns.
    tab: Vec<f64>,
    basis: Vec<usize>,
    cost: Vec<f64>,
    /// Reduced-cost vector `d` (pricing scratch).
    reduced: Vec<f64>,
    /// Steepest-edge column norms `γ` (pricing scratch).
    gamma: Vec<f64>,
    /// Per-chunk partial sums of the pricing pass (`n_chunks × cols`).
    chunk_d: Vec<f64>,
    chunk_g: Vec<f64>,
    /// Copy of the normalized pivot row for the parallel update pass.
    prow: Vec<f64>,
    /// Whether the held tableau is the final state of a successful solve
    /// (and therefore a valid base for [`solve_lp_delta`]).
    state_valid: bool,
    /// The fixings of the held tableau's solve.
    state_fixings: Vec<Fixing>,
    /// Geometry of the held tableau (`n` variables, `m` rows).
    state_n: usize,
    state_m: usize,
    stats: SimplexStats,
}

impl SimplexWorkspace {
    /// An empty workspace (buffers grow on first use).
    #[must_use]
    pub fn new() -> SimplexWorkspace {
        SimplexWorkspace::default()
    }

    /// The optimal basis of the last successful solve: one column index
    /// per tableau row (dependent rows report their virtual marker
    /// column). Feed it back through [`solve_lp_warm`] to re-solve a
    /// neighbouring LP (one bound flip away) in a handful of dual pivots.
    #[must_use]
    pub fn basis(&self) -> &[usize] {
        &self.basis
    }

    /// Whether `fixings` extends the held solve's fixings by exactly one
    /// entry — the precondition for [`solve_lp_delta`] (which must also
    /// see the *same* [`Problem`]).
    #[must_use]
    pub fn delta_applicable(&self, fixings: &[Fixing]) -> bool {
        self.state_valid
            && fixings.len() == self.state_fixings.len() + 1
            && fixings[..self.state_fixings.len()] == self.state_fixings[..]
    }

    /// Cumulative pivot accounting since construction or the last
    /// [`SimplexWorkspace::reset_stats`].
    #[must_use]
    pub fn stats(&self) -> SimplexStats {
        self.stats
    }

    /// Zero the pivot accounting.
    pub fn reset_stats(&mut self) {
        self.stats = SimplexStats::default();
    }

    /// Record that the held tableau is the final state of a successful
    /// solve of `(b, fixings)`.
    fn commit_state(&mut self, b: &Build, fixings: &[Fixing]) {
        self.state_valid = true;
        self.state_n = b.n;
        self.state_m = b.m;
        self.state_fixings.clear();
        self.state_fixings.extend_from_slice(fixings);
    }
}

/// Geometry of one tableau build. The column layout is uniform and
/// independent of the fixings: `0..n` structurals, `n..n+m` one slack
/// per row (zero column for `Eq` rows), `n+m` the RHS. Columns at
/// `width..width+m` are *virtual markers* — one per row, never stored,
/// never priced — standing in for the phase-1 artificial of a row whose
/// slack cannot serve as the start basis. A basis is a set of column
/// indices, so it stays meaningful across rebuilds with different
/// fixings — the load-bearing property behind warm starts.
#[derive(Debug, Clone, Copy)]
struct Build {
    n: usize,
    m: usize,
    /// RHS column index (`n + m`).
    rhs_col: usize,
    /// Row width: structurals, slacks and the RHS (`n + m + 1`).
    width: usize,
}

impl Build {
    /// The virtual marker column of `row` (basis entry only — the
    /// column itself is never materialized).
    fn marker(&self, row: usize) -> usize {
        self.width + row
    }

    fn for_state(ws: &SimplexWorkspace) -> Build {
        let (n, m) = (ws.state_n, ws.state_m);
        Build {
            n,
            m,
            rhs_col: n + m,
            width: n + m + 1,
        }
    }
}

/// Solve the LP relaxation of `p` with additional variable fixings,
/// allocating fresh scratch buffers.
///
/// Binary variables are relaxed to `[0, 1]` unless a fixing narrows them.
///
/// # Errors
///
/// [`IlpError::Infeasible`] when phase 1 cannot reach feasibility,
/// [`IlpError::Unbounded`] when phase 2 finds an unbounded ray.
pub fn solve_lp(p: &Problem, fixings: &[Fixing]) -> Result<LpSolution, IlpError> {
    solve_lp_opts(
        p,
        fixings,
        &mut SimplexWorkspace::new(),
        &LpOptions::default(),
    )
}

/// [`solve_lp`] with caller-provided scratch buffers; identical results,
/// no per-call tableau allocations once the workspace is warm.
///
/// # Errors
///
/// Same as [`solve_lp`].
pub fn solve_lp_with(
    p: &Problem,
    fixings: &[Fixing],
    ws: &mut SimplexWorkspace,
) -> Result<LpSolution, IlpError> {
    solve_lp_opts(p, fixings, ws, &LpOptions::default())
}

/// [`solve_lp_with`] with an explicit per-phase pivot budget.
///
/// # Errors
///
/// Same as [`solve_lp`], plus [`IlpError::PivotLimit`] when either
/// simplex phase exhausts `max_pivots` before terminating.
pub fn solve_lp_bounded(
    p: &Problem,
    fixings: &[Fixing],
    ws: &mut SimplexWorkspace,
    max_pivots: usize,
) -> Result<LpSolution, IlpError> {
    solve_lp_opts(
        p,
        fixings,
        ws,
        &LpOptions {
            max_pivots,
            ..LpOptions::default()
        },
    )
}

/// Cold solve: build the two-phase tableau and run primal simplex under
/// the given pricing rule and kernel job budget.
///
/// # Errors
///
/// [`IlpError::Infeasible`] / [`IlpError::Unbounded`] for hopeless
/// relaxations, [`IlpError::PivotLimit`] when a phase exhausts
/// `opts.max_pivots`.
pub fn solve_lp_opts(
    p: &Problem,
    fixings: &[Fixing],
    ws: &mut SimplexWorkspace,
    opts: &LpOptions,
) -> Result<LpSolution, IlpError> {
    ws.state_valid = false;
    let b = build_tableau(p, fixings, ws, true)?;
    ws.stats.cold_solves += 1;

    // Phase 1: minimize the (virtual) artificial sum — the total RHS of
    // the marker-basic rows. Marker columns are never priced, so they
    // can only leave the basis; no storage for them is needed.
    let needs_phase1 = ws.basis.iter().any(|&c| c >= b.width);
    if needs_phase1 {
        ws.cost.clear();
        ws.cost.resize(b.width + b.m, 0.0);
        for i in 0..b.m {
            ws.cost[b.marker(i)] = 1.0;
        }
        let obj = run_primal(ws, &b, opts)?;
        if obj > 1e-6 {
            return Err(IlpError::Infeasible);
        }
        drive_out_markers(ws, &b, opts.jobs);
    }

    // Phase 2: original costs on the shifted structurals. Marker columns
    // are never priced, so they cannot re-enter.
    phase2_costs(p, ws, &b);
    run_primal(ws, &b, opts)?;
    let sol = extract(p, ws, &b);
    ws.commit_state(&b, fixings);
    Ok(sol)
}

/// Warm solve: rebuild the tableau for the (re-bounded) instance,
/// re-factorize the caller's basis, repair primal feasibility with a
/// pivot-capped dual simplex, then polish with primal phase 2. Falls
/// back to [`solve_lp_opts`] — deterministically — when the basis is
/// stale, numerically singular for the new bounds, inconsistent on a
/// dependent row, or when the dual repair overruns its cap.
///
/// # Errors
///
/// Same as [`solve_lp_opts`].
pub fn solve_lp_warm(
    p: &Problem,
    fixings: &[Fixing],
    ws: &mut SimplexWorkspace,
    opts: &LpOptions,
    warm_basis: &[usize],
) -> Result<LpSolution, IlpError> {
    ws.state_valid = false;
    let b = build_tableau(p, fixings, ws, false)?;
    // A usable basis names one structural-or-slack column — or the row's
    // virtual marker (dependent row) — per tableau row.
    let usable = warm_basis.len() == b.m
        && warm_basis
            .iter()
            .all(|&c| c < b.rhs_col || (c >= b.width && c < b.width + b.m));
    if !usable {
        ws.stats.warm_fallbacks += 1;
        return solve_lp_opts(p, fixings, ws, opts);
    }
    ws.stats.warm_solves += 1;

    // Re-factorize: Gauss–Jordan the stored basis back into an
    // identity. The stored entries are treated as a column *set*, not a
    // column-per-row prescription — each column (ascending order)
    // pivots into the largest-magnitude entry among still-unassigned
    // rows, i.e. partial pivoting restricted to the basis columns.
    // Pivoting column c at row r in fixed row order would demand every
    // leading minor of that ordering be nonsingular, which structured
    // bases (assignment rows) routinely violate; the set view only
    // needs the basis matrix itself to be nonsingular. These pivots are
    // mechanical (no pricing scan, not budget-counted), and every
    // compare is exact, so the factorization is deterministic.
    let mut cols: Vec<usize> = warm_basis
        .iter()
        .copied()
        .filter(|&c| c < b.rhs_col)
        .collect();
    cols.sort_unstable();
    let mut row_used = vec![false; b.m];
    for &col in &cols {
        let mut best: Option<(f64, usize)> = None;
        for (ri, used) in row_used.iter().enumerate() {
            if !used {
                let a = ws.tab[ri * b.width + col].abs();
                if a > WARM_TOL && best.map_or(true, |(ba, _)| a > ba) {
                    best = Some((a, ri));
                }
            }
        }
        let Some((_, ri)) = best else {
            // Singular for the new bounds (or a duplicated column):
            // restart cold. The trigger depends only on deterministic
            // arithmetic, so the fallback is the same on every run.
            ws.stats.warm_solves -= 1;
            ws.stats.warm_fallbacks += 1;
            return solve_lp_opts(p, fixings, ws, opts);
        };
        pivot_flat(ws, &b, ri, col, opts.jobs);
        ws.basis[ri] = col;
        row_used[ri] = true;
        ws.stats.refactor_pivots += 1;
    }
    for (ri, used) in row_used.iter().enumerate() {
        if !used {
            ws.basis[ri] = b.marker(ri);
        }
    }
    // A marker row is a dependent row: its active entries eliminated to
    // ~0 when the basis was stored. If its residual RHS is not ~0 under
    // the *new* bounds the stored basis does not address this instance —
    // restart cold rather than risking a bogus verdict.
    for ri in 0..b.m {
        if ws.basis[ri] >= b.width && ws.tab[ri * b.width + b.rhs_col].abs() > 1e-6 {
            ws.stats.warm_solves -= 1;
            ws.stats.warm_fallbacks += 1;
            return solve_lp_opts(p, fixings, ws, opts);
        }
    }

    phase2_costs(p, ws, &b);
    if !run_dual(ws, &b, opts)? {
        // Dual repair overran its pivot cap — rare, but the cold path is
        // both the correctness and the determinism anchor.
        ws.stats.warm_fallbacks += 1;
        return solve_lp_opts(p, fixings, ws, opts);
    }
    run_primal(ws, &b, opts)?;
    let sol = extract(p, ws, &b);
    ws.commit_state(&b, fixings);
    Ok(sol)
}

/// Delta solve: the workspace already holds the final tableau of a
/// successful solve of the same [`Problem`] whose fixings are a strict
/// prefix of `fixings` with exactly one new entry
/// (see [`SimplexWorkspace::delta_applicable`]). The new bound is folded
/// into the held tableau's RHS in `O(m)` — `B⁻¹Δb` is a combination of
/// two *stored* tableau columns — so no rebuild and no re-factorization
/// happen at all; the capped dual repair then restores feasibility.
///
/// # Errors
///
/// Same as [`solve_lp_opts`].
pub(crate) fn solve_lp_delta(
    p: &Problem,
    fixings: &[Fixing],
    ws: &mut SimplexWorkspace,
    opts: &LpOptions,
) -> Result<LpSolution, IlpError> {
    debug_assert!(
        ws.delta_applicable(fixings),
        "caller must gate on delta_applicable"
    );
    debug_assert_eq!(p.costs.len(), ws.state_n, "delta across different problems");
    let b = Build::for_state(ws);
    let &(v, l, h) = fixings.last().expect("delta fixing");

    let new_lo = ws.lo[v].max(l);
    let new_hi = ws.hi[v].min(h);
    if new_lo > new_hi + EPS {
        // Nothing was touched: the held state is still the parent's.
        return Err(IlpError::Infeasible);
    }
    let d_lo = new_lo - ws.lo[v];
    let d_hi = new_hi - ws.hi[v];
    ws.state_valid = false;
    ws.stats.delta_solves += 1;

    // Δb of the built system is `-Δlo·A'_v + Δhi·e_ub(v)` (every built
    // row's RHS was shifted by `-a_rv·lo_v`, and the upper-bound row of
    // `v` — row `C + v`, never sign-flipped — has RHS `hi_v - lo_v`).
    // `B⁻¹Δb` therefore reads straight off the held tableau: column `v`
    // and the slack column of the upper-bound row.
    let c = b.m - b.n + v; // row index of v's upper-bound row (C + v)
    let ub_slack = b.n + c;
    for ri in 0..b.m {
        let row = ri * b.width;
        let delta = -d_lo * ws.tab[row + v] + d_hi * ws.tab[row + ub_slack];
        ws.tab[row + b.rhs_col] += delta;
    }
    ws.lo[v] = new_lo;
    ws.hi[v] = new_hi;

    phase2_costs(p, ws, &b);
    if !run_dual(ws, &b, opts)? {
        ws.stats.warm_fallbacks += 1;
        return solve_lp_opts(p, fixings, ws, opts);
    }
    run_primal(ws, &b, opts)?;
    let sol = extract(p, ws, &b);
    ws.commit_state(&b, fixings);
    Ok(sol)
}

/// Install the phase-2 cost vector (original costs on the structurals,
/// zero on slacks, RHS and markers).
fn phase2_costs(p: &Problem, ws: &mut SimplexWorkspace, b: &Build) {
    ws.cost.clear();
    ws.cost.resize(b.width + b.m, 0.0);
    ws.cost[..b.n].copy_from_slice(&p.costs);
}

/// Drive phase-1 markers out of the basis where possible; a row whose
/// active part eliminated to all-zero is redundant — its marker stays
/// (harmless: phase-2 cost 0, RHS ~0, and markers are never priced).
fn drive_out_markers(ws: &mut SimplexWorkspace, b: &Build, jobs: usize) {
    for ri in 0..b.m {
        if ws.basis[ri] >= b.width {
            let row = &ws.tab[ri * b.width..ri * b.width + b.rhs_col];
            if let Some(col) = (0..b.rhs_col).find(|&c| row[c].abs() > EPS) {
                pivot_flat(ws, b, ri, col, jobs);
                ws.basis[ri] = col;
                ws.stats.refactor_pivots += 1;
            }
        }
    }
}

/// Build the standard-form tableau into the workspace. With
/// `install_basis` the cold-start basis (slack where possible, marker
/// elsewhere) is installed; without it the caller installs a basis by
/// re-factorization.
fn build_tableau(
    p: &Problem,
    fixings: &[Fixing],
    ws: &mut SimplexWorkspace,
    install_basis: bool,
) -> Result<Build, IlpError> {
    let n = p.costs.len();

    // Effective bounds per variable.
    ws.lo.clear();
    ws.lo.resize(n, 0.0);
    ws.hi.clear();
    ws.hi.resize(n, 0.0);
    for (i, k) in p.kinds.iter().enumerate() {
        match *k {
            VarKind::Binary => {
                ws.lo[i] = 0.0;
                ws.hi[i] = 1.0;
            }
            VarKind::Continuous { lo: l, hi: h } => {
                ws.lo[i] = l;
                ws.hi[i] = h;
            }
        }
    }
    for &(v, l, h) in fixings {
        ws.lo[v] = ws.lo[v].max(l);
        ws.hi[v] = ws.hi[v].min(h);
        if ws.lo[v] > ws.hi[v] + EPS {
            return Err(IlpError::Infeasible);
        }
    }

    // Shift x = lo + x', x' in [0, hi-lo]; x' >= 0 suits standard form.
    // Rows: original constraints (rhs adjusted by lo), plus x' <= hi-lo
    // upper-bound rows for every variable — the row *count* and order
    // are fixing-independent, which keeps a stored basis addressable
    // across rebuilds.
    ws.rows_used = 0;
    for c in &p.constraints {
        let row = next_row(&mut ws.rows, &mut ws.rows_used, n);
        row.cmp = c.cmp;
        row.rhs = c.rhs;
        for &(v, a) in &c.terms {
            row.coeffs[v] += a;
            row.rhs -= a * ws.lo[v];
        }
    }
    for i in 0..n {
        let range = ws.hi[i] - ws.lo[i];
        let row = next_row(&mut ws.rows, &mut ws.rows_used, n);
        row.coeffs[i] = 1.0;
        // Fixed variables (range ~ 0) are substituted away via lo; force
        // x' = 0 with an upper-bound row of rhs 0 (cheap to always add).
        row.rhs = if range <= EPS { 0.0 } else { range };
    }

    let m = ws.rows_used;
    // Normalize to rhs >= 0 (flip rows; the slack sign flips with them).
    for r in ws.rows[..m].iter_mut() {
        if r.rhs < 0.0 {
            for a in r.coeffs.iter_mut() {
                *a = -*a;
            }
            r.rhs = -r.rhs;
            r.cmp = match r.cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
    }

    let b = Build {
        n,
        m,
        rhs_col: n + m,
        width: n + m + 1,
    };

    ws.tab.clear();
    ws.tab.resize(m * b.width, 0.0);
    ws.basis.clear();
    ws.basis.resize(m, usize::MAX);
    for ri in 0..m {
        let r = &ws.rows[ri];
        let t = &mut ws.tab[ri * b.width..(ri + 1) * b.width];
        t[..n].copy_from_slice(&r.coeffs);
        t[b.rhs_col] = r.rhs;
        // Slack of row ri lives in column n + ri: +1 for <=, -1 for >=
        // (post-normalization), absent for equalities.
        let slack = match r.cmp {
            Cmp::Le => 1.0,
            Cmp::Ge => -1.0,
            Cmp::Eq => 0.0,
        };
        t[n + ri] = slack;
        if install_basis {
            ws.basis[ri] = if slack > 0.0 { n + ri } else { b.marker(ri) };
        }
    }
    Ok(b)
}

/// Extract the solution at the current basis.
fn extract(p: &Problem, ws: &SimplexWorkspace, b: &Build) -> LpSolution {
    let mut values = vec![0.0f64; b.n];
    for ri in 0..b.m {
        let c = ws.basis[ri];
        if c < b.n {
            values[c] = ws.tab[ri * b.width + b.rhs_col];
        }
    }
    for (v, l) in values.iter_mut().zip(&ws.lo) {
        *v += l;
    }
    let objective: f64 = values.iter().zip(&p.costs).map(|(x, c)| x * c).sum();
    LpSolution { objective, values }
}

/// Objective of the cost vector at the current basic solution
/// (`Σ c_B · rhs`), used by the stall counter and the phase-1 test.
fn basis_objective(ws: &SimplexWorkspace, b: &Build) -> f64 {
    let mut obj = 0.0;
    for ri in 0..b.m {
        let cb = ws.cost[ws.basis[ri]];
        if cb != 0.0 {
            obj += cb * ws.tab[ri * b.width + b.rhs_col];
        }
    }
    obj
}

/// Primal simplex on the current tableau/basis with the workspace cost
/// vector. Prices the real columns (`0..rhs_col`); marker columns are
/// virtual and can only leave. Returns the objective at the final basis.
fn run_primal(ws: &mut SimplexWorkspace, b: &Build, opts: &LpOptions) -> Result<f64, IlpError> {
    let mut bland = opts.pricing == PricingRule::Bland;
    let mut stall = 0usize;
    let mut last_obj = basis_objective(ws, b);
    for _ in 0..opts.max_pivots {
        price_pass(ws, b, !bland, opts.jobs);
        let entering = if bland {
            // Bland's rule: the lowest-index improving column.
            (0..b.rhs_col).find(|&j| ws.reduced[j] < -PRICE_TOL)
        } else {
            // Steepest edge: maximize d² / (1 + ‖B⁻¹A_j‖²), exact
            // compare, lowest index on ties — deterministic.
            let mut best: Option<(f64, usize)> = None;
            for j in 0..b.rhs_col {
                let d = ws.reduced[j];
                if d < -PRICE_TOL {
                    let score = d * d / ws.gamma[j];
                    if best.map_or(true, |(s, _)| score > s) {
                        best = Some((score, j));
                    }
                }
            }
            best.map(|(_, j)| j)
        };
        let Some(entering) = entering else {
            return Ok(basis_objective(ws, b));
        };
        let Some(leaving) = ratio_test(ws, b, entering) else {
            return Err(IlpError::Unbounded);
        };
        pivot_flat(ws, b, leaving, entering, opts.jobs);
        ws.basis[leaving] = entering;
        ws.stats.pivots += 1;
        if bland {
            ws.stats.bland_pivots += 1;
        }
        // Anti-cycling: a strict objective drop re-arms steepest edge;
        // STALL_LIMIT stalled pivots in a row engage Bland's rule, whose
        // cycle-freedom guarantees the stall eventually breaks (or the
        // phase terminates).
        let obj = basis_objective(ws, b);
        if obj < last_obj - PROGRESS_EPS {
            stall = 0;
            bland = opts.pricing == PricingRule::Bland;
        } else {
            stall += 1;
            if stall >= STALL_LIMIT {
                bland = true;
            }
        }
        last_obj = obj;
    }
    // Pivot budget exhausted: the search ran out, not the model — report
    // it truthfully instead of masquerading as an unbounded objective.
    Err(IlpError::PivotLimit)
}

/// Dual simplex: starting from a dual-feasible basis (a parent's
/// optimum), drive negative basic values out until the solution is
/// primal feasible — at which point it is optimal. The child of a
/// branch & bound bound flip typically needs only a handful of pivots,
/// so the pass is capped at `2m + 100` pivots: `Ok(false)` reports an
/// overrun and the caller restarts cold (deterministically), which keeps
/// [`IlpError::PivotLimit`] a primal-budget-only verdict.
///
/// Marker-basic (dependent) rows are inert here: their active entries
/// and RHS are ~0, so they are never selected to leave, and their slack
/// re-entering through the ratio test is sound — marker-basic only means
/// that slack currently sits nonbasic at zero.
fn run_dual(ws: &mut SimplexWorkspace, b: &Build, opts: &LpOptions) -> Result<bool, IlpError> {
    let cap = 2 * b.m + 100;
    for _ in 0..cap {
        // Leaving row: most negative basic value, exact compare, lowest
        // row index on ties.
        let mut leaving: Option<(f64, usize)> = None;
        for ri in 0..b.m {
            let v = ws.tab[ri * b.width + b.rhs_col];
            if v < -PRICE_TOL && leaving.map_or(true, |(best, _)| v < best) {
                leaving = Some((v, ri));
            }
        }
        let Some((_, leaving)) = leaving else {
            return Ok(true);
        };
        // Entering column: the dual ratio test `d_j / -t[r][j]` over
        // negative row entries, Harris style — pass 1 the tightest
        // ratio relaxed by HARRIS_TOL, pass 2 the largest-magnitude
        // element within the limit (lowest index on exact ties). The
        // degenerate d_j = 0 ties this pass exists to repair are exactly
        // where a plain min-ratio rule would pivot on noise. No
        // candidate at all means the row proves infeasibility.
        price_pass(ws, b, false, opts.jobs);
        let row = &ws.tab[leaving * b.width..leaving * b.width + b.rhs_col];
        let mut limit: Option<f64> = None;
        for (j, &a) in row.iter().enumerate() {
            if a < -EPS {
                let relaxed = (ws.reduced[j].max(0.0) + HARRIS_TOL) / -a;
                if limit.map_or(true, |l| relaxed < l) {
                    limit = Some(relaxed);
                }
            }
        }
        let Some(limit) = limit else {
            return Err(IlpError::Infeasible);
        };
        let mut entering: Option<(f64, usize)> = None;
        for (j, &a) in row.iter().enumerate() {
            if a < -EPS {
                let ratio = ws.reduced[j].max(0.0) / -a;
                if ratio <= limit && entering.map_or(true, |(best, _)| a < best) {
                    entering = Some((a, j));
                }
            }
        }
        let Some((_, entering)) = entering else {
            return Err(IlpError::Infeasible);
        };
        pivot_flat(ws, b, leaving, entering, opts.jobs);
        ws.basis[leaving] = entering;
        ws.stats.pivots += 1;
        ws.stats.dual_pivots += 1;
    }
    Ok(false)
}

/// Primal ratio test on `entering`, Harris style: pass 1 finds the
/// tightest ratio relaxed by [`HARRIS_TOL`]; pass 2 pivots on the
/// largest-magnitude eligible element within that limit (smallest basis
/// index on exact magnitude ties). Every compare is exact, so the
/// argmin is deterministic and identical at every job count.
fn ratio_test(ws: &SimplexWorkspace, b: &Build, entering: usize) -> Option<usize> {
    let mut limit: Option<f64> = None;
    for ri in 0..b.m {
        let a = ws.tab[ri * b.width + entering];
        if a > EPS {
            let relaxed = (ws.tab[ri * b.width + b.rhs_col] + HARRIS_TOL) / a;
            if limit.map_or(true, |l| relaxed < l) {
                limit = Some(relaxed);
            }
        }
    }
    let limit = limit?;
    let mut best: Option<(f64, usize, usize)> = None;
    for ri in 0..b.m {
        let a = ws.tab[ri * b.width + entering];
        if a > EPS {
            let ratio = ws.tab[ri * b.width + b.rhs_col] / a;
            // Larger pivot first, smaller basis index on exact ties.
            let key = (-a, ws.basis[ri]);
            if ratio <= limit && best.map_or(true, |(na, bi, _)| key < (na, bi)) {
                best = Some((key.0, key.1, ri));
            }
        }
    }
    best.map(|(_, _, ri)| ri)
}

/// The pricing pass: one row-major traversal computing the reduced-cost
/// vector `d_j = c_j − Σ_i c_{B_i}·t[i][j]` and (when `want_gamma`) the
/// steepest-edge norms `γ_j = 1 + Σ_i t[i][j]²` for the real columns
/// `0..rhs_col`.
///
/// Rows are split into [`CHUNK`]-sized chunks with *fixed* boundaries;
/// each chunk's partial sums are accumulated independently (possibly on
/// a worker thread) and folded in chunk-index order. Serial and
/// parallel runs execute the identical additions in the identical
/// order, so the pass is bit-deterministic for every job count.
fn price_pass(ws: &mut SimplexWorkspace, b: &Build, want_gamma: bool, jobs: usize) {
    let active = b.rhs_col;
    let n_chunks = b.m.div_ceil(CHUNK).max(1);
    ws.chunk_d.clear();
    ws.chunk_d.resize(n_chunks * active, 0.0);
    ws.chunk_g.clear();
    if want_gamma {
        ws.chunk_g.resize(n_chunks * active, 0.0);
    }

    {
        let tab = &ws.tab;
        let basis = &ws.basis;
        let cost = &ws.cost;
        let width = b.width;
        let m = b.m;
        let accumulate = |chunk: usize, acc_d: &mut [f64], acc_g: &mut [f64]| {
            let r0 = chunk * CHUNK;
            let r1 = (r0 + CHUNK).min(m);
            for ri in r0..r1 {
                let row = &tab[ri * width..ri * width + active];
                let cb = cost[basis[ri]];
                if cb != 0.0 {
                    for (d, &t) in acc_d.iter_mut().zip(row) {
                        *d += cb * t;
                    }
                }
                if want_gamma {
                    for (g, &t) in acc_g.iter_mut().zip(row) {
                        *g += t * t;
                    }
                }
            }
        };

        let parallel = jobs > 1 && n_chunks > 1 && b.m * active >= PAR_MIN_CELLS;
        if parallel {
            // Hand each worker a fixed round-robin set of chunk slices;
            // the chunk *boundaries* (and therefore every partial sum)
            // are identical to the serial path.
            let workers = jobs.min(n_chunks);
            // One (chunk index, d accumulator, gamma accumulator) task
            // list per worker.
            type WorkerTasks<'t> = Vec<(usize, &'t mut [f64], &'t mut [f64])>;
            let mut parts: Vec<WorkerTasks<'_>> = (0..workers).map(|_| Vec::new()).collect();
            let mut g_chunks: Vec<Option<&mut [f64]>> = if want_gamma {
                ws.chunk_g.chunks_mut(active).map(Some).collect()
            } else {
                (0..n_chunks).map(|_| None).collect()
            };
            for (c, d_chunk) in ws.chunk_d.chunks_mut(active).enumerate() {
                let g_chunk = g_chunks[c].take().map_or(&mut [][..], |g| g);
                parts[c % workers].push((c, d_chunk, g_chunk));
            }
            std::thread::scope(|scope| {
                for part in parts {
                    scope.spawn(|| {
                        let mut part = part;
                        for (c, acc_d, acc_g) in part.iter_mut() {
                            accumulate(*c, acc_d, acc_g);
                        }
                    });
                }
            });
        } else {
            let mut g_iter = ws.chunk_g.chunks_mut(active);
            for (c, acc_d) in ws.chunk_d.chunks_mut(active).enumerate() {
                let acc_g = if want_gamma {
                    g_iter.next().expect("gamma chunk per d chunk")
                } else {
                    &mut []
                };
                accumulate(c, acc_d, acc_g);
            }
        }
    }

    // Chunk-ordered fold — always serial, always the same order.
    ws.reduced.clear();
    ws.reduced.extend_from_slice(&ws.cost[..active]);
    for acc in ws.chunk_d.chunks(active) {
        for (d, &a) in ws.reduced.iter_mut().zip(acc) {
            *d -= a;
        }
    }
    if want_gamma {
        ws.gamma.clear();
        ws.gamma.resize(active, 1.0);
        for acc in ws.chunk_g.chunks(active) {
            for (g, &a) in ws.gamma.iter_mut().zip(acc) {
                *g += a;
            }
        }
    }
}

/// One pivot on `(row, col)`: normalize the pivot row, then eliminate
/// the column from every other row. The elimination always reads a
/// *copy* of the normalized pivot row, so the serial loop and the
/// row-parallel fan-out perform the identical arithmetic; rows are
/// independent, making the parallel result trivially equal to the
/// serial one.
fn pivot_flat(ws: &mut SimplexWorkspace, b: &Build, row: usize, col: usize, jobs: usize) {
    let width = b.width;
    let pv = ws.tab[row * width + col];
    debug_assert!(pv.abs() > EPS, "pivot on (near-)zero element");
    {
        let prow = &mut ws.tab[row * width..(row + 1) * width];
        for v in prow.iter_mut() {
            *v /= pv;
        }
        ws.prow.clear();
        ws.prow.extend_from_slice(prow);
    }
    let prow = &ws.prow;
    let eliminate = |ri: usize, r: &mut [f64]| {
        let factor = r[col];
        if ri != row && factor.abs() > EPS {
            for (v, &p) in r.iter_mut().zip(prow) {
                *v -= factor * p;
            }
        }
    };
    let parallel = jobs > 1 && b.m * width >= PAR_MIN_CELLS;
    if parallel {
        let workers = jobs.min(b.m);
        let mut parts: Vec<Vec<(usize, &mut [f64])>> = (0..workers).map(|_| Vec::new()).collect();
        for (ri, chunk) in ws.tab.chunks_mut(width).enumerate() {
            parts[ri % workers].push((ri, chunk));
        }
        std::thread::scope(|scope| {
            for part in parts {
                scope.spawn(|| {
                    let mut part = part;
                    for (ri, chunk) in part.iter_mut() {
                        eliminate(*ri, chunk);
                    }
                });
            }
        });
    } else {
        for (ri, chunk) in ws.tab.chunks_mut(width).enumerate() {
            eliminate(ri, chunk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Problem;

    #[test]
    fn simple_max_as_min() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6  => min -3x - 2y = -12 (x=4,y=0).
        let mut p = Problem::minimize();
        let x = p.add_continuous(0.0, 100.0, -3.0);
        let y = p.add_continuous(0.0, 100.0, -2.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        p.add_constraint(&[(x, 1.0), (y, 3.0)], Cmp::Le, 6.0);
        let sol = solve_lp(&p, &[]).unwrap();
        assert!(
            (sol.objective + 12.0).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
        assert!((sol.values[0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn chained_delta_solves_track_cold_on_degenerate_assignment() {
        // 30 items × 3 identical bins with equal assignment costs and
        // cut-style coupling rows — a maximally degenerate LP whose
        // duals tie everywhere, exactly the regime where the dual
        // repair of a chained delta solve once pivoted on an
        // elimination-noise element and silently returned a corrupted
        // tableau (objective far below the true optimum, equality rows
        // violated). Every step of a branch-and-bound-style fixing
        // chain must match a cold solve of the same fixings and return
        // a point that satisfies every constraint.
        let items = 30usize;
        let bins = 3usize;
        let mut p = Problem::minimize();
        let mut x: Vec<Vec<crate::VarId>> = Vec::new();
        for _ in 0..items {
            let row: Vec<_> = (0..bins).map(|_| p.add_binary(1.0)).collect();
            let terms: Vec<_> = row.iter().map(|&v| (v, 1.0)).collect();
            p.add_constraint(&terms, Cmp::Eq, 1.0);
            x.push(row);
        }
        let cap = items.div_ceil(bins) as f64;
        for b in 0..bins {
            let terms: Vec<_> = x.iter().map(|row| (row[b], 1.0)).collect();
            p.add_constraint(&terms, Cmp::Le, cap);
        }
        type Row = (Vec<(usize, f64)>, Cmp, f64);
        let mut rows: Vec<Row> = Vec::new();
        for row in &x {
            rows.push((row.iter().map(|v| (v.index(), 1.0)).collect(), Cmp::Eq, 1.0));
        }
        for b in 0..bins {
            rows.push((
                x.iter().map(|row| (row[b].index(), 1.0)).collect(),
                Cmp::Le,
                cap,
            ));
        }
        for i in 1..items {
            let y = p.add_continuous(0.0, 1.0, 0.25);
            for (&u, &v) in x[i - 1].iter().zip(&x[i]) {
                p.add_constraint(&[(y, 1.0), (u, -1.0), (v, 1.0)], Cmp::Ge, 0.0);
                p.add_constraint(&[(y, 1.0), (v, -1.0), (u, 1.0)], Cmp::Ge, 0.0);
                rows.push((
                    vec![(y.index(), 1.0), (u.index(), -1.0), (v.index(), 1.0)],
                    Cmp::Ge,
                    0.0,
                ));
                rows.push((
                    vec![(y.index(), 1.0), (v.index(), -1.0), (u.index(), 1.0)],
                    Cmp::Ge,
                    0.0,
                ));
            }
        }

        let opts = LpOptions::default();
        let mut ws = SimplexWorkspace::new();
        solve_lp_opts(&p, &[], &mut ws, &opts).unwrap();
        let mut fix: Vec<Fixing> = Vec::new();
        for i in 0..items {
            fix.push((x[i][i % bins].index(), 1.0, 1.0));
            let delta = solve_lp_delta(&p, &fix, &mut ws, &opts).unwrap();
            let mut ws_cold = SimplexWorkspace::new();
            let cold = solve_lp_opts(&p, &fix, &mut ws_cold, &opts).unwrap();
            assert!(
                (delta.objective - cold.objective).abs() < 1e-6,
                "step {i}: delta objective {} != cold {}",
                delta.objective,
                cold.objective
            );
            for (ri, (terms, cmp, rhs)) in rows.iter().enumerate() {
                let lhs: f64 = terms.iter().map(|&(v, a)| a * delta.values[v]).sum();
                let ok = match cmp {
                    Cmp::Le => lhs <= rhs + 1e-6,
                    Cmp::Ge => lhs >= rhs - 1e-6,
                    Cmp::Eq => (lhs - rhs).abs() <= 1e-6,
                };
                assert!(
                    ok,
                    "step {i}: delta point violates row {ri}: {lhs} {cmp:?} {rhs}"
                );
            }
        }
        let stats = ws.stats();
        assert_eq!(
            stats.delta_solves, items,
            "every step must take the delta path"
        );
    }

    #[test]
    fn ge_constraints_need_phase1() {
        // min x s.t. x >= 3  => 3.
        let mut p = Problem::minimize();
        let x = p.add_continuous(0.0, 10.0, 1.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Ge, 3.0);
        let sol = solve_lp(&p, &[]).unwrap();
        assert!((sol.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_phase1() {
        let mut p = Problem::minimize();
        let x = p.add_continuous(0.0, 1.0, 1.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Ge, 5.0);
        assert_eq!(solve_lp(&p, &[]).unwrap_err(), IlpError::Infeasible);
    }

    #[test]
    fn fixings_narrow_bounds() {
        let mut p = Problem::minimize();
        let x = p.add_binary(-1.0);
        // Relaxation alone would take x = 1; fix to 0.
        let sol = solve_lp(&p, &[(0, 0.0, 0.0)]).unwrap();
        assert!(sol.values[0].abs() < 1e-9);
        let _ = x;
    }

    #[test]
    fn contradictory_fixings_infeasible() {
        let mut p = Problem::minimize();
        let _x = p.add_binary(1.0);
        assert_eq!(
            solve_lp(&p, &[(0, 1.0, 1.0), (0, 0.0, 0.0)]).unwrap_err(),
            IlpError::Infeasible
        );
    }

    #[test]
    fn negative_rhs_normalized() {
        // min x s.t. -x <= -2  (i.e. x >= 2).
        let mut p = Problem::minimize();
        let x = p.add_continuous(0.0, 10.0, 1.0);
        p.add_constraint(&[(x, -1.0)], Cmp::Le, -2.0);
        let sol = solve_lp(&p, &[]).unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn nonzero_lower_bounds() {
        // min x + y, x in [2, 5], y in [1, 4], x + y >= 4 => 4 at (3,1) or (2,2).
        let mut p = Problem::minimize();
        let x = p.add_continuous(2.0, 5.0, 1.0);
        let y = p.add_continuous(1.0, 4.0, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        let sol = solve_lp(&p, &[]).unwrap();
        assert!(
            (sol.objective - 4.0).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
        assert!(sol.values[0] >= 2.0 - 1e-9);
        assert!(sol.values[1] >= 1.0 - 1e-9);
    }

    #[test]
    fn warm_workspace_matches_fresh_solves() {
        // One workspace across differently-shaped problems must give the
        // same answers as fresh per-call buffers.
        let mut ws = SimplexWorkspace::new();
        for vars in [1usize, 3, 2, 5] {
            let mut p = Problem::minimize();
            let ids: Vec<_> = (0..vars)
                .map(|i| p.add_continuous(0.0, 10.0, -((i + 1) as f64)))
                .collect();
            let terms: Vec<_> = ids.iter().map(|&v| (v, 1.0)).collect();
            p.add_constraint(&terms, Cmp::Le, 4.0);
            p.add_constraint(&[(ids[0], 1.0)], Cmp::Ge, 1.0);
            let fresh = solve_lp(&p, &[]).unwrap();
            let warm = solve_lp_with(&p, &[], &mut ws).unwrap();
            assert_eq!(fresh.values, warm.values, "vars={vars}");
            assert!((fresh.objective - warm.objective).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Several redundant constraints; the solver must still terminate.
        let mut p = Problem::minimize();
        let x = p.add_continuous(0.0, 10.0, -1.0);
        for _ in 0..5 {
            p.add_constraint(&[(x, 1.0)], Cmp::Le, 7.0);
        }
        let sol = solve_lp(&p, &[]).unwrap();
        assert!((sol.objective + 7.0).abs() < 1e-6);
    }

    #[test]
    fn bland_and_steepest_agree() {
        // The two pricing rules are different search paths to the same
        // optimum.
        for seed in 0..8u64 {
            let mut p = Problem::minimize();
            let n = 6;
            let vars: Vec<_> = (0..n)
                .map(|i| {
                    p.add_continuous(0.0, 5.0, -(((seed * 7 + i as u64 * 3) % 9) as f64) - 1.0)
                })
                .collect();
            let terms: Vec<_> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, ((seed + i as u64 * 5) % 4 + 1) as f64))
                .collect();
            p.add_constraint(&terms, Cmp::Le, 11.0);
            p.add_constraint(&[(vars[0], 1.0), (vars[1], 1.0)], Cmp::Ge, 1.0);
            let mut ws = SimplexWorkspace::new();
            let steepest = solve_lp_opts(
                &p,
                &[],
                &mut ws,
                &LpOptions {
                    pricing: PricingRule::SteepestEdge,
                    ..LpOptions::default()
                },
            )
            .unwrap();
            let bland = solve_lp_opts(
                &p,
                &[],
                &mut ws,
                &LpOptions {
                    pricing: PricingRule::Bland,
                    ..LpOptions::default()
                },
            )
            .unwrap();
            // Both rules must find the same optimal *objective*; on a
            // face of alternate optima they may stop at different
            // vertices (equally correct). The MILP level regains full
            // value determinism from the incumbent merge over integer
            // points, not from the LP vertex choice.
            assert!(
                (steepest.objective - bland.objective).abs() < 1e-9,
                "seed {seed}: steepest {} vs bland {}",
                steepest.objective,
                bland.objective
            );
            for sol in [&steepest, &bland] {
                let lhs: f64 = sol
                    .values
                    .iter()
                    .zip(0..n)
                    .map(|(x, i)| x * ((seed + i as u64 * 5) % 4 + 1) as f64)
                    .sum();
                assert!(lhs <= 11.0 + 1e-9, "seed {seed}: infeasible vertex");
            }
        }
    }

    #[test]
    fn warm_start_from_own_basis_is_a_noop_resolve() {
        let mut p = Problem::minimize();
        let x = p.add_continuous(0.0, 100.0, -3.0);
        let y = p.add_continuous(0.0, 100.0, -2.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        p.add_constraint(&[(x, 1.0), (y, 3.0)], Cmp::Le, 6.0);
        let mut ws = SimplexWorkspace::new();
        let cold = solve_lp_with(&p, &[], &mut ws).unwrap();
        let basis = ws.basis().to_vec();
        ws.reset_stats();
        let warm = solve_lp_warm(&p, &[], &mut ws, &LpOptions::default(), &basis).unwrap();
        assert_eq!(cold.values, warm.values);
        assert_eq!(
            ws.stats().pivots,
            0,
            "re-solving the same LP needs no priced pivot"
        );
        assert_eq!(ws.stats().warm_solves, 1);
        assert_eq!(ws.stats().warm_fallbacks, 0);
    }

    #[test]
    fn warm_start_accepts_marker_bases_from_dependent_rows() {
        // Duplicated equality rows leave a dependent row marker-basic in
        // the stored basis; a warm re-solve must accept it, not fall back.
        let mut p = Problem::minimize();
        let x = p.add_continuous(0.0, 10.0, 1.0);
        let y = p.add_continuous(0.0, 10.0, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Eq, 4.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Eq, 4.0);
        let mut ws = SimplexWorkspace::new();
        let cold = solve_lp_with(&p, &[], &mut ws).unwrap();
        let basis = ws.basis().to_vec();
        assert!(
            basis.iter().any(|&c| c > p.costs.len() + 4),
            "expected a marker entry in {basis:?}"
        );
        ws.reset_stats();
        let warm = solve_lp_warm(&p, &[], &mut ws, &LpOptions::default(), &basis).unwrap();
        assert!((cold.objective - warm.objective).abs() < 1e-9);
        assert_eq!(ws.stats().warm_solves, 1);
        assert_eq!(ws.stats().warm_fallbacks, 0);
    }

    #[test]
    fn warm_start_after_bound_flip_matches_cold() {
        // Branch & bound's exact pattern: parent LP, then children with
        // one binary fixed each way. Objective must agree with the cold
        // child's to LP tolerance.
        for seed in 0..10u64 {
            let mut p = Problem::minimize();
            let n = 7;
            let vars: Vec<_> = (0..n)
                .map(|i| p.add_binary(-(((seed * 11 + i as u64 * 5) % 9) as f64) - 0.5))
                .collect();
            let weights: Vec<f64> = (0..n)
                .map(|i| ((seed * 3 + i as u64 * 7) % 6 + 1) as f64)
                .collect();
            let terms: Vec<_> = vars.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect();
            p.add_constraint(&terms, Cmp::Le, weights.iter().sum::<f64>() / 2.0);
            let mut ws = SimplexWorkspace::new();
            solve_lp_with(&p, &[], &mut ws).unwrap();
            let parent = ws.basis().to_vec();
            for fix in [0.0, 1.0] {
                let fixings = [(0usize, fix, fix)];
                let cold = solve_lp(&p, &fixings);
                let warm = solve_lp_warm(&p, &fixings, &mut ws, &LpOptions::default(), &parent);
                match (cold, warm) {
                    (Ok(c), Ok(w)) => {
                        assert!(
                            (c.objective - w.objective).abs() < 1e-7,
                            "seed {seed} fix {fix}: cold {} warm {}",
                            c.objective,
                            w.objective
                        );
                    }
                    (Err(ce), Err(we)) => assert_eq!(ce, we, "seed {seed} fix {fix}"),
                    (c, w) => panic!("seed {seed} fix {fix}: cold {c:?} vs warm {w:?}"),
                }
            }
        }
    }

    #[test]
    fn delta_resolve_matches_cold_after_each_narrowing() {
        // The DFS hot path: solve, then repeatedly push one more fixing
        // and delta-re-solve in place; every step must match a cold solve
        // of the same fixings.
        for seed in 0..10u64 {
            let mut p = Problem::minimize();
            let n = 7;
            let vars: Vec<_> = (0..n)
                .map(|i| p.add_binary(-(((seed * 13 + i as u64 * 3) % 9) as f64) - 0.5))
                .collect();
            let weights: Vec<f64> = (0..n)
                .map(|i| ((seed * 5 + i as u64 * 11) % 6 + 1) as f64)
                .collect();
            let terms: Vec<_> = vars.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect();
            p.add_constraint(&terms, Cmp::Le, weights.iter().sum::<f64>() / 2.0);
            p.add_constraint(&[(vars[0], 1.0), (vars[1], 1.0)], Cmp::Ge, 1.0);
            let mut ws = SimplexWorkspace::new();
            solve_lp_with(&p, &[], &mut ws).unwrap();
            let mut fixings: Vec<Fixing> = Vec::new();
            for step in 0..4usize {
                let v = (seed as usize + step * 2) % n;
                let val = ((seed as usize + step) % 2) as f64;
                fixings.push((v, val, val));
                assert!(ws.delta_applicable(&fixings), "seed {seed} step {step}");
                let delta = solve_lp_delta(&p, &fixings, &mut ws, &LpOptions::default());
                let cold = solve_lp(&p, &fixings);
                match (&cold, &delta) {
                    (Ok(c), Ok(d)) => assert!(
                        (c.objective - d.objective).abs() < 1e-7,
                        "seed {seed} step {step}: cold {} delta {}",
                        c.objective,
                        d.objective
                    ),
                    (Err(ce), Err(de)) => assert_eq!(ce, de, "seed {seed} step {step}"),
                    (c, d) => panic!("seed {seed} step {step}: cold {c:?} vs delta {d:?}"),
                }
                if delta.is_err() {
                    break;
                }
            }
        }
    }

    #[test]
    fn delta_applicable_tracks_state() {
        let mut p = Problem::minimize();
        let _x = p.add_binary(-1.0);
        let _y = p.add_binary(-2.0);
        let mut ws = SimplexWorkspace::new();
        assert!(!ws.delta_applicable(&[(0, 0.0, 0.0)]));
        solve_lp_with(&p, &[], &mut ws).unwrap();
        assert!(ws.delta_applicable(&[(0, 0.0, 0.0)]));
        // Two new fixings at once is not a delta.
        assert!(!ws.delta_applicable(&[(0, 0.0, 0.0), (1, 1.0, 1.0)]));
        let fix = [(0usize, 0.0, 0.0)];
        solve_lp_delta(&p, &fix, &mut ws, &LpOptions::default()).unwrap();
        // Prefix must match the held state, extended by one.
        assert!(ws.delta_applicable(&[(0, 0.0, 0.0), (1, 1.0, 1.0)]));
        assert!(!ws.delta_applicable(&[(1, 1.0, 1.0)]));
    }

    #[test]
    fn warm_start_with_garbage_basis_falls_back_cold() {
        let mut p = Problem::minimize();
        let x = p.add_continuous(0.0, 10.0, -1.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Le, 7.0);
        let mut ws = SimplexWorkspace::new();
        // Wrong length and out-of-range columns both fall back.
        let sol = solve_lp_warm(&p, &[], &mut ws, &LpOptions::default(), &[0, 1, 2, 3, 4, 5]);
        assert!((sol.unwrap().objective + 7.0).abs() < 1e-6);
        let cold = solve_lp_with(&p, &[], &mut ws).unwrap();
        let dup = vec![0usize; ws.basis().len()];
        let sol = solve_lp_warm(&p, &[], &mut ws, &LpOptions::default(), &dup).unwrap();
        assert!((sol.objective - cold.objective).abs() < 1e-9);
        assert!(ws.stats().warm_fallbacks >= 1);
    }

    #[test]
    fn parallel_kernels_are_bit_identical() {
        // A problem big enough to clear PAR_MIN_CELLS so the kernels
        // genuinely fan out, solved at jobs 1 and 4: bit-identical.
        let build = || {
            let mut p = Problem::minimize();
            let n = 260;
            let vars: Vec<_> = (0..n)
                .map(|i| p.add_continuous(0.0, 3.0, -(((i * 7) % 11) as f64) - 1.0))
                .collect();
            for c in 0..n / 2 {
                let terms: Vec<_> = vars
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| (i + c) % 3 != 0)
                    .map(|(i, &v)| (v, ((i * 5 + c) % 7 + 1) as f64))
                    .collect();
                p.add_constraint(&terms, Cmp::Le, (40 + (c * 13) % 60) as f64);
            }
            p
        };
        let p = build();
        let mut ws = SimplexWorkspace::new();
        let serial = solve_lp_opts(
            &p,
            &[],
            &mut ws,
            &LpOptions {
                jobs: 1,
                ..LpOptions::default()
            },
        )
        .unwrap();
        let parallel = solve_lp_opts(
            &p,
            &[],
            &mut ws,
            &LpOptions {
                jobs: 4,
                ..LpOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            serial.objective.to_bits(),
            parallel.objective.to_bits(),
            "objective must be bit-identical across kernel job counts"
        );
        let sb: Vec<u64> = serial.values.iter().map(|v| v.to_bits()).collect();
        let pb: Vec<u64> = parallel.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(sb, pb);
    }

    #[test]
    fn stall_counter_engages_and_releases_bland() {
        // A degenerate cluster of redundant rows: the solve must finish
        // well under the budget, and if the fallback ever engaged it
        // must not have taken over the whole solve.
        let mut p = Problem::minimize();
        let n = 12;
        let vars: Vec<_> = (0..n).map(|_| p.add_continuous(0.0, 1.0, -1.0)).collect();
        for k in 1..=n {
            let terms: Vec<_> = vars.iter().take(k).map(|&v| (v, 1.0)).collect();
            p.add_constraint(&terms, Cmp::Le, k as f64 / 2.0);
        }
        let mut ws = SimplexWorkspace::new();
        let sol = solve_lp_with(&p, &[], &mut ws).unwrap();
        assert!(sol.objective.is_finite());
        let stats = ws.stats();
        assert!(stats.pivots < DEFAULT_MAX_PIVOTS / 10);
        assert!(
            stats.bland_pivots < stats.pivots.max(1),
            "steepest edge must do real work: {stats:?}"
        );
    }
}
